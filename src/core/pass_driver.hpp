#pragma once
/// \file pass_driver.hpp
/// Pass-by-pass execution of the QRM schedule analysis.
///
/// Both the behavioural planner and the FPGA cycle model run the *same*
/// sequence of quadrant passes; the planner simply applies them, while the
/// accelerator model also charges hardware time for each. PassDriver owns
/// that shared sequencing so the two can never diverge.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/quadrant_plan.hpp"
#include "lattice/quadrant.hpp"

namespace qrm {

/// One synchronised pass over all four quadrants.
struct QuadrantPass {
  Axis axis = Axis::Rows;
  bool balance = false;  ///< demand-balance placement vs plain compaction
  /// Quadrant-local input grids the pass starts from (kernel input data).
  std::array<OccupancyGrid, 4> local_grids;
  /// Quadrant-local line assignments the pass computes (kernel output).
  std::array<std::vector<LineAssignment>, 4> local_assignments;
  /// Demand outcome per quadrant (meaningful only when balance is true);
  /// the cycle model cross-checks its balance units against these.
  std::array<BalanceReport, 4> balance_reports;

  [[nodiscard]] std::size_t total_assignments() const noexcept {
    std::size_t n = 0;
    for (const auto& a : local_assignments) n += a.size();
    return n;
  }
};

/// Per-drive reuse accounting for delta replanning (core/delta_planner.hpp).
struct PassReuseStats {
  std::uint64_t kernels_reused = 0;    ///< quadrant kernels served from cache
  std::uint64_t kernels_computed = 0;  ///< quadrant kernels recomputed
};

/// Drives the pass sequence for one rearrangement problem.
///
/// Usage: repeatedly call next(); for each returned pass, optionally inspect
/// it (the cycle model simulates its dataflow), then call apply() to lower
/// it to moves and advance the grid. next() returns nullopt when the
/// schedule analysis is complete; results() then yields the final stats.
class PassDriver {
 public:
  /// Preconditions: same as QrmPlanner::plan (even dims, centred target).
  /// `parallelism` fans the quadrant kernels out (mechanism only — results
  /// are bit-identical for any value); the default runs sequentially.
  PassDriver(const OccupancyGrid& initial, QrmConfig config, PlanParallelism parallelism = {});

  /// Compute the next pass from the current state, or nullopt when done.
  [[nodiscard]] std::optional<QuadrantPass> next();

  /// Realize `pass` (merged or per-quadrant, per config), appending moves to
  /// the internal schedule and advancing the grid. Must be called exactly
  /// once, with the pass most recently returned by next(). Taken by value so
  /// capture (capture_passes) can keep the pass without a deep copy — pass
  /// std::move(*pass) when the pass is no longer needed.
  void apply(QuadrantPass pass);

  [[nodiscard]] const OccupancyGrid& state() const noexcept { return state_; }
  [[nodiscard]] const QuadrantGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const QrmConfig& config() const noexcept { return config_; }

  /// Final outcome; valid once next() has returned nullopt (also usable
  /// mid-flight for progress inspection).
  [[nodiscard]] PlanResult take_result();

  /// Snapshot every applied pass (kernel inputs and outputs, in application
  /// order) into `sink`, which must outlive the driver. DeltaReplanner uses
  /// this to record a plan's pass trajectory for reuse next round. nullptr
  /// (the default) disables capture.
  void capture_passes(std::vector<QuadrantPass>* sink) noexcept { capture_sink_ = sink; }

  /// Serve clean quadrants' kernel outputs from a previous drive's captured
  /// trajectory: when pass k of this drive matches pass k of `previous` in
  /// kind (axis + balance), every quadrant not flagged in `dirty` takes the
  /// cached local grid / assignments / balance report instead of extracting
  /// and recomputing. Sound only when the clean quadrants' global cells
  /// equal the previous drive's input — the quadrant kernels are pure
  /// functions of their local extract, and realization never moves atoms
  /// across quadrant boundaries, so an untouched quadrant replays the same
  /// trajectory (DeltaReplanner establishes the equality via grid diff).
  /// `paranoid` additionally extracts and compares every reused grid,
  /// throwing InvariantError on mismatch (test / debug mode; forfeits the
  /// speedup). `previous` must outlive the driver and is CONSUMED: reused
  /// entries are moved from (a deep copy here would cost as much as the
  /// recompute it avoids), so the caller must treat the vector as spent
  /// after the drive. `stats` (optional) accumulates reuse counters.
  void reuse_passes(std::vector<QuadrantPass>* previous, std::array<bool, 4> dirty,
                    bool paranoid = false, PassReuseStats* stats = nullptr) noexcept {
    reuse_source_ = previous;
    reuse_dirty_ = dirty;
    reuse_paranoid_ = paranoid;
    reuse_stats_ = stats;
  }

 private:
  /// Where we are in the mode's pass program.
  enum class Phase { BalanceRow, BalanceCol, CompactRow, CompactCol, Done };

  /// Pool the quadrant tasks fan out on, or nullptr for the sequential path
  /// (parallelism workers == 0, or no pool was provided or created).
  [[nodiscard]] ThreadPool* intra_plan_pool() const noexcept;

  QrmConfig config_;
  PlanParallelism parallelism_;
  QuadrantGeometry geometry_;
  OccupancyGrid state_;
  Schedule schedule_;
  PlanStats stats_;
  Phase phase_ = Phase::CompactRow;
  std::int32_t iteration_ = 0;
  std::size_t iteration_atoms_moved_ = 0;
  bool awaiting_apply_ = false;

  // Delta-replanning hooks (capture_passes / reuse_passes).
  std::vector<QuadrantPass>* capture_sink_ = nullptr;
  std::vector<QuadrantPass>* reuse_source_ = nullptr;
  std::array<bool, 4> reuse_dirty_{};
  bool reuse_paranoid_ = false;
  PassReuseStats* reuse_stats_ = nullptr;
  std::size_t pass_index_ = 0;  ///< passes applied so far (reuse alignment)
};

}  // namespace qrm

#pragma once
/// \file detector.hpp
/// Atom detection: camera frame -> binary occupancy matrix (the bitfield the
/// rearrangement accelerator consumes).

#include <cstdint>

#include "detection/image.hpp"
#include "lattice/grid.hpp"

namespace qrm {

struct DetectionConfig {
  /// Photon threshold on the per-site integral; negative selects the
  /// automatic two-class (k-means style) threshold.
  double threshold_photons = -1.0;
  std::int32_t pixels_per_site = 5;  ///< must match the imaging geometry
  /// Miscalibration multiplier on the *applied* threshold (hostile-physics
  /// axis): the detector compares integrals against threshold *
  /// threshold_bias, whether the threshold is manual or automatic. The
  /// default 1.0 is a bit-exact identity (x * 1.0 == x), so well-calibrated
  /// configs are untouched. Must be finite and > 0.
  double threshold_bias = 1.0;
};

/// The detector's boundary predicate, pinned in one place: a site whose
/// photon integral equals the applied threshold EXACTLY counts as occupied
/// (>=). Every thresholding call site — detect_atoms, threshold_sweep, and
/// the two-class iteration's bright/dark split — routes through this
/// predicate so the tie behaviour cannot drift apart between them.
[[nodiscard]] constexpr bool meets_threshold(double integral, double threshold) noexcept {
  return integral >= threshold;
}

/// Integrate each site's pixel block and threshold it. The automatic
/// threshold iterates the two-class midpoint (Otsu-like) until fixed point,
/// which separates the bimodal bright/dark site distribution.
[[nodiscard]] OccupancyGrid detect_atoms(const FluorescenceImage& image, std::int32_t grid_height,
                                         std::int32_t grid_width, const DetectionConfig& config);

/// The automatic threshold detect_atoms would use (exposed for analysis).
[[nodiscard]] double auto_threshold(const FluorescenceImage& image, std::int32_t grid_height,
                                    std::int32_t grid_width, std::int32_t pixels_per_site);

/// Detection quality against ground truth.
struct DetectionErrors {
  std::int64_t false_positives = 0;  ///< detected where no atom exists
  std::int64_t false_negatives = 0;  ///< missed real atoms

  [[nodiscard]] std::int64_t total() const noexcept { return false_positives + false_negatives; }
};

[[nodiscard]] DetectionErrors compare_detection(const OccupancyGrid& truth,
                                                const OccupancyGrid& detected);

/// Corrupt a ground-truth grid with independent per-site detection errors
/// (for planner-robustness studies): each atom is dropped with probability
/// `p_false_negative`, each empty site spuriously fires with
/// `p_false_positive`.
[[nodiscard]] OccupancyGrid inject_detection_errors(const OccupancyGrid& truth,
                                                    double p_false_negative,
                                                    double p_false_positive, std::uint64_t seed);

}  // namespace qrm

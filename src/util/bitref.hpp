#pragma once
/// \file bitref.hpp
/// Naive per-bit reference implementations of the BitRow primitives.
///
/// These are the executable specification of the word-parallel kernels in
/// bitrow.cpp: one bounds-checked bit at a time, written for obviousness
/// rather than speed. The differential suite (tests/bitops_test.cpp) pins the
/// optimised paths bit-for-bit against these, and bench/planner_throughput
/// reports speedup relative to them. Never call these from production code.

#include <cstdint>
#include <vector>

#include "util/bitrow.hpp"

namespace qrm::ref {

[[nodiscard]] inline BitRow reversed(const BitRow& row) {
  BitRow out(row.width());
  for (std::uint32_t i = 0; i < row.width(); ++i)
    if (row.test(i)) out.set(row.width() - 1 - i);
  return out;
}

[[nodiscard]] inline BitRow compacted(const BitRow& row) {
  BitRow out(row.width());
  std::uint32_t next = 0;
  for (std::uint32_t i = 0; i < row.width(); ++i)
    if (row.test(i)) out.set(next++);
  return out;
}

[[nodiscard]] inline std::uint32_t count_range(const BitRow& row, std::uint32_t lo,
                                               std::uint32_t hi) {
  std::uint32_t n = 0;
  for (std::uint32_t i = lo; i < hi; ++i)
    if (row.test(i)) ++n;
  return n;
}

[[nodiscard]] inline std::vector<std::uint32_t> hole_positions(const BitRow& row) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < row.width(); ++i)
    if (!row.test(i)) out.push_back(i);
  return out;
}

[[nodiscard]] inline std::vector<std::uint32_t> compaction_displacements(const BitRow& row) {
  std::vector<std::uint32_t> out;
  std::uint32_t holes = 0;
  for (std::uint32_t i = 0; i < row.width(); ++i) {
    if (row.test(i)) {
      out.push_back(holes);
    } else {
      ++holes;
    }
  }
  return out;
}

[[nodiscard]] inline BitRow slice(const BitRow& row, std::uint32_t pos, std::uint32_t len) {
  BitRow out(len);
  for (std::uint32_t i = 0; i < len; ++i)
    if (row.test(pos + i)) out.set(i);
  return out;
}

[[nodiscard]] inline BitRow pasted(BitRow row, std::uint32_t pos, const BitRow& piece) {
  for (std::uint32_t i = 0; i < piece.width(); ++i) row.set(pos + i, piece.test(i));
  return row;
}

}  // namespace qrm::ref

#include "util/csv.hpp"

#include "util/assert.hpp"

namespace qrm {

void CsvWriter::header(const std::vector<std::string>& names) {
  QRM_EXPECTS_MSG(!header_written_ && rows_ == 0, "CSV header must precede all rows");
  write_cells(names);
  header_written_ = true;
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace qrm

#pragma once
/// \file calibration.hpp
/// Detection-threshold calibration tools: threshold sweeps against ground
/// truth (ROC-style error curves) and per-site SNR estimation. Used to
/// choose operating points for the imaging model and to show detection
/// robustness margins in the examples.

#include <cstdint>
#include <vector>

#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "lattice/grid.hpp"

namespace qrm {

/// Shape of the deterministic per-shot calibration drift.
enum class DriftShape : std::uint8_t {
  None,  ///< no drift; factor() is exactly 1.0
  Ramp,  ///< sawtooth: climbs linearly over one period, then resets
  Sine,  ///< sinusoid over one period
};

[[nodiscard]] constexpr const char* to_cstring(DriftShape s) noexcept {
  switch (s) {
    case DriftShape::Ramp: return "ramp";
    case DriftShape::Sine: return "sine";
    default: return "none";
  }
}

/// Deterministic per-shot calibration drift — the slow miscalibration a
/// real imaging system accumulates between recalibrations, modelled as a
/// multiplicative factor keyed ONLY by the shot index. No RNG stream is
/// consumed, so batch shots stay independent and reproducible regardless of
/// worker count, and shape None leaves every config bit-for-bit untouched.
struct CalibrationDrift {
  DriftShape shape = DriftShape::None;
  double amplitude = 0.2;    ///< peak relative deviation (0.2 = +-20%)
  std::uint32_t period = 8;  ///< shots per drift cycle

  /// Multiplier for shot `shot_index`: 1.0 for None, otherwise
  /// 1 + amplitude * ramp/sine of the phase (shot_index mod period).
  [[nodiscard]] double factor(std::uint64_t shot_index) const noexcept;

  friend bool operator==(const CalibrationDrift&, const CalibrationDrift&) = default;
};

struct ThresholdPoint {
  double threshold = 0.0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  double error_rate = 0.0;  ///< (fp + fn) / sites
};

/// Sweep `points` thresholds uniformly between the minimum and maximum
/// per-site integral and report the error counts against `truth`.
[[nodiscard]] std::vector<ThresholdPoint> threshold_sweep(const FluorescenceImage& image,
                                                          const OccupancyGrid& truth,
                                                          std::int32_t pixels_per_site,
                                                          std::int32_t points = 64);

/// The sweep point with the fewest total errors (ties: lowest threshold).
[[nodiscard]] ThresholdPoint best_threshold(const std::vector<ThresholdPoint>& sweep);

/// Separation quality of the bright/dark site populations:
/// (mean_bright - mean_dark) / sqrt(var_bright + var_dark).
/// Returns 0 when either class is empty.
[[nodiscard]] double site_separation_snr(const FluorescenceImage& image,
                                         const OccupancyGrid& truth,
                                         std::int32_t pixels_per_site);

}  // namespace qrm

// Tests for util: BitRow (the shift-kernel datatype), RNG, stats, CSV, table.

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <sstream>
#include <vector>

#include "util/assert.hpp"
#include "util/bitrow.hpp"
#include "util/csv.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace qrm {
namespace {

TEST(BitRow, ConstructsZeroed) {
  const BitRow row(130);
  EXPECT_EQ(row.width(), 130u);
  EXPECT_EQ(row.count(), 0u);
  EXPECT_TRUE(row.none());
}

TEST(BitRow, SetAndTestAcrossWordBoundaries) {
  BitRow row(130);
  for (const std::uint32_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    row.set(i);
    EXPECT_TRUE(row.test(i));
  }
  EXPECT_EQ(row.count(), 7u);
  row.clear(64);
  EXPECT_FALSE(row.test(64));
  EXPECT_EQ(row.count(), 6u);
}

TEST(BitRow, FromStringRoundTrip) {
  const std::string text = "0110010111";
  const BitRow row = BitRow::from_string(text);
  EXPECT_EQ(row.to_string(), text);
  EXPECT_EQ(row.count(), 6u);
  EXPECT_EQ(BitRow::from_string(".##.").to_art(), ".##.");
}

TEST(BitRow, FromStringRejectsJunk) {
  EXPECT_THROW((void)BitRow::from_string("01x"), PreconditionError);
}

TEST(BitRow, BoundsChecked) {
  BitRow row(10);
  EXPECT_THROW((void)row.test(10), PreconditionError);
  EXPECT_THROW(row.set(10), PreconditionError);
}

TEST(BitRow, CountRange) {
  const BitRow row = BitRow::from_string("1101100111");
  EXPECT_EQ(row.count_range(0, 10), 7u);
  EXPECT_EQ(row.count_range(0, 0), 0u);
  EXPECT_EQ(row.count_range(2, 5), 2u);
  EXPECT_THROW((void)row.count_range(5, 2), PreconditionError);
}

TEST(BitRow, CountRangeWideRow) {
  BitRow row(200);
  for (std::uint32_t i = 0; i < 200; i += 3) row.set(i);
  std::uint32_t expected = 0;
  for (std::uint32_t i = 10; i < 190; ++i)
    if (i % 3 == 0) ++expected;
  EXPECT_EQ(row.count_range(10, 190), expected);
}

TEST(BitRow, ShiftTowardLsb) {
  BitRow row = BitRow::from_string("0011010001");
  row.shift_toward_lsb(2);
  EXPECT_EQ(row.to_string(), "1101000100");
  row.shift_toward_lsb(100);
  EXPECT_TRUE(row.none());
}

TEST(BitRow, ShiftTowardMsb) {
  BitRow row = BitRow::from_string("1100000001");
  row.shift_toward_msb(3);
  EXPECT_EQ(row.to_string(), "0001100000");  // the MSB '1' fell off
}

TEST(BitRow, ShiftsAcrossWordBoundary) {
  BitRow row(100);
  row.set(70);
  row.shift_toward_lsb(10);
  EXPECT_TRUE(row.test(60));
  row.shift_toward_msb(35);
  EXPECT_TRUE(row.test(95));
  EXPECT_EQ(row.count(), 1u);
}

TEST(BitRow, HoleQueries) {
  const BitRow row = BitRow::from_string("1101011");
  EXPECT_EQ(row.first_hole(), 2u);
  EXPECT_EQ(row.first_atom(), 0u);
  EXPECT_EQ(row.holes_below(0), 0u);
  EXPECT_EQ(row.holes_below(5), 2u);
  EXPECT_EQ(row.holes_below(7), 2u);
  EXPECT_EQ(row.hole_positions(), (std::vector<std::uint32_t>{2, 4}));
  const BitRow full = BitRow::from_string("111");
  EXPECT_EQ(full.first_hole(), 3u);
  const BitRow empty = BitRow::from_string("000");
  EXPECT_EQ(empty.first_atom(), 3u);
}

TEST(BitRow, CompactionPrimitives) {
  const BitRow row = BitRow::from_string("0101001");
  EXPECT_EQ(row.compacted().to_string(), "1110000");
  EXPECT_EQ(row.compaction_displacements(), (std::vector<std::uint32_t>{1, 2, 4}));
}

TEST(BitRow, Reversed) {
  const BitRow row = BitRow::from_string("1100101");
  EXPECT_EQ(row.reversed().to_string(), "1010011");
  EXPECT_EQ(row.reversed().reversed(), row);
}

TEST(BitRow, SetPositionsAndForEach) {
  const BitRow row = BitRow::from_string("010010001");
  EXPECT_EQ(row.set_positions(), (std::vector<std::uint32_t>{1, 4, 8}));
  std::uint32_t sum = 0;
  row.for_each_set([&sum](std::uint32_t i) { sum += i; });
  EXPECT_EQ(sum, 13u);
}

TEST(BitRow, BitwiseOps) {
  BitRow a = BitRow::from_string("1100");
  const BitRow b = BitRow::from_string("1010");
  BitRow and_row = a;
  and_row &= b;
  EXPECT_EQ(and_row.to_string(), "1000");
  BitRow or_row = a;
  or_row |= b;
  EXPECT_EQ(or_row.to_string(), "1110");
  BitRow xor_row = a;
  xor_row ^= b;
  EXPECT_EQ(xor_row.to_string(), "0110");
  EXPECT_THROW(a &= BitRow(5), PreconditionError);
}

TEST(BitRow, FillAndTailMasking) {
  BitRow row(70);
  row.fill();
  EXPECT_EQ(row.count(), 70u);
  row.shift_toward_msb(1);
  EXPECT_EQ(row.count(), 69u) << "bits must not survive beyond width";
}

TEST(BitRow, AssignWords) {
  BitRow row(70);
  row.assign_words({~0ULL, ~0ULL});
  EXPECT_EQ(row.count(), 70u) << "tail bits beyond width must be masked";
  EXPECT_THROW(row.assign_words({1ULL}), PreconditionError);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, DeriveSeedSplitsIndependentStreams) {
  // Pure function of (master, stream) — no hidden state, no ordering.
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  // Distinct streams and distinct masters must not collide (spot-check a
  // window; SplitMix64 mixing makes collisions here astronomically unlikely).
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(42, stream));
    seeds.insert(derive_seed(43, stream));
  }
  EXPECT_EQ(seeds.size(), 2000u);
  // Stream 0 is a real derived stream, not the master passed through.
  EXPECT_NE(derive_seed(42, 0), 42u);
  // Derived streams look independent: adjacent streams share no obvious
  // low-bit structure (xor of neighbours is not constant).
  EXPECT_NE(derive_seed(42, 1) ^ derive_seed(42, 2), derive_seed(42, 2) ^ derive_seed(42, 3));
}

TEST(Rng, UniformBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = rng.uniform_below(10);
    ASSERT_LT(v, 10u);
    buckets[v]++;
  }
  for (const int b : buckets) EXPECT_NEAR(b, 1000, 250);
  EXPECT_EQ(rng.uniform_below(0), 0u);
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(stats::mean(xs), 5.0, 0.1);
  EXPECT_NEAR(stats::stddev(xs), 2.0, 0.1);
}

TEST(Rng, PoissonMoments) {
  Rng rng(17);
  std::vector<double> small(20000);
  for (auto& x : small) x = rng.poisson(3.0);
  EXPECT_NEAR(stats::mean(small), 3.0, 0.15);
  std::vector<double> large(20000);
  for (auto& x : large) x = rng.poisson(200.0);
  EXPECT_NEAR(stats::mean(large), 200.0, 1.5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Fnv, HashTextMatchesTheMixingPrimitivesAndSeparatesInputs) {
  // hash_text is the one-shot form of mix_text over the offset basis —
  // shard assignment and cache keys both depend on this staying true.
  std::uint64_t manual = fnv::kOffset;
  fnv::mix_text(manual, "paper-fig7");
  EXPECT_EQ(fnv::hash_text("paper-fig7"), manual);

  EXPECT_EQ(fnv::hash_text("abc"), fnv::hash_text("abc"));
  EXPECT_NE(fnv::hash_text("abc"), fnv::hash_text("abd"));
  EXPECT_NE(fnv::hash_text(""), fnv::hash_text("a"));
  // Length prefixing keeps concatenation ambiguity out of the key space.
  EXPECT_NE(fnv::hash_text("ab"), fnv::hash_text("a"));
}

TEST(Stats, Basics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(stats::min(xs), 1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 5.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 5.0);
  EXPECT_EQ(stats::mean({}), 0.0);
}

TEST(Stats, EmptySpanExtremaThrow) {
  // min/max of an empty sample used to silently return +/-infinity, leaking
  // "inf" into CSV/bench summaries; they are precondition-checked now.
  EXPECT_THROW((void)stats::min({}), PreconditionError);
  EXPECT_THROW((void)stats::max({}), PreconditionError);
  EXPECT_THROW((void)stats::percentile({}, 50.0), PreconditionError);
  EXPECT_EQ(stats::summarize({}), "n=0");
}

TEST(Stats, SortedSampleMatchesFreeFunctions) {
  const std::vector<double> xs{9, 1, 7, 3, 5};
  const stats::SortedSample sample(xs);
  EXPECT_EQ(sample.size(), 5u);
  EXPECT_DOUBLE_EQ(sample.min(), stats::min(xs));
  EXPECT_DOUBLE_EQ(sample.max(), stats::max(xs));
  for (const double p : {0.0, 12.5, 50.0, 90.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(sample.percentile(p), stats::percentile(xs, p));
  EXPECT_DOUBLE_EQ(sample.median(), 5.0);
  const stats::SortedSample empty{std::span<const double>{}};
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.percentile(50.0), PreconditionError);
  EXPECT_THROW((void)empty.min(), PreconditionError);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.5 * i + 2.0);
  }
  const auto fit = stats::linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(Csv, WritesHeaderRowsAndEscapes) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"a", "b"});
  csv.row(1, "plain");
  csv.row(2.5, "needs,quote");
  csv.row(3, "has\"quote");
  EXPECT_EQ(os.str(), "a,b\n1,plain\n2.5,\"needs,quote\"\n3,\"has\"\"quote\"\n");
  EXPECT_EQ(csv.rows_written(), 3u);
}

TEST(Csv, HeaderAfterRowsRejected) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row(1);
  EXPECT_THROW(csv.header({"late"}), PreconditionError);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   value"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_time_us(0.5), "500 ns");
  EXPECT_EQ(fmt_time_us(12.345), "12.35 us");
  EXPECT_EQ(fmt_time_us(2500.0), "2.50 ms");
  EXPECT_EQ(fmt_speedup(54.21), "54.2x");
  EXPECT_EQ(fmt_speedup(300.4), "300x");
  EXPECT_EQ(fmt_percent(0.0631), "6.31%");
}

}  // namespace
}  // namespace qrm

#include "moves/dead_channels.hpp"

#include <algorithm>

namespace qrm {

bool DeadChannelMask::row_dead(std::int32_t row) const noexcept {
  return std::binary_search(rows.begin(), rows.end(), row);
}

bool DeadChannelMask::col_dead(std::int32_t col) const noexcept {
  return std::binary_search(cols.begin(), cols.end(), col);
}

OccupancyGrid mask_dead_lines(const OccupancyGrid& grid, const DeadChannelMask& mask) {
  OccupancyGrid out = grid;
  for (const std::int32_t row : mask.rows) {
    if (row < 0 || row >= out.height()) continue;
    for (std::int32_t col = 0; col < out.width(); ++col) out.clear({row, col});
  }
  for (const std::int32_t col : mask.cols) {
    if (col < 0 || col >= out.width()) continue;
    for (std::int32_t row = 0; row < out.height(); ++row) out.clear({row, col});
  }
  return out;
}

}  // namespace qrm

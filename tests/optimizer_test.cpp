// Tests for schedule coalescing and equivalence checking.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/planner.hpp"
#include "loading/loader.hpp"
#include "moves/optimizer.hpp"
#include "testutil.hpp"

namespace qrm {
namespace {

TEST(Coalesce, MergesAConsecutiveGroupRide) {
  // One atom pushed west three times in three unit commands.
  OccupancyGrid g(1, 5);
  g.set({0, 4});
  Schedule s;
  s.push_back({Direction::West, 1, {{0, 4}}});
  s.push_back({Direction::West, 1, {{0, 3}}});
  s.push_back({Direction::West, 1, {{0, 2}}});
  const CoalesceResult result = coalesce_schedule(g, s);
  ASSERT_EQ(result.moves_after, 1u);
  EXPECT_EQ(result.schedule[0].steps, 3);
  EXPECT_EQ(result.commands_saved(), 2u);
  EXPECT_TRUE(schedules_equivalent(g, s, result.schedule));
}

TEST(Coalesce, MergesLockstepPairs) {
  OccupancyGrid g(2, 6);
  g.set({0, 4});
  g.set({1, 4});
  Schedule s;
  s.push_back({Direction::West, 1, {{0, 4}, {1, 4}}});
  s.push_back({Direction::West, 1, {{0, 3}, {1, 3}}});
  const CoalesceResult result = coalesce_schedule(g, s);
  ASSERT_EQ(result.moves_after, 1u);
  EXPECT_EQ(result.schedule[0].steps, 2);
  EXPECT_EQ(result.schedule[0].sites.size(), 2u);
}

TEST(Coalesce, DoesNotMergeDifferentGroups) {
  OccupancyGrid g(2, 6);
  g.set({0, 4});
  g.set({1, 2});
  Schedule s;
  s.push_back({Direction::West, 1, {{0, 4}}});
  s.push_back({Direction::West, 1, {{1, 2}}});
  const CoalesceResult result = coalesce_schedule(g, s);
  EXPECT_EQ(result.moves_after, 2u);
}

TEST(Coalesce, DoesNotMergeAcrossDirectionChange) {
  OccupancyGrid g(3, 3);
  g.set({1, 2});
  Schedule s;
  s.push_back({Direction::West, 1, {{1, 2}}});
  s.push_back({Direction::North, 1, {{1, 1}}});
  const CoalesceResult result = coalesce_schedule(g, s);
  EXPECT_EQ(result.moves_after, 2u);
}

TEST(Coalesce, RespectsMaxSteps) {
  OccupancyGrid g(1, 8);
  g.set({0, 7});
  Schedule s;
  for (std::int32_t c = 7; c >= 4; --c) s.push_back({Direction::West, 1, {{0, c}}});
  CoalesceOptions options;
  options.max_steps = 2;
  const CoalesceResult result = coalesce_schedule(g, s, options);
  EXPECT_EQ(result.moves_after, 2u);
  for (const auto& m : result.schedule.moves()) EXPECT_LE(m.steps, 2);
  EXPECT_TRUE(schedules_equivalent(g, s, result.schedule));
}

TEST(Coalesce, ThrowsOnInvalidInputSchedule) {
  OccupancyGrid g(1, 4);  // no atoms at all
  Schedule s;
  s.push_back({Direction::West, 1, {{0, 2}}});
  EXPECT_THROW((void)coalesce_schedule(g, s), PreconditionError);
}

TEST(Coalesce, PlannerSchedulesStayEquivalentAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const OccupancyGrid initial = load_random(20, 20, {0.55, seed});
    const PlanResult plan = plan_qrm(initial, 12);
    const CoalesceResult result = coalesce_schedule(initial, plan.schedule);
    EXPECT_LE(result.moves_after, result.moves_before);
    EXPECT_TRUE(schedules_equivalent(initial, plan.schedule, result.schedule)) << seed;
    // The coalesced schedule must also replay cleanly under full checks.
    testutil::expect_replays_to(initial, result.schedule, plan.final_grid);
  }
}

TEST(SchedulesEquivalent, DetectsDivergence) {
  OccupancyGrid g(1, 4);
  g.set({0, 2});
  Schedule a;
  a.push_back({Direction::West, 1, {{0, 2}}});
  Schedule b;
  b.push_back({Direction::West, 2, {{0, 2}}});
  EXPECT_FALSE(schedules_equivalent(g, a, b));
  EXPECT_TRUE(schedules_equivalent(g, a, a));
  // Invalid schedule -> not equivalent to anything.
  Schedule bad;
  bad.push_back({Direction::East, 5, {{0, 2}}});
  EXPECT_FALSE(schedules_equivalent(g, a, bad));
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file common.hpp
/// Shared placement machinery for the non-quadrant baseline algorithms.
///
/// All three baselines ultimately realise the same *placement semantics* —
/// each target column is promised enough donor atoms across rows (balance),
/// then each column stacks its atoms over the target band (compression) —
/// because that is the published recipe family they belong to. They differ
/// in how the analysis is computed and at what granularity moves are
/// issued, which is what the Fig. 7(b) latency comparison measures.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "moves/realizer.hpp"

namespace qrm::baselines {

/// Full-line placement that fills the band [band_start, band_start+band_size)
/// while preserving atom order, parking surplus atoms above/below the band
/// as close to their original positions as allowed. When fewer than
/// band_size atoms exist, fills the band from its start (partial).
/// Returns the ascending target positions for the line's atoms (same count).
[[nodiscard]] std::vector<std::int32_t> band_targets(const std::vector<std::int32_t>& atoms,
                                                     std::int32_t band_start,
                                                     std::int32_t band_size,
                                                     std::int32_t line_length);

/// Balanced horizontal placement for the whole grid (non-quadrant): every
/// target column is granted `target.rows` donors via the largest-remaining-
/// capacity greedy; each row's full placement keeps unchosen atoms as close
/// to their original columns as possible.
struct GlobalPlacement {
  std::vector<LineAssignment> row_assignments;  ///< one per row with motion
  bool feasible = true;
  std::int64_t shortfall = 0;
};
[[nodiscard]] GlobalPlacement compute_balanced_placement(const OccupancyGrid& grid,
                                                         const Region& target);

/// Column-band assignments for the vertical phase (after the horizontal
/// placement): every column stacks its atoms over the target row band.
[[nodiscard]] std::vector<LineAssignment> compute_band_columns(const OccupancyGrid& grid,
                                                               const Region& target);

/// Finish a PlanResult: stats from the final state.
void finalize_stats(PlanResult& result, const Region& target);

}  // namespace qrm::baselines

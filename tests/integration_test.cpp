// Cross-module integration properties: image -> detection -> planner ->
// executor -> AWG across a parameter grid, and hardware/software agreement
// under the full workflow.

#include <gtest/gtest.h>

#include <tuple>

#include "util/assert.hpp"
#include "awg/waveform.hpp"
#include "baselines/algorithm.hpp"
#include "core/planner.hpp"
#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "hwmodel/accelerator.hpp"
#include "loading/loader.hpp"
#include "moves/executor.hpp"
#include "resources/model.hpp"

namespace qrm {
namespace {

using Param = std::tuple<std::int32_t /*size*/, double /*fill*/, std::uint64_t /*seed*/>;

class FullPipelineSweep : public ::testing::TestWithParam<Param> {};

TEST_P(FullPipelineSweep, ImageToDefectFreeArray) {
  const auto [size, fill, seed] = GetParam();
  const OccupancyGrid truth = load_random(size, size, {fill, seed});

  // Image and detect (high SNR so the pipeline is exact).
  ImagingConfig imaging;
  imaging.photons_per_atom = 400.0;
  imaging.background_photons = 1.0;
  imaging.seed = seed;
  const FluorescenceImage image = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid detected = detect_atoms(image, size, size, det);
  ASSERT_EQ(compare_detection(truth, detected).total(), 0);

  // Plan on the detected grid.
  const std::int32_t target_size = size * 3 / 5 / 2 * 2;
  const PlanResult plan = plan_qrm(detected, target_size);

  // Execute on the *true* atoms (identical by exact detection).
  OccupancyGrid physical = truth;
  const ExecutionReport exec = run_schedule(physical, plan.schedule, {.check_aod = true});
  ASSERT_TRUE(exec.ok) << exec.error;
  if (plan.stats.feasible) {
    EXPECT_TRUE(physical.region_full(centered_square(size, target_size)));
  }

  // The AWG program covers the whole schedule.
  const awg::WaveformPlan awg_plan = awg::build_waveform_plan(plan.schedule, {});
  EXPECT_EQ(awg_plan.commands.size(), plan.schedule.size());
  if (!plan.schedule.empty()) {
    EXPECT_GT(awg_plan.total_duration_us, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FullPipelineSweep,
                         ::testing::Combine(::testing::Values<std::int32_t>(10, 16, 24),
                                            ::testing::Values(0.55, 0.7),
                                            ::testing::Values<std::uint64_t>(5, 6)));

TEST(Integration, DetectionErrorsChangeThePlanNotItsLegality) {
  const OccupancyGrid truth = load_random(24, 24, {0.55, 12});
  const OccupancyGrid noisy = inject_detection_errors(truth, 0.08, 0.02, 13);
  const PlanResult plan = plan_qrm(noisy, 14);
  // The schedule is legal with respect to what was detected...
  OccupancyGrid replay = noisy;
  EXPECT_TRUE(run_schedule(replay, plan.schedule, {.check_aod = true}).ok);
  // ...but executing it on reality can fail (missed atoms block paths,
  // phantom atoms never move). That mismatch is detected, not silent.
  OccupancyGrid physical = truth;
  const ExecutionReport exec = run_schedule(physical, plan.schedule, {.check_aod = true});
  // Either it happens to work or the executor reports the first conflict.
  if (!exec.ok) {
    EXPECT_FALSE(exec.error.empty());
  }
}

TEST(Integration, AcceleratorLatencyBeatsEveryCpuBaselineStructurally) {
  // Fig. 7(b) ordering at the structural level: command analysis on the
  // accelerator takes ~hundreds of cycles; CPU baselines take at least tens
  // of microseconds of real work on this machine.
  const OccupancyGrid initial = load_random(20, 20, {0.55, 77});
  const Region target = centered_square(20, 12);

  hw::AcceleratorConfig config;
  config.plan.target = target;
  const double fpga_us = hw::QrmAccelerator(config).run(initial).latency_us;
  EXPECT_LT(fpga_us, 5.0);

  for (const auto& name : baselines::algorithm_names()) {
    const auto algo = baselines::make_algorithm(name);
    const PlanResult result = algo->plan(initial, target);
    EXPECT_FALSE(result.schedule.empty()) << name;
  }
}

TEST(Integration, ResourceModelCoversBenchSizes) {
  for (const std::int32_t w : {10, 30, 50, 70, 90}) {
    const auto usage = res::estimate_accelerator(w);
    EXPECT_TRUE(res::fits(usage, res::zcu216(), 0.5));
  }
}

TEST(Integration, SeedsGiveIndependentWorkloadsButStableResults) {
  // Same seed -> identical plan; different seed -> different plan (almost
  // surely), both valid.
  const OccupancyGrid a1 = load_random(20, 20, {0.5, 100});
  const OccupancyGrid a2 = load_random(20, 20, {0.5, 100});
  const OccupancyGrid b = load_random(20, 20, {0.5, 101});
  const PlanResult plan_a1 = plan_qrm(a1, 12);
  const PlanResult plan_a2 = plan_qrm(a2, 12);
  const PlanResult plan_b = plan_qrm(b, 12);
  EXPECT_EQ(plan_a1.schedule, plan_a2.schedule);
  EXPECT_NE(a1, b);
  OccupancyGrid replay = b;
  EXPECT_TRUE(run_schedule(replay, plan_b.schedule, {.check_aod = true}).ok);
}

}  // namespace
}  // namespace qrm

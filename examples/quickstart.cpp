/// \file quickstart.cpp
/// Minimal end-to-end use of the library: load a stochastic 20x20 atom
/// array, plan a defect-free 12x12 centre target with QRM, execute the
/// schedule, and show the result.
///
///   $ ./examples/quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/planner.hpp"
#include "loading/loader.hpp"
#include "moves/executor.hpp"

int main(int argc, char** argv) {
  using namespace qrm;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Stochastic loading: each optical trap captures an atom with ~55%
  //    probability (the experiment reloads until enough atoms are present).
  const OccupancyGrid initial = load_random(20, 20, {0.55, seed});
  const Region target = centered_square(20, 12);
  std::printf("Initial load (%lld atoms, target needs %lld):\n%s\n",
              static_cast<long long>(initial.atom_count()),
              static_cast<long long>(target.area()), initial.to_art(target).c_str());

  // 2. Plan with QRM (quadrant split + balanced placement + merged
  //    commands). The result carries the schedule, the predicted final
  //    occupancy, and per-pass statistics.
  const PlanResult plan = plan_qrm(initial, 12);
  const ScheduleStats stats = plan.schedule.stats();
  std::printf("Planned %zu parallel moves (%zu atom moves, mean parallelism %.1f)\n",
              stats.parallel_moves, stats.atom_moves, stats.mean_parallelism);
  std::printf("Passes: %zu, target filled: %s\n\n", plan.stats.passes.size(),
              plan.stats.target_filled ? "yes" : "no");

  // 3. Execute the schedule with full physical validation (collision
  //    freedom and the AOD cross-product rule).
  OccupancyGrid state = initial;
  const ExecutionReport report = run_schedule(state, plan.schedule, {.check_aod = true});
  if (!report.ok) {
    std::printf("execution failed: %s\n", report.error.c_str());
    return 1;
  }
  std::printf("After executing %zu moves:\n%s\n", report.moves_applied,
              state.to_art(target).c_str());
  std::printf("Defect-free target: %s\n", state.region_full(target) ? "YES" : "no");
  return state.region_full(target) ? 0 : 1;
}

#include "baselines/tetris.hpp"

#include "baselines/common.hpp"
#include "moves/realizer.hpp"

namespace qrm::baselines {

PlanResult TetrisAlgorithm::plan(const OccupancyGrid& initial, const Region& target) const {
  PlanResult result;
  result.final_grid = initial;
  OccupancyGrid& state = result.final_grid;

  const RealizeOptions realize_options{options_.aod_legalize};

  // Phase 1: balance — grant every target column enough donors, then place
  // each row (horizontal multi-tweezer rounds).
  const GlobalPlacement placement = compute_balanced_placement(state, target);
  result.stats.feasible = placement.feasible;
  if (!placement.row_assignments.empty()) {
    PassInfo info;
    info.axis = Axis::Rows;
    info.lines_with_motion = placement.row_assignments.size();
    const RealizeResult rr = realize_assignments(state, Axis::Rows, placement.row_assignments,
                                                 result.schedule, realize_options);
    info.unit_rounds = rr.rounds_toward_origin + rr.rounds_away;
    info.atoms_moved = rr.atoms_moved;
    result.stats.passes.push_back(info);
  }

  // Phase 2: compression — stack every column over the target band
  // (vertical multi-tweezer rounds).
  const std::vector<LineAssignment> columns = compute_band_columns(state, target);
  if (!columns.empty()) {
    PassInfo info;
    info.axis = Axis::Cols;
    info.lines_with_motion = columns.size();
    const RealizeResult rr =
        realize_assignments(state, Axis::Cols, columns, result.schedule, realize_options);
    info.unit_rounds = rr.rounds_toward_origin + rr.rounds_away;
    info.atoms_moved = rr.atoms_moved;
    result.stats.passes.push_back(info);
  }

  result.stats.iterations = 1;
  finalize_stats(result, target);
  return result;
}

}  // namespace qrm::baselines

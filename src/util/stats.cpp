#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/assert.hpp"

namespace qrm::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  return SortedSample(xs).percentile(p);
}

double min(std::span<const double> xs) {
  QRM_EXPECTS(!xs.empty());
  double best = xs.front();
  for (const double x : xs) best = std::min(best, x);
  return best;
}

double max(std::span<const double> xs) {
  QRM_EXPECTS(!xs.empty());
  double best = xs.front();
  for (const double x : xs) best = std::max(best, x);
  return best;
}

SortedSample::SortedSample(std::span<const double> xs) : sorted_(xs.begin(), xs.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double SortedSample::percentile(double p) const {
  QRM_EXPECTS(!sorted_.empty());
  QRM_EXPECTS(p >= 0.0 && p <= 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SortedSample::min() const {
  QRM_EXPECTS(!sorted_.empty());
  return sorted_.front();
}

double SortedSample::max() const {
  QRM_EXPECTS(!sorted_.empty());
  return sorted_.back();
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  QRM_EXPECTS(xs.size() == ys.size());
  QRM_EXPECTS(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (sxx > 0.0 && syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

std::string summarize(std::span<const double> xs) {
  if (xs.empty()) return "n=0";
  std::ostringstream os;
  os << "mean=" << mean(xs) << " sd=" << stddev(xs) << " min=" << min(xs) << " max=" << max(xs)
     << " n=" << xs.size();
  return os.str();
}

}  // namespace qrm::stats

#include "hwmodel/axi.hpp"

#include "util/assert.hpp"

namespace qrm::hw {

std::vector<AxiPacket> pack_grid(const OccupancyGrid& grid, std::uint32_t packet_bits) {
  QRM_EXPECTS_MSG(packet_bits > 0 && packet_bits % 64 == 0,
                  "packet width must be a positive multiple of 64");
  const std::uint32_t words_per_packet = packet_bits / 64;
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(grid.height()) * static_cast<std::uint64_t>(grid.width());
  const std::uint64_t packet_count = (total_bits + packet_bits - 1) / packet_bits;

  std::vector<AxiPacket> packets(packet_count);
  for (auto& p : packets) p.words.assign(words_per_packet, 0);

  std::uint64_t bit_cursor = 0;
  for (std::int32_t r = 0; r < grid.height(); ++r) {
    const BitRow& row = grid.row(r);
    for (std::uint32_t c = 0; c < row.width(); ++c, ++bit_cursor) {
      if (!row.test(c)) continue;
      const std::uint64_t packet_index = bit_cursor / packet_bits;
      const std::uint64_t bit_in_packet = bit_cursor % packet_bits;
      packets[packet_index].words[bit_in_packet / 64] |= std::uint64_t{1} << (bit_in_packet % 64);
    }
  }
  return packets;
}

OccupancyGrid unpack_grid(const std::vector<AxiPacket>& packets, std::int32_t height,
                          std::int32_t width, std::uint32_t packet_bits) {
  QRM_EXPECTS(packet_bits > 0 && packet_bits % 64 == 0);
  QRM_EXPECTS(height >= 0 && width >= 0);
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(height) * static_cast<std::uint64_t>(width);
  QRM_EXPECTS_MSG(static_cast<std::uint64_t>(packets.size()) * packet_bits >= total_bits,
                  "not enough packets for the requested grid shape");

  OccupancyGrid grid(height, width);
  for (std::uint64_t bit = 0; bit < total_bits; ++bit) {
    const AxiPacket& p = packets[bit / packet_bits];
    const std::uint64_t bit_in_packet = bit % packet_bits;
    const bool set = (p.words[bit_in_packet / 64] >> (bit_in_packet % 64)) & 1U;
    if (set) {
      grid.set({static_cast<std::int32_t>(bit / static_cast<std::uint64_t>(width)),
                static_cast<std::int32_t>(bit % static_cast<std::uint64_t>(width))});
    }
  }
  return grid;
}

}  // namespace qrm::hw

#pragma once
/// \file stopwatch.hpp
/// Wall-clock timing helpers for CPU-side latency measurements.

#include <chrono>
#include <cstddef>

namespace qrm {

/// Monotonic stopwatch, running from construction or the last reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_microseconds() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Run `fn` `repeats` times and return the *best* (minimum) duration in
/// microseconds. Best-of-N is the standard low-noise latency estimator for
/// short deterministic kernels like rearrangement analysis.
template <typename Fn>
[[nodiscard]] double best_of_microseconds(std::size_t repeats, Fn&& fn) {
  double best = 1e300;
  for (std::size_t i = 0; i < repeats; ++i) {
    Stopwatch sw;
    fn();
    const double t = sw.elapsed_microseconds();
    if (t < best) best = t;
  }
  return best;
}

}  // namespace qrm

#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace qrm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::cerr << "[qrm:" << tag(level) << "] " << message << '\n';
}

}  // namespace qrm

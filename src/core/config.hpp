#pragma once
/// \file config.hpp
/// Configuration and result types of the QRM planner.

#include <cstdint>
#include <vector>

#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "moves/realizer.hpp"
#include "moves/schedule.hpp"

namespace qrm {

/// Per-quadrant scheduling strategy.
enum class PlanMode : std::uint8_t {
  /// Paper-literal iterated row-wise/column-wise inward compaction — exactly
  /// what the described Shift Kernel computes. Fills the target only when
  /// the post-compaction Young-diagram occupancy covers it (small targets or
  /// high fill); see DESIGN.md for the analysis.
  Compact,
  /// Demand-balanced assignment (one row-scan balance pass) followed by
  /// column compaction. Guaranteed to fill whenever each quadrant holds
  /// enough reachable atoms. Default, and what the 30x30-from-50x50
  /// experiment requires.
  Balanced,
};

[[nodiscard]] constexpr const char* to_cstring(PlanMode m) noexcept {
  return m == PlanMode::Compact ? "compact" : "balanced";
}

struct QrmConfig {
  /// Global target region; must be even-sized and centred so each quadrant
  /// owns exactly one quarter of it.
  Region target;
  PlanMode mode = PlanMode::Balanced;
  /// Compact-mode iteration cap (one iteration = one H pass + one V pass).
  /// The paper reports four iterations for its 50x50 experiment.
  std::int32_t max_iterations = 4;
  /// Merge the four quadrants' shift commands into shared global rounds
  /// (paper Sec. IV-C: NW+SW west-side shifts and NE+SE east-side shifts
  /// execute as single commands). Disable to study the ablation.
  bool merge_quadrants = true;
  /// Split every round into AOD-legal sub-moves (cross-product rule).
  bool aod_legalize = true;
  /// The kernel's manual shift-enable gate: local positions >= sen_limit
  /// never shift ("prevent unnecessary shifts far from the center").
  /// Negative disables gating.
  std::int32_t sen_limit = -1;
};

/// What one line-scan pass over the quadrants did (used by the cycle model
/// to account hardware time pass-by-pass).
struct PassInfo {
  Axis axis = Axis::Rows;
  std::size_t lines_with_motion = 0;  ///< line assignments emitted
  std::size_t unit_rounds = 0;        ///< single-step shift rounds executed
  std::size_t atoms_moved = 0;

  friend bool operator==(const PassInfo&, const PassInfo&) = default;
};

struct PlanStats {
  std::int32_t iterations = 0;  ///< compact iterations used (balanced: 1)
  bool target_filled = false;
  std::int64_t defects_remaining = 0;
  bool feasible = true;  ///< balanced mode: demand was satisfiable
  std::vector<PassInfo> passes;

  friend bool operator==(const PlanStats&, const PlanStats&) = default;
};

struct PlanResult {
  Schedule schedule;
  OccupancyGrid final_grid;
  PlanStats stats;

  /// Bit-level equality over every field — what "a cache hit is
  /// indistinguishable from a cold plan" means (batch::PlanCache).
  friend bool operator==(const PlanResult&, const PlanResult&) = default;
};

}  // namespace qrm

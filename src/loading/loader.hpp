#pragma once
/// \file loader.hpp
/// Stochastic atom-loading models.
///
/// Physically, each optical trap captures a single atom with probability
/// ~50% (collisional blockade). The paper evaluates on random matrices drawn
/// from exactly this distribution; these generators reproduce that workload
/// plus structured variants used for stress tests.

#include <cstdint>

#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "util/rng.hpp"

namespace qrm {

/// Parameters of the independent-Bernoulli loading model.
struct LoaderConfig {
  double fill_probability = 0.5;  ///< per-trap capture probability in [0,1]
  std::uint64_t seed = 0x5EED;    ///< RNG seed; same seed -> same pattern
};

/// Draw an independent Bernoulli occupancy for every trap.
[[nodiscard]] OccupancyGrid load_random(std::int32_t height, std::int32_t width,
                                        const LoaderConfig& config);

/// Like load_random but retries (with derived seeds) until the grid holds at
/// least `min_atoms` atoms; models the experimental practice of re-loading
/// until enough atoms are present. Gives up after `max_attempts` and returns
/// the best attempt.
[[nodiscard]] OccupancyGrid load_random_at_least(std::int32_t height, std::int32_t width,
                                                 const LoaderConfig& config,
                                                 std::int64_t min_atoms,
                                                 std::uint32_t max_attempts = 64);

/// Clustered-defect loader: Bernoulli loading followed by `clusters` circular
/// blast regions of radius `cluster_radius` being emptied. Models correlated
/// loss (stray light, collisions) that stresses rearrangement balance.
struct ClusteredLoaderConfig {
  LoaderConfig base;
  std::uint32_t clusters = 3;
  std::int32_t cluster_radius = 2;
};
[[nodiscard]] OccupancyGrid load_clustered(std::int32_t height, std::int32_t width,
                                           const ClusteredLoaderConfig& config);

/// Which way a gradient loading profile ramps.
enum class GradientAxis : std::uint8_t {
  Rows,  ///< fill probability varies with the row index (top -> bottom)
  Cols,  ///< fill probability varies with the column index (left -> right)
};

/// Linear fill-probability ramp: independent Bernoulli loading whose
/// per-trap probability interpolates from `start_fill` at the first
/// row/column to `end_fill` at the last. Models spatially non-uniform trap
/// depth (beam-profile falloff across the array), a workload family the
/// uniform/clustered loaders cannot express: one side of the array is
/// atom-rich and the other atom-poor, which maximally stresses the
/// planner's cross-array balance.
struct GradientLoaderConfig {
  double start_fill = 0.2;           ///< fill probability at row/col 0, in [0,1]
  double end_fill = 0.8;             ///< fill probability at the last row/col, in [0,1]
  GradientAxis axis = GradientAxis::Rows;
  std::uint64_t seed = 0x5EED;       ///< RNG seed; same seed -> same pattern
};
[[nodiscard]] OccupancyGrid load_gradient(std::int32_t height, std::int32_t width,
                                          const GradientLoaderConfig& config);

/// Deterministic patterns for unit tests and worst-case studies.
enum class Pattern {
  Full,          ///< every trap occupied
  Empty,         ///< no atoms
  Checkerboard,  ///< (r+c) even occupied — exactly 50% fill, adversarial for row balance
  RowStripes,    ///< even rows full, odd rows empty — worst case for column balance
  ColStripes,    ///< even columns full — worst case for row compaction
  Border,        ///< only the outermost ring occupied — maximal travel distance
  CornerBlock,   ///< top-left ceil(H/2) x ceil(W/2) block full — every atom in one
                 ///< quadrant, the worst case for cross-quadrant balance passes
  HalfGrid,      ///< top ceil(H/2) rows full — maximal one-directional rebalance
};
[[nodiscard]] OccupancyGrid load_pattern(std::int32_t height, std::int32_t width, Pattern pattern);

/// Probability that a Bernoulli(p) load of a height x width grid yields at
/// least `needed` atoms, from `trials` Monte-Carlo draws. Used to size
/// experiments so rearrangement is feasible.
[[nodiscard]] double estimate_feasibility(std::int32_t height, std::int32_t width, double p,
                                          std::int64_t needed, std::uint32_t trials,
                                          std::uint64_t seed);

}  // namespace qrm

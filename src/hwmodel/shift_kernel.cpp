#include "hwmodel/shift_kernel.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace qrm::hw {

ShiftKernel::ShiftKernel(std::string name, Fifo<RowBeat>& in, Fifo<CommandBeat>& out,
                         std::int32_t sen_limit)
    : Module(std::move(name)), in_(in), out_(out), sen_limit_(sen_limit) {}

void ShiftKernel::eval(std::uint64_t cycle) {
  // 1. Advance every in-flight scan by one bit position.
  std::vector<Scan> still_running;
  still_running.reserve(in_flight_.size());
  for (Scan& scan : in_flight_) {
    const std::uint32_t width = scan.original.width();
    const bool gated =
        sen_limit_ >= 0 && scan.bit_index >= static_cast<std::uint32_t>(sen_limit_);
    const bool bit_set = width != 0 && scan.shifting.test(0);
    if (!bit_set && !gated && scan.bit_index < width) {
      scan.commands.set(scan.bit_index);  // "record whether the shifted value is 0"
    }
    scan.shifting.shift_toward_lsb(1);
    ++scan.bit_index;

    if (trace_enabled_) {
      std::ostringstream os;
      os << "cycle " << cycle << ": " << name() << " row " << scan.line << " bit "
         << (scan.bit_index - 1) << " = " << (bit_set ? '1' : '0')
         << (gated ? " (gated)" : (bit_set ? " -> column buffer" : " -> shift command"));
      trace_.push_back(os.str());
    }

    if (scan.bit_index >= width) {
      // Scan complete: emit the command beat. Empty shifts are removed from
      // the record count (atoms with zero displacement produce no record).
      CommandBeat beat;
      beat.line = scan.line;
      beat.original = scan.original;
      beat.commands = scan.commands;
      if (scan.records_override >= 0) {
        beat.records = static_cast<std::uint32_t>(scan.records_override);
      } else {
        std::uint32_t records = 0;
        std::uint32_t holes = 0;
        for (std::uint32_t i = 0; i < width; ++i) {
          const bool gated_pos =
              sen_limit_ >= 0 && i >= static_cast<std::uint32_t>(sen_limit_);
          if (gated_pos) break;  // gate: no commands and no records beyond it
          if (scan.commands.test(i)) {
            ++holes;
          } else if (scan.original.test(i) && holes > 0) {
            ++records;
          }
        }
        beat.records = records;
      }
      QRM_ENSURES_MSG(out_.can_push(), "shift kernel output FIFO overflow");
      out_.push(std::move(beat));
      ++rows_processed_;
    } else {
      still_running.push_back(std::move(scan));
    }
  }
  in_flight_ = std::move(still_running);

  // 2. Admit at most one new row per cycle (fully pipelined input).
  if (in_.can_pop()) {
    RowBeat beat = in_.pop();
    Scan scan{beat.line, beat.bits, beat.bits, BitRow(beat.bits.width()), 0,
              beat.records_override};
    if (trace_enabled_) {
      std::ostringstream os;
      os << "cycle " << cycle << ": " << name() << " admits row " << beat.line << " ("
         << beat.bits.to_string() << ")";
      trace_.push_back(os.str());
    }
    in_flight_.push_back(std::move(scan));
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_.size());
  }
}

bool ShiftKernel::busy() const { return !in_flight_.empty() || in_.can_pop(); }

}  // namespace qrm::hw

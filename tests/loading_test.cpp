// Tests for the stochastic loading substrate.

#include <gtest/gtest.h>

#include <limits>

#include "util/assert.hpp"
#include "loading/loader.hpp"

namespace qrm {
namespace {

TEST(Loader, DeterministicPerSeed) {
  const OccupancyGrid a = load_random(20, 20, {0.5, 42});
  const OccupancyGrid b = load_random(20, 20, {0.5, 42});
  EXPECT_EQ(a, b);
  const OccupancyGrid c = load_random(20, 20, {0.5, 43});
  EXPECT_NE(a, c);
}

TEST(Loader, FillFractionConcentrates) {
  const OccupancyGrid g = load_random(100, 100, {0.5, 1});
  const double fill = static_cast<double>(g.atom_count()) / (100.0 * 100.0);
  EXPECT_NEAR(fill, 0.5, 0.03);
  const OccupancyGrid h = load_random(100, 100, {0.9, 2});
  EXPECT_NEAR(static_cast<double>(h.atom_count()) / 1e4, 0.9, 0.02);
}

TEST(Loader, ExtremesAreExact) {
  EXPECT_EQ(load_random(10, 10, {0.0, 3}).atom_count(), 0);
  EXPECT_EQ(load_random(10, 10, {1.0, 3}).atom_count(), 100);
  EXPECT_THROW((void)load_random(10, 10, {1.5, 3}), PreconditionError);
}

TEST(Loader, OutOfRangeProbabilitiesThrowEverywhere) {
  // Every loader family must reject an out-of-[0,1] (or NaN) probability
  // instead of silently skewing the sample (mirrors the stats::min/max
  // empty-span hardening).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)load_random(4, 4, {-0.1, 3}), PreconditionError);
  EXPECT_THROW((void)load_random(4, 4, {nan, 3}), PreconditionError);
  EXPECT_THROW((void)load_random_at_least(4, 4, {1.5, 3}, 1), PreconditionError);
  EXPECT_THROW((void)load_random_at_least(4, 4, {0.5, 3}, -1), PreconditionError);
  ClusteredLoaderConfig clustered;
  clustered.base = {2.0, 3};
  EXPECT_THROW((void)load_clustered(4, 4, clustered), PreconditionError);
  clustered.base = {0.5, 3};
  clustered.cluster_radius = -1;
  EXPECT_THROW((void)load_clustered(4, 4, clustered), PreconditionError);
  GradientLoaderConfig gradient;
  gradient.start_fill = -0.01;
  EXPECT_THROW((void)load_gradient(4, 4, gradient), PreconditionError);
  gradient.start_fill = 0.2;
  gradient.end_fill = 1.01;
  EXPECT_THROW((void)load_gradient(4, 4, gradient), PreconditionError);
  EXPECT_THROW((void)estimate_feasibility(4, 4, nan, 1, 4, 9), PreconditionError);
}

TEST(Loader, GradientIsDeterministicAndRamps) {
  GradientLoaderConfig config;
  config.start_fill = 0.1;
  config.end_fill = 0.9;
  config.seed = 77;
  const OccupancyGrid a = load_gradient(64, 64, config);
  const OccupancyGrid b = load_gradient(64, 64, config);
  EXPECT_EQ(a, b);

  // The top third of the rows must be markedly emptier than the bottom
  // third (expected fills ~0.23 vs ~0.77 over 64*21 trap draws).
  std::int64_t top = 0;
  std::int64_t bottom = 0;
  for (std::int32_t r = 0; r < 21; ++r) top += a.row(r).count();
  for (std::int32_t r = 43; r < 64; ++r) bottom += a.row(r).count();
  EXPECT_LT(top * 2, bottom);

  // Column ramp: same statistics, transposed.
  config.axis = GradientAxis::Cols;
  const OccupancyGrid c = load_gradient(64, 64, config);
  std::int64_t left = 0;
  std::int64_t right = 0;
  for (std::int32_t r = 0; r < 64; ++r) {
    for (std::int32_t col = 0; col < 21; ++col) left += c.occupied({r, col}) ? 1 : 0;
    for (std::int32_t col = 43; col < 64; ++col) right += c.occupied({r, col}) ? 1 : 0;
  }
  EXPECT_LT(left * 2, right);
}

TEST(Loader, GradientExtremesAndDegenerateSpans) {
  EXPECT_EQ(load_gradient(8, 8, {0.0, 0.0, GradientAxis::Rows, 1}).atom_count(), 0);
  EXPECT_EQ(load_gradient(8, 8, {1.0, 1.0, GradientAxis::Cols, 1}).atom_count(), 64);
  // One row: no ramp to interpolate; behaves like Bernoulli(start_fill).
  EXPECT_EQ(load_gradient(1, 16, {1.0, 0.0, GradientAxis::Rows, 1}).atom_count(), 16);
  EXPECT_EQ(load_gradient(0, 0, {0.3, 0.7, GradientAxis::Rows, 1}).atom_count(), 0);
}

TEST(Loader, GradientEndpointLinesAreExactAtExtremeFills) {
  // A 0.0 or 1.0 endpoint fill must be honoured *exactly* on the endpoint
  // line, for every seed. The interpolated form start + (end-start)*t can
  // land one ulp off at t=1, turning "always load" into a ~1e-16 chance of
  // a hole — this pins the endpoint-exactness fix.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const OccupancyGrid up = load_gradient(48, 8, {0.0, 1.0, GradientAxis::Rows, seed});
    EXPECT_EQ(up.row(0).count(), 0u) << "seed " << seed;
    EXPECT_EQ(up.row(47).count(), 8u) << "seed " << seed;
    const OccupancyGrid down = load_gradient(48, 8, {1.0, 0.0, GradientAxis::Rows, seed});
    EXPECT_EQ(down.row(0).count(), 8u) << "seed " << seed;
    EXPECT_EQ(down.row(47).count(), 0u) << "seed " << seed;
  }
}

TEST(Loader, ClusteredDegenerateFills) {
  // Blast regions on an already-empty grid stay a no-op; a full grid with
  // zero clusters stays full; a 1xN strip with a blast region bigger than
  // the strip empties completely. None of these may throw or over/underfill.
  ClusteredLoaderConfig config;
  config.base = {0.0, 7};
  config.clusters = 4;
  config.cluster_radius = 3;
  EXPECT_EQ(load_clustered(12, 12, config).atom_count(), 0);
  config.base = {1.0, 7};
  config.clusters = 0;
  EXPECT_EQ(load_clustered(12, 12, config).atom_count(), 144);
  config.clusters = 8;
  config.cluster_radius = 16;
  EXPECT_EQ(load_clustered(1, 12, config).atom_count(), 0);
}

TEST(Loader, AtLeastRetriesUntilEnough) {
  // Demand slightly above the mean so the first draw sometimes misses.
  const OccupancyGrid g = load_random_at_least(20, 20, {0.5, 9}, 205);
  EXPECT_GE(g.atom_count(), 205);
}

TEST(Loader, AtLeastReturnsBestEffortWhenImpossible) {
  const OccupancyGrid g = load_random_at_least(4, 4, {0.5, 9}, 1000, 4);
  EXPECT_LT(g.atom_count(), 1000);
  EXPECT_GT(g.atom_count(), 0);
}

TEST(Loader, ClusteredRemovesAtoms) {
  ClusteredLoaderConfig config;
  config.base = {0.9, 5};
  config.clusters = 4;
  config.cluster_radius = 3;
  const OccupancyGrid g = load_clustered(30, 30, config);
  const OccupancyGrid base = load_random(30, 30, config.base);
  EXPECT_LT(g.atom_count(), base.atom_count());
}

TEST(Loader, Patterns) {
  EXPECT_EQ(load_pattern(4, 4, Pattern::Full).atom_count(), 16);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Empty).atom_count(), 0);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Checkerboard).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::RowStripes).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::ColStripes).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Border).atom_count(), 12);
  // CornerBlock: the top-left ceil(H/2) x ceil(W/2) block, exact on odd dims.
  EXPECT_EQ(load_pattern(4, 4, Pattern::CornerBlock).atom_count(), 4);
  EXPECT_EQ(load_pattern(5, 5, Pattern::CornerBlock).atom_count(), 9);
  EXPECT_TRUE(load_pattern(4, 4, Pattern::CornerBlock).occupied({1, 1}));
  EXPECT_FALSE(load_pattern(4, 4, Pattern::CornerBlock).occupied({2, 1}));
  EXPECT_FALSE(load_pattern(4, 4, Pattern::CornerBlock).occupied({1, 2}));
  // HalfGrid: the top ceil(H/2) rows, exact on odd heights.
  EXPECT_EQ(load_pattern(4, 4, Pattern::HalfGrid).atom_count(), 8);
  EXPECT_EQ(load_pattern(5, 4, Pattern::HalfGrid).atom_count(), 12);
  EXPECT_TRUE(load_pattern(4, 4, Pattern::HalfGrid).occupied({1, 3}));
  EXPECT_FALSE(load_pattern(4, 4, Pattern::HalfGrid).occupied({2, 0}));
  const OccupancyGrid cb = load_pattern(3, 3, Pattern::Checkerboard);
  EXPECT_TRUE(cb.occupied({0, 0}));
  EXPECT_FALSE(cb.occupied({0, 1}));
  EXPECT_TRUE(cb.occupied({1, 1}));
}

TEST(Loader, FeasibilityEstimate) {
  // 20x20 at 50% practically always yields >= 100 atoms and practically
  // never >= 300.
  EXPECT_GT(estimate_feasibility(20, 20, 0.5, 100, 200, 1), 0.99);
  EXPECT_LT(estimate_feasibility(20, 20, 0.5, 300, 200, 1), 0.01);
}

}  // namespace
}  // namespace qrm

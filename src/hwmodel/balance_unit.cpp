#include "hwmodel/balance_unit.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qrm::hw {

BalanceUnit::BalanceUnit(std::string name, Fifo<RowBeat>& rows_in, std::int32_t row_count,
                         std::int32_t target_rows, std::int32_t target_cols,
                         std::int32_t sen_limit)
    : Module(std::move(name)), rows_in_(rows_in), row_count_(row_count),
      target_rows_(target_rows), target_cols_(target_cols), sen_limit_(sen_limit) {
  QRM_EXPECTS(row_count > 0 && target_rows > 0 && target_cols > 0);
  remaining_.reserve(static_cast<std::size_t>(row_count));
}

void BalanceUnit::eval(std::uint64_t) {
  switch (phase_) {
    case Phase::CountRows: {
      // One row per cycle through the popcount tree.
      if (rows_in_.can_pop()) {
        const RowBeat beat = rows_in_.pop();
        const std::uint32_t gate =
            sen_limit_ < 0 ? beat.bits.width()
                           : std::min(beat.bits.width(),
                                      static_cast<std::uint32_t>(sen_limit_));
        remaining_.push_back(static_cast<std::int32_t>(beat.bits.count_range(0, gate)));
        ++rows_seen_;
        if (rows_seen_ == row_count_) phase_ = Phase::GrantColumns;
      }
      break;
    }
    case Phase::GrantColumns: {
      // One target column per cycle: grant from the rows with the largest
      // remaining capacity (a selection network in hardware; behaviourally
      // identical to the balance_pass greedy).
      std::int32_t granted = 0;
      // Select target_rows largest-capacity rows without a full sort: the
      // capacities are small integers, so a single max-scan per grant is
      // the faithful (and cheap) model of the selection network.
      std::vector<std::size_t> picked;
      picked.reserve(static_cast<std::size_t>(target_rows_));
      for (std::int32_t g = 0; g < target_rows_; ++g) {
        std::size_t best = remaining_.size();
        std::int32_t best_cap = 0;
        for (std::size_t r = 0; r < remaining_.size(); ++r) {
          const bool already = std::find(picked.begin(), picked.end(), r) != picked.end();
          if (!already && remaining_[r] > best_cap) {
            best_cap = remaining_[r];
            best = r;
          }
        }
        if (best == remaining_.size()) break;  // no capacity left anywhere
        picked.push_back(best);
        ++granted;
      }
      for (const std::size_t r : picked) --remaining_[r];
      grants_ += static_cast<std::uint64_t>(granted);
      if (granted < target_rows_) {
        shortfall_ += static_cast<std::uint64_t>(target_rows_ - granted);
      }
      ++column_cursor_;
      if (column_cursor_ == target_cols_) phase_ = Phase::WriteBack;
      break;
    }
    case Phase::WriteBack: {
      // One row's placement streamed back per cycle.
      ++writeback_cursor_;
      if (writeback_cursor_ == row_count_) phase_ = Phase::Done;
      break;
    }
    case Phase::Done:
      break;
  }
}

bool BalanceUnit::busy() const { return phase_ != Phase::Done; }

}  // namespace qrm::hw

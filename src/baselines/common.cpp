#include "baselines/common.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace qrm::baselines {

std::vector<std::int32_t> band_targets(const std::vector<std::int32_t>& atoms,
                                       std::int32_t band_start, std::int32_t band_size,
                                       std::int32_t line_length) {
  QRM_EXPECTS(band_start >= 0 && band_size > 0 && band_start + band_size <= line_length);
  const auto n = static_cast<std::int32_t>(atoms.size());
  const std::int32_t band_end = band_start + band_size;

  if (n <= band_size) {
    // Partial fill: stack everything from the band start.
    std::vector<std::int32_t> targets(atoms.size());
    for (std::int32_t i = 0; i < n; ++i) targets[static_cast<std::size_t>(i)] = band_start + i;
    return targets;
  }

  // Split: `above` atoms right-justify against the band start, the next
  // band_size atoms fill the band, the rest left-justify below the band.
  // Natural split = number of atoms originally above the band, clamped so
  // every segment fits its side.
  std::int32_t above = 0;
  for (const std::int32_t a : atoms)
    if (a < band_start) ++above;
  const std::int32_t below_capacity = line_length - band_end;
  const std::int32_t min_above = std::max(std::int32_t{0}, n - band_size - below_capacity);
  const std::int32_t max_above = std::min(n - band_size, band_start);
  above = std::clamp(above, min_above, max_above);

  std::vector<std::int32_t> targets(atoms.size());
  for (std::int32_t i = 0; i < above; ++i)
    targets[static_cast<std::size_t>(i)] = band_start - above + i;
  for (std::int32_t i = 0; i < band_size; ++i)
    targets[static_cast<std::size_t>(above + i)] = band_start + i;
  for (std::int32_t i = above + band_size; i < n; ++i)
    targets[static_cast<std::size_t>(i)] = band_end + (i - above - band_size);
  return targets;
}

GlobalPlacement compute_balanced_placement(const OccupancyGrid& grid, const Region& target) {
  QRM_EXPECTS(target.within(grid.height(), grid.width()));
  const std::int32_t height = grid.height();
  const std::int32_t width = grid.width();

  // Row capacities from a plain per-cell scan (deliberately no bit tricks:
  // this code models the baselines' published, general-purpose analyses).
  std::vector<std::vector<std::int32_t>> atoms(static_cast<std::size_t>(height));
  for (std::int32_t r = 0; r < height; ++r) {
    for (std::int32_t c = 0; c < width; ++c) {
      if (grid.occupied({r, c})) atoms[static_cast<std::size_t>(r)].push_back(c);
    }
  }

  GlobalPlacement placement;
  std::vector<std::int32_t> remaining(static_cast<std::size_t>(height));
  for (std::int32_t r = 0; r < height; ++r)
    remaining[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(atoms[static_cast<std::size_t>(r)].size());

  std::vector<std::set<std::int32_t>> chosen(static_cast<std::size_t>(height));
  for (std::int32_t c = target.col0; c < target.col_end(); ++c) {
    std::vector<std::int32_t> order(static_cast<std::size_t>(height));
    for (std::int32_t r = 0; r < height; ++r) order[static_cast<std::size_t>(r)] = r;
    std::stable_sort(order.begin(), order.end(), [&remaining](std::int32_t a, std::int32_t b) {
      return remaining[static_cast<std::size_t>(a)] > remaining[static_cast<std::size_t>(b)];
    });
    std::int32_t granted = 0;
    for (const std::int32_t r : order) {
      if (granted == target.rows) break;
      if (remaining[static_cast<std::size_t>(r)] <= 0) break;
      chosen[static_cast<std::size_t>(r)].insert(c);
      --remaining[static_cast<std::size_t>(r)];
      ++granted;
    }
    if (granted < target.rows) {
      placement.feasible = false;
      placement.shortfall += target.rows - granted;
    }
  }

  for (std::int32_t r = 0; r < height; ++r) {
    const auto& row_atoms = atoms[static_cast<std::size_t>(r)];
    if (row_atoms.empty()) continue;
    std::set<std::int32_t> final_positions = chosen[static_cast<std::size_t>(r)];
    for (const std::int32_t a : row_atoms) {
      if (final_positions.size() == row_atoms.size()) break;
      final_positions.insert(a);
    }
    for (std::int32_t c = 0; c < width && final_positions.size() < row_atoms.size(); ++c) {
      final_positions.insert(c);
    }
    QRM_ENSURES(final_positions.size() == row_atoms.size());
    std::vector<std::int32_t> targets(final_positions.begin(), final_positions.end());
    if (targets == row_atoms) continue;
    placement.row_assignments.push_back({r, row_atoms, std::move(targets)});
  }
  return placement;
}

std::vector<LineAssignment> compute_band_columns(const OccupancyGrid& grid,
                                                 const Region& target) {
  std::vector<LineAssignment> out;
  for (std::int32_t c = 0; c < grid.width(); ++c) {
    std::vector<std::int32_t> atoms;
    for (std::int32_t r = 0; r < grid.height(); ++r)
      if (grid.occupied({r, c})) atoms.push_back(r);
    if (atoms.empty()) continue;
    // Columns outside the target still tidy toward the band (harmless and
    // keeps the array compact, mirroring the published procedures).
    std::vector<std::int32_t> targets =
        band_targets(atoms, target.row0, target.rows, grid.height());
    if (targets == atoms) continue;
    out.push_back({c, std::move(atoms), std::move(targets)});
  }
  return out;
}

void finalize_stats(PlanResult& result, const Region& target) {
  result.stats.target_filled = result.final_grid.region_full(target);
  result.stats.defects_remaining =
      static_cast<std::int64_t>(target.area()) - result.final_grid.atom_count(target);
}

}  // namespace qrm::baselines

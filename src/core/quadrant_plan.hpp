#pragma once
/// \file quadrant_plan.hpp
/// Quadrant-local pass generators: the schedule analysis the Shift Kernel
/// performs, expressed on a quadrant-local grid whose origin (0,0) is the
/// trap adjacent to the array centre.
///
/// A *pass* is one full scan over the quadrant's rows (Axis::Rows, horizontal
/// motion) or columns (Axis::Cols, vertical motion). Each generator returns
/// the per-line re-placements the pass wants; the caller lowers them to
/// moves with the realizer. Generators never mutate the grid.

#include <cstdint>
#include <vector>

#include "lattice/grid.hpp"
#include "moves/realizer.hpp"

namespace qrm {

/// Full inward compaction of every line toward position 0 (the centre).
///
/// `sen_limit` models the kernel's manual shift-enable gate: atoms at local
/// positions >= sen_limit are excluded from the scan (negative = no gate).
/// Lines already compact are omitted.
[[nodiscard]] std::vector<LineAssignment> compact_pass(const OccupancyGrid& local, Axis axis,
                                                       std::int32_t sen_limit = -1);

/// Outcome of the demand computation of balance_pass.
struct BalanceReport {
  bool feasible = true;       ///< all target columns can reach full demand
  std::int64_t shortfall = 0; ///< total unmet column demand (0 when feasible)
};

/// Demand-balanced horizontal placement (see DESIGN.md "reproduction note").
///
/// Every local target column c in [0, target_cols) must end the vertical
/// pass with at least `target_rows` atoms. This pass chooses, for every row,
/// a full set of final column positions such that each target column is
/// promised >= target_rows atoms across distinct rows (largest-remaining-
/// capacity greedy), parking surplus atoms as close to their original
/// columns as possible. A subsequent vertical compact_pass then fills the
/// target quarter.
///
/// When demand cannot be met (not enough atoms below the sen gate), the
/// greedy fills as much as possible and `report` (optional) records the
/// shortfall.
[[nodiscard]] std::vector<LineAssignment> balance_pass(const OccupancyGrid& local,
                                                       std::int32_t target_rows,
                                                       std::int32_t target_cols,
                                                       std::int32_t sen_limit = -1,
                                                       BalanceReport* report = nullptr);

}  // namespace qrm

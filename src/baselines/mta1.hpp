#pragma once
/// \file mta1.hpp
/// Reconstruction of the MTA1-class scheduler used as the slowest
/// comparison point in the paper (after Ebadi et al., Nature 595, 227
/// (2021)): sequential single-tweezer rearrangement.
///
/// Structure reproduced: atoms are delivered to the same balanced placement
/// one at a time — each elementary step is its own command, and the
/// analysis re-locates the atom by scanning its line before every step
/// (the naive control loop of early single-tweezer systems). No
/// multi-tweezer parallelism anywhere; both the analysis latency and the
/// resulting command count are orders of magnitude above the parallel
/// algorithms, matching its position in Fig. 7(b).

#include "baselines/algorithm.hpp"

namespace qrm::baselines {

class Mta1Algorithm final : public RearrangementAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "mta1"; }
  [[nodiscard]] std::string description() const override {
    return "MTA1 (Ebadi'21 class): sequential single-tweezer, per-step rescan";
  }
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial,
                                const Region& target) const override;
};

}  // namespace qrm::baselines

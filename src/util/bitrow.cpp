#include "util/bitrow.hpp"

#include <bit>

#include "util/assert.hpp"

namespace qrm {

BitRow::BitRow(std::uint32_t width) : width_(width), words_(word_count(), 0) {}

BitRow BitRow::from_string(std::string_view text) {
  BitRow row(static_cast<std::uint32_t>(text.size()));
  for (std::uint32_t i = 0; i < row.width_; ++i) {
    const char c = text[i];
    QRM_EXPECTS_MSG(c == '0' || c == '1' || c == '.' || c == '#',
                    "BitRow::from_string accepts only 0/1/./#");
    if (c == '1' || c == '#') row.set(i);
  }
  return row;
}

bool BitRow::test(std::uint32_t i) const {
  QRM_EXPECTS(i < width_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1U;
}

void BitRow::set(std::uint32_t i, bool value) {
  QRM_EXPECTS(i < width_);
  const Word mask = Word{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitRow::fill() {
  for (auto& w : words_) w = ~Word{0};
  mask_tail();
}

void BitRow::reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::uint32_t BitRow::count() const noexcept {
  std::uint32_t n = 0;
  for (const Word w : words_) n += static_cast<std::uint32_t>(std::popcount(w));
  return n;
}

std::uint32_t BitRow::count_range(std::uint32_t lo, std::uint32_t hi) const {
  QRM_EXPECTS(lo <= hi && hi <= width_);
  std::uint32_t n = 0;
  for (std::uint32_t i = lo; i < hi; ++i) {
    // Word-at-a-time: skip to aligned fast path when possible.
    if (i % kWordBits == 0 && i + kWordBits <= hi) {
      n += static_cast<std::uint32_t>(std::popcount(words_[i / kWordBits]));
      i += kWordBits - 1;
    } else if (test(i)) {
      ++n;
    }
  }
  return n;
}

bool BitRow::any() const noexcept {
  for (const Word w : words_)
    if (w != 0) return true;
  return false;
}

bool BitRow::all_set_below(std::uint32_t n) const {
  QRM_EXPECTS(n <= width_);
  return count_range(0, n) == n;
}

void BitRow::shift_toward_lsb(std::uint32_t n) {
  if (n >= width_) {
    reset();
    return;
  }
  const std::uint32_t word_shift = n / kWordBits;
  const std::uint32_t bit_shift = n % kWordBits;
  const std::size_t nw = words_.size();
  for (std::size_t i = 0; i < nw; ++i) {
    const std::size_t src = i + word_shift;
    Word lo = src < nw ? words_[src] : 0;
    Word hi = (src + 1) < nw ? words_[src + 1] : 0;
    words_[i] = bit_shift == 0 ? lo : ((lo >> bit_shift) | (hi << (kWordBits - bit_shift)));
  }
  mask_tail();
}

void BitRow::shift_toward_msb(std::uint32_t n) {
  if (n >= width_) {
    reset();
    return;
  }
  const std::uint32_t word_shift = n / kWordBits;
  const std::uint32_t bit_shift = n % kWordBits;
  const std::size_t nw = words_.size();
  for (std::size_t i = nw; i-- > 0;) {
    Word lo = i >= word_shift ? words_[i - word_shift] : 0;
    Word hi = (i >= word_shift + 1) ? words_[i - word_shift - 1] : 0;
    words_[i] = bit_shift == 0 ? lo : ((lo << bit_shift) | (hi >> (kWordBits - bit_shift)));
  }
  mask_tail();
}

std::uint32_t BitRow::first_hole() const noexcept {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    const Word inv = ~words_[wi];
    if (inv != 0) {
      const auto pos = static_cast<std::uint32_t>(std::countr_zero(inv)) + wi * kWordBits;
      return pos < width_ ? pos : width_;
    }
  }
  return width_;
}

std::uint32_t BitRow::first_atom() const noexcept {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      const auto pos = static_cast<std::uint32_t>(std::countr_zero(words_[wi])) + wi * kWordBits;
      return pos < width_ ? pos : width_;
    }
  }
  return width_;
}

std::uint32_t BitRow::holes_below(std::uint32_t i) const {
  QRM_EXPECTS(i <= width_);
  return i - count_range(0, i);
}

std::vector<std::uint32_t> BitRow::set_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each_set([&out](std::uint32_t i) { out.push_back(i); });
  return out;
}

std::vector<std::uint32_t> BitRow::hole_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(width_ - count());
  for (std::uint32_t i = 0; i < width_; ++i)
    if (!test(i)) out.push_back(i);
  return out;
}

void BitRow::for_each_set(const std::function<void(std::uint32_t)>& fn) const {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    while (w != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
      fn(wi * kWordBits + bit);
      w &= w - 1;
    }
  }
}

BitRow BitRow::compacted() const {
  BitRow out(width_);
  const std::uint32_t n = count();
  for (std::uint32_t i = 0; i < n; ++i) out.set(i);
  return out;
}

std::vector<std::uint32_t> BitRow::compaction_displacements() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  std::uint32_t holes = 0;
  for (std::uint32_t i = 0; i < width_; ++i) {
    if (test(i)) {
      out.push_back(holes);
    } else {
      ++holes;
    }
  }
  return out;
}

BitRow BitRow::reversed() const {
  BitRow out(width_);
  for (std::uint32_t i = 0; i < width_; ++i)
    if (test(i)) out.set(width_ - 1 - i);
  return out;
}

void BitRow::assign_words(const std::vector<Word>& words) {
  QRM_EXPECTS(words.size() == words_.size());
  words_ = words;
  mask_tail();
}

BitRow& BitRow::operator&=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

BitRow& BitRow::operator|=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

BitRow& BitRow::operator^=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

std::string BitRow::to_string() const {
  std::string s;
  s.reserve(width_);
  for (std::uint32_t i = 0; i < width_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

std::string BitRow::to_art() const {
  std::string s;
  s.reserve(width_);
  for (std::uint32_t i = 0; i < width_; ++i) s.push_back(test(i) ? '#' : '.');
  return s;
}

void BitRow::mask_tail() noexcept {
  if (words_.empty()) return;
  const std::uint32_t used = width_ % kWordBits;
  if (used != 0) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace qrm

#include "core/pass_driver.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qrm {

namespace {

/// Map one quadrant-local assignment into global coordinates. Local lines
/// map to global lines of the same axis (quadrant flips never transpose);
/// positions mirror for quadrants whose local axis points away from the
/// global one, so arrays are reversed to stay ascending.
LineAssignment to_global_assignment(const QuadrantGeometry& geom, Quadrant q, Axis axis,
                                    const LineAssignment& local) {
  LineAssignment global;
  const auto map_pos = [&](std::int32_t pos) {
    const Coord lc = axis == Axis::Rows ? Coord{local.line, pos} : Coord{pos, local.line};
    const Coord gc = geom.to_global(q, lc);
    return axis == Axis::Rows ? gc.col : gc.row;
  };
  {
    const Coord lc0 = axis == Axis::Rows ? Coord{local.line, 0} : Coord{0, local.line};
    const Coord gc0 = geom.to_global(q, lc0);
    global.line = axis == Axis::Rows ? gc0.row : gc0.col;
  }
  global.sources.reserve(local.sources.size());
  global.targets.reserve(local.targets.size());
  for (const auto s : local.sources) global.sources.push_back(map_pos(s));
  for (const auto t : local.targets) global.targets.push_back(map_pos(t));
  if (global.sources.size() > 1 && global.sources.front() > global.sources.back()) {
    std::reverse(global.sources.begin(), global.sources.end());
    std::reverse(global.targets.begin(), global.targets.end());
  }
  return global;
}

/// Validates the grid shape before QuadrantGeometry construction so the
/// caller sees a QRM-specific message rather than the geometry's.
QuadrantGeometry checked_geometry(const OccupancyGrid& grid) {
  QRM_EXPECTS_MSG(grid.height() > 0 && grid.width() > 0 && grid.height() % 2 == 0 &&
                      grid.width() % 2 == 0,
                  "QRM requires non-empty, even grid dimensions");
  return {grid.height(), grid.width()};
}

}  // namespace

PassDriver::PassDriver(const OccupancyGrid& initial, QrmConfig config,
                       PlanParallelism parallelism)
    : config_(std::move(config)),
      parallelism_(std::move(parallelism)),
      geometry_(checked_geometry(initial)),
      state_(initial) {
  const Region target = config_.target;
  QRM_EXPECTS_MSG(target.rows > 0 && target.cols > 0 && target.rows % 2 == 0 &&
                      target.cols % 2 == 0,
                  "QRM requires an even-sized target region");
  QRM_EXPECTS_MSG(
      target == centered_region(initial.height(), initial.width(), target.rows, target.cols),
      "QRM requires the target region centred in the grid");
  phase_ = config_.mode == PlanMode::Balanced ? Phase::BalanceRow : Phase::CompactRow;
}

std::optional<QuadrantPass> PassDriver::next() {
  QRM_EXPECTS_MSG(!awaiting_apply_, "call apply() before requesting the next pass");
  if (phase_ == Phase::Done) return std::nullopt;

  QuadrantPass pass;
  pass.axis = (phase_ == Phase::BalanceRow || phase_ == Phase::CompactRow) ? Axis::Rows
                                                                           : Axis::Cols;
  pass.balance = phase_ == Phase::BalanceRow;

  const Stopwatch watch;
  const std::int32_t quarter_rows = config_.target.rows / 2;
  const std::int32_t quarter_cols = config_.target.cols / 2;
  // Delta replanning: pass k can serve clean quadrants from the previous
  // drive's captured pass k if the pass kinds line up (they always do until
  // compact-mode termination diverges, at which point extra passes simply
  // compute fresh).
  QuadrantPass* cached = nullptr;
  if (reuse_source_ != nullptr && pass_index_ < reuse_source_->size()) {
    QuadrantPass& prev = (*reuse_source_)[pass_index_];
    if (prev.axis == pass.axis && prev.balance == pass.balance) cached = &prev;
  }
  // The four quadrant kernels are data-independent: each reads the shared
  // (const) state and writes only its own index in the pass arrays. They
  // therefore fan out on the intra-plan pool without changing any result
  // bit; the feasibility fold happens after the join, and AND is
  // order-free, so the outcome matches the sequential loop exactly.
  std::array<bool, 4> reused{};
  const auto compute_quadrant = [&](std::size_t qi) {
    const Quadrant q = kAllQuadrants[qi];
    if (cached != nullptr && !reuse_dirty_[qi]) {
      if (reuse_paranoid_) {
        const OccupancyGrid fresh = geometry_.extract_local(state_, q);
        QRM_ENSURES_MSG(fresh == cached->local_grids[qi],
                        "delta reuse: clean quadrant's grid diverged from the cached pass input");
      }
      // Steal the cached kernel data rather than copying it: a deep copy is
      // O(quadrant area), the same order as the extract+compute it replaces.
      // Safe because each cached pass index is consumed at most once per
      // drive and the source vector is discarded afterwards.
      pass.local_grids[qi] = std::move(cached->local_grids[qi]);
      pass.local_assignments[qi] = std::move(cached->local_assignments[qi]);
      pass.balance_reports[qi] = cached->balance_reports[qi];
      reused[qi] = true;
      return;
    }
    pass.local_grids[qi] = geometry_.extract_local(state_, q);
    if (pass.balance) {
      BalanceReport report;
      pass.local_assignments[qi] = balance_pass(pass.local_grids[qi], quarter_rows, quarter_cols,
                                                config_.sen_limit, &report);
      pass.balance_reports[qi] = report;
    } else {
      pass.local_assignments[qi] =
          compact_pass(pass.local_grids[qi], pass.axis, config_.sen_limit);
    }
  };
  if (ThreadPool* pool = intra_plan_pool(); pool != nullptr) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kAllQuadrants.size());
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi)
      tasks.emplace_back([&compute_quadrant, qi] { compute_quadrant(qi); });
    pool->run_all(std::move(tasks));
  } else {
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi) compute_quadrant(qi);
  }
  if (pass.balance) {
    for (const BalanceReport& report : pass.balance_reports)
      if (!report.feasible) stats_.feasible = false;
  }
  if (reuse_stats_ != nullptr) {
    for (const bool r : reused) (r ? reuse_stats_->kernels_reused : reuse_stats_->kernels_computed)++;
  }
  stats_.timers.pass_compute_us += watch.elapsed_microseconds();
  awaiting_apply_ = true;
  return pass;
}

void PassDriver::apply(QuadrantPass pass) {
  QRM_EXPECTS_MSG(awaiting_apply_, "apply() must follow a successful next()");
  awaiting_apply_ = false;

  PassInfo info;
  info.axis = pass.axis;
  RealizeOptions realize_options{config_.aod_legalize};
  if (!config_.dead_channels.empty()) realize_options.dead = &config_.dead_channels;

  // Lower each quadrant's local assignments to global coordinates first.
  // The four conversions are pure and data-independent, so they fan out on
  // the intra-plan pool; the merge below then consumes the slots in fixed
  // quadrant order, which is exactly the order the old inline loop produced.
  const Stopwatch merge_watch;
  std::array<std::vector<LineAssignment>, 4> globals;
  const auto lower_quadrant = [&](std::size_t qi) {
    const auto& locals = pass.local_assignments[qi];
    globals[qi].reserve(locals.size());
    for (const auto& la : locals)
      globals[qi].push_back(to_global_assignment(geometry_, kAllQuadrants[qi], pass.axis, la));
  };
  if (ThreadPool* pool = intra_plan_pool(); pool != nullptr) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(kAllQuadrants.size());
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi)
      tasks.emplace_back([&lower_quadrant, qi] { lower_quadrant(qi); });
    pool->run_all(std::move(tasks));
  } else {
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi) lower_quadrant(qi);
  }

  if (config_.merge_quadrants) {
    // Paper Sec. IV-C: west-side (NW+SW) and east-side (NE+SE) shifts run as
    // shared commands; realizing both half-lines of every global line in one
    // call yields exactly those shared rounds.
    std::map<std::int32_t, LineAssignment> merged;
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi) {
      for (LineAssignment& ga : globals[qi]) {
        auto [it, inserted] = merged.try_emplace(ga.line, std::move(ga));
        if (!inserted) {
          // try_emplace left `ga` untouched; append it to the accumulated
          // half-line. The two halves occupy disjoint position ranges.
          LineAssignment& acc = it->second;
          LineAssignment& incoming = ga;
          const bool after = acc.sources.empty() || incoming.sources.empty() ||
                             incoming.sources.front() > acc.sources.back();
          if (after) {
            acc.sources.insert(acc.sources.end(), incoming.sources.begin(),
                               incoming.sources.end());
            acc.targets.insert(acc.targets.end(), incoming.targets.begin(),
                               incoming.targets.end());
          } else {
            acc.sources.insert(acc.sources.begin(), incoming.sources.begin(),
                               incoming.sources.end());
            acc.targets.insert(acc.targets.begin(), incoming.targets.begin(),
                               incoming.targets.end());
          }
        }
      }
    }
    std::vector<LineAssignment> lines;
    lines.reserve(merged.size());
    for (auto& [line, la] : merged) lines.push_back(std::move(la));
    info.lines_with_motion = lines.size();
    stats_.timers.merge_us += merge_watch.elapsed_microseconds();
    if (!lines.empty()) {
      const Stopwatch realize_watch;
      const RealizeResult rr =
          realize_assignments(state_, pass.axis, lines, schedule_, realize_options);
      info.unit_rounds = rr.rounds_toward_origin + rr.rounds_away;
      info.atoms_moved = rr.atoms_moved;
      stats_.timers.realize_us += realize_watch.elapsed_microseconds();
    }
  } else {
    stats_.timers.merge_us += merge_watch.elapsed_microseconds();
    const Stopwatch realize_watch;
    // Realization mutates the shared grid and schedule: strictly serial, in
    // quadrant order, as the determinism contract requires.
    for (std::size_t qi = 0; qi < kAllQuadrants.size(); ++qi) {
      if (globals[qi].empty()) continue;
      info.lines_with_motion += globals[qi].size();
      const RealizeResult rr =
          realize_assignments(state_, pass.axis, globals[qi], schedule_, realize_options);
      info.unit_rounds += rr.rounds_toward_origin + rr.rounds_away;
      info.atoms_moved += rr.atoms_moved;
    }
    stats_.timers.realize_us += realize_watch.elapsed_microseconds();
  }
  stats_.passes.push_back(info);
  if (capture_sink_ != nullptr) capture_sink_->push_back(std::move(pass));
  ++pass_index_;

  // Advance the pass program.
  switch (phase_) {
    case Phase::BalanceRow:
      phase_ = Phase::BalanceCol;
      break;
    case Phase::BalanceCol:
      stats_.iterations = 1;
      phase_ = Phase::Done;
      break;
    case Phase::CompactRow:
      iteration_atoms_moved_ = info.atoms_moved;
      phase_ = Phase::CompactCol;
      break;
    case Phase::CompactCol:
      iteration_atoms_moved_ += info.atoms_moved;
      ++iteration_;
      stats_.iterations = iteration_;
      if (iteration_atoms_moved_ == 0 || state_.region_full(config_.target) ||
          iteration_ >= config_.max_iterations) {
        phase_ = Phase::Done;
      } else {
        phase_ = Phase::CompactRow;
      }
      break;
    case Phase::Done:
      break;
  }
}

ThreadPool* PassDriver::intra_plan_pool() const noexcept {
  return parallelism_.workers > 0 ? parallelism_.pool.get() : nullptr;
}

PlanResult PassDriver::take_result() {
  PlanResult result;
  stats_.target_filled = state_.region_full(config_.target);
  stats_.defects_remaining =
      static_cast<std::int64_t>(config_.target.area()) - state_.atom_count(config_.target);
  result.schedule = schedule_;
  result.final_grid = state_;
  result.stats = stats_;
  return result;
}

}  // namespace qrm

#pragma once
/// \file optimizer.hpp
/// Schedule post-optimisation.
///
/// The planner emits unit-step rounds (the hardware's natural shift-command
/// granularity). Physically, an AWG command has a fixed settle overhead, so
/// merging an atom group's consecutive unit steps into one multi-step ramp
/// shortens the program. The coalescer does exactly that, preserving
/// semantics (same final occupancy, validated against the executor) and
/// physical legality.

#include <cstdint>

#include "lattice/grid.hpp"
#include "moves/schedule.hpp"

namespace qrm {

struct CoalesceResult {
  Schedule schedule;
  std::size_t moves_before = 0;
  std::size_t moves_after = 0;
  /// Physical time saved under a fixed per-command overhead model, in
  /// overhead units (commands eliminated).
  [[nodiscard]] std::size_t commands_saved() const noexcept {
    return moves_before - moves_after;
  }
};

struct CoalesceOptions {
  /// Re-check the AOD cross-product rule for merged commands; a merged
  /// command has the same row/column sets as its parts, so this can only
  /// fail when intermediate moves changed the bystander landscape.
  bool check_aod = true;
  /// Cap on the merged step count (AOD ramps lose fidelity over long
  /// sweeps; 0 = unlimited).
  std::int32_t max_steps = 0;
};

/// Merge adjacent schedule entries that move the *same site set* in the
/// same direction through consecutive positions into single multi-step
/// commands, whenever the merged command is valid against the grid state
/// at its execution point. `initial` must be the grid the schedule starts
/// from. The returned schedule replays to exactly the same final grid.
[[nodiscard]] CoalesceResult coalesce_schedule(const OccupancyGrid& initial,
                                               const Schedule& schedule,
                                               const CoalesceOptions& options = {});

/// True when the two schedules, applied to `initial`, produce identical
/// final occupancies (both must be valid).
[[nodiscard]] bool schedules_equivalent(const OccupancyGrid& initial, const Schedule& a,
                                        const Schedule& b, bool check_aod = true);

}  // namespace qrm

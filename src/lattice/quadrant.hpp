#pragma once
/// \file quadrant.hpp
/// QRM quadrant geometry: the split / flip / restore coordinate algebra of
/// the paper's Fig. 4.
///
/// Each quadrant is given *local* coordinates in which (0,0) is the trap
/// adjacent to the array centre and indices grow outward. In this frame the
/// unified per-quadrant schedule always compresses toward the local origin,
/// which is what lets a single Shift Kernel design serve all four quadrants.

#include <array>
#include <cstdint>
#include <string>

#include "lattice/direction.hpp"
#include "lattice/grid.hpp"
#include "lattice/region.hpp"

namespace qrm {

enum class Quadrant : std::uint8_t { NW = 0, NE = 1, SW = 2, SE = 3 };

inline constexpr std::array<Quadrant, 4> kAllQuadrants{Quadrant::NW, Quadrant::NE, Quadrant::SW,
                                                       Quadrant::SE};

[[nodiscard]] constexpr const char* to_cstring(Quadrant q) noexcept {
  switch (q) {
    case Quadrant::NW: return "NW";
    case Quadrant::NE: return "NE";
    case Quadrant::SW: return "SW";
    case Quadrant::SE: return "SE";
  }
  return "?";
}
[[nodiscard]] inline std::string to_string(Quadrant q) { return to_cstring(q); }

/// Coordinate algebra between the global grid and the four quadrant-local
/// frames. Requires even height and width (the paper's arrays are even; an
/// odd size has no centre-symmetric quadrant split).
class QuadrantGeometry {
 public:
  /// Preconditions: height, width positive and even.
  QuadrantGeometry(std::int32_t height, std::int32_t width);

  [[nodiscard]] std::int32_t height() const noexcept { return height_; }
  [[nodiscard]] std::int32_t width() const noexcept { return width_; }
  /// Rows per quadrant (the paper's Q_w for square arrays).
  [[nodiscard]] std::int32_t local_height() const noexcept { return height_ / 2; }
  /// Columns per quadrant.
  [[nodiscard]] std::int32_t local_width() const noexcept { return width_ / 2; }

  /// The global rectangle covered by quadrant `q`.
  [[nodiscard]] Region global_region(Quadrant q) const noexcept;

  /// The mirror operation that maps the quadrant's sub-grid into local
  /// orientation (centre corner at local (0,0)): NW -> Rotate180,
  /// NE -> Vertical, SW -> Horizontal, SE -> None.
  [[nodiscard]] static Flip flip_of(Quadrant q) noexcept;

  /// Which quadrant a global coordinate belongs to. Precondition: in bounds.
  [[nodiscard]] Quadrant quadrant_of(Coord global) const;

  /// Global -> local within quadrant `q`. Precondition: the coordinate lies
  /// inside `global_region(q)`.
  [[nodiscard]] Coord to_local(Quadrant q, Coord global) const;
  /// Local -> global. Precondition: 0 <= local < (local_height, local_width).
  [[nodiscard]] Coord to_global(Quadrant q, Coord local) const;

  /// A local direction (e.g. West = toward the local origin column) mapped
  /// to the global direction it represents for quadrant `q`.
  [[nodiscard]] static Direction to_global_direction(Quadrant q, Direction local) noexcept;
  /// Inverse of to_global_direction (flips are involutions, so identical).
  [[nodiscard]] static Direction to_local_direction(Quadrant q, Direction global) noexcept;

  /// Copy quadrant `q` out of `grid` into its local frame (flip applied).
  [[nodiscard]] OccupancyGrid extract_local(const OccupancyGrid& grid, Quadrant q) const;
  /// Write a local-frame quadrant image back into the global grid.
  void write_back(OccupancyGrid& grid, Quadrant q, const OccupancyGrid& local) const;

 private:
  std::int32_t height_;
  std::int32_t width_;
};

/// Which quadrants contain at least one of `sites` (indexed by Quadrant's
/// underlying value, matching kAllQuadrants order). The dirty-region map of
/// delta replanning: a quadrant absent from the mask saw no occupancy change
/// and its cached kernel outputs remain valid. Precondition: every site in
/// bounds of the geometry.
[[nodiscard]] std::array<bool, 4> dirty_quadrant_mask(const QuadrantGeometry& geometry,
                                                      const std::vector<Coord>& sites);

}  // namespace qrm

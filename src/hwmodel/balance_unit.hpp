#pragma once
/// \file balance_unit.hpp
/// Structural model of the balance unit (our documented extension; see
/// DESIGN.md §2): the hardware stage that grants every local target column
/// enough donor rows before the placement pass.
///
/// Dataflow: phase 1 streams the quadrant's rows one per cycle, counting
/// atoms below the sen gate (a popcount tree in hardware). Phase 2 walks
/// one target column per cycle, granting `target_rows` donors from a
/// capacity-sorted selection network. Phase 3 streams the per-row
/// placements back out, one row per cycle. Total latency is therefore
/// Q_h + T_qc + Q_h cycles — now measured by simulation rather than
/// asserted, and the grant totals are cross-checked against the
/// behavioural balance_pass by the accelerator.

#include <cstdint>
#include <vector>

#include "hwmodel/beats.hpp"
#include "hwmodel/fifo.hpp"
#include "hwmodel/sim.hpp"

namespace qrm::hw {

class BalanceUnit final : public Module {
 public:
  BalanceUnit(std::string name, Fifo<RowBeat>& rows_in, std::int32_t row_count,
              std::int32_t target_rows, std::int32_t target_cols, std::int32_t sen_limit = -1);

  void eval(std::uint64_t cycle) override;
  [[nodiscard]] bool busy() const override;

  /// Total donor grants issued (= demand minus shortfall).
  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }
  /// True when every target column received its full demand.
  [[nodiscard]] bool feasible() const noexcept { return shortfall_ == 0; }
  [[nodiscard]] std::uint64_t shortfall() const noexcept { return shortfall_; }

 private:
  enum class Phase { CountRows, GrantColumns, WriteBack, Done };

  Fifo<RowBeat>& rows_in_;
  std::int32_t row_count_;
  std::int32_t target_rows_;
  std::int32_t target_cols_;
  std::int32_t sen_limit_;

  Phase phase_ = Phase::CountRows;
  std::int32_t rows_seen_ = 0;
  std::int32_t column_cursor_ = 0;
  std::int32_t writeback_cursor_ = 0;
  std::vector<std::int32_t> remaining_;  ///< per-row remaining capacity
  std::uint64_t grants_ = 0;
  std::uint64_t shortfall_ = 0;
};

}  // namespace qrm::hw

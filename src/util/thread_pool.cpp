#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/assert.hpp"

namespace qrm {

std::uint32_t ThreadPool::resolve_workers(std::uint32_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::uint32_t workers) {
  const std::uint32_t count = resolve_workers(workers);
  workers_.reserve(count);
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawn failed (resource exhaustion): joinable threads must be
    // joined before workers_ is destroyed or the runtime calls terminate.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks.front()();  // nothing to fan out; run inline, throw inline
    return;
  }

  // Shared by the caller and any helper that wakes up. Helpers hold the
  // state via shared_ptr so a helper that only gets scheduled *after* the
  // join completes (busy pool) finds the claim counter exhausted and
  // returns without touching freed memory.
  struct ForkJoin {
    std::vector<std::function<void()>> tasks;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<ForkJoin>();
  state->tasks = std::move(tasks);

  const auto drain = [state] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->tasks.size()) return;
      try {
        state->tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->tasks.size()) {
        // Lock-then-notify so the joiner cannot miss the wakeup between its
        // predicate check and its wait.
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->finished.notify_all();
      }
    }
  };

  // Helpers accelerate, the caller guarantees progress: enqueue at most one
  // helper per worker (more could never run concurrently anyway).
  const std::size_t helpers =
      std::min<std::size_t>(worker_count(), state->tasks.size() - 1);
  for (std::size_t h = 0; h < helpers; ++h) enqueue(drain);
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->finished.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->tasks.size();
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    QRM_EXPECTS_MSG(!stopping_, "submit() on a ThreadPool that is shutting down");
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Any exception escaped the packaged_task wrapper only if the task was
    // enqueued raw; packaged_task stores it in the future instead.
    task();
  }
}

}  // namespace qrm

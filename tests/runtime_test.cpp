// Tests for the control-system orchestration: full Fig. 1 workflow and the
// Fig. 2 architecture comparison.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "loading/loader.hpp"
#include "runtime/control_system.hpp"

namespace qrm::rt {
namespace {

SystemConfig default_config(std::int32_t size, std::int32_t target, Architecture arch) {
  SystemConfig config;
  config.architecture = arch;
  config.accelerator.plan.target = centered_square(size, target);
  config.imaging.photons_per_atom = 400.0;  // high SNR: detection is exact
  config.imaging.background_photons = 1.0;
  config.detection.pixels_per_site = config.imaging.pixels_per_site;
  return config;
}

TEST(ControlSystem, EndToEndFillsTargetFromImage) {
  const OccupancyGrid atoms = load_random(20, 20, {0.55, 15});
  const ControlSystem system(default_config(20, 12, Architecture::FpgaIntegrated));
  const WorkflowReport report = system.run(atoms);
  EXPECT_EQ(report.detection_errors.total(), 0);
  EXPECT_TRUE(report.target_filled) << "defects " << report.defects_remaining;
  EXPECT_GT(report.detection_us, 0.0);
  EXPECT_GT(report.analysis_us, 0.0);
  EXPECT_GT(report.awg_program_us, 0.0);
  EXPECT_GT(report.schedule_commands, 0u);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(ControlSystem, IntegratedArchitectureCutsControlLatency) {
  // The Fig. 2 argument: removing the host round trip shrinks the control
  // path by orders of magnitude.
  const OccupancyGrid atoms = load_random(20, 20, {0.55, 16});
  const WorkflowReport host =
      ControlSystem(default_config(20, 12, Architecture::HostMediated)).run(atoms);
  const WorkflowReport fpga =
      ControlSystem(default_config(20, 12, Architecture::FpgaIntegrated)).run(atoms);
  EXPECT_GT(host.transfer_us, 50.0) << "host path must pay link latency";
  EXPECT_DOUBLE_EQ(fpga.transfer_us, 0.0) << "integrated path has no host hops";
  EXPECT_LT(fpga.control_latency_us(), host.control_latency_us());
  // Both reach the same physical outcome.
  EXPECT_EQ(host.target_filled, fpga.target_filled);
}

TEST(ControlSystem, PhysicalTimeDominatesAfterAcceleration) {
  // Once analysis runs in ~1 us, the AWG program (physical atom motion) is
  // the remaining bottleneck — the motivation for the paper's "lower clock
  // cycle" claim.
  const OccupancyGrid atoms = load_random(20, 20, {0.55, 17});
  const WorkflowReport report =
      ControlSystem(default_config(20, 12, Architecture::FpgaIntegrated)).run(atoms);
  EXPECT_GT(report.awg_program_us, report.analysis_us);
}

TEST(ControlSystem, NoisyDetectionStillPlansLegally) {
  // Low SNR: detection errors flow into planning; the schedule must still
  // be internally consistent (the planner works off the detected grid).
  const OccupancyGrid atoms = load_random(20, 20, {0.55, 18});
  SystemConfig config = default_config(20, 12, Architecture::FpgaIntegrated);
  config.imaging.photons_per_atom = 10.0;
  config.imaging.background_photons = 6.0;
  const WorkflowReport report = ControlSystem(config).run(atoms);
  EXPECT_GT(report.detection_errors.total(), 0);
  // The report is still well-formed; fill is not guaranteed.
  EXPECT_GE(report.defects_remaining, 0);
}

TEST(ControlSystem, LinkModelTransferTime) {
  const LinkModel link{50.0, 4000.0};
  EXPECT_DOUBLE_EQ(link.transfer_us(0.0), 50.0);
  EXPECT_DOUBLE_EQ(link.transfer_us(40000.0), 60.0);
}

TEST(ControlSystem, RejectsMismatchedGeometry) {
  SystemConfig config = default_config(20, 12, Architecture::FpgaIntegrated);
  config.detection.pixels_per_site = config.imaging.pixels_per_site + 1;
  EXPECT_THROW(ControlSystem{config}, PreconditionError);
}

}  // namespace
}  // namespace qrm::rt

// Tests for exec::PlanCache: exact-hit semantics (a hit is bit-equal to a
// cold plan), config-key separation across every planner axis, FIFO
// eviction, and the BatchPlanner wiring — outcome fingerprints must be
// identical with the cache on, off, or shared across batches.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "batch/batch_planner.hpp"
#include "exec/plan_cache.hpp"
#include "core/planner.hpp"
#include "lattice/region.hpp"
#include "loading/loader.hpp"
#include "util/assert.hpp"

namespace qrm {
namespace {

QrmConfig tiny_config() {
  QrmConfig config;
  config.target = centered_region(16, 16, 8, 8);
  return config;
}

OccupancyGrid tiny_grid(std::uint64_t seed, double fill = 0.7) {
  return load_random(16, 16, {fill, seed});
}

TEST(PlanCache, HitIsBitEqualToColdPlan) {
  const QrmConfig config = tiny_config();
  const QrmPlanner planner(config);
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);
  exec::PlanCache cache;

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OccupancyGrid grid = tiny_grid(seed);
    const PlanResult cold = planner.plan(grid);
    EXPECT_EQ(cache.find(key, grid), nullptr);
    cache.insert(key, grid, planner.plan(grid));
    const std::shared_ptr<const PlanResult> hit = cache.find(key, grid);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, cold) << "cache hit diverged from cold plan for seed " << seed;
  }
  const exec::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.entries, 5u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PlanCache, MissesOnDifferentGridOrConfigKey) {
  const QrmConfig config = tiny_config();
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);
  exec::PlanCache cache;
  const OccupancyGrid grid = tiny_grid(1);
  cache.insert(key, grid, QrmPlanner(config).plan(grid));

  EXPECT_EQ(cache.find(key, tiny_grid(2)), nullptr);
  EXPECT_EQ(cache.find(key + 1, grid), nullptr);
  EXPECT_NE(cache.find(key, grid), nullptr);
}

TEST(PlanCache, ConfigKeySeparatesEveryPlannerAxis) {
  const QrmConfig base = tiny_config();
  const std::uint64_t base_key = exec::PlanCache::config_key("qrm", base);

  EXPECT_NE(exec::PlanCache::config_key("tetris", base), base_key);

  QrmConfig changed = base;
  changed.mode = PlanMode::Compact;
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  changed = base;
  changed.target = centered_region(16, 16, 6, 6);
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  changed = base;
  changed.max_iterations = 7;
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  changed = base;
  changed.merge_quadrants = false;
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  changed = base;
  changed.aod_legalize = false;
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  changed = base;
  changed.sen_limit = 3;
  EXPECT_NE(exec::PlanCache::config_key("qrm", changed), base_key);

  // And the key is a pure function of its inputs.
  EXPECT_EQ(exec::PlanCache::config_key("qrm", base), base_key);
}

TEST(PlanCache, InsertKeepsTheFirstPlanForACell) {
  // Two concurrent shots may plan the same cell; both plans are bit-equal
  // by the purity contract, and the first insertion wins.
  const QrmConfig config = tiny_config();
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);
  exec::PlanCache cache;
  const OccupancyGrid grid = tiny_grid(1);
  const std::shared_ptr<const PlanResult> first =
      cache.insert(key, grid, QrmPlanner(config).plan(grid));
  const std::shared_ptr<const PlanResult> second =
      cache.insert(key, grid, QrmPlanner(config).plan(grid));
  EXPECT_EQ(first, second);  // same entry, not a replacement
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCache, FifoEvictionCapsEntries) {
  exec::PlanCacheConfig cache_config;
  cache_config.max_entries = 4;
  exec::PlanCache cache(cache_config);
  const QrmConfig config = tiny_config();
  const QrmPlanner planner(config);
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const OccupancyGrid grid = tiny_grid(seed);
    cache.insert(key, grid, planner.plan(grid));
  }
  const exec::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 6u);
  // Oldest insertions are gone, the newest survive.
  EXPECT_EQ(cache.find(key, tiny_grid(0)), nullptr);
  EXPECT_NE(cache.find(key, tiny_grid(9)), nullptr);

  // A held pointer stays valid across eviction of its entry.
  const OccupancyGrid pinned_grid = tiny_grid(20);
  const std::shared_ptr<const PlanResult> pinned =
      cache.insert(key, pinned_grid, planner.plan(pinned_grid));
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    const OccupancyGrid grid = tiny_grid(seed);
    cache.insert(key, grid, planner.plan(grid));
  }
  EXPECT_EQ(cache.find(key, pinned_grid), nullptr);
  EXPECT_EQ(pinned->final_grid, QrmPlanner(config).plan(pinned_grid).final_grid);
}

TEST(PlanCache, CollidingKeysStillResolveHitsByGridContent) {
  // key_bits = 1 leaves two possible cell keys, so distinct grids are
  // forced into shared buckets. Hits must still return exactly the plan
  // for the looked-up grid — collisions can narrow a bucket, never
  // substitute a wrong plan.
  exec::PlanCacheConfig cache_config;
  cache_config.key_bits = 1;
  exec::PlanCache cache(cache_config);
  const QrmConfig config = tiny_config();
  const QrmPlanner planner(config);
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);

  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    cache.insert(key, tiny_grid(seed), planner.plan(tiny_grid(seed)));
  EXPECT_EQ(cache.stats().entries, 6u);

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const OccupancyGrid grid = tiny_grid(seed);
    const std::shared_ptr<const PlanResult> hit = cache.find(key, grid);
    ASSERT_NE(hit, nullptr) << "seed " << seed;
    EXPECT_EQ(*hit, planner.plan(grid)) << "collision served the wrong plan for seed " << seed;
  }
  EXPECT_EQ(cache.find(key, tiny_grid(7)), nullptr)
      << "an uninserted grid must miss even when its masked key collides";
}

TEST(PlanCache, FifoEvictionStaysExactUnderForcedCollisions) {
  // Regression for the eviction/accounting audit: with every insertion
  // crammed into at most two buckets, eviction must still remove exactly
  // the globally oldest insertion (bucket-front of the front key — the
  // deque and the bucket chains append in the same order), and entries_
  // must track the real entry count, not the bucket count.
  exec::PlanCacheConfig cache_config;
  cache_config.key_bits = 1;
  cache_config.max_entries = 3;
  exec::PlanCache cache(cache_config);
  const QrmConfig config = tiny_config();
  const QrmPlanner planner(config);
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);

  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    cache.insert(key, tiny_grid(seed), planner.plan(tiny_grid(seed)));

  const exec::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 5u);
  // Exactly the three newest insertions survive, in spite of the chains.
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    EXPECT_EQ(cache.find(key, tiny_grid(seed)), nullptr) << "seed " << seed << " should be evicted";
  for (std::uint64_t seed = 6; seed <= 8; ++seed)
    EXPECT_NE(cache.find(key, tiny_grid(seed)), nullptr) << "seed " << seed << " should survive";

  // Re-inserting an evicted grid works and evicts the now-oldest (seed 6).
  cache.insert(key, tiny_grid(1), planner.plan(tiny_grid(1)));
  EXPECT_NE(cache.find(key, tiny_grid(1)), nullptr);
  EXPECT_EQ(cache.find(key, tiny_grid(6)), nullptr);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 6u);
}

TEST(PlanCache, DuplicateInsertUnderCollisionsDoesNotDesyncAccounting) {
  // First-insert-wins must hold inside a chained bucket too: a duplicate
  // insert neither grows entries_ nor queues a second eviction ticket for
  // the same entry (which would make a later eviction pop a live one).
  exec::PlanCacheConfig cache_config;
  cache_config.key_bits = 1;
  cache_config.max_entries = 2;
  exec::PlanCache cache(cache_config);
  const QrmConfig config = tiny_config();
  const QrmPlanner planner(config);
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);

  const OccupancyGrid grid = tiny_grid(1);
  const std::shared_ptr<const PlanResult> first = cache.insert(key, grid, planner.plan(grid));
  EXPECT_EQ(cache.insert(key, grid, planner.plan(grid)), first);
  EXPECT_EQ(cache.stats().entries, 1u);

  // Fill to capacity and push one more: the duplicate never double-counted,
  // so exactly one eviction fires and it takes the oldest real entry.
  cache.insert(key, tiny_grid(2), planner.plan(tiny_grid(2)));
  cache.insert(key, tiny_grid(3), planner.plan(tiny_grid(3)));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(key, grid), nullptr);
  EXPECT_NE(cache.find(key, tiny_grid(2)), nullptr);
  EXPECT_NE(cache.find(key, tiny_grid(3)), nullptr);
}

TEST(PlanCache, RejectsFullWidthKeyMask) {
  exec::PlanCacheConfig cache_config;
  cache_config.key_bits = 64;  // the mask shift would be UB; must be rejected
  EXPECT_THROW((void)exec::PlanCache(cache_config), PreconditionError);
}

TEST(PlanCache, ClearResetsEverything) {
  const QrmConfig config = tiny_config();
  const std::uint64_t key = exec::PlanCache::config_key("qrm", config);
  exec::PlanCache cache;
  const OccupancyGrid grid = tiny_grid(1);
  cache.insert(key, grid, QrmPlanner(config).plan(grid));
  (void)cache.find(key, grid);
  cache.clear();
  const exec::PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(cache.find(key, grid), nullptr);
}

/// The wiring test: a captured batch of identical grids (the Pattern
/// scenario shape) must produce the same fingerprint with the cache on or
/// off, while the cached run actually hits.
TEST(PlanCache, BatchPlannerFingerprintUnchangedAndHitsOnIdenticalShots) {
  const OccupancyGrid pattern = load_pattern(16, 16, Pattern::Checkerboard);
  const std::vector<OccupancyGrid> captured(8, pattern);

  batch::BatchConfig config;
  config.plan.target = centered_region(16, 16, 8, 8);
  config.exec.workers = 2;
  config.max_rounds = 4;

  const std::uint64_t cold_fingerprint = batch::BatchPlanner(config).run(captured).fingerprint();

  config.exec.plan_cache = std::make_shared<exec::PlanCache>();
  const std::uint64_t cached_fingerprint =
      batch::BatchPlanner(config).run(captured).fingerprint();

  EXPECT_EQ(cached_fingerprint, cold_fingerprint);
  const exec::PlanCacheStats stats = config.exec.plan_cache->stats();
  // All 8 shots plan the identical first-round grid. Hit counts are
  // measurement, not outcome: each of the 2 workers may cold-plan that
  // cell concurrently before either inserts, so at least 8 - workers of
  // the first-round plans must hit (later rounds diverge per shot).
  EXPECT_GE(stats.hits, 8u - 2u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(PlanCache, SharedAcrossBatchesReusesPlans) {
  const OccupancyGrid pattern = load_pattern(16, 16, Pattern::RowStripes);
  const std::vector<OccupancyGrid> captured(4, pattern);

  batch::BatchConfig config;
  config.plan.target = centered_region(16, 16, 8, 8);
  config.exec.workers = 2;
  config.max_rounds = 3;
  config.exec.plan_cache = std::make_shared<exec::PlanCache>();

  const batch::BatchReport first = batch::BatchPlanner(config).run(captured);
  const exec::PlanCacheStats after_first = config.exec.plan_cache->stats();
  const batch::BatchReport second = batch::BatchPlanner(config).run(captured);
  const exec::PlanCacheStats after_second = config.exec.plan_cache->stats();

  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  // The second batch replays the same shots against a warm cache: every
  // plan it needs is already present, so misses do not grow.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GT(after_second.hits, after_first.hits);
}

}  // namespace
}  // namespace qrm

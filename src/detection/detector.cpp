#include "detection/detector.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qrm {

namespace {

std::vector<double> site_integrals(const FluorescenceImage& image, std::int32_t grid_height,
                                   std::int32_t grid_width, std::int32_t pps) {
  std::vector<double> integrals;
  integrals.reserve(static_cast<std::size_t>(grid_height) *
                    static_cast<std::size_t>(grid_width));
  for (std::int32_t r = 0; r < grid_height; ++r)
    for (std::int32_t c = 0; c < grid_width; ++c)
      integrals.push_back(image.integrate(r * pps, c * pps, pps, pps));
  return integrals;
}

double two_class_threshold(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double threshold = 0.5 * (lo + hi);
  // Iterate class-mean midpoint to a fixed point (converges quickly on the
  // bimodal bright/dark distribution).
  for (int iter = 0; iter < 32; ++iter) {
    double dark_sum = 0.0;
    double bright_sum = 0.0;
    std::size_t dark_n = 0;
    std::size_t bright_n = 0;
    for (const double v : values) {
      if (!meets_threshold(v, threshold)) {
        dark_sum += v;
        ++dark_n;
      } else {
        bright_sum += v;
        ++bright_n;
      }
    }
    if (dark_n == 0 || bright_n == 0) break;
    const double next =
        0.5 * (dark_sum / static_cast<double>(dark_n) + bright_sum / static_cast<double>(bright_n));
    if (std::abs(next - threshold) < 1e-9) break;
    threshold = next;
  }
  return threshold;
}

}  // namespace

double auto_threshold(const FluorescenceImage& image, std::int32_t grid_height,
                      std::int32_t grid_width, std::int32_t pixels_per_site) {
  QRM_EXPECTS(grid_height > 0 && grid_width > 0 && pixels_per_site > 0);
  return two_class_threshold(site_integrals(image, grid_height, grid_width, pixels_per_site));
}

OccupancyGrid detect_atoms(const FluorescenceImage& image, std::int32_t grid_height,
                           std::int32_t grid_width, const DetectionConfig& config) {
  QRM_EXPECTS(grid_height > 0 && grid_width > 0 && config.pixels_per_site > 0);
  QRM_EXPECTS_MSG(std::isfinite(config.threshold_bias) && config.threshold_bias > 0.0,
                  "threshold_bias must be finite and positive");
  QRM_EXPECTS_MSG(image.height() >= grid_height * config.pixels_per_site &&
                      image.width() >= grid_width * config.pixels_per_site,
                  "image too small for the requested grid geometry");
  const std::vector<double> integrals =
      site_integrals(image, grid_height, grid_width, config.pixels_per_site);
  const double threshold =
      (config.threshold_photons >= 0.0 ? config.threshold_photons
                                       : two_class_threshold(integrals)) *
      config.threshold_bias;

  OccupancyGrid grid(grid_height, grid_width);
  std::size_t index = 0;
  for (std::int32_t r = 0; r < grid_height; ++r)
    for (std::int32_t c = 0; c < grid_width; ++c, ++index)
      if (meets_threshold(integrals[index], threshold)) grid.set({r, c});
  return grid;
}

DetectionErrors compare_detection(const OccupancyGrid& truth, const OccupancyGrid& detected) {
  QRM_EXPECTS(truth.height() == detected.height() && truth.width() == detected.width());
  DetectionErrors errors;
  for (std::int32_t r = 0; r < truth.height(); ++r) {
    for (std::int32_t c = 0; c < truth.width(); ++c) {
      const bool real = truth.occupied({r, c});
      const bool seen = detected.occupied({r, c});
      if (seen && !real) ++errors.false_positives;
      if (!seen && real) ++errors.false_negatives;
    }
  }
  return errors;
}

OccupancyGrid inject_detection_errors(const OccupancyGrid& truth, double p_false_negative,
                                      double p_false_positive, std::uint64_t seed) {
  QRM_EXPECTS(p_false_negative >= 0.0 && p_false_negative <= 1.0);
  QRM_EXPECTS(p_false_positive >= 0.0 && p_false_positive <= 1.0);
  OccupancyGrid out(truth.height(), truth.width());
  Rng rng(seed);
  for (std::int32_t r = 0; r < truth.height(); ++r) {
    for (std::int32_t c = 0; c < truth.width(); ++c) {
      const bool real = truth.occupied({r, c});
      const bool seen = real ? !rng.bernoulli(p_false_negative) : rng.bernoulli(p_false_positive);
      if (seen) out.set({r, c});
    }
  }
  return out;
}

}  // namespace qrm

// Tests for the FPGA resource model: trends, calibration anchors, breakdown
// consistency, and device fit.

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"
#include "resources/model.hpp"
#include "util/stats.hpp"

namespace qrm::res {
namespace {

TEST(Resources, DeviceSpecs) {
  const DeviceSpec d = zcu216();
  EXPECT_EQ(d.luts, 425'280u);
  EXPECT_EQ(d.ffs, 850'560u);
  EXPECT_EQ(d.bram36, 1080u);
}

TEST(Resources, Fig8AnchorAtW90) {
  // Paper Fig. 8: at a 90x90 initial array, LUT 6.31% and FF 6.19% on the
  // XCZU49DR; the model is calibrated to land near those anchors.
  const Utilization u = estimate_accelerator(90);
  const DeviceSpec d = zcu216();
  EXPECT_NEAR(u.lut_fraction(d), 0.0631, 0.008);
  EXPECT_NEAR(u.ff_fraction(d), 0.0619, 0.008);
}

TEST(Resources, BramFlatAcrossSizes) {
  const std::uint32_t bram10 = estimate_accelerator(10).bram36;
  for (const std::int32_t w : {30, 50, 70, 90}) {
    EXPECT_EQ(estimate_accelerator(w).bram36, bram10)
        << "BRAM must stay flat across array sizes (paper Fig. 8)";
  }
}

TEST(Resources, LutFfLinearWithFfSlopeSteeper) {
  std::vector<double> ws, luts, ffs;
  const DeviceSpec d = zcu216();
  for (const std::int32_t w : {10, 30, 50, 70, 90}) {
    const Utilization u = estimate_accelerator(w);
    ws.push_back(w);
    luts.push_back(u.lut_fraction(d));
    ffs.push_back(u.ff_fraction(d));
  }
  const auto lut_fit = stats::linear_fit(ws, luts);
  const auto ff_fit = stats::linear_fit(ws, ffs);
  EXPECT_GT(lut_fit.r_squared, 0.999) << "LUT trend must be linear";
  EXPECT_GT(ff_fit.r_squared, 0.999) << "FF trend must be linear";
  EXPECT_GT(ff_fit.slope, lut_fit.slope)
      << "FF utilisation must grow slightly faster than LUT (paper Fig. 8)";
  for (std::size_t i = 1; i < ws.size(); ++i) {
    EXPECT_GT(luts[i], luts[i - 1]);
    EXPECT_GT(ffs[i], ffs[i - 1]);
  }
}

TEST(Resources, QpmIsRoughlyHalfOfGrowth) {
  // Paper Sec. V-C: "about half of the resources are occupied by the four
  // QPM, and the other half belongs to the logic to integrate the outputs".
  const auto breakdown = estimate_breakdown(90);
  Utilization qpm, rest;
  for (const auto& m : breakdown) {
    if (m.module.find("QPM") != std::string::npos) {
      qpm += m.usage;
    } else {
      rest += m.usage;
    }
  }
  const double qpm_share =
      static_cast<double>(qpm.ffs) / static_cast<double>(qpm.ffs + rest.ffs);
  EXPECT_GT(qpm_share, 0.3);
  EXPECT_LT(qpm_share, 0.6);
}

TEST(Resources, BreakdownSumsToTotal) {
  for (const std::int32_t w : {10, 50, 90}) {
    Utilization sum;
    for (const auto& m : estimate_breakdown(w)) sum += m.usage;
    const Utilization total = estimate_accelerator(w);
    EXPECT_EQ(sum.luts, total.luts);
    EXPECT_EQ(sum.ffs, total.ffs);
    EXPECT_EQ(sum.bram36, total.bram36);
  }
}

TEST(Resources, PathwayAblationScalesQpm) {
  ResourceModelConfig one;
  one.quadrant_pathways = 1;
  ResourceModelConfig four;
  four.quadrant_pathways = 4;
  const Utilization u1 = estimate_accelerator(50, one);
  const Utilization u4 = estimate_accelerator(50, four);
  EXPECT_LT(u1.ffs, u4.ffs);
  const std::uint64_t kernel_ffs = estimate_shift_kernel(25).ffs;
  EXPECT_EQ(u4.ffs - u1.ffs, 3 * kernel_ffs);
}

TEST(Resources, FitsDeviceWithLargeHeadroom) {
  // Paper: "ensuring enough space for other essential functional blocks".
  const Utilization u = estimate_accelerator(90);
  EXPECT_TRUE(fits(u, zcu216(), 0.9)) << "90x90 design must use <10% of the device";
  EXPECT_FALSE(fits(u, DeviceSpec{"tiny", 1000, 1000, 1}));
}

TEST(Resources, RejectsOddWidthAndBadMargin) {
  EXPECT_THROW((void)estimate_accelerator(15), PreconditionError);
  EXPECT_THROW((void)fits(Utilization{}, zcu216(), 1.5), PreconditionError);
}

TEST(Resources, WiderPacketsCostMoreInfrastructure) {
  EXPECT_GT(estimate_infrastructure(2048).ffs, estimate_infrastructure(256).ffs);
  ResourceModelConfig narrow;
  narrow.packet_bits = 128;
  ResourceModelConfig wide;
  wide.packet_bits = 2048;
  EXPECT_GT(estimate_accelerator(50, wide).luts, estimate_accelerator(50, narrow).luts);
}

}  // namespace
}  // namespace qrm::res

#pragma once
/// \file direction.hpp
/// Cardinal move directions on the lattice. Row 0 is the top row, so North
/// decreases the row index and West decreases the column index.

#include <array>
#include <cstdint>
#include <string>

#include "lattice/coord.hpp"

namespace qrm {

enum class Direction : std::uint8_t { North, South, West, East };

inline constexpr std::array<Direction, 4> kAllDirections{Direction::North, Direction::South,
                                                         Direction::West, Direction::East};

/// Unit displacement of one step in `dir`.
[[nodiscard]] constexpr Coord direction_delta(Direction dir) noexcept {
  switch (dir) {
    case Direction::North: return {-1, 0};
    case Direction::South: return {+1, 0};
    case Direction::West: return {0, -1};
    case Direction::East: return {0, +1};
  }
  return {0, 0};
}

[[nodiscard]] constexpr Direction opposite(Direction dir) noexcept {
  switch (dir) {
    case Direction::North: return Direction::South;
    case Direction::South: return Direction::North;
    case Direction::West: return Direction::East;
    case Direction::East: return Direction::West;
  }
  return dir;
}

/// True for West/East (moves along a row).
[[nodiscard]] constexpr bool is_horizontal(Direction dir) noexcept {
  return dir == Direction::West || dir == Direction::East;
}

[[nodiscard]] constexpr const char* to_cstring(Direction dir) noexcept {
  switch (dir) {
    case Direction::North: return "N";
    case Direction::South: return "S";
    case Direction::West: return "W";
    case Direction::East: return "E";
  }
  return "?";
}

[[nodiscard]] inline std::string to_string(Direction dir) { return to_cstring(dir); }

/// Coordinate after `steps` unit moves in `dir`.
[[nodiscard]] constexpr Coord moved(Coord c, Direction dir, std::int32_t steps) noexcept {
  const Coord d = direction_delta(dir);
  return {c.row + d.row * steps, c.col + d.col * steps};
}

}  // namespace qrm

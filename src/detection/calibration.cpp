#include "detection/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/assert.hpp"

namespace qrm {

double CalibrationDrift::factor(std::uint64_t shot_index) const noexcept {
  if (shape == DriftShape::None || amplitude == 0.0 || period == 0) return 1.0;
  const double phase =
      static_cast<double>(shot_index % period) / static_cast<double>(period);
  if (shape == DriftShape::Ramp) return 1.0 + amplitude * phase;
  return 1.0 + amplitude * std::sin(2.0 * std::numbers::pi * phase);
}

namespace {

std::vector<double> integrals_of(const FluorescenceImage& image, const OccupancyGrid& truth,
                                 std::int32_t pps) {
  QRM_EXPECTS(pps > 0);
  QRM_EXPECTS(image.height() >= truth.height() * pps && image.width() >= truth.width() * pps);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(truth.height()) * static_cast<std::size_t>(truth.width()));
  for (std::int32_t r = 0; r < truth.height(); ++r)
    for (std::int32_t c = 0; c < truth.width(); ++c)
      out.push_back(image.integrate(r * pps, c * pps, pps, pps));
  return out;
}

}  // namespace

std::vector<ThresholdPoint> threshold_sweep(const FluorescenceImage& image,
                                            const OccupancyGrid& truth,
                                            std::int32_t pixels_per_site, std::int32_t points) {
  QRM_EXPECTS(points >= 2);
  const std::vector<double> integrals = integrals_of(image, truth, pixels_per_site);
  double lo = integrals.front();
  double hi = integrals.front();
  for (const double v : integrals) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  const auto sites = static_cast<double>(integrals.size());
  std::vector<ThresholdPoint> sweep;
  sweep.reserve(static_cast<std::size_t>(points));
  for (std::int32_t i = 0; i < points; ++i) {
    ThresholdPoint p;
    p.threshold = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    std::size_t index = 0;
    for (std::int32_t r = 0; r < truth.height(); ++r) {
      for (std::int32_t c = 0; c < truth.width(); ++c, ++index) {
        const bool detected = meets_threshold(integrals[index], p.threshold);
        const bool real = truth.occupied({r, c});
        if (detected && !real) ++p.false_positives;
        if (!detected && real) ++p.false_negatives;
      }
    }
    p.error_rate = static_cast<double>(p.false_positives + p.false_negatives) / sites;
    sweep.push_back(p);
  }
  return sweep;
}

ThresholdPoint best_threshold(const std::vector<ThresholdPoint>& sweep) {
  QRM_EXPECTS(!sweep.empty());
  ThresholdPoint best = sweep.front();
  for (const auto& p : sweep) {
    if (p.false_positives + p.false_negatives < best.false_positives + best.false_negatives) {
      best = p;
    }
  }
  return best;
}

double site_separation_snr(const FluorescenceImage& image, const OccupancyGrid& truth,
                           std::int32_t pixels_per_site) {
  const std::vector<double> integrals = integrals_of(image, truth, pixels_per_site);
  double bright_sum = 0.0;
  double dark_sum = 0.0;
  double bright_sq = 0.0;
  double dark_sq = 0.0;
  std::size_t bright_n = 0;
  std::size_t dark_n = 0;
  std::size_t index = 0;
  for (std::int32_t r = 0; r < truth.height(); ++r) {
    for (std::int32_t c = 0; c < truth.width(); ++c, ++index) {
      const double v = integrals[index];
      if (truth.occupied({r, c})) {
        bright_sum += v;
        bright_sq += v * v;
        ++bright_n;
      } else {
        dark_sum += v;
        dark_sq += v * v;
        ++dark_n;
      }
    }
  }
  if (bright_n == 0 || dark_n == 0) return 0.0;
  const double mb = bright_sum / static_cast<double>(bright_n);
  const double md = dark_sum / static_cast<double>(dark_n);
  const double vb = bright_sq / static_cast<double>(bright_n) - mb * mb;
  const double vd = dark_sq / static_cast<double>(dark_n) - md * md;
  const double denom = std::sqrt(std::max(vb + vd, 1e-12));
  return (mb - md) / denom;
}

}  // namespace qrm

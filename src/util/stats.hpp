#pragma once
/// \file stats.hpp
/// Small descriptive-statistics helpers used by benches and tests
/// (seed-averaged latencies, resource-trend fits, detection error rates).

#include <cstddef>
#include <span>
#include <string>

namespace qrm::stats {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0,100]. Copies and sorts internally.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double min(std::span<const double> xs) noexcept;
[[nodiscard]] double max(std::span<const double> xs) noexcept;

/// Least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// One-line human-readable summary "mean=.. sd=.. min=.. max=.. n=..".
[[nodiscard]] std::string summarize(std::span<const double> xs);

}  // namespace qrm::stats

#pragma once
/// \file physical.hpp
/// Physical execution-time model for a schedule.
///
/// The paper accelerates *analysis* latency; the atoms still take physical
/// time to move (AOD frequency ramps plus settle time). This model lets
/// benches report both numbers and show when analysis stops being the
/// bottleneck. Constants are synthetic but representative of published
/// tweezer systems (tens of microseconds per elementary move).

#include <cstdint>

#include "moves/schedule.hpp"

namespace qrm {

struct PhysicalModel {
  double move_overhead_us = 20.0;  ///< per parallel move: ramp setup + settle
  double per_step_us = 10.0;       ///< per unit step of lockstep displacement

  /// Duration of one parallel move (independent of how many atoms ride it —
  /// that is the whole point of multi-tweezer parallelism).
  [[nodiscard]] double move_duration_us(const ParallelMove& move) const noexcept {
    return move_overhead_us + per_step_us * static_cast<double>(move.steps);
  }

  /// Total sequential execution time of a schedule.
  [[nodiscard]] double schedule_duration_us(const Schedule& schedule) const noexcept {
    double total = 0.0;
    for (const auto& m : schedule.moves()) total += move_duration_us(m);
    return total;
  }
};

}  // namespace qrm

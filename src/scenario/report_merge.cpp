#include "scenario/report_merge.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace qrm::scenario {

namespace {

[[noreturn]] void merge_fail(const std::string& what) {
  throw PreconditionError("report merge error: " + what);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

/// Sort rows/blocks by index and require the union to be exactly 0..N-1 —
/// the property that makes "merged equals sequential" well-defined.
template <typename T>
void sort_and_check_indices(std::vector<std::pair<std::size_t, T>>& rows) {
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].first != i)
      merge_fail("scenario indices do not cover 0.." + std::to_string(rows.size() - 1) +
                 " exactly once (saw index " + std::to_string(rows[i].first) + " at rank " +
                 std::to_string(i) + ")");
  }
}

std::size_t parse_index(const std::string& text, const std::string& context) {
  std::size_t index = 0;
  const auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), index);
  if (text.empty() || ec != std::errc{} || end != text.data() + text.size())
    merge_fail(context + ": '" + text + "' is not a scenario index");
  return index;
}

std::uint64_t parse_hex_fingerprint(const std::string& text) {
  if (text.rfind("0x", 0) != 0) merge_fail("fingerprint '" + text + "' is not 0x-hex");
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data() + 2, text.data() + text.size(), value, 16);
  if (ec != std::errc{} || end != text.data() + text.size())
    merge_fail("fingerprint '" + text + "' is not 0x-hex");
  return value;
}

}  // namespace

std::string merge_csv_reports(const std::vector<std::string>& shard_texts) {
  QRM_EXPECTS_MSG(!shard_texts.empty(), "report merge needs at least one shard");

  std::string header;
  std::vector<std::pair<std::size_t, std::string>> rows;
  for (std::size_t shard = 0; shard < shard_texts.size(); ++shard) {
    const std::vector<std::string> lines = split_lines(shard_texts[shard]);
    if (lines.empty()) merge_fail("shard " + std::to_string(shard) + " is empty");
    if (lines[0].rfind("index,", 0) != 0)
      merge_fail("shard " + std::to_string(shard) + " does not start with the index column");
    if (lines[0].find("wall_ms") != std::string::npos)
      merge_fail("shard " + std::to_string(shard) +
                 " is a full-mode report (has measurement columns); shards must be written "
                 "with ReportMode::Deterministic");
    if (header.empty())
      header = lines[0];
    else if (lines[0] != header)
      merge_fail("shard " + std::to_string(shard) + " header differs from shard 0");

    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      // The index is the first column and always a plain integer, so the
      // prefix before the first comma is safe to read regardless of any
      // quoting later in the row.
      const auto comma = lines[i].find(',');
      if (comma == std::string::npos)
        merge_fail("shard " + std::to_string(shard) + " row '" + lines[i] + "' has no columns");
      rows.emplace_back(parse_index(lines[i].substr(0, comma), "csv row"), lines[i]);
    }
  }
  sort_and_check_indices(rows);

  std::string merged = header + "\n";
  for (const auto& [index, row] : rows) merged += row + "\n";
  return merged;
}

std::string merge_json_reports(const std::vector<std::string>& shard_texts) {
  QRM_EXPECTS_MSG(!shard_texts.empty(), "report merge needs at least one shard");

  // Each block is the exact lines write_json emitted for one scenario,
  // `    {` through `    }` (shard-local trailing comma stripped).
  std::vector<std::pair<std::size_t, std::vector<std::string>>> blocks;
  for (std::size_t shard = 0; shard < shard_texts.size(); ++shard) {
    const std::string context = "shard " + std::to_string(shard);
    const std::vector<std::string> lines = split_lines(shard_texts[shard]);
    bool deterministic = false;
    bool in_block = false;
    std::vector<std::string> block;
    std::size_t block_index = 0;
    bool saw_index = false;
    for (const std::string& line : lines) {
      if (line == "  \"mode\": \"deterministic\",") deterministic = true;
      if (line == "  \"mode\": \"full\",")
        merge_fail(context + " is a full-mode report; shards must be written with "
                             "ReportMode::Deterministic");
      if (line == "    {") {
        if (in_block) merge_fail(context + ": nested scenario block");
        in_block = true;
        block = {line};
        saw_index = false;
        continue;
      }
      if (!in_block) continue;
      if (line == "    }" || line == "    },") {
        block.push_back("    }");
        if (!saw_index) merge_fail(context + ": scenario block without an index field");
        blocks.emplace_back(block_index, std::move(block));
        in_block = false;
        continue;
      }
      block.push_back(line);
      const std::string index_prefix = "      \"index\": ";
      if (line.rfind(index_prefix, 0) == 0) {
        std::string value = line.substr(index_prefix.size());
        if (!value.empty() && value.back() == ',') value.pop_back();
        block_index = parse_index(value, context);
        saw_index = true;
      }
    }
    if (in_block) merge_fail(context + ": unterminated scenario block");
    if (!deterministic) merge_fail(context + " is not a deterministic-mode campaign report");
  }
  sort_and_check_indices(blocks);

  // Recompute the campaign envelope from the preserved per-scenario
  // fingerprints — the same order-sensitive mix CampaignReport::fingerprint
  // performs, so the merged envelope equals the sequential run's.
  std::uint64_t campaign = fnv::kOffset;
  fnv::mix_u64(campaign, blocks.size());
  const std::string fingerprint_prefix = "      \"fingerprint\": \"";
  for (const auto& [index, block] : blocks) {
    std::string fingerprint;
    for (const std::string& line : block) {
      if (line.rfind(fingerprint_prefix, 0) == 0) {
        fingerprint = line.substr(fingerprint_prefix.size());
        if (fingerprint.size() < 2 || fingerprint.back() != '"')
          merge_fail("malformed fingerprint line '" + line + "'");
        fingerprint.pop_back();
      }
    }
    if (fingerprint.empty())
      merge_fail("scenario block " + std::to_string(index) + " has no fingerprint");
    fnv::mix_u64(campaign, parse_hex_fingerprint(fingerprint));
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"report\": \"qrm-scenario-campaign\",\n";
  os << "  \"mode\": \"deterministic\",\n";
  os << "  \"scenario_count\": " << blocks.size() << ",\n";
  os << "  \"fingerprint\": \"0x" << std::hex << campaign << std::dec << "\",\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::vector<std::string>& block = blocks[i].second;
    for (std::size_t line = 0; line < block.size(); ++line) {
      os << block[line];
      if (line + 1 == block.size() && i + 1 < blocks.size()) os << ",";
      os << "\n";
    }
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace qrm::scenario

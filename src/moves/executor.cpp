#include "moves/executor.hpp"

#include <set>

#include "moves/aod.hpp"
#include "util/assert.hpp"

namespace qrm {

std::optional<std::string> validate_move(const OccupancyGrid& grid, const ParallelMove& move,
                                         bool check_aod) {
  if (move.sites.empty()) return "move has no sites";
  if (move.steps < 1) return "move step count must be >= 1";

  // Source membership: a bit grid for large moves (O(1) probes, one
  // allocation), a std::set below the crossover where the grid's memset
  // would dominate. The outcome is identical either way.
  const bool big = move.sites.size() >= 32;
  OccupancyGrid member;
  std::set<Coord> sources;
  if (big) member = OccupancyGrid(grid.height(), grid.width());
  for (const Coord& s : move.sites) {
    if (!grid.in_bounds(s)) return "source out of bounds: " + qrm::to_string(s);
    if (!grid.occupied(s)) return "source holds no atom: " + qrm::to_string(s);
    if (big) {
      if (member.occupied(s)) return "duplicate source: " + qrm::to_string(s);
      member.set(s);
    } else if (!sources.insert(s).second) {
      return "duplicate source: " + qrm::to_string(s);
    }
  }
  const auto is_source = [&](Coord c) { return big ? member.occupied(c) : sources.contains(c); };
  for (const Coord& s : move.sites) {
    for (std::int32_t k = 1; k <= move.steps; ++k) {
      const Coord cell = moved(s, move.dir, k);
      if (!grid.in_bounds(cell)) {
        return "swept path leaves the grid: " + qrm::to_string(s) + " -> " + qrm::to_string(cell);
      }
      // Lockstep: a cell occupied by another member of this move is vacated
      // simultaneously and cannot collide; any other atom is a collision.
      if (grid.occupied(cell) && !is_source(cell)) {
        return "collision with bystander atom at " + qrm::to_string(cell) + " while moving " +
               qrm::to_string(s);
      }
    }
  }
  if (check_aod) {
    if (auto violation = aod_violation(grid, move)) return violation;
  }
  return std::nullopt;
}

void apply_move_unchecked(OccupancyGrid& grid, const ParallelMove& move) {
  for (const Coord& s : move.sites) grid.clear(s);
  for (const Coord& s : move.sites) {
    const Coord d = moved(s, move.dir, move.steps);
    QRM_ENSURES_MSG(!grid.occupied(d), "executor: destination already occupied");
    grid.set(d);
  }
}

void apply_move(OccupancyGrid& grid, const ParallelMove& move, bool check_aod) {
  if (auto violation = validate_move(grid, move, check_aod)) {
    throw PreconditionError("invalid move: " + *violation);
  }
  apply_move_unchecked(grid, move);
}

ExecutionReport run_schedule(OccupancyGrid& grid, const Schedule& schedule,
                             const ExecutionOptions& options) {
  ExecutionReport report;
  for (const auto& move : schedule.moves()) {
    if (auto violation = validate_move(grid, move, options.check_aod)) {
      report.ok = false;
      report.error = "move " + std::to_string(report.moves_applied) + ": " + *violation;
      return report;
    }
    apply_move_unchecked(grid, move);
    ++report.moves_applied;
    report.atoms_displaced += move.sites.size();
  }
  return report;
}

}  // namespace qrm

// Determinism regression: the planner must be a pure function of its
// inputs — same RNG seed and config => bit-identical PlanResult across
// independent runs. Guards future parallelization of the planner.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/planner.hpp"
#include "loading/loader.hpp"
#include "testutil.hpp"

namespace qrm {
namespace {

void expect_identical(const PlanResult& a, const PlanResult& b) {
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.final_grid, b.final_grid);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.target_filled, b.stats.target_filled);
  EXPECT_EQ(a.stats.defects_remaining, b.stats.defects_remaining);
  EXPECT_EQ(a.stats.feasible, b.stats.feasible);
  ASSERT_EQ(a.stats.passes.size(), b.stats.passes.size());
  for (std::size_t i = 0; i < a.stats.passes.size(); ++i) {
    EXPECT_EQ(a.stats.passes[i].axis, b.stats.passes[i].axis);
    EXPECT_EQ(a.stats.passes[i].lines_with_motion, b.stats.passes[i].lines_with_motion);
    EXPECT_EQ(a.stats.passes[i].unit_rounds, b.stats.passes[i].unit_rounds);
    EXPECT_EQ(a.stats.passes[i].atoms_moved, b.stats.passes[i].atoms_moved);
  }
}

TEST(Determinism, SameSeedSamePlanBalanced) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const OccupancyGrid a = testutil::seeded_grid(30, 30, 0.55, seed);
    const OccupancyGrid b = testutil::seeded_grid(30, 30, 0.55, seed);
    ASSERT_EQ(a, b) << "loader must be deterministic per seed";
    expect_identical(plan_qrm(a, 18), plan_qrm(b, 18));
  }
}

TEST(Determinism, SameSeedSamePlanCompact) {
  const OccupancyGrid a = testutil::seeded_grid(24, 24, 0.6, 7);
  const OccupancyGrid b = testutil::seeded_grid(24, 24, 0.6, 7);
  expect_identical(plan_qrm(a, 8, PlanMode::Compact), plan_qrm(b, 8, PlanMode::Compact));
}

TEST(Determinism, RepeatedPlansFromOneGridAreIdentical) {
  // Re-planning the *same* grid object twice must not depend on hidden
  // mutable state inside the planner.
  const OccupancyGrid g = testutil::seeded_grid(20, 20, 0.5, 11);
  const PlanResult first = plan_qrm(g, 12);
  const PlanResult second = plan_qrm(g, 12);
  expect_identical(first, second);
  testutil::expect_plan_valid(g, first);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const OccupancyGrid a = testutil::seeded_grid(30, 30, 0.55, 1);
  const OccupancyGrid b = testutil::seeded_grid(30, 30, 0.55, 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace qrm

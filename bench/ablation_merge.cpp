// Ablation of the cross-quadrant command merge (paper Sec. IV-C): merging
// the west-side (NW+SW) and east-side (NE+SE) shift commands and dropping
// empty shifts reduces the number of AWG commands and hence the physical
// execution time of the schedule.

#include "bench_common.hpp"
#include "awg/waveform.hpp"
#include "core/planner.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

PlanResult plan_with_merge(std::int32_t size, bool merge, std::uint64_t seed) {
  QrmConfig config;
  config.target = centered_square(size, paper_target(size));
  config.merge_quadrants = merge;
  return QrmPlanner(config).plan(workload(size, seed));
}

void print_table() {
  print_header("Ablation — cross-quadrant command merge + empty-shift elimination",
               "paper Sec. IV-C: NW+SW / NE+SE shifts execute as shared commands");
  TextTable table({"W", "commands (merged)", "commands (unmerged)", "reduction",
                   "physical time saved"});
  const awg::AodCalibration cal;
  for (const std::int32_t size : {20, 30, 50}) {
    const PlanResult merged = plan_with_merge(size, true, 1);
    const PlanResult unmerged = plan_with_merge(size, false, 1);
    const double merged_dur = awg::build_waveform_plan(merged.schedule, cal).total_duration_us;
    const double unmerged_dur =
        awg::build_waveform_plan(unmerged.schedule, cal).total_duration_us;
    table.add_row({std::to_string(size), std::to_string(merged.schedule.size()),
                   std::to_string(unmerged.schedule.size()),
                   fmt_speedup(static_cast<double>(unmerged.schedule.size()) /
                               static_cast<double>(merged.schedule.size())),
                   fmt_time_us(unmerged_dur - merged_dur)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_PlanMerged(benchmark::State& state) {
  const OccupancyGrid grid = workload(30, 1);
  QrmConfig config;
  config.target = centered_square(30, 18);
  config.merge_quadrants = state.range(0) != 0;
  const QrmPlanner planner(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(grid));
  }
}
BENCHMARK(BM_PlanMerged)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

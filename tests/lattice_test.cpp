// Tests for lattice: grid operations, flips, regions, quadrant geometry.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "lattice/direction.hpp"
#include "lattice/grid.hpp"
#include "lattice/quadrant.hpp"
#include "lattice/region.hpp"

namespace qrm {
namespace {

TEST(Region, CenteredPlacement) {
  const Region r = centered_square(50, 30);
  EXPECT_EQ(r.row0, 10);
  EXPECT_EQ(r.col0, 10);
  EXPECT_EQ(r.rows, 30);
  EXPECT_EQ(r.area(), 900);
  EXPECT_TRUE(r.within(50, 50));
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({39, 39}));
  EXPECT_FALSE(r.contains({40, 10}));
  EXPECT_THROW((void)centered_square(10, 12), PreconditionError);
}

TEST(Region, RectangularCentering) {
  const Region r = centered_region(20, 40, 10, 16);
  EXPECT_EQ(r.row0, 5);
  EXPECT_EQ(r.col0, 12);
}

TEST(Direction, DeltasAndOpposites) {
  EXPECT_EQ(direction_delta(Direction::North), (Coord{-1, 0}));
  EXPECT_EQ(direction_delta(Direction::East), (Coord{0, 1}));
  EXPECT_EQ(opposite(Direction::West), Direction::East);
  EXPECT_EQ(opposite(Direction::South), Direction::North);
  EXPECT_TRUE(is_horizontal(Direction::West));
  EXPECT_FALSE(is_horizontal(Direction::North));
  EXPECT_EQ(moved({5, 5}, Direction::South, 3), (Coord{8, 5}));
}

TEST(Grid, FromStringsAndBasics) {
  const OccupancyGrid g = OccupancyGrid::from_strings({
      "#..",
      ".#.",
      "..#",
  });
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.width(), 3);
  EXPECT_EQ(g.atom_count(), 3);
  EXPECT_TRUE(g.occupied({0, 0}));
  EXPECT_FALSE(g.occupied({0, 1}));
  EXPECT_THROW((void)g.occupied({3, 0}), PreconditionError);
  EXPECT_THROW((void)OccupancyGrid::from_strings({"##", "#"}), PreconditionError);
}

TEST(Grid, RegionQueries) {
  OccupancyGrid g(4, 4);
  const Region r{1, 1, 2, 2};
  EXPECT_EQ(g.atom_count(r), 0);
  EXPECT_FALSE(g.region_full(r));
  EXPECT_EQ(g.defects(r).size(), 4u);
  g.set({1, 1});
  g.set({1, 2});
  g.set({2, 1});
  g.set({2, 2});
  EXPECT_TRUE(g.region_full(r));
  EXPECT_TRUE(g.defects(r).empty());
}

TEST(Grid, RowColumnAccess) {
  OccupancyGrid g(3, 5);
  g.set({1, 0});
  g.set({1, 4});
  EXPECT_EQ(g.row(1).to_string(), "10001");
  g.set({0, 2});
  g.set({2, 2});
  EXPECT_EQ(g.column(2).to_string(), "101");
  BitRow new_col(3);
  new_col.set(0);
  g.set_column(4, new_col);
  EXPECT_TRUE(g.occupied({0, 4}));
  EXPECT_FALSE(g.occupied({1, 4}));
  EXPECT_THROW(g.set_row(0, BitRow(4)), PreconditionError);
}

TEST(Grid, FlipsAreInvolutionsAndMapCoords) {
  const OccupancyGrid g = OccupancyGrid::from_strings({
      "#..#",
      "....",
      ".#..",
      "...#",
  });
  for (const Flip f : {Flip::Horizontal, Flip::Vertical, Flip::Transpose, Flip::Rotate180}) {
    EXPECT_EQ(g.flipped(f).flipped(f), g) << "flip must be self-inverse";
  }
  // map_coord consistency: flipped grid at mapped coordinate equals original.
  for (const Flip f :
       {Flip::None, Flip::Horizontal, Flip::Vertical, Flip::Transpose, Flip::Rotate180}) {
    const OccupancyGrid flipped = g.flipped(f);
    for (std::int32_t r = 0; r < g.height(); ++r)
      for (std::int32_t c = 0; c < g.width(); ++c)
        EXPECT_EQ(flipped.occupied(g.map_coord(f, {r, c})), g.occupied({r, c}));
  }
}

TEST(Grid, TransposeOfRectangular) {
  const OccupancyGrid g = OccupancyGrid::from_strings({
      "#.#..",
      ".#...",
  });
  const OccupancyGrid t = g.flipped(Flip::Transpose);
  EXPECT_EQ(t.height(), 5);
  EXPECT_EQ(t.width(), 2);
  EXPECT_TRUE(t.occupied({0, 0}));
  EXPECT_TRUE(t.occupied({1, 1}));
  EXPECT_TRUE(t.occupied({2, 0}));
}

TEST(Grid, SubgridRoundTrip) {
  OccupancyGrid g(6, 6);
  g.set({2, 3});
  g.set({3, 2});
  const Region r{2, 2, 2, 2};
  const OccupancyGrid sub = g.subgrid(r);
  EXPECT_EQ(sub.atom_count(), 2);
  OccupancyGrid h(6, 6);
  h.set_subgrid(r, sub);
  EXPECT_EQ(h, g);
}

TEST(Grid, ArtHighlightsDefects) {
  OccupancyGrid g(2, 2);
  g.set({0, 0});
  const std::string art = g.to_art(Region{0, 0, 2, 1});
  EXPECT_EQ(art, "O.\nx.\n");
}

TEST(QuadrantGeometry, RequiresEvenDimensions) {
  EXPECT_THROW(QuadrantGeometry(5, 4), PreconditionError);
  EXPECT_THROW(QuadrantGeometry(4, 5), PreconditionError);
  EXPECT_NO_THROW(QuadrantGeometry(4, 6));
}

TEST(QuadrantGeometry, RegionsPartitionTheGrid) {
  const QuadrantGeometry geom(10, 8);
  std::int64_t area = 0;
  for (const Quadrant q : kAllQuadrants) area += geom.global_region(q).area();
  EXPECT_EQ(area, 80);
  EXPECT_EQ(geom.global_region(Quadrant::SE), (Region{5, 4, 5, 4}));
}

TEST(QuadrantGeometry, LocalOriginIsCentreCorner) {
  const QuadrantGeometry geom(10, 10);
  EXPECT_EQ(geom.to_global(Quadrant::NW, {0, 0}), (Coord{4, 4}));
  EXPECT_EQ(geom.to_global(Quadrant::NE, {0, 0}), (Coord{4, 5}));
  EXPECT_EQ(geom.to_global(Quadrant::SW, {0, 0}), (Coord{5, 4}));
  EXPECT_EQ(geom.to_global(Quadrant::SE, {0, 0}), (Coord{5, 5}));
}

TEST(QuadrantGeometry, RoundTripBijection) {
  const QuadrantGeometry geom(12, 16);
  for (std::int32_t r = 0; r < 12; ++r) {
    for (std::int32_t c = 0; c < 16; ++c) {
      const Quadrant q = geom.quadrant_of({r, c});
      const Coord local = geom.to_local(q, {r, c});
      EXPECT_GE(local.row, 0);
      EXPECT_LT(local.row, geom.local_height());
      EXPECT_GE(local.col, 0);
      EXPECT_LT(local.col, geom.local_width());
      EXPECT_EQ(geom.to_global(q, local), (Coord{r, c}));
    }
  }
}

TEST(QuadrantGeometry, DirectionsPointTowardCentre) {
  // Local West (toward local column 0) must be the global direction that
  // approaches the vertical centre line; similarly local North approaches
  // the horizontal centre line.
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::NW, Direction::West),
            Direction::East);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::SW, Direction::West),
            Direction::East);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::NE, Direction::West),
            Direction::West);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::SE, Direction::West),
            Direction::West);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::NW, Direction::North),
            Direction::South);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::NE, Direction::North),
            Direction::South);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::SW, Direction::North),
            Direction::North);
  EXPECT_EQ(QuadrantGeometry::to_global_direction(Quadrant::SE, Direction::North),
            Direction::North);
}

TEST(QuadrantGeometry, ExtractWriteBackRoundTrip) {
  OccupancyGrid g(8, 8);
  // Arbitrary asymmetric pattern.
  g.set({0, 1});
  g.set({3, 3});
  g.set({4, 4});
  g.set({6, 2});
  g.set({1, 7});
  const QuadrantGeometry geom(8, 8);
  OccupancyGrid rebuilt(8, 8);
  for (const Quadrant q : kAllQuadrants) {
    const OccupancyGrid local = geom.extract_local(g, q);
    geom.write_back(rebuilt, q, local);
  }
  EXPECT_EQ(rebuilt, g);
}

TEST(QuadrantGeometry, ExtractPutsCentreAtOrigin) {
  OccupancyGrid g(6, 6);
  g.set({2, 2});  // NW centre-corner cell
  const QuadrantGeometry geom(6, 6);
  const OccupancyGrid local = geom.extract_local(g, Quadrant::NW);
  EXPECT_TRUE(local.occupied({0, 0}));
  EXPECT_EQ(local.atom_count(), 1);
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file bitrow.hpp
/// A fixed-width dynamic bit vector used to represent one lattice row (or
/// column) of trap-occupancy data.
///
/// `BitRow` is the software analogue of the hardware row register in the
/// paper's Shift Kernel (Fig. 6): bit index 0 is the least-significant bit,
/// which after the QRM quadrant flips is the trap *closest to the array
/// centre*. The kernel inspects the LSB, shifts the row right, and records
/// shift commands; `BitRow` provides exactly those primitives plus the word
/// access needed by the 1024-bit AXI packing model.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace qrm {

/// Fixed-width vector of bits with word-level storage (64-bit words,
/// little-endian bit order: bit i lives in word i/64 at position i%64).
///
/// Invariant: bits at positions >= width() are always zero ("canonical" tail).
/// Every mutator re-establishes this by masking the last word, so bulk
/// word-parallel algorithms may read whole words without per-bit bounds
/// checks; writers going through set_word()/assign_words() get the tail
/// masked for them.
class BitRow {
 public:
  using Word = std::uint64_t;
  static constexpr std::uint32_t kWordBits = 64;

  /// Construct an all-zero row of `width` bits. Width may be zero.
  explicit BitRow(std::uint32_t width = 0);

  /// Parse from a string of '0'/'1' (optionally '.'/'#' art, '.'=0, '#'=1).
  /// Character 0 of the string is bit 0 (the centre-most trap).
  [[nodiscard]] static BitRow from_string(std::string_view text);

  /// Number of addressable bits.
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] bool empty() const noexcept { return width_ == 0; }

  /// Read bit `i`. Precondition: i < width(). Defined inline: this is the
  /// innermost operation of every planner hot loop.
  [[nodiscard]] bool test(std::uint32_t i) const {
    QRM_EXPECTS(i < width_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1U;
  }
  /// Write bit `i`. Precondition: i < width().
  void set(std::uint32_t i, bool value = true) {
    QRM_EXPECTS(i < width_);
    const Word mask = Word{1} << (i % kWordBits);
    if (value) {
      words_[i / kWordBits] |= mask;
    } else {
      words_[i / kWordBits] &= ~mask;
    }
  }
  void clear(std::uint32_t i) { set(i, false); }
  /// Set every bit in [0, width()).
  void fill();
  /// Clear every bit.
  void reset() noexcept;

  /// Number of set bits (atoms in this line).
  [[nodiscard]] std::uint32_t count() const noexcept;
  /// Number of set bits in the half-open range [lo, hi). Preconditions:
  /// lo <= hi <= width().
  [[nodiscard]] std::uint32_t count_range(std::uint32_t lo, std::uint32_t hi) const;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }
  /// True when every bit in [0, n) is set. Precondition: n <= width().
  [[nodiscard]] bool all_set_below(std::uint32_t n) const;

  /// Logical shift toward bit 0 by `n` (the hardware "shift right" that the
  /// kernel performs each cycle to expose the next bit at the LSB).
  void shift_toward_lsb(std::uint32_t n);
  /// Logical shift away from bit 0 by `n`; bits shifted past width() are lost.
  void shift_toward_msb(std::uint32_t n);

  /// Index of the lowest zero bit below width(), or width() if full.
  [[nodiscard]] std::uint32_t first_hole() const noexcept;
  /// Index of the lowest set bit, or width() if none.
  [[nodiscard]] std::uint32_t first_atom() const noexcept;
  /// Number of zero bits strictly below position i (holes an atom at i would
  /// traverse under full compaction). Precondition: i <= width().
  [[nodiscard]] std::uint32_t holes_below(std::uint32_t i) const;

  /// Positions of all set bits, ascending.
  [[nodiscard]] std::vector<std::uint32_t> set_positions() const;
  /// Positions of all zero bits below width(), ascending.
  [[nodiscard]] std::vector<std::uint32_t> hole_positions() const;
  /// Call `fn(i)` for each set bit, ascending.
  void for_each_set(const std::function<void(std::uint32_t)>& fn) const;

  /// Row after full compaction toward bit 0: count() ones then zeros.
  [[nodiscard]] BitRow compacted() const;
  /// Displacement of each atom under full compaction toward bit 0, in the
  /// order of ascending source position (value = number of holes below it).
  [[nodiscard]] std::vector<std::uint32_t> compaction_displacements() const;

  /// Reverse bit order (bit i <-> bit width()-1-i); the LDM flip primitive.
  [[nodiscard]] BitRow reversed() const;

  /// Bits [pos, pos+len) as a new BitRow of width `len` (word-level
  /// shift-and-splice). Precondition: pos + len <= width().
  [[nodiscard]] BitRow slice(std::uint32_t pos, std::uint32_t len) const;
  /// Overwrite bits [pos, pos+piece.width()) from `piece`, leaving all other
  /// bits untouched. Precondition: pos + piece.width() <= width().
  void paste(std::uint32_t pos, const BitRow& piece);

  /// Raw word access for DMA packing. Word count = ceil(width/64).
  [[nodiscard]] const std::vector<Word>& words() const noexcept { return words_; }
  /// Overwrite word `wi`; tail bits beyond width() are masked off.
  /// Precondition: wi < words().size().
  void set_word(std::uint32_t wi, Word w);
  /// Overwrite storage from raw words (tail bits beyond width are masked off).
  void assign_words(const std::vector<Word>& words);

  /// Bitwise helpers used by grid algebra.
  BitRow& operator&=(const BitRow& rhs);
  BitRow& operator|=(const BitRow& rhs);
  BitRow& operator^=(const BitRow& rhs);

  friend bool operator==(const BitRow& a, const BitRow& b) noexcept = default;

  /// "01101..."-style string, bit 0 first.
  [[nodiscard]] std::string to_string() const;
  /// "#.#.."-style art, bit 0 first.
  [[nodiscard]] std::string to_art() const;

 private:
  void mask_tail() noexcept;
  [[nodiscard]] std::uint32_t word_count() const noexcept {
    return (width_ + kWordBits - 1) / kWordBits;
  }

  std::uint32_t width_ = 0;
  std::vector<Word> words_;
};

}  // namespace qrm

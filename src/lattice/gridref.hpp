#pragma once
/// \file gridref.hpp
/// Naive per-cell reference implementations of the OccupancyGrid bulk
/// operations, mirroring src/util/bitref.hpp one layer up: the executable
/// specification that tests/bitops_test.cpp and bench/planner_throughput pin
/// the word-blit paths in grid.cpp against. Never call these from production
/// code.

#include <cstdint>

#include "lattice/grid.hpp"
#include "lattice/region.hpp"

namespace qrm::ref {

[[nodiscard]] inline BitRow column(const OccupancyGrid& g, std::int32_t c) {
  BitRow out(static_cast<std::uint32_t>(g.height()));
  for (std::int32_t r = 0; r < g.height(); ++r)
    if (g.occupied({r, c})) out.set(static_cast<std::uint32_t>(r));
  return out;
}

[[nodiscard]] inline OccupancyGrid with_column(OccupancyGrid g, std::int32_t c,
                                               const BitRow& bits) {
  for (std::int32_t r = 0; r < g.height(); ++r)
    g.set({r, c}, bits.test(static_cast<std::uint32_t>(r)));
  return g;
}

[[nodiscard]] inline OccupancyGrid transposed(const OccupancyGrid& g) {
  OccupancyGrid out(g.width(), g.height());
  for (std::int32_t r = 0; r < g.height(); ++r)
    for (std::int32_t c = 0; c < g.width(); ++c)
      if (g.occupied({r, c})) out.set({c, r});
  return out;
}

[[nodiscard]] inline OccupancyGrid subgrid(const OccupancyGrid& g, const Region& region) {
  OccupancyGrid out(region.rows, region.cols);
  for (std::int32_t r = 0; r < region.rows; ++r)
    for (std::int32_t c = 0; c < region.cols; ++c)
      if (g.occupied({region.row0 + r, region.col0 + c})) out.set({r, c});
  return out;
}

[[nodiscard]] inline OccupancyGrid with_subgrid(OccupancyGrid g, const Region& region,
                                                const OccupancyGrid& content) {
  for (std::int32_t r = 0; r < region.rows; ++r)
    for (std::int32_t c = 0; c < region.cols; ++c)
      g.set({region.row0 + r, region.col0 + c}, content.occupied({r, c}));
  return g;
}

[[nodiscard]] inline std::vector<Coord> diff_positions(const OccupancyGrid& a,
                                                       const OccupancyGrid& b) {
  std::vector<Coord> out;
  for (std::int32_t r = 0; r < a.height(); ++r)
    for (std::int32_t c = 0; c < a.width(); ++c)
      if (a.occupied({r, c}) != b.occupied({r, c})) out.push_back({r, c});
  return out;
}

[[nodiscard]] inline std::int64_t diff_count(const OccupancyGrid& a, const OccupancyGrid& b) {
  // Qualified call: ADL would also find qrm::diff_positions (the word-
  // parallel implementation this one is the spec for) and make it ambiguous.
  return static_cast<std::int64_t>(qrm::ref::diff_positions(a, b).size());
}

}  // namespace qrm::ref

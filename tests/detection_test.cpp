// Tests for the synthetic imaging + detection substrate.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "loading/loader.hpp"

namespace qrm {
namespace {

TEST(Image, GeometryAndAccumulation) {
  FluorescenceImage img(10, 12);
  EXPECT_EQ(img.height(), 10);
  EXPECT_EQ(img.width(), 12);
  EXPECT_DOUBLE_EQ(img.total_photons(), 0.0);
  img.add(3, 4, 7.5);
  img.add(3, 4, 2.5);
  EXPECT_DOUBLE_EQ(img.at(3, 4), 10.0);
  EXPECT_DOUBLE_EQ(img.total_photons(), 10.0);
  EXPECT_DOUBLE_EQ(img.max_pixel(), 10.0);
  EXPECT_THROW((void)img.at(10, 0), PreconditionError);
}

TEST(Image, IntegrateClipsToBounds) {
  FluorescenceImage img(4, 4);
  img.add(0, 0, 1.0);
  img.add(3, 3, 2.0);
  EXPECT_DOUBLE_EQ(img.integrate(0, 0, 4, 4), 3.0);
  EXPECT_DOUBLE_EQ(img.integrate(2, 2, 10, 10), 2.0);
  EXPECT_DOUBLE_EQ(img.integrate(-2, -2, 3, 3), 1.0);
}

TEST(Image, RenderDepositsSignalOnAtoms) {
  OccupancyGrid atoms(6, 6);
  atoms.set({2, 3});
  ImagingConfig config;
  config.background_photons = 0.0;
  config.seed = 1;
  const FluorescenceImage img = render_image(atoms, config);
  EXPECT_EQ(img.height(), 30);
  EXPECT_EQ(img.width(), 30);
  // Expected total signal ~ photons_per_atom (PSF mostly inside the image).
  EXPECT_NEAR(img.total_photons(), config.photons_per_atom, 60.0);
  // The brightest site block must be the atom's.
  const std::int32_t pps = config.pixels_per_site;
  double best = -1;
  Coord best_site{-1, -1};
  for (std::int32_t r = 0; r < 6; ++r) {
    for (std::int32_t c = 0; c < 6; ++c) {
      const double v = img.integrate(r * pps, c * pps, pps, pps);
      if (v > best) {
        best = v;
        best_site = {r, c};
      }
    }
  }
  EXPECT_EQ(best_site, (Coord{2, 3}));
}

TEST(Image, RenderIsDeterministicPerSeed) {
  const OccupancyGrid atoms = load_random(8, 8, {0.5, 3});
  ImagingConfig config;
  config.seed = 99;
  const FluorescenceImage a = render_image(atoms, config);
  const FluorescenceImage b = render_image(atoms, config);
  EXPECT_DOUBLE_EQ(a.total_photons(), b.total_photons());
  EXPECT_DOUBLE_EQ(a.at(10, 10), b.at(10, 10));
}

TEST(Detector, PerfectAtHighSnr) {
  const OccupancyGrid truth = load_random(16, 16, {0.5, 11});
  ImagingConfig imaging;
  imaging.photons_per_atom = 500.0;
  imaging.background_photons = 1.0;
  imaging.seed = 5;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid detected = detect_atoms(img, 16, 16, det);
  const DetectionErrors errors = compare_detection(truth, detected);
  EXPECT_EQ(errors.total(), 0) << "fp=" << errors.false_positives
                               << " fn=" << errors.false_negatives;
}

TEST(Detector, DegradesAtLowSnr) {
  const OccupancyGrid truth = load_random(16, 16, {0.5, 11});
  ImagingConfig imaging;
  imaging.photons_per_atom = 8.0;  // barely above background
  imaging.background_photons = 6.0;
  imaging.seed = 5;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid detected = detect_atoms(img, 16, 16, det);
  EXPECT_GT(compare_detection(truth, detected).total(), 0)
      << "at this SNR some sites must misclassify";
}

TEST(Detector, AutoThresholdSeparatesClasses) {
  const OccupancyGrid truth = load_random(12, 12, {0.5, 21});
  ImagingConfig imaging;
  imaging.photons_per_atom = 300.0;
  imaging.background_photons = 2.0;
  const FluorescenceImage img = render_image(truth, imaging);
  const double threshold = auto_threshold(img, 12, 12, imaging.pixels_per_site);
  // Bright sites integrate most of 300 photons; dark ones ~ bg*pps^2 = 50.
  EXPECT_GT(threshold, 60.0);
  EXPECT_LT(threshold, 280.0);
}

TEST(Detector, ManualThresholdRespected) {
  OccupancyGrid truth(4, 4);
  truth.set({1, 1});
  ImagingConfig imaging;
  imaging.background_photons = 0.0;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  det.threshold_photons = 1e9;  // nothing passes
  EXPECT_EQ(detect_atoms(img, 4, 4, det).atom_count(), 0);
  det.threshold_photons = 0.0;  // everything passes
  EXPECT_EQ(detect_atoms(img, 4, 4, det).atom_count(), 16);
}

TEST(Detector, RejectsGeometryMismatch) {
  const FluorescenceImage img(10, 10);
  DetectionConfig det;
  det.pixels_per_site = 5;
  EXPECT_THROW((void)detect_atoms(img, 4, 4, det), PreconditionError);
}

TEST(Detector, CompareDetectionCountsBothKinds) {
  OccupancyGrid truth(2, 2);
  truth.set({0, 0});
  truth.set({0, 1});
  OccupancyGrid detected(2, 2);
  detected.set({0, 0});
  detected.set({1, 1});
  const DetectionErrors errors = compare_detection(truth, detected);
  EXPECT_EQ(errors.false_negatives, 1);
  EXPECT_EQ(errors.false_positives, 1);
  EXPECT_EQ(errors.total(), 2);
}

TEST(Detector, ErrorInjectionRates) {
  const OccupancyGrid truth = load_random(60, 60, {0.5, 31});
  const OccupancyGrid noisy = inject_detection_errors(truth, 0.1, 0.05, 7);
  const DetectionErrors errors = compare_detection(truth, noisy);
  const double atoms = static_cast<double>(truth.atom_count());
  const double empties = 3600.0 - atoms;
  EXPECT_NEAR(static_cast<double>(errors.false_negatives) / atoms, 0.1, 0.04);
  EXPECT_NEAR(static_cast<double>(errors.false_positives) / empties, 0.05, 0.03);
  // Zero rates are exact.
  EXPECT_EQ(compare_detection(truth, inject_detection_errors(truth, 0, 0, 9)).total(), 0);
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file model.hpp
/// Analytic FPGA resource model (substitutes the paper's Vivado reports).
///
/// Per-module estimators reflect the structural composition of the design:
/// each Shift Kernel's registers scale with the quadrant width Q_w; the LDM
/// scales with the array width and the AXI beat width; the Row Combination /
/// output logic ("about half of the resources", Sec. V-C) scales with the
/// array width; a fixed block covers AXI interconnect, DMA and PS control.
///
/// Calibration: coefficients are fitted to the paper's Fig. 8 anchor —
/// LUT 6.31% and FF 6.19% of an XCZU49DR at W = 90, with FF's slope
/// slightly steeper than LUT's and BRAM flat across W = 10..90. See
/// EXPERIMENTS.md for the paper-vs-model comparison.

#include <cstdint>
#include <string>
#include <vector>

namespace qrm::res {

/// FPGA device capacities (from the AMD/Xilinx data sheets).
struct DeviceSpec {
  std::string name;
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint32_t bram36 = 0;  ///< 36-kbit block RAM count
};

/// ZCU216 evaluation board device (Zynq UltraScale+ RFSoC XCZU49DR),
/// the paper's platform.
[[nodiscard]] DeviceSpec zcu216();
/// ZCU111 (XCZU28DR) — a smaller RFSoC for portability studies.
[[nodiscard]] DeviceSpec zcu111();

/// Absolute resource usage of one block (or the whole design).
struct Utilization {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint32_t bram36 = 0;

  Utilization& operator+=(const Utilization& rhs) noexcept {
    luts += rhs.luts;
    ffs += rhs.ffs;
    bram36 += rhs.bram36;
    return *this;
  }
  [[nodiscard]] double lut_fraction(const DeviceSpec& d) const noexcept {
    return d.luts == 0 ? 0.0 : static_cast<double>(luts) / static_cast<double>(d.luts);
  }
  [[nodiscard]] double ff_fraction(const DeviceSpec& d) const noexcept {
    return d.ffs == 0 ? 0.0 : static_cast<double>(ffs) / static_cast<double>(d.ffs);
  }
  [[nodiscard]] double bram_fraction(const DeviceSpec& d) const noexcept {
    return d.bram36 == 0 ? 0.0 : static_cast<double>(bram36) / static_cast<double>(d.bram36);
  }
};

/// Structural parameters the estimate depends on.
struct ResourceModelConfig {
  std::uint32_t quadrant_pathways = 4;
  std::uint32_t packet_bits = 1024;
  std::uint32_t record_bits = 32;
};

/// Per-module estimators (quadrant width = W/2 for square arrays).
[[nodiscard]] Utilization estimate_shift_kernel(std::int32_t quadrant_width);
[[nodiscard]] Utilization estimate_ldm(std::int32_t array_width, std::uint32_t packet_bits);
[[nodiscard]] Utilization estimate_ocm(std::int32_t array_width, std::uint32_t record_bits);
[[nodiscard]] Utilization estimate_infrastructure(std::uint32_t packet_bits);

/// Named breakdown entry for reports.
struct ModuleUsage {
  std::string module;
  Utilization usage;
};

/// Whole-accelerator estimate for a W x W array.
[[nodiscard]] Utilization estimate_accelerator(std::int32_t array_width,
                                               const ResourceModelConfig& config = {});
/// Same, with the per-module breakdown.
[[nodiscard]] std::vector<ModuleUsage> estimate_breakdown(std::int32_t array_width,
                                                          const ResourceModelConfig& config = {});

/// True when the design fits the device with headroom `margin` (fraction of
/// each resource left free, e.g. 0.5 = at most half used).
[[nodiscard]] bool fits(const Utilization& usage, const DeviceSpec& device, double margin = 0.0);

}  // namespace qrm::res

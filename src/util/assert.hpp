#pragma once
/// \file assert.hpp
/// Precondition / invariant checking used across the library.
///
/// Following the C++ Core Guidelines (I.6/I.8, E.12), preconditions on public
/// interfaces are checked unconditionally and report violations by throwing,
/// so that misuse is testable and never silently corrupts state.

#include <stdexcept>
#include <string>

namespace qrm {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails (indicates a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void precondition_fail(const char* expr, const char* file, int line,
                                           const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " + file + ":" +
                          std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void invariant_fail(const char* expr, const char* file, int line,
                                        const std::string& msg) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " + file + ":" +
                       std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace qrm

/// Check a precondition of a public interface; throws qrm::PreconditionError.
#define QRM_EXPECTS(cond)                                                       \
  do {                                                                          \
    if (!(cond)) ::qrm::detail::precondition_fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// Check a precondition with an explanatory message.
#define QRM_EXPECTS_MSG(cond, msg)                                                 \
  do {                                                                             \
    if (!(cond)) ::qrm::detail::precondition_fail(#cond, __FILE__, __LINE__, msg); \
  } while (false)

/// Check an internal invariant; throws qrm::InvariantError.
#define QRM_ENSURES(cond)                                                      \
  do {                                                                         \
    if (!(cond)) ::qrm::detail::invariant_fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define QRM_ENSURES_MSG(cond, msg)                                               \
  do {                                                                           \
    if (!(cond)) ::qrm::detail::invariant_fail(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#pragma once
/// \file stats.hpp
/// Small descriptive-statistics helpers used by benches and tests
/// (seed-averaged latencies, resource-trend fits, detection error rates).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace qrm::stats {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0,100]. Copies and sorts internally
/// on every call — for several percentiles of one sample use SortedSample.
/// Precondition: xs non-empty.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Smallest / largest element. Precondition: xs non-empty (an empty sample
/// has no extrema; returning ±infinity would leak into CSV/bench summaries).
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// A sample copied and sorted once, answering any number of percentile /
/// extremum queries in O(1) each (vs O(n log n) per call for the free
/// functions). Use for multi-percentile summaries (p50/p90/p99/max).
class SortedSample {
 public:
  /// Copies and sorts `xs`. An empty sample is valid; queries on it throw.
  explicit SortedSample(std::span<const double> xs);

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }

  /// Linear-interpolated percentile, p in [0,100]. Precondition: !empty().
  [[nodiscard]] double percentile(double p) const;
  /// Precondition: !empty().
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  std::vector<double> sorted_;
};

/// Least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// One-line human-readable summary "mean=.. sd=.. min=.. max=.. n=..";
/// "n=0" for an empty sample.
[[nodiscard]] std::string summarize(std::span<const double> xs);

}  // namespace qrm::stats

#include "scenario/campaign.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace qrm::scenario {

namespace {

std::string hex_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream os;
  os << "0x" << std::hex << fingerprint;
  return os.str();
}

/// Minimal JSON string escaping for names/descriptions (quotes, backslash,
/// control characters).
std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

}  // namespace

std::uint64_t CampaignReport::fingerprint() const noexcept {
  std::uint64_t hash = fnv::kOffset;
  fnv::mix_u64(hash, scenarios.size());
  for (const ScenarioOutcome& outcome : scenarios) fnv::mix_u64(hash, outcome.fingerprint);
  return hash;
}

batch::BatchConfig to_batch_config(const ScenarioSpec& spec, std::uint32_t workers,
                                   bool keep_schedules) {
  batch::BatchConfig config;
  config.plan.target = spec.target_region();
  config.plan.mode = spec.mode;
  config.algorithm = spec.algorithm;
  config.shots = spec.shots;
  config.workers = workers;
  config.master_seed = spec.seed;
  config.grid_height = spec.grid_height;
  config.grid_width = spec.grid_width;
  config.fill = spec.fill;  // only the Uniform generated path draws from it
  config.loss.per_move_loss = spec.per_move_loss;
  config.loss.background_loss = spec.background_loss;
  config.max_rounds = spec.max_rounds;
  config.keep_schedules = keep_schedules;
  return config;
}

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

ScenarioOutcome CampaignRunner::run_one(const ScenarioSpec& spec) const {
  validate(spec);

  ScenarioOutcome outcome;
  outcome.spec = spec;

  const batch::BatchConfig config =
      to_batch_config(spec, config_.workers, config_.keep_schedules);
  const batch::BatchPlanner planner(config);
  if (spec.load == LoadProfile::Uniform) {
    // The generated path draws exactly this scenario's workload (Bernoulli
    // with per-shot derived seeds); using it keeps scenario runs
    // bit-identical with hand-built BatchPlanner sweeps like the old
    // batch_campaign binary.
    outcome.batch = planner.run();
  } else {
    // Every other family is pre-drawn with the same per-shot seed stream
    // the generated path would use, then replayed as a captured batch.
    // Generation is deliberately serial and outside the batch stopwatch:
    // determinism is trivial, and drawing a grid is cheap next to planning
    // it — so shots_per_sec measures the pipeline, not the workload
    // generator. (Parallel generation is a ROADMAP item under sharded
    // campaign execution.)
    std::vector<OccupancyGrid> captured;
    captured.reserve(spec.shots);
    for (std::uint32_t shot = 0; shot < spec.shots; ++shot)
      captured.push_back(generate_workload(spec, derive_seed(spec.seed, shot)));
    outcome.batch = planner.run(captured);
  }

  // --- SortedSample aggregation over the deterministic columns ------------
  std::vector<double> rounds;
  std::vector<double> commands;
  rounds.reserve(outcome.batch.shots.size());
  commands.reserve(outcome.batch.shots.size());
  for (const batch::ShotResult& shot : outcome.batch.shots) {
    rounds.push_back(static_cast<double>(shot.rounds));
    commands.push_back(static_cast<double>(shot.commands));
  }
  outcome.mean_rounds = stats::mean(rounds);
  const stats::SortedSample round_sample(rounds);
  const stats::SortedSample command_sample(commands);
  outcome.p90_rounds = round_sample.percentile(90.0);
  outcome.p50_commands = command_sample.median();
  outcome.p90_commands = command_sample.percentile(90.0);

  outcome.p50_plan_us = outcome.batch.latency(batch::BatchReport::Stage::Plan).p50;
  outcome.p90_plan_us = outcome.batch.latency(batch::BatchReport::Stage::Plan).p90;
  outcome.p50_execute_us = outcome.batch.latency(batch::BatchReport::Stage::Execute).p50;

  // --- Architecture control-path model (deterministic) --------------------
  // Fig. 2 structure with the runtime module's default constants: the
  // camera frame is pixels_per_site^2 16-bit pixels per trap, a movement
  // record is 4 bytes.
  const rt::SystemConfig system;
  const double pixels = static_cast<double>(spec.grid_height) * spec.grid_width *
                        system.imaging.pixels_per_site * system.imaging.pixels_per_site;
  const double mean_commands = stats::mean(commands);
  if (spec.architecture == rt::Architecture::HostMediated) {
    const double frame_hop = system.host_link.transfer_us(pixels * 2.0);
    // shot.commands sums over rounds; each round's return hop carries only
    // that round's share of the move list.
    const double per_round_records =
        outcome.mean_rounds > 0.0 ? mean_commands / outcome.mean_rounds : 0.0;
    const double records_hop = system.host_link.transfer_us(per_round_records * 4.0);
    outcome.arch_overhead_us = outcome.mean_rounds * (frame_hop + records_hop);
  } else {
    const double detect_us = pixels /
                             static_cast<double>(system.detection_pixels_per_cycle) /
                             system.accelerator.clock_mhz;
    outcome.arch_overhead_us = outcome.mean_rounds * detect_us;
  }

  // --- Identity + outcome fingerprint -------------------------------------
  std::uint64_t hash = fnv::kOffset;
  fnv::mix_text(hash, serialize(spec));
  fnv::mix_u64(hash, outcome.batch.fingerprint());
  outcome.fingerprint = hash;
  return outcome;
}

CampaignReport CampaignRunner::run(const std::vector<ScenarioSpec>& specs) const {
  std::vector<const ScenarioSpec*> selected;
  for (const ScenarioSpec& spec : specs)
    if (spec.matches_filter(config_.filter)) selected.push_back(&spec);
  QRM_EXPECTS_MSG(!selected.empty(),
                  "campaign filter '" + config_.filter + "' matches no scenarios");

  CampaignReport report;
  report.scenarios.reserve(selected.size());
  Stopwatch wall;
  for (const ScenarioSpec* spec : selected) {
    report.scenarios.push_back(run_one(*spec));
    report.workers = report.scenarios.back().batch.workers;
  }
  report.wall_us = wall.elapsed_microseconds();
  return report;
}

void write_csv(const CampaignReport& report, std::ostream& out) {
  CsvWriter csv(out);
  csv.header({"scenario", "grid", "target", "load", "algorithm", "architecture", "shots",
              "workers", "success_rate", "mean_fill_rate", "mean_rounds", "p90_rounds",
              "total_commands", "p50_commands", "p90_commands", "arch_overhead_us",
              "p50_plan_us", "p90_plan_us", "p50_execute_us", "shots_per_sec", "wall_ms",
              "fingerprint"});
  for (const ScenarioOutcome& outcome : report.scenarios) {
    const ScenarioSpec& spec = outcome.spec;
    const Region target = spec.target_region();
    std::ostringstream grid;
    grid << spec.grid_height << "x" << spec.grid_width;
    std::ostringstream target_text;
    target_text << target.rows << "x" << target.cols;
    csv.row(spec.name, grid.str(), target_text.str(), to_cstring(spec.load), spec.algorithm,
            arch_key(spec.architecture), outcome.batch.shots.size(), report.workers,
            outcome.batch.success_rate(),
            outcome.batch.mean_fill_rate(), outcome.mean_rounds, outcome.p90_rounds,
            outcome.batch.total_commands(), outcome.p50_commands, outcome.p90_commands,
            outcome.arch_overhead_us, outcome.p50_plan_us, outcome.p90_plan_us,
            outcome.p50_execute_us, outcome.batch.shots_per_second(),
            outcome.batch.wall_us / 1000.0, hex_fingerprint(outcome.fingerprint));
  }
}

void write_json(const CampaignReport& report, std::ostream& out) {
  out << "{\n";
  out << "  \"workers\": " << report.workers << ",\n";
  out << "  \"wall_ms\": " << report.wall_us / 1000.0 << ",\n";
  out << "  \"fingerprint\": \"" << hex_fingerprint(report.fingerprint()) << "\",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
    const ScenarioOutcome& outcome = report.scenarios[i];
    const ScenarioSpec& spec = outcome.spec;
    out << "    {\n";
    out << "      \"name\": \"" << json_escape(spec.name) << "\",\n";
    out << "      \"description\": \"" << json_escape(spec.description) << "\",\n";
    out << "      \"load\": \"" << to_cstring(spec.load) << "\",\n";
    out << "      \"algorithm\": \"" << json_escape(spec.algorithm) << "\",\n";
    out << "      \"architecture\": \"" << arch_key(spec.architecture) << "\",\n";
    out << "      \"grid\": [" << spec.grid_height << ", " << spec.grid_width << "],\n";
    out << "      \"shots\": " << outcome.batch.shots.size() << ",\n";
    out << "      \"success_rate\": " << outcome.batch.success_rate() << ",\n";
    out << "      \"mean_fill_rate\": " << outcome.batch.mean_fill_rate() << ",\n";
    out << "      \"mean_rounds\": " << outcome.mean_rounds << ",\n";
    out << "      \"total_commands\": " << outcome.batch.total_commands() << ",\n";
    out << "      \"arch_overhead_us\": " << outcome.arch_overhead_us << ",\n";
    out << "      \"p50_plan_us\": " << outcome.p50_plan_us << ",\n";
    out << "      \"p50_execute_us\": " << outcome.p50_execute_us << ",\n";
    out << "      \"fingerprint\": \"" << hex_fingerprint(outcome.fingerprint) << "\"\n";
    out << "    }" << (i + 1 < report.scenarios.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace qrm::scenario

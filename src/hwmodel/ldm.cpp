#include "hwmodel/ldm.hpp"

#include "util/assert.hpp"

namespace qrm::hw {

PacketSource::PacketSource(std::string name, std::vector<AxiPacket> packets,
                           Fifo<AxiPacket>& out, std::uint32_t read_latency)
    : Module(std::move(name)), packets_(std::move(packets)), out_(out),
      read_latency_(read_latency) {}

void PacketSource::eval(std::uint64_t) {
  if (cycles_waited_ < read_latency_) {
    ++cycles_waited_;
    return;
  }
  if (next_ < packets_.size() && out_.can_push()) {
    out_.push(packets_[next_++]);
  }
}

bool PacketSource::busy() const { return next_ < packets_.size(); }

LoadDataModule::LoadDataModule(std::string name, std::int32_t height, std::int32_t width,
                               std::uint32_t packet_bits, Fifo<AxiPacket>& in,
                               std::array<Fifo<RowBeat>*, 4> row_out)
    : Module(std::move(name)), height_(height), width_(width), packet_bits_(packet_bits),
      in_(in), row_out_(row_out), geometry_(height, width) {
  QRM_EXPECTS(packet_bits > 0 && packet_bits % 64 == 0);
  bit_buffer_.assign(static_cast<std::size_t>(height) * static_cast<std::size_t>(width), false);
}

void LoadDataModule::eval(std::uint64_t) {
  // Consume one packet per cycle.
  if (in_.can_pop()) {
    const AxiPacket packet = in_.pop();
    const std::uint64_t total_bits =
        static_cast<std::uint64_t>(height_) * static_cast<std::uint64_t>(width_);
    for (std::uint32_t b = 0; b < packet_bits_ && bits_received_ < total_bits;
         ++b, ++bits_received_) {
      const bool set = (packet.words[b / 64] >> (b % 64)) & 1U;
      bit_buffer_[static_cast<std::size_t>(bits_received_)] = set;
    }
  }

  // Emit the next global row once all its bits have arrived. The west and
  // east Load Vector units run in parallel, so both half-rows go out in the
  // same cycle. One global row per cycle.
  if (next_row_ < height_ &&
      bits_received_ >= static_cast<std::uint64_t>(next_row_ + 1) *
                            static_cast<std::uint64_t>(width_)) {
    const std::int32_t qw = geometry_.local_width();
    const std::int32_t r = next_row_;
    for (const Quadrant q : kAllQuadrants) {
      const Region region = geometry_.global_region(q);
      if (r < region.row0 || r >= region.row_end()) continue;
      // Build the local row: local col j corresponds to a global column via
      // quadrant geometry (mirrors the W-side halves).
      RowBeat beat;
      beat.line = geometry_.to_local(q, {r, region.col0}).row;
      BitRow bits(static_cast<std::uint32_t>(qw));
      for (std::int32_t j = 0; j < qw; ++j) {
        const Coord global = geometry_.to_global(q, {beat.line, j});
        const std::size_t index = static_cast<std::size_t>(global.row) *
                                      static_cast<std::size_t>(width_) +
                                  static_cast<std::size_t>(global.col);
        if (bit_buffer_[index]) bits.set(static_cast<std::uint32_t>(j));
      }
      beat.bits = std::move(bits);
      Fifo<RowBeat>* out = row_out_[static_cast<std::size_t>(q)];
      QRM_ENSURES_MSG(out->can_push(), "LDM quadrant row FIFO overflow");
      out->push(std::move(beat));
      ++rows_emitted_;
    }
    ++next_row_;
  }
}

bool LoadDataModule::busy() const { return next_row_ < height_ || in_.can_pop(); }

}  // namespace qrm::hw

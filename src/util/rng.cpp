#include "util/rng.hpp"

#include <cmath>

namespace qrm {

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller transform; draw until u1 is nonzero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * radius * std::cos(theta);
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until the product drops below exp(-lambda).
    const double limit = std::exp(-lambda);
    std::uint32_t k = 0;
    double product = uniform01();
    while (product > limit) {
      ++k;
      product *= uniform01();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for photon
  // counts where lambda is O(100) and exactness of tails is irrelevant.
  const double x = normal(lambda, std::sqrt(lambda));
  return x < 0.5 ? 0U : static_cast<std::uint32_t>(x + 0.5);
}

}  // namespace qrm

// Golden-fingerprint battery: pins the spec identity fingerprint of every
// registry scenario and the outcome fingerprint of every non-stress one to
// a checked-in corpus (tests/golden_fingerprints.inc). Any drift — a
// serialization change, a planner behaviour change, an RNG stream reorder —
// fails loudly here with old-vs-new values, instead of silently shifting
// every downstream report.
//
// Intentional changes regenerate the corpus (one command line):
//   QRM_PRINT_GOLDEN=1 ./tests/golden_fingerprint_test
//       --gtest_filter='*RegenerateCorpus*'
// and paste the printed rows into tests/golden_fingerprints.inc.
//
// Stress-tier scenarios (tag "stress", e.g. large-grid-256) pin only their
// spec fingerprint: their outcomes take minutes to compute, which does not
// belong in tier-1. Their planning behaviour is still covered at small
// sizes by every other row.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"
#include "util/fnv.hpp"

namespace qrm {
namespace {

struct GoldenRow {
  const char* name;
  std::uint64_t spec_fingerprint;
  std::uint64_t outcome_fingerprint;  ///< 0 = not pinned (stress tier)
};

constexpr GoldenRow kGolden[] = {
#include "golden_fingerprints.inc"
};

constexpr const char* kRegenerateHint =
    "\nIf this change is intentional, regenerate the corpus with"
    "\n  QRM_PRINT_GOLDEN=1 ./tests/golden_fingerprint_test"
    " --gtest_filter='*RegenerateCorpus*'"
    "\nand replace the rows in tests/golden_fingerprints.inc.";

std::uint64_t spec_fingerprint(const scenario::ScenarioSpec& spec) {
  return fnv::hash_text(serialize(spec));
}

std::uint64_t outcome_fingerprint(const scenario::ScenarioSpec& spec,
                                  qrm::exec::ExecOverrides overrides = {.plan_cache = true}) {
  scenario::CampaignConfig config;
  config.exec.workers = 4;  // fingerprints are worker-count independent
  config.overrides = overrides;
  return scenario::CampaignRunner(config).run_one(spec).fingerprint;
}

const GoldenRow* find_row(const std::string& name) {
  for (const GoldenRow& row : kGolden)
    if (name == row.name) return &row;
  return nullptr;
}

TEST(GoldenFingerprints, CorpusCoversTheRegistryExactly) {
  std::set<std::string> registry_names;
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    registry_names.insert(spec.name);
    EXPECT_NE(find_row(spec.name), nullptr)
        << "registry scenario '" << spec.name << "' has no golden row" << kRegenerateHint;
    // Outcome pinning is mandatory outside the stress tier: a new scenario
    // must land with its golden outcome, not opt out.
    const GoldenRow* row = find_row(spec.name);
    if (row != nullptr) {
      EXPECT_EQ(row->outcome_fingerprint == 0, spec.has_tag("stress"))
          << "scenario '" << spec.name
          << "': only stress-tier scenarios may leave the outcome unpinned" << kRegenerateHint;
    }
  }
  for (const GoldenRow& row : kGolden) {
    EXPECT_EQ(registry_names.count(row.name), 1u)
        << "golden row '" << row.name << "' names no registry scenario" << kRegenerateHint;
  }
  EXPECT_EQ(std::size(kGolden), scenario::registry().size());
}

TEST(GoldenFingerprints, SpecFingerprintsHaveNotDrifted) {
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr) continue;  // covered by CorpusCoversTheRegistryExactly
    const std::uint64_t recomputed = spec_fingerprint(spec);
    EXPECT_EQ(recomputed, row->spec_fingerprint)
        << "spec fingerprint drift for '" << spec.name << "': golden 0x" << std::hex
        << row->spec_fingerprint << ", recomputed 0x" << recomputed << std::dec
        << "\nserialized spec now reads:\n"
        << serialize(spec) << kRegenerateHint;
  }
}

TEST(GoldenFingerprints, OutcomeFingerprintsHaveNotDrifted) {
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr || row->outcome_fingerprint == 0) continue;
    const std::uint64_t recomputed = outcome_fingerprint(spec);
    EXPECT_EQ(recomputed, row->outcome_fingerprint)
        << "outcome fingerprint drift for '" << spec.name << "': golden 0x" << std::hex
        << row->outcome_fingerprint << ", recomputed 0x" << recomputed << std::dec
        << kRegenerateHint;
  }
}

TEST(GoldenFingerprints, PatternScenariosMatchGoldenWithTheCacheOff) {
  // The cache's hottest path (identical per-shot Pattern grids) must land
  // on the same golden value cold — differential proof that hits splice
  // bit-equal plans.
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    if (spec.load != scenario::LoadProfile::Pattern) continue;
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr || row->outcome_fingerprint == 0) continue;
    EXPECT_EQ(outcome_fingerprint(spec, {.plan_cache = false}), row->outcome_fingerprint)
        << "cache-off outcome diverged from golden for '" << spec.name << "'";
  }
}

TEST(GoldenFingerprints, OutcomesMatchGoldenUnderParallelPlanning) {
  // The whole pinned corpus re-run with intra-plan quadrant parallelism
  // forced on (campaign-level override, so the serialized specs — and with
  // them the spec fingerprints — are untouched). Zero drift tolerated: the
  // knob is an execution hint, and this is the corpus-wide proof.
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr || row->outcome_fingerprint == 0) continue;
    const std::uint64_t recomputed =
        outcome_fingerprint(spec, {.intra_plan_workers = 4, .plan_cache = true});
    EXPECT_EQ(recomputed, row->outcome_fingerprint)
        << "parallel planning drifted the outcome for '" << spec.name << "': golden 0x"
        << std::hex << row->outcome_fingerprint << ", recomputed 0x" << recomputed << std::dec
        << "\nintra_plan_workers must never change a plan" << kRegenerateHint;
  }
}

TEST(GoldenFingerprints, OutcomesMatchGoldenUnderDeltaReplanning) {
  // The whole pinned corpus re-run with ReplanMode::Delta forced on
  // (campaign-level override; serialized specs and spec fingerprints
  // untouched). Zero drift tolerated: delta replanning reuses quadrant
  // kernels but must produce bit-identical plans, so every loss draw, every
  // round count, and every final grid lands on the scratch value. The
  // plan cache stays off so every single round actually exercises the
  // delta path instead of being served a memoised scratch plan.
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr || row->outcome_fingerprint == 0) continue;
    const std::uint64_t recomputed =
        outcome_fingerprint(spec, {.replan = ReplanMode::Delta, .plan_cache = false});
    EXPECT_EQ(recomputed, row->outcome_fingerprint)
        << "delta replanning drifted the outcome for '" << spec.name << "': golden 0x"
        << std::hex << row->outcome_fingerprint << ", recomputed 0x" << recomputed << std::dec
        << "\ndelta plans must be bit-identical to scratch" << kRegenerateHint;
  }
}

TEST(GoldenFingerprints, OutcomesMatchGoldenUnderDeltaParallelPlanning) {
  // Both execution hints at once: delta replanning *and* intra-plan quadrant
  // parallelism. The hostile corpus rows make this the strongest form of the
  // invariance claim — burst loss, calibration drift, threshold bias and
  // dead channels all hold their pinned outcomes while the planner runs
  // delta over four workers.
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const GoldenRow* row = find_row(spec.name);
    if (row == nullptr || row->outcome_fingerprint == 0) continue;
    const std::uint64_t recomputed = outcome_fingerprint(
        spec, {.intra_plan_workers = 4, .replan = ReplanMode::Delta, .plan_cache = false});
    EXPECT_EQ(recomputed, row->outcome_fingerprint)
        << "delta+parallel planning drifted the outcome for '" << spec.name << "': golden 0x"
        << std::hex << row->outcome_fingerprint << ", recomputed 0x" << recomputed << std::dec
        << kRegenerateHint;
  }
}

TEST(GoldenFingerprints, RegenerateCorpus) {
  if (std::getenv("QRM_PRINT_GOLDEN") == nullptr)
    GTEST_SKIP() << "set QRM_PRINT_GOLDEN=1 to print a fresh corpus";
  std::printf("// ---- paste into tests/golden_fingerprints.inc ----\n");
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const std::uint64_t outcome = spec.has_tag("stress") ? 0 : outcome_fingerprint(spec);
    std::printf("{\"%s\", 0x%016llxULL, 0x%016llxULL},\n", spec.name.c_str(),
                static_cast<unsigned long long>(spec_fingerprint(spec)),
                static_cast<unsigned long long>(outcome));
  }
  std::printf("// ---- end corpus ----\n");
}

}  // namespace
}  // namespace qrm

// Fig. 2 architecture comparison: the host-mediated control system (a) pays
// two interconnect hops and CPU-speed analysis per rearrangement round; the
// fully FPGA-integrated system (b) removes both. This bench quantifies the
// control-path latency of each.

#include "bench_common.hpp"
#include "runtime/control_system.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

rt::SystemConfig system_config(std::int32_t size, rt::Architecture arch) {
  rt::SystemConfig config;
  config.architecture = arch;
  config.accelerator.plan.target = centered_square(size, paper_target(size));
  config.imaging.photons_per_atom = 400.0;
  config.imaging.background_photons = 1.0;
  config.detection.pixels_per_site = config.imaging.pixels_per_site;
  return config;
}

void print_table() {
  print_header("System architecture — Fig. 2(a) host-mediated vs Fig. 2(b) FPGA-integrated",
               "paper Sec. I: host round trips dominate the control path");
  TextTable table({"W", "arch", "detect", "transfers", "analysis", "control total"});
  for (const std::int32_t size : {20, 50}) {
    for (const rt::Architecture arch :
         {rt::Architecture::HostMediated, rt::Architecture::FpgaIntegrated}) {
      const rt::ControlSystem system(system_config(size, arch));
      const rt::WorkflowReport report = system.run(workload(size, 1));
      table.add_row({std::to_string(size),
                     arch == rt::Architecture::HostMediated ? "(a) host" : "(b) FPGA",
                     fmt_time_us(report.detection_us), fmt_time_us(report.transfer_us),
                     fmt_time_us(report.analysis_us),
                     fmt_time_us(report.control_latency_us())});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_ControlPath(benchmark::State& state) {
  const auto arch = state.range(0) == 0 ? rt::Architecture::HostMediated
                                        : rt::Architecture::FpgaIntegrated;
  const rt::ControlSystem system(system_config(20, arch));
  const OccupancyGrid atoms = workload(20, 1);
  double control_us = 0.0;
  for (auto _ : state) {
    const auto report = system.run(atoms);
    control_us = report.control_latency_us();
    benchmark::DoNotOptimize(report);
  }
  state.counters["control_us"] = control_us;
}
BENCHMARK(BM_ControlPath)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

#include "core/typical.hpp"

#include "moves/realizer.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// Compaction targets for one full line: atoms in the low half right-justify
/// against the centre boundary, atoms in the high half left-justify from it.
/// `length` is the line length (even); returns an assignment or nullopt-like
/// empty sources when the line is already in place.
LineAssignment half_compact_line(const BitRow& bits, std::int32_t line, std::int32_t length) {
  const std::int32_t centre = length / 2;
  std::vector<std::int32_t> sources;
  std::vector<std::int32_t> targets;
  std::vector<std::int32_t> low;
  std::vector<std::int32_t> high;
  bits.for_each_set([&](std::uint32_t pos) {
    const auto p = static_cast<std::int32_t>(pos);
    (p < centre ? low : high).push_back(p);
  });
  // Low half: n atoms end at [centre-n, centre).
  for (std::size_t i = 0; i < low.size(); ++i) {
    sources.push_back(low[i]);
    targets.push_back(centre - static_cast<std::int32_t>(low.size()) +
                      static_cast<std::int32_t>(i));
  }
  // High half: n atoms end at [centre, centre+n).
  for (std::size_t i = 0; i < high.size(); ++i) {
    sources.push_back(high[i]);
    targets.push_back(centre + static_cast<std::int32_t>(i));
  }
  LineAssignment a;
  a.line = line;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i] != targets[i]) {
      a.sources.push_back(sources[i]);
      a.targets.push_back(targets[i]);
    }
  }
  return a;
}

}  // namespace

PlanResult plan_typical(const OccupancyGrid& initial, const TypicalConfig& config) {
  QRM_EXPECTS_MSG(initial.height() > 0 && initial.width() > 0, "grid must be non-empty");
  QRM_EXPECTS_MSG(initial.height() % 2 == 0 && initial.width() % 2 == 0,
                  "typical procedure requires even grid dimensions");
  const Region target = config.target;
  QRM_EXPECTS_MSG(target == centered_region(initial.height(), initial.width(), target.rows,
                                            target.cols),
                  "target region must be centred");
  QRM_EXPECTS_MSG(target.rows % 2 == 0 && target.cols % 2 == 0,
                  "target region must be even-sized");

  PlanResult result;
  result.final_grid = initial;
  OccupancyGrid& state = result.final_grid;
  const RealizeOptions realize_options{config.aod_legalize};

  const auto run_pass = [&](Axis axis) -> PassInfo {
    PassInfo info;
    info.axis = axis;
    const std::int32_t line_count = axis == Axis::Rows ? state.height() : state.width();
    const std::int32_t length = axis == Axis::Rows ? state.width() : state.height();
    std::vector<LineAssignment> lines;
    for (std::int32_t line = 0; line < line_count; ++line) {
      const BitRow bits = axis == Axis::Rows ? state.row(line) : state.column(line);
      LineAssignment a = half_compact_line(bits, line, length);
      if (!a.sources.empty()) lines.push_back(std::move(a));
    }
    info.lines_with_motion = lines.size();
    if (!lines.empty()) {
      const RealizeResult rr =
          realize_assignments(state, axis, lines, result.schedule, realize_options);
      info.unit_rounds = rr.rounds_toward_origin + rr.rounds_away;
      info.atoms_moved = rr.atoms_moved;
    }
    return info;
  };

  for (std::int32_t it = 0; it < config.max_iterations; ++it) {
    const PassInfo h = run_pass(Axis::Rows);
    const PassInfo v = run_pass(Axis::Cols);
    result.stats.passes.push_back(h);
    result.stats.passes.push_back(v);
    ++result.stats.iterations;
    if (h.atoms_moved == 0 && v.atoms_moved == 0) break;
    if (state.region_full(target)) break;
  }

  result.stats.target_filled = state.region_full(target);
  result.stats.defects_remaining =
      static_cast<std::int64_t>(target.area()) - state.atom_count(target);
  return result;
}

}  // namespace qrm

// Tests for the moves substrate: AOD legality, legalisation, the executor,
// the realizer, schedules, and the physical-time model.

#include <gtest/gtest.h>

#include <set>

#include "util/assert.hpp"
#include "loading/loader.hpp"
#include "moves/aod.hpp"
#include "moves/executor.hpp"
#include "moves/physical.hpp"
#include "moves/realizer.hpp"
#include "moves/schedule.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

// ---------------------------------------------------------------------------
// AOD cross-product legality
// ---------------------------------------------------------------------------

TEST(Aod, SingleAtomAlwaysLegal) {
  OccupancyGrid g(4, 4);
  g.set({1, 1});
  EXPECT_TRUE(is_aod_legal(g, {Direction::East, 1, {{1, 1}}}));
}

TEST(Aod, CrossTrapBystanderIsIllegal) {
  // Sites (0,0) and (1,1) selected: rows {0,1} x cols {0,1} generates traps
  // at (0,1) and (1,0) too. Put a bystander at (0,1).
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  g.set({1, 1});
  g.set({0, 1});  // bystander
  const ParallelMove move{Direction::East, 1, {{0, 0}, {1, 1}}};
  const auto violation = aod_violation(g, move);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("(0,1)"), std::string::npos);
}

TEST(Aod, CrossTrapMemberIsLegal) {
  // Same geometry but the cross trap is itself part of the move.
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  g.set({1, 1});
  g.set({0, 1});
  const ParallelMove move{Direction::South, 1, {{0, 0}, {1, 1}, {0, 1}}};
  // (1,0) is empty, so the remaining cross trap is harmless.
  EXPECT_TRUE(is_aod_legal(g, move));
}

TEST(Aod, EmptyCrossTrapHarmless) {
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  g.set({1, 1});
  EXPECT_TRUE(is_aod_legal(g, {Direction::East, 1, {{0, 0}, {1, 1}}}));
}

TEST(Aod, LegalizeSplitsOnBystander) {
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  g.set({1, 1});
  g.set({0, 1});  // bystander: (0,0) and (1,1) cannot ride together
  const std::vector<Coord> sites{{0, 0}, {1, 1}};
  const auto batches = legalize(g, sites, Direction::South, 1);
  ASSERT_EQ(batches.size(), 2u);
  // Every batch must be AOD-legal at its execution time and apply cleanly.
  OccupancyGrid state = g;
  for (const auto& b : batches) {
    EXPECT_FALSE(validate_move(state, b, true).has_value());
    apply_move_unchecked(state, b);
  }
  EXPECT_TRUE(state.occupied({1, 0}));
  EXPECT_TRUE(state.occupied({2, 1}));
  EXPECT_TRUE(state.occupied({0, 1}));  // bystander untouched
}

TEST(Aod, LegalizeKeepsLockstepChainsTogether) {
  // Three atoms in a row moving west: a chain that must stay in one batch
  // (or be ordered front-first).
  OccupancyGrid g(1, 6);
  g.set({0, 2});
  g.set({0, 3});
  g.set({0, 4});
  const std::vector<Coord> sites{{0, 2}, {0, 3}, {0, 4}};
  const auto batches = legalize(g, sites, Direction::West, 1);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].sites.size(), 3u);
  OccupancyGrid state = g;
  EXPECT_FALSE(validate_move(state, batches[0], true).has_value());
}

TEST(Aod, LegalizeRejectsDuplicateSites) {
  // A duplicated site passes the occupancy precondition (both copies see the
  // same atom) and used to be emitted twice inside one ParallelMove; it must
  // fail fast instead.
  OccupancyGrid g(4, 4);
  g.set({1, 1});
  g.set({2, 2});
  const std::vector<Coord> sites{{1, 1}, {2, 2}, {1, 1}};
  EXPECT_THROW((void)legalize(g, sites, Direction::East, 1), PreconditionError);
}

TEST(Aod, LegalizeHandsBlockedFollowerToLaterBatch) {
  // Atoms at (0,2) and (2,2) move West; bystander at (0,1)... the first
  // cannot move at all -> invalid intent must throw.
  OccupancyGrid g(3, 4);
  g.set({0, 2});
  g.set({0, 1});  // permanent blocker (not part of the move)
  const std::vector<Coord> sites{{0, 2}};
  EXPECT_THROW((void)legalize(g, sites, Direction::West, 1), InvariantError);
}

TEST(Aod, LegalizeRandomisedAlwaysExecutable) {
  // Property: for random grids, pick the set of all atoms that can shift one
  // step west (destination empty); legalize must produce batches that run
  // cleanly under full validation and move exactly the chosen atoms.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const OccupancyGrid g = load_random(12, 12, {0.45, 1000 + static_cast<std::uint64_t>(trial)});
    std::vector<Coord> sites;
    for (std::int32_t r = 0; r < 12; ++r) {
      for (std::int32_t c = 1; c < 12; ++c) {
        if (g.occupied({r, c}) && !g.occupied({r, c - 1})) sites.push_back({r, c});
      }
    }
    if (sites.empty()) continue;
    const auto batches = legalize(g, sites, Direction::West, 1);
    OccupancyGrid state = g;
    std::size_t moved = 0;
    for (const auto& b : batches) {
      const auto violation = validate_move(state, b, true);
      ASSERT_FALSE(violation.has_value()) << *violation;
      apply_move_unchecked(state, b);
      moved += b.sites.size();
    }
    EXPECT_EQ(moved, sites.size());
    EXPECT_EQ(state.atom_count(), g.atom_count());
  }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(Executor, RejectsEmptyAndBadSteps) {
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  EXPECT_TRUE(validate_move(g, {Direction::East, 1, {}}, false).has_value());
  EXPECT_TRUE(validate_move(g, {Direction::East, 0, {{0, 0}}}, false).has_value());
}

TEST(Executor, RejectsUnoccupiedSourceAndDuplicates) {
  OccupancyGrid g(4, 4);
  g.set({0, 0});
  EXPECT_TRUE(validate_move(g, {Direction::East, 1, {{1, 1}}}, false).has_value());
  EXPECT_TRUE(validate_move(g, {Direction::East, 1, {{0, 0}, {0, 0}}}, false).has_value());
}

TEST(Executor, RejectsOutOfBoundsDestination) {
  OccupancyGrid g(4, 4);
  g.set({0, 3});
  EXPECT_TRUE(validate_move(g, {Direction::East, 1, {{0, 3}}}, false).has_value());
  g.set({0, 0});
  EXPECT_TRUE(validate_move(g, {Direction::West, 1, {{0, 0}}}, false).has_value());
}

TEST(Executor, RejectsCollisionWithBystander) {
  OccupancyGrid g(1, 4);
  g.set({0, 0});
  g.set({0, 2});
  // Moving (0,0) east by 2 lands on (0,2), and also sweeps (0,1) (empty ok).
  EXPECT_TRUE(validate_move(g, {Direction::East, 2, {{0, 0}}}, false).has_value());
}

TEST(Executor, LockstepChainIsValid) {
  OccupancyGrid g(1, 4);
  g.set({0, 1});
  g.set({0, 2});
  const ParallelMove move{Direction::West, 1, {{0, 1}, {0, 2}}};
  EXPECT_FALSE(validate_move(g, move, true).has_value());
  apply_move(g, move);
  EXPECT_TRUE(g.occupied({0, 0}));
  EXPECT_TRUE(g.occupied({0, 1}));
  EXPECT_FALSE(g.occupied({0, 2}));
}

TEST(Executor, MultiStepSweepChecksPath) {
  OccupancyGrid g(1, 6);
  g.set({0, 0});
  g.set({0, 2});  // blocker midway
  EXPECT_TRUE(validate_move(g, {Direction::East, 3, {{0, 0}}}, false).has_value());
  g.clear({0, 2});
  EXPECT_FALSE(validate_move(g, {Direction::East, 3, {{0, 0}}}, false).has_value());
}

TEST(Executor, MultiStepLockstepGroupSweepsThroughVacatedCells) {
  OccupancyGrid g(1, 6);
  g.set({0, 1});
  g.set({0, 2});
  // Both move east 2: atom at 1 sweeps cells 2 (vacated by partner) and 3.
  const ParallelMove move{Direction::East, 2, {{0, 1}, {0, 2}}};
  EXPECT_FALSE(validate_move(g, move, true).has_value());
  apply_move(g, move);
  EXPECT_TRUE(g.occupied({0, 3}));
  EXPECT_TRUE(g.occupied({0, 4}));
}

TEST(Executor, ApplyMoveThrowsOnViolation) {
  OccupancyGrid g(2, 2);
  EXPECT_THROW(apply_move(g, {Direction::East, 1, {{0, 0}}}), PreconditionError);
}

TEST(Executor, RunScheduleStopsAtFirstViolation) {
  OccupancyGrid g(1, 4);
  g.set({0, 0});
  Schedule s;
  s.push_back({Direction::East, 1, {{0, 0}}});
  s.push_back({Direction::East, 1, {{0, 0}}});  // source now empty -> invalid
  const ExecutionReport report = run_schedule(g, s);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.moves_applied, 1u);
  EXPECT_NE(report.error.find("move 1"), std::string::npos);
}

TEST(Executor, AodCheckCanBeDisabled) {
  // A move that is physically collision-free but violates the AOD
  // cross-product rule: atoms (0,0) and (1,1) ride east while a bystander
  // sits on the generated cross trap (1,0).
  OccupancyGrid g(3, 4);
  g.set({0, 0});
  g.set({1, 1});
  g.set({1, 0});  // bystander on the cross trap
  const ParallelMove move{Direction::East, 1, {{0, 0}, {1, 1}}};
  EXPECT_TRUE(validate_move(g, move, /*check_aod=*/true).has_value());
  EXPECT_FALSE(validate_move(g, move, /*check_aod=*/false).has_value());
}

// ---------------------------------------------------------------------------
// Realizer
// ---------------------------------------------------------------------------

TEST(Realizer, CompactsARow) {
  OccupancyGrid g = OccupancyGrid::from_strings({"01011"});
  Schedule s;
  const LineAssignment a{0, {1, 3, 4}, {0, 1, 2}};
  const RealizeResult rr = realize_assignments(g, Axis::Rows, {&a, 1}, s);
  EXPECT_EQ(g.row(0).to_string(), "11100");
  EXPECT_EQ(rr.atoms_moved, 3u);
  EXPECT_EQ(rr.rounds_toward_origin, 2u);  // max displacement
  EXPECT_EQ(rr.rounds_away, 0u);
}

TEST(Realizer, MovesBothDirections) {
  OccupancyGrid g = OccupancyGrid::from_strings({"01100"});
  Schedule s;
  const LineAssignment a{0, {1, 2}, {0, 4}};  // one west, one east x2
  (void)realize_assignments(g, Axis::Rows, {&a, 1}, s);
  EXPECT_EQ(g.row(0).to_string(), "10001");
}

TEST(Realizer, ColumnAxisUsesNorthSouth) {
  OccupancyGrid g = OccupancyGrid::from_strings({
      "0",
      "1",
      "1",
      "0",
  });
  Schedule s;
  const LineAssignment a{0, {1, 2}, {0, 1}};
  (void)realize_assignments(g, Axis::Cols, {&a, 1}, s);
  EXPECT_TRUE(g.occupied({0, 0}));
  EXPECT_TRUE(g.occupied({1, 0}));
  EXPECT_FALSE(g.occupied({2, 0}));
  for (const auto& m : s.moves()) EXPECT_EQ(m.dir, Direction::North);
}

TEST(Realizer, RejectsMalformedAssignments) {
  OccupancyGrid g = OccupancyGrid::from_strings({"0110"});
  Schedule s;
  // Non-ascending sources.
  LineAssignment bad1{0, {2, 1}, {0, 1}};
  EXPECT_THROW((void)realize_assignments(g, Axis::Rows, {&bad1, 1}, s), PreconditionError);
  // Unoccupied source.
  LineAssignment bad2{0, {0}, {3}};
  EXPECT_THROW((void)realize_assignments(g, Axis::Rows, {&bad2, 1}, s), PreconditionError);
  // Size mismatch.
  LineAssignment bad3{0, {1, 2}, {0}};
  EXPECT_THROW((void)realize_assignments(g, Axis::Rows, {&bad3, 1}, s), PreconditionError);
  // Target collides with a fixed atom's ordering (moving atom would pass it).
  OccupancyGrid g2 = OccupancyGrid::from_strings({"0110"});
  LineAssignment bad4{0, {1}, {3}};  // must pass the fixed atom at 2
  EXPECT_THROW((void)realize_assignments(g2, Axis::Rows, {&bad4, 1}, s), PreconditionError);
  // Duplicate line.
  LineAssignment ok{0, {1}, {0}};
  LineAssignment dup{0, {2}, {3}};
  std::vector<LineAssignment> both{ok, dup};
  EXPECT_THROW((void)realize_assignments(g, Axis::Rows, both, s), PreconditionError);
}

TEST(Realizer, MultiLineRoundsShareCommands) {
  // Two rows, both compacting west by one: a single round should carry both
  // atoms (AOD-legal because the cross traps are empty or members).
  OccupancyGrid g = OccupancyGrid::from_strings({
      "010",
      "010",
  });
  Schedule s;
  std::vector<LineAssignment> lines{{0, {1}, {0}}, {1, {1}, {0}}};
  (void)realize_assignments(g, Axis::Rows, lines, s);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].sites.size(), 2u);
}

TEST(Realizer, RandomisedAssignmentsExecuteCleanly) {
  // Property: random per-row subsets mapped to random order-preserving
  // distinct targets realize into schedules that replay cleanly.
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    OccupancyGrid g = load_random(10, 14, {0.4, 2000 + static_cast<std::uint64_t>(trial)});
    const OccupancyGrid initial = g;
    std::vector<LineAssignment> lines;
    for (std::int32_t r = 0; r < g.height(); ++r) {
      const auto atoms = g.row(r).set_positions();
      if (atoms.empty()) continue;
      // Move every atom of the row to a fresh ascending random placement.
      std::set<std::int32_t> placement;
      while (placement.size() < atoms.size()) {
        placement.insert(static_cast<std::int32_t>(rng.uniform_below(14)));
      }
      LineAssignment a;
      a.line = r;
      for (const auto p : atoms) a.sources.push_back(static_cast<std::int32_t>(p));
      a.targets.assign(placement.begin(), placement.end());
      lines.push_back(std::move(a));
    }
    Schedule s;
    (void)realize_assignments(g, Axis::Rows, lines, s);
    testutil::expect_replays_to(initial, s, g);
  }
}

// ---------------------------------------------------------------------------
// Schedule bookkeeping & physical model
// ---------------------------------------------------------------------------

TEST(Schedule, StatsAndRecords) {
  Schedule s;
  s.push_back({Direction::West, 1, {{0, 1}, {1, 1}}});
  s.push_back({Direction::South, 3, {{2, 2}}});
  const ScheduleStats st = s.stats();
  EXPECT_EQ(st.parallel_moves, 2u);
  EXPECT_EQ(st.atom_moves, 3u);
  EXPECT_EQ(st.total_steps, 5);
  EXPECT_EQ(st.max_steps, 3);
  EXPECT_EQ(st.max_parallelism, 2u);
  EXPECT_DOUBLE_EQ(st.mean_parallelism, 1.5);

  const auto records = s.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].origin, (Coord{2, 2}));
  EXPECT_EQ(records[2].dir, Direction::South);
  EXPECT_EQ(records[2].steps, 3);
}

TEST(Schedule, AppendAndToString) {
  Schedule a;
  a.push_back({Direction::East, 1, {{0, 0}}});
  Schedule b;
  b.push_back({Direction::North, 2, {{3, 3}}});
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  const std::string text = a.to_string();
  EXPECT_NE(text.find("E x1"), std::string::npos);
  EXPECT_NE(text.find("N x2"), std::string::npos);
}

TEST(Physical, DurationsAccumulate) {
  const PhysicalModel model{20.0, 10.0};
  Schedule s;
  s.push_back({Direction::East, 1, {{0, 0}, {1, 0}}});
  s.push_back({Direction::East, 4, {{0, 2}}});
  EXPECT_DOUBLE_EQ(model.move_duration_us(s[0]), 30.0);
  EXPECT_DOUBLE_EQ(model.move_duration_us(s[1]), 60.0);
  EXPECT_DOUBLE_EQ(model.schedule_duration_us(s), 90.0);
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file plan_cache.hpp
/// Content-addressed cache of PlanResults, shared across shots and
/// scenarios.
///
/// Every planner in the repo is a pure function of (planner configuration,
/// occupancy grid) — the rt::PlanFn contract — so a plan computed once can
/// be spliced into any later round that sees the same configuration and the
/// same grid. The cases that actually recur in campaigns: Pattern scenarios
/// replan the exact same deterministic grid on every shot's first round,
/// and sweep matrices repeat identical (spec axes, workload) cells.
///
/// Correctness contract: a hit returns a PlanResult bit-equal to what a
/// cold plan would produce (the key includes the *full grid content*, and
/// entries whose 64-bit key collides are disambiguated by grid equality —
/// a hash collision can never substitute a wrong plan). Outcome
/// fingerprints are therefore identical with the cache on or off; this is
/// pinned by plan_cache_test and the 50-seed property in property_test.
///
/// Stats note: hit/miss counts depend on which concurrent shot planned a
/// grid first, so PlanCacheStats is measurement (like wall-clock), not
/// outcome — it is excluded from every fingerprint and from deterministic
/// report artifacts.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "lattice/grid.hpp"

namespace qrm::exec {

struct PlanCacheConfig {
  /// Entry cap; the oldest insertion is evicted when full (FIFO — plans
  /// recur shot-to-shot, so recency tracking buys little here).
  std::size_t max_entries = 1u << 14;
  /// Test hook: mask cell keys down to the low N bits (1..63) so tests can
  /// deterministically force distinct grids into one colliding bucket and
  /// exercise the chained-eviction paths (a genuine 64-bit FNV collision is
  /// not constructible on demand). 0 = full 64-bit keys, the production
  /// default. Correctness is unaffected either way — hits are resolved by
  /// grid equality, never by the hash alone.
  std::uint32_t key_bits = 0;
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }

  /// Combine shard- or scenario-level counters into campaign totals.
  PlanCacheStats& operator+=(const PlanCacheStats& other) noexcept;
};

/// Mix an occupancy grid (dims + words) into an FNV-1a hash. Exactly the
/// byte order BatchReport::fingerprint uses for grids, exposed so the two
/// never diverge.
void mix_grid(std::uint64_t& hash, const OccupancyGrid& grid) noexcept;

/// Thread-safe plan memoisation keyed on (planner-config key, grid).
class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig config = {});

  /// The key prefix of one planner configuration: every axis that can
  /// change a plan's output (algorithm name, target, mode, iteration cap,
  /// merge/legalize toggles, sen gate). The shot seed is deliberately NOT
  /// part of the key — a plan depends on the seed only through the grid it
  /// generated, and folding the seed in would stop Pattern shots (identical
  /// grids, distinct seeds) from ever sharing an entry.
  [[nodiscard]] static std::uint64_t config_key(const std::string& algorithm,
                                                const QrmConfig& plan) noexcept;

  /// Look up a plan; null on miss. The returned pointer stays valid after
  /// eviction (entries are shared_ptr-owned).
  [[nodiscard]] std::shared_ptr<const PlanResult> find(std::uint64_t config_key,
                                                       const OccupancyGrid& grid) const;

  /// Insert a plan computed for (config_key, grid). If a concurrent shot
  /// already inserted the same cell, the existing entry wins (both are
  /// bit-equal by the purity contract) — insert never replaces.
  std::shared_ptr<const PlanResult> insert(std::uint64_t config_key, const OccupancyGrid& grid,
                                           PlanResult plan);

  [[nodiscard]] PlanCacheStats stats() const;
  void clear();

 private:
  struct Entry {
    OccupancyGrid grid;  ///< full content, so a hit is provably exact
    std::shared_ptr<const PlanResult> plan;
  };

  /// Full bucket key of one (config, grid) cell, masked per config_.key_bits.
  [[nodiscard]] std::uint64_t cell_key(std::uint64_t config_key,
                                       const OccupancyGrid& grid) const noexcept;

  PlanCacheConfig config_;
  mutable std::mutex mutex_;
  /// Buckets keyed by the 64-bit cell key; colliding grids chain within a
  /// bucket and are resolved by grid equality.
  std::unordered_map<std::uint64_t, std::vector<Entry>> cells_;
  std::deque<std::uint64_t> insertion_order_;  ///< cell keys, for FIFO eviction
  std::size_t entries_ = 0;
  mutable PlanCacheStats stats_;
};

}  // namespace qrm::exec

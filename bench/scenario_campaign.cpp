// Campaign throughput: scenarios/sec of the smoke registry subset as a
// function of worker count, plus google-benchmark timings of the scenario
// plumbing itself (parse + sweep expansion), which must stay negligible
// next to planning. The table doubles as a determinism check: the campaign
// fingerprint column must not vary with the worker count.

#include <sstream>

#include "batch/thread_pool.hpp"
#include "bench_common.hpp"
#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

std::vector<std::uint32_t> worker_sweep() {
  std::vector<std::uint32_t> sweep = {1, 2};
  const std::uint32_t hw = batch::ThreadPool::resolve_workers(0);
  if (hw > 2) sweep.push_back(hw);
  return sweep;
}

void print_table() {
  print_header("Scenario campaign throughput — smoke registry vs worker count",
               "ROADMAP north star: scenario diversity at production scale");

  TextTable table({"workers", "scenarios", "shots", "wall", "shots/s", "speedup",
                   "fingerprint"});
  double base_wall = 0.0;
  for (const std::uint32_t workers : worker_sweep()) {
    scenario::CampaignConfig config;
    config.workers = workers;
    config.filter = "smoke";
    const scenario::CampaignReport report =
        scenario::CampaignRunner(config).run(scenario::registry());

    std::size_t shots = 0;
    for (const scenario::ScenarioOutcome& outcome : report.scenarios)
      shots += outcome.batch.shots.size();
    if (workers == 1) base_wall = report.wall_us;

    std::ostringstream fingerprint;
    fingerprint << "0x" << std::hex << report.fingerprint();
    table.add_row({std::to_string(report.workers), std::to_string(report.scenarios.size()),
                   std::to_string(shots), fmt_time_us(report.wall_us),
                   fmt_double(static_cast<double>(shots) / (report.wall_us * 1e-6)),
                   fmt_speedup(base_wall / report.wall_us), fingerprint.str()});
  }
  std::printf("%s", table.render().c_str());
}

void BM_ParseRegistryEntry(benchmark::State& state) {
  const std::string text = scenario::serialize(scenario::registry().front());
  for (auto _ : state) {
    const scenario::ScenarioSpec spec = scenario::parse_scenario(text);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_ParseRegistryEntry);

void BM_ExpandGridSweep(benchmark::State& state) {
  const std::string sweep =
      "name=bench\ngrid=16..256 step 16\nfill=0.5,0.6\nshots=4\n";
  for (auto _ : state) {
    const std::vector<scenario::ScenarioSpec> specs = scenario::expand_sweeps(sweep);
    benchmark::DoNotOptimize(specs);
  }
}
BENCHMARK(BM_ExpandGridSweep);

void BM_SmokeScenarioEndToEnd(benchmark::State& state) {
  scenario::CampaignConfig config;
  config.workers = static_cast<std::uint32_t>(state.range(0));
  const scenario::CampaignRunner runner(config);
  const scenario::ScenarioSpec& spec = scenario::find_scenario("smoke-uniform");
  for (auto _ : state) {
    const scenario::ScenarioOutcome outcome = runner.run_one(spec);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SmokeScenarioEndToEnd)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

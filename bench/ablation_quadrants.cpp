// Ablation of the paper's central architectural claim (Sec. III-B): the
// quadrant decomposition gives an intrinsic parallelisation factor of four.
// We serialize the same schedule analysis over 1 and 2 kernel pathways and
// compare against the 4-pathway design.

#include "bench_common.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

hw::AccelResult run_with_pathways(std::int32_t size, std::uint32_t pathways,
                                  std::uint64_t seed) {
  hw::AcceleratorConfig config;
  config.plan.target = centered_square(size, paper_target(size));
  config.quadrant_pathways = pathways;
  return hw::QrmAccelerator(config).run(workload(size, seed));
}

void print_table() {
  print_header("Ablation — quadrant parallelism (QPM pathway count)",
               "paper Sec. III-B: quadrant split gives an intrinsic 4x parallelisation");
  TextTable table({"W", "total 1-path", "total 4-path", "QPM cycles 1/2/4", "QPM gain"});
  for (const std::int32_t size : {30, 50, 90}) {
    const hw::AccelResult r1 = run_with_pathways(size, 1, 1);
    const hw::AccelResult r2 = run_with_pathways(size, 2, 1);
    const hw::AccelResult r4 = run_with_pathways(size, 4, 1);
    const std::uint64_t q1 = r1.cycles.pass_total();
    const std::uint64_t q2 = r2.cycles.pass_total();
    const std::uint64_t q4 = r4.cycles.pass_total();
    table.add_row({std::to_string(size), fmt_time_us(r1.latency_us),
                   fmt_time_us(r4.latency_us),
                   std::to_string(q1) + "/" + std::to_string(q2) + "/" + std::to_string(q4),
                   fmt_speedup(static_cast<double>(q1) / static_cast<double>(q4))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "(QPM gain tops out near (4*Qh+Qw)/(Qh+Qw) = 2.5x for square quadrants — the\n"
      " pipeline drain and the shared output stream bound the paper's idealised 4x;\n"
      " total latency also carries fixed load/balance/DMA stages)\n\n");
}

void BM_Pathways(benchmark::State& state) {
  const auto pathways = static_cast<std::uint32_t>(state.range(0));
  double modelled_us = 0.0;
  for (auto _ : state) {
    const auto result = run_with_pathways(50, pathways, 1);
    modelled_us = result.latency_us;
    benchmark::DoNotOptimize(result);
  }
  state.counters["modelled_us"] = modelled_us;
}
BENCHMARK(BM_Pathways)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

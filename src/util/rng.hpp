#pragma once
/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// All stochastic parts of the library (atom loading, photon noise, workload
/// generators) draw from this generator so that every experiment is exactly
/// reproducible from a 64-bit seed. The implementation is xoshiro256**
/// seeded through SplitMix64, which is fast, high quality, and has no global
/// state (Core Guidelines: avoid non-const global variables).

#include <array>
#include <cstdint>

namespace qrm {

/// SplitMix64 step; used to expand a user seed into xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derive the seed of an independent child stream from a master seed.
///
/// SplitMix-style: the stream index is hashed through SplitMix64 and folded
/// into the master, so (a) nearby indices give uncorrelated streams, (b) the
/// derivation depends only on (master, stream) — never on how many sibling
/// streams exist or which thread asks first — which is what makes batch
/// results bit-identical regardless of worker count, and (c) collisions
/// between derived seeds, or with the master itself, are only probabilistic
/// (~2^-64 per pair, birthday-bounded) — callers needing hard domain
/// separation should derive through distinct domain tags rather than reuse
/// a master directly as a sibling stream.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t index_state = stream + 0xD1B54A32D192ED03ULL;
  std::uint64_t mixed = master ^ splitmix64(index_state);
  return splitmix64(mixed);
}

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed deterministically; distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x5EEDULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition handled gracefully: n==0 -> 0.
  std::uint32_t uniform_below(std::uint32_t n) noexcept {
    if (n == 0) return 0;
    // Lemire's unbiased multiply-shift rejection method.
    std::uint64_t x = next_u64() & 0xFFFFFFFFULL;
    std::uint64_t m = x * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      const std::uint32_t threshold = (0U - n) % n;
      while (lo < threshold) {
        x = next_u64() & 0xFFFFFFFFULL;
        m = x * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Box-Muller (one value per call; simple and exact).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Poisson-distributed count. Uses Knuth's method for small lambda and a
  /// normal approximation for large lambda (adequate for photon statistics).
  std::uint32_t poisson(double lambda) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace qrm

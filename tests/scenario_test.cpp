// Tests for the qrm::scenario subsystem: spec text round-trip and strict
// rejection, registry completeness, sweep expansion, and the campaign
// runner's worker-count-independent fingerprints (mirroring batch_test).

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "batch/batch_planner.hpp"
#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

using scenario::LoadProfile;
using scenario::ScenarioSpec;

/// A scenario small enough that the multi-worker campaign cases stay fast.
ScenarioSpec tiny_spec() {
  ScenarioSpec spec;
  spec.name = "tiny";
  spec.grid_height = spec.grid_width = 16;
  spec.target_rows = spec.target_cols = 8;
  spec.fill = 0.7;
  spec.shots = 6;
  spec.seed = 0x7117;
  spec.max_rounds = 4;
  return spec;
}

// ---------------------------------------------------------------------------
// Spec round trip + validation
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, SerializeParseRoundTripsEveryRegistryEntry) {
  for (const ScenarioSpec& spec : scenario::registry()) {
    const std::string text = serialize(spec);
    const ScenarioSpec parsed = scenario::parse_scenario(text);
    EXPECT_EQ(parsed, spec) << "round trip diverged for " << spec.name << ":\n" << text;
    // Idempotence: serializing the parse reproduces the text exactly.
    EXPECT_EQ(serialize(parsed), text);
  }
}

TEST(ScenarioSpec, RoundTripPreservesEveryProfileSpecificField) {
  ScenarioSpec spec = tiny_spec();
  spec.description = "a description with spaces = and symbols";
  spec.tags = {"smoke", "extra"};
  spec.load = LoadProfile::Gradient;
  // Serialization is minimal: keys outside the chosen load profile are
  // omitted, so a round trip only preserves profile-relevant fields.
  spec.fill = 0.55;
  spec.gradient_start = 0.125;
  spec.gradient_end = 0.875;
  spec.gradient_axis = GradientAxis::Cols;
  spec.mode = PlanMode::Compact;
  spec.algorithm = "qrm-compact";
  spec.architecture = rt::Architecture::HostMediated;
  const ScenarioSpec parsed = scenario::parse_scenario(serialize(spec));
  EXPECT_EQ(parsed, spec);
}

TEST(ScenarioSpec, ParserAcceptsCommentsBlanksAndAutoKeys) {
  const ScenarioSpec parsed = scenario::parse_scenario(
      "# a campaign comment\n"
      "name=commented\n"
      "\n"
      "grid=24\n"
      "target=auto\n"
      "load=at-least\n"
      "fill=0.4\n"
      "min_atoms=auto\n"
      "seed=123\n");
  EXPECT_EQ(parsed.grid_height, 24);
  EXPECT_EQ(parsed.grid_width, 24);
  EXPECT_EQ(parsed.target_rows, 0);  // auto
  EXPECT_EQ(parsed.target_region().rows, 14);  // 24*3/5 rounded down to even
  EXPECT_EQ(parsed.load, LoadProfile::AtLeast);
  EXPECT_EQ(parsed.resolved_min_atoms(), 14 * 14);
  EXPECT_EQ(parsed.seed, 123u);
}

TEST(ScenarioSpec, ParserRejectsMalformedInput) {
  // Unknown key.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nnot_a_key=1\n"), PreconditionError);
  // Duplicate key.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nname=y\n"), PreconditionError);
  // Not key=value.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\njust some text\n"), PreconditionError);
  // Non-numeric value.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nfill=lots\n"), PreconditionError);
  // Unknown enum values.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nload=magnetic\n"), PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nmode=fastest\n"), PreconditionError);
  // Empty block.
  EXPECT_THROW((void)scenario::parse_scenario("# only a comment\n"), PreconditionError);
  // Profile-specific key under the wrong profile.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nload=uniform\npattern=border\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nload=pattern\nfill=0.5\n"),
               PreconditionError);
}

TEST(ScenarioSpec, ValidationRejectsUnrunnableSpecs) {
  // Out-of-range probability.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nfill=1.5\n"), PreconditionError);
  // Odd grid/target (quadrant decomposition needs even sides).
  EXPECT_THROW((void)scenario::parse_scenario("name=x\ngrid=33\n"), PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\ngrid=32\ntarget=15x16\n"),
               PreconditionError);
  // Target larger than the grid.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\ngrid=16\ntarget=18\n"),
               PreconditionError);
  // Unknown planner.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nalgorithm=quantum\n"),
               PreconditionError);
  // Whitespace in the name.
  EXPECT_THROW((void)scenario::parse_scenario("name=two words\n"), PreconditionError);
  // Non-positive counts.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nshots=0\n"), PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nmax_rounds=0\n"), PreconditionError);
  // Count fields must fit their spec types and sanity caps — a negative or
  // oversized value is an error, never a silent integer wrap (clusters=-1
  // must not become ~4e9 blast regions).
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nload=clustered\nclusters=-1\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nload=clustered\ncluster_radius=-1\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\ngrid=5000000000\n"), PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nshots=5000000000\n"),
               PreconditionError);
  ScenarioSpec oversized = tiny_spec();
  oversized.clusters = 1u << 20;
  oversized.load = LoadProfile::Clustered;
  EXPECT_THROW(scenario::validate(oversized), PreconditionError);
}

TEST(ScenarioSpec, ImagedDetectionRoundTripsAndGatesItsKeys) {
  ScenarioSpec spec = tiny_spec();
  spec.imaged_detection = true;
  spec.photons_per_atom = 48.5;
  spec.detection_threshold = 120.25;
  const std::string text = serialize(spec);
  EXPECT_NE(text.find("imaged_detection=true"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(text), spec);

  // The automatic threshold serializes as `auto` and round-trips to -1.
  spec.detection_threshold = -1.0;
  EXPECT_NE(serialize(spec).find("detection_threshold=auto"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(serialize(spec)), spec);

  // With imaged detection off, the imaging keys are omitted entirely...
  EXPECT_EQ(serialize(tiny_spec()).find("imaged_detection"), std::string::npos);
  // ...and rejected on input: a stray imaging knob is a spec bug.
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nphotons_per_atom=100\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\ndetection_threshold=12\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nimaged_detection=maybe\n"),
               PreconditionError);
}

TEST(ScenarioSpec, ImagedDetectionRejectsOutOfRangeValues) {
  const auto imaged = [](const std::string& tail) {
    return scenario::parse_scenario("name=x\nimaged_detection=true\n" + tail);
  };
  EXPECT_THROW((void)imaged("photons_per_atom=0\n"), PreconditionError);
  EXPECT_THROW((void)imaged("photons_per_atom=-3\n"), PreconditionError);
  EXPECT_THROW((void)imaged("photons_per_atom=nan\n"), PreconditionError);
  EXPECT_THROW((void)imaged("photons_per_atom=inf\n"), PreconditionError);
  EXPECT_THROW((void)imaged("photons_per_atom=1e18\n"), PreconditionError);
  EXPECT_THROW((void)imaged("detection_threshold=-0.5\n"), PreconditionError);
  EXPECT_THROW((void)imaged("detection_threshold=nan\n"), PreconditionError);
  EXPECT_THROW((void)imaged("detection_threshold=1e18\n"), PreconditionError);
  EXPECT_NO_THROW((void)imaged("photons_per_atom=50\ndetection_threshold=auto\n"));

  // Programmatically built specs get the same protection from validate():
  // any negative threshold other than the -1 sentinel would silently alias
  // to "auto" in the text form and break the round trip.
  ScenarioSpec bad = tiny_spec();
  bad.imaged_detection = true;
  bad.detection_threshold = -2.0;
  EXPECT_THROW(scenario::validate(bad), PreconditionError);
}

TEST(ScenarioSpec, HostileAxesRoundTripAndStayOffByDefault) {
  // Every new axis defaults off AND serializes to nothing, so the identity
  // fingerprint of every pre-existing spec is unchanged by this feature.
  const std::string baseline = serialize(tiny_spec());
  for (const char* key : {"burst_loss", "burst_length", "drift", "drift_amplitude",
                          "drift_period", "threshold_bias", "dead_rows", "dead_cols"}) {
    EXPECT_EQ(baseline.find(key), std::string::npos) << key;
  }

  // Correlated loss bursts.
  ScenarioSpec burst = tiny_spec();
  burst.burst_loss = 0.25;
  burst.burst_length = 7;
  const std::string burst_text = serialize(burst);
  EXPECT_NE(burst_text.find("burst_loss=0.25"), std::string::npos);
  EXPECT_NE(burst_text.find("burst_length=7"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(burst_text), burst);

  // Calibration drift and threshold miscalibration (imaging-gated).
  ScenarioSpec drifty = tiny_spec();
  drifty.imaged_detection = true;
  drifty.photons_per_atom = 32.0;
  drifty.drift = DriftShape::Sine;
  drifty.drift_amplitude = 0.4;
  drifty.drift_period = 6;
  drifty.threshold_bias = 1.25;
  const std::string drift_text = serialize(drifty);
  EXPECT_NE(drift_text.find("drift=sine"), std::string::npos);
  EXPECT_NE(drift_text.find("threshold_bias=1.25"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(drift_text), drifty);
  drifty.drift = DriftShape::Ramp;
  EXPECT_EQ(scenario::parse_scenario(serialize(drifty)), drifty);

  // Dead AOD lines serialize as comma lists and round-trip exactly.
  ScenarioSpec dead = tiny_spec();
  dead.grid_height = dead.grid_width = 32;
  dead.target_rows = dead.target_cols = 18;  // occupies rows/cols 7..24
  dead.dead_rows = {0, 2, 28};
  dead.dead_cols = {30};
  const std::string dead_text = serialize(dead);
  EXPECT_NE(dead_text.find("dead_rows=0,2,28"), std::string::npos);
  EXPECT_NE(dead_text.find("dead_cols=30"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(dead_text), dead);

  // The adversarial pattern generators round-trip by name. (The Pattern
  // profile omits fill on serialize, so keep tiny's fill at its default.)
  ScenarioSpec pat = tiny_spec();
  pat.fill = 0.55;
  pat.load = LoadProfile::Pattern;
  pat.pattern = Pattern::CornerBlock;
  EXPECT_NE(serialize(pat).find("pattern=corner-block"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(serialize(pat)), pat);
  pat.pattern = Pattern::HalfGrid;
  EXPECT_NE(serialize(pat).find("pattern=half-grid"), std::string::npos);
  EXPECT_EQ(scenario::parse_scenario(serialize(pat)), pat);
}

TEST(ScenarioSpec, HostileAxesRejectOutOfRangeAndMisgatedValues) {
  const auto reject = [](const std::string& tail) {
    EXPECT_THROW((void)scenario::parse_scenario("name=x\n" + tail), PreconditionError) << tail;
  };
  // Burst loss: probability range, positive length, length gated on the axis.
  reject("burst_loss=1.5\n");
  reject("burst_loss=-0.1\n");
  reject("burst_loss=nan\n");
  reject("burst_loss=0.5\nburst_length=0\n");
  reject("burst_loss=0.5\nburst_length=-4\n");
  reject("burst_length=5\n");  // burst_length without burst_loss > 0
  reject("burst_loss=0\nburst_length=5\n");

  // Drift: imaging-gated shape, amplitude/period gated on a non-none shape.
  reject("drift=sine\n");  // no imaged_detection
  reject("drift_amplitude=0.3\n");
  const auto imaged = [&reject](const std::string& tail) {
    reject("imaged_detection=true\n" + tail);
  };
  imaged("drift=wobble\n");
  imaged("drift=ramp\ndrift_amplitude=1.5\n");
  imaged("drift=ramp\ndrift_amplitude=-0.1\n");
  imaged("drift=ramp\ndrift_amplitude=nan\n");
  imaged("drift=ramp\ndrift_period=0\n");
  imaged("drift=none\ndrift_amplitude=0.3\n");
  imaged("drift=none\ndrift_period=4\n");
  imaged("drift_period=4\n");  // period without any drift shape

  // Threshold bias: imaging-gated, finite, positive, sane.
  reject("threshold_bias=1.2\n");  // no imaged_detection
  imaged("threshold_bias=0\n");
  imaged("threshold_bias=-1\n");
  imaged("threshold_bias=nan\n");
  imaged("threshold_bias=inf\n");
  imaged("threshold_bias=101\n");

  // Dead lines: in-grid, strictly ascending, disjoint from the target.
  reject("grid=32\ntarget=18\ndead_rows=\n");
  reject("grid=32\ntarget=18\ndead_rows=5,\n");
  reject("grid=32\ntarget=18\ndead_rows=5,5\n");
  reject("grid=32\ntarget=18\ndead_rows=6,2\n");
  reject("grid=32\ntarget=18\ndead_rows=32\n");
  reject("grid=32\ntarget=18\ndead_rows=-1\n");
  reject("grid=32\ntarget=18\ndead_rows=12\n");  // auto target covers rows 7..24
  reject("grid=32\ntarget=18\ndead_cols=24\n");  // ...and cols 7..24
  reject("grid=32\ntarget=18\ndead_rows=abc\n");

  // Programmatically built specs hit the same walls via validate().
  ScenarioSpec bad = tiny_spec();
  bad.drift = DriftShape::Ramp;  // drift without imaged detection
  EXPECT_THROW(scenario::validate(bad), PreconditionError);
  bad = tiny_spec();
  bad.threshold_bias = 1.3;
  EXPECT_THROW(scenario::validate(bad), PreconditionError);
  bad = tiny_spec();
  bad.dead_rows = {4, 4};
  EXPECT_THROW(scenario::validate(bad), PreconditionError);
  bad = tiny_spec();
  bad.dead_cols = {6};  // tiny's 8x8 target sits at rows/cols 4..11
  EXPECT_THROW(scenario::validate(bad), PreconditionError);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, ShipsTheRequiredCoverage) {
  const std::vector<ScenarioSpec>& scenarios = scenario::registry();
  EXPECT_GE(scenarios.size(), 8u);

  std::set<std::string> names;
  std::set<LoadProfile> profiles;
  std::set<rt::Architecture> architectures;
  for (const ScenarioSpec& spec : scenarios) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_NO_THROW(scenario::validate(spec)) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    profiles.insert(spec.load);
    architectures.insert(spec.architecture);
  }
  // All five loader families and both control architectures are exercised.
  EXPECT_EQ(profiles.size(), 5u);
  EXPECT_EQ(architectures.size(), 2u);
  // The detection-error regime is covered (scenario-driven imaged detection).
  bool imaged = false;
  for (const ScenarioSpec& spec : scenarios) imaged = imaged || spec.imaged_detection;
  EXPECT_TRUE(imaged);
  EXPECT_NO_THROW((void)scenario::find_scenario("imaged-detection"));
  // The hostile-physics axes (bursts, drift, bias, dead channels, adversarial
  // patterns) ship as first-class registry scenarios with pinned goldens.
  EXPECT_GE(scenario::filter_registry("hostile").size(), 6u);
  // The paper's own workload and a large-grid stress point are present.
  EXPECT_NO_THROW((void)scenario::find_scenario("paper-fig7"));
  EXPECT_NO_THROW((void)scenario::find_scenario("large-grid-256"));
  EXPECT_THROW((void)scenario::find_scenario("no-such-scenario"), PreconditionError);
}

TEST(ScenarioRegistry, SmokeSubsetIsSmallAndNonEmpty) {
  const std::vector<ScenarioSpec> smoke = scenario::filter_registry("smoke");
  ASSERT_GE(smoke.size(), 5u);
  for (const ScenarioSpec& spec : smoke) {
    EXPECT_LE(spec.grid_height * spec.grid_width, 48 * 48) << spec.name;
    EXPECT_LE(spec.shots, 16u) << spec.name;
  }
  // Name-substring filtering works too, and a miss is empty.
  EXPECT_EQ(scenario::filter_registry("paper-fig7").size(), 1u);
  EXPECT_TRUE(scenario::filter_registry("definitely-missing").empty());
}

// ---------------------------------------------------------------------------
// Sweep expansion
// ---------------------------------------------------------------------------

TEST(ScenarioSweep, RangeAndListSweepsExpandToTheCartesianMatrix) {
  const std::vector<ScenarioSpec> grids =
      scenario::expand_sweeps("name=s\ngrid=64..256 step 64\n");
  ASSERT_EQ(grids.size(), 4u);  // 64, 128, 192, 256
  EXPECT_EQ(grids[0].grid_height, 64);
  EXPECT_EQ(grids[3].grid_height, 256);
  EXPECT_EQ(grids[1].name, "s/grid=128");

  const std::vector<ScenarioSpec> matrix = scenario::expand_sweeps(
      "name=m\ngrid=16,32\nfill=0.5,0.6,0.7\nshots=4\n");
  ASSERT_EQ(matrix.size(), 6u);
  std::set<std::string> names;
  for (const ScenarioSpec& spec : matrix) names.insert(spec.name);
  EXPECT_EQ(names.size(), 6u);  // unique suffixes per combination
  EXPECT_EQ(names.count("m/grid=16/fill=0.6"), 1u);

  // Float range steps land on the written grid points.
  const std::vector<ScenarioSpec> fills =
      scenario::expand_sweeps("name=f\nfill=0.4..0.6 step 0.1\n");
  ASSERT_EQ(fills.size(), 3u);
  EXPECT_DOUBLE_EQ(fills[2].fill, 0.6);
}

TEST(ScenarioSweep, MultiBlockFilesAndRejection) {
  const std::vector<ScenarioSpec> blocks = scenario::expand_sweeps(
      "name=a\nshots=2\n"
      "---\n"
      "name=b\ngrid=16,32\nshots=2\n");
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].name, "a");

  // Malformed sweeps.
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\ngrid=64..256\n"), PreconditionError);
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\ngrid=64..32 step 16\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\ngrid=64..128 step 0\n"),
               PreconditionError);
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\nfill=0.4,,0.6\n"), PreconditionError);
  // Sweep on a non-sweepable key is a plain parse error (comma value).
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\nmode=balanced,compact\n"),
               PreconditionError);
  // Matrix cap.
  EXPECT_THROW((void)scenario::expand_sweeps("name=x\nseed=1..100 step 1\n", 10),
               PreconditionError);
  // Duplicate names across blocks.
  EXPECT_THROW((void)scenario::expand_sweeps("name=a\n---\nname=a\n"), PreconditionError);
  // Empty file.
  EXPECT_THROW((void)scenario::expand_sweeps("# nothing\n"), PreconditionError);
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

TEST(ScenarioWorkload, EveryProfileGeneratesDeterministically) {
  for (const LoadProfile profile :
       {LoadProfile::Uniform, LoadProfile::AtLeast, LoadProfile::Clustered,
        LoadProfile::Gradient, LoadProfile::Pattern}) {
    ScenarioSpec spec = tiny_spec();
    spec.load = profile;
    const OccupancyGrid a = generate_workload(spec, 7);
    const OccupancyGrid b = generate_workload(spec, 7);
    EXPECT_EQ(a, b) << scenario::to_cstring(profile);
    EXPECT_EQ(a.height(), spec.grid_height);
    EXPECT_EQ(a.width(), spec.grid_width);
    if (profile != LoadProfile::Pattern) {
      const OccupancyGrid c = generate_workload(spec, 8);
      EXPECT_NE(a, c) << scenario::to_cstring(profile) << " ignored the shot seed";
    }
  }
}

TEST(ScenarioWorkload, AtLeastHonoursTheResolvedDemand) {
  ScenarioSpec spec = tiny_spec();
  spec.load = LoadProfile::AtLeast;
  spec.fill = 0.5;
  const OccupancyGrid grid = generate_workload(spec, 3);
  EXPECT_GE(grid.atom_count(), spec.resolved_min_atoms());
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

TEST(CampaignRunner, MatchesAHandBuiltBatchPlannerBitForBit) {
  // The scenario path must reproduce a hand-coded BatchPlanner sweep cell
  // (the old batch_campaign binary) exactly: same seeds, same fingerprint.
  const ScenarioSpec spec = tiny_spec();

  batch::BatchConfig by_hand;
  by_hand.plan.target = centered_region(16, 16, 8, 8);
  by_hand.grid_height = by_hand.grid_width = 16;
  by_hand.fill = 0.7;
  by_hand.shots = 6;
  by_hand.exec.workers = 2;
  by_hand.master_seed = spec.seed;
  by_hand.loss.per_move_loss = spec.per_move_loss;
  by_hand.loss.background_loss = spec.background_loss;
  by_hand.max_rounds = 4;
  const std::uint64_t expected = batch::BatchPlanner(by_hand).run().fingerprint();

  scenario::CampaignConfig config;
  config.exec.workers = 2;
  const scenario::ScenarioOutcome outcome = scenario::CampaignRunner(config).run_one(spec);
  EXPECT_EQ(outcome.batch.fingerprint(), expected);
}

TEST(CampaignRunner, FingerprintsAreWorkerCountIndependent) {
  // The batch_test guarantee, one level up: a campaign over multiple
  // loader families must agree bit-for-bit between 1 and 8 workers.
  std::vector<ScenarioSpec> specs;
  for (const LoadProfile profile :
       {LoadProfile::Uniform, LoadProfile::Clustered, LoadProfile::Gradient}) {
    ScenarioSpec spec = tiny_spec();
    spec.name = std::string("tiny-") + scenario::to_cstring(profile);
    spec.load = profile;
    specs.push_back(spec);
  }

  scenario::CampaignConfig serial;
  serial.exec.workers = 1;
  scenario::CampaignConfig pooled;
  pooled.exec.workers = 8;
  const scenario::CampaignReport a = scenario::CampaignRunner(serial).run(specs);
  const scenario::CampaignReport b = scenario::CampaignRunner(pooled).run(specs);

  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    EXPECT_EQ(a.scenarios[i].fingerprint, b.scenarios[i].fingerprint)
        << a.scenarios[i].spec.name;
    EXPECT_EQ(a.scenarios[i].batch.fingerprint(), b.scenarios[i].batch.fingerprint());
    EXPECT_DOUBLE_EQ(a.scenarios[i].arch_overhead_us, b.scenarios[i].arch_overhead_us);
    for (std::size_t shot = 0; shot < a.scenarios[i].batch.shots.size(); ++shot) {
      EXPECT_EQ(a.scenarios[i].batch.shots[shot].final_grid,
                b.scenarios[i].batch.shots[shot].final_grid);
    }
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(CampaignRunner, FilterSelectsAndEmptyFilterFails) {
  std::vector<ScenarioSpec> specs;
  ScenarioSpec first = tiny_spec();
  first.name = "alpha";
  first.tags = {"smoke"};
  ScenarioSpec second = tiny_spec();
  second.name = "beta";
  specs = {first, second};

  scenario::CampaignConfig config;
  config.exec.workers = 2;
  config.filter = "smoke";
  const scenario::CampaignReport report = scenario::CampaignRunner(config).run(specs);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].spec.name, "alpha");

  config.filter = "no-match";
  EXPECT_THROW((void)scenario::CampaignRunner(config).run(specs), PreconditionError);
}

TEST(CampaignRunner, ArchitectureModelSeparatesTheTwoControlPaths) {
  ScenarioSpec host = tiny_spec();
  host.name = "tiny-host";
  host.architecture = rt::Architecture::HostMediated;
  ScenarioSpec fpga = tiny_spec();
  fpga.name = "tiny-fpga";
  fpga.architecture = rt::Architecture::FpgaIntegrated;

  scenario::CampaignConfig config;
  config.exec.workers = 2;
  const scenario::CampaignRunner runner(config);
  const scenario::ScenarioOutcome host_outcome = runner.run_one(host);
  const scenario::ScenarioOutcome fpga_outcome = runner.run_one(fpga);

  // Identical physics (the architecture only affects the control path)...
  EXPECT_EQ(host_outcome.batch.fingerprint(), fpga_outcome.batch.fingerprint());
  // ...but the host-mediated path pays the two link hops every round.
  EXPECT_GT(host_outcome.arch_overhead_us, fpga_outcome.arch_overhead_us);
  EXPECT_GT(fpga_outcome.arch_overhead_us, 0.0);
  // The spec is part of the identity fingerprint, so the two differ there.
  EXPECT_NE(host_outcome.fingerprint, fpga_outcome.fingerprint);
}

TEST(CampaignRunner, ImagedDetectionFlowsIntoBatchConfigAndOutcome) {
  ScenarioSpec spec = tiny_spec();
  spec.imaged_detection = true;
  spec.photons_per_atom = 6.0;  // deliberately marginal: errors are expected

  const batch::BatchConfig batch_config = scenario::to_batch_config(spec);
  EXPECT_TRUE(batch_config.imaged_detection);
  EXPECT_DOUBLE_EQ(batch_config.imaging.photons_per_atom, 6.0);
  EXPECT_DOUBLE_EQ(batch_config.detection.threshold_photons, -1.0);

  scenario::CampaignConfig config;
  config.exec.workers = 2;
  const scenario::CampaignRunner runner(config);
  const scenario::ScenarioOutcome outcome = runner.run_one(spec);
  std::int64_t errors = 0;
  for (const batch::ShotResult& shot : outcome.batch.shots)
    errors += shot.detection_errors.total();
  // 6 photons/atom over ~4 background is deterministic-per-seed noise that
  // reliably misclassifies sites — the planner really saw the camera.
  EXPECT_GT(errors, 0);
  // And the whole imaged pipeline is reproducible bit for bit.
  EXPECT_EQ(runner.run_one(spec).fingerprint, outcome.fingerprint);

  // Perfect detection remains the default and error-free.
  const scenario::ScenarioOutcome perfect = runner.run_one(tiny_spec());
  for (const batch::ShotResult& shot : perfect.batch.shots)
    EXPECT_EQ(shot.detection_errors.total(), 0);
}

TEST(CampaignReport, CsvAndJsonWritersEmitEveryScenario) {
  scenario::CampaignConfig config;
  config.exec.workers = 2;
  ScenarioSpec spec = tiny_spec();
  spec.tags = {"smoke"};
  const scenario::CampaignReport report = scenario::CampaignRunner(config).run({spec});

  std::ostringstream csv;
  scenario::write_csv(report, csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("scenario,grid,target"), std::string::npos);
  EXPECT_NE(csv_text.find("tiny"), std::string::npos);

  std::ostringstream json;
  scenario::write_json(report, json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"name\": \"tiny\""), std::string::npos);
  EXPECT_NE(json_text.find("\"fingerprint\""), std::string::npos);
}

}  // namespace
}  // namespace qrm

// Extension bench: analysis latency vs physical execution time per
// algorithm. Accelerating the analysis to ~1 us makes the *atom motion*
// the remaining bottleneck, and algorithms with fewer / more parallel
// commands win on the physical side too — the context for the paper's
// claim that QRM "guarantees a lower clock cycle of neutral atom quantum
// computers".

#include "bench_common.hpp"
#include "awg/waveform.hpp"
#include "baselines/algorithm.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

constexpr std::int32_t kSize = 20;
constexpr std::int32_t kTarget = 12;

void print_table() {
  print_header("Extension — analysis time vs physical move time (20x20)",
               "context for Sec. VI: after acceleration, atom motion dominates");
  const awg::AodCalibration cal;
  TextTable table({"algorithm", "analysis (CPU)", "commands", "mean parallelism",
                   "physical time"});
  for (const auto& name : {"qrm", "tetris", "psca", "mta1"}) {
    const auto algo = baselines::make_algorithm(name);
    const Region target = centered_square(kSize, kTarget);
    const OccupancyGrid grid = workload(kSize, 1);
    const double cpu_us = best_of_microseconds(name == std::string("mta1") ? 3 : 10, [&] {
      benchmark::DoNotOptimize(algo->plan(grid, target));
    });
    const PlanResult result = algo->plan(grid, target);
    const auto stats = result.schedule.stats();
    const double physical_us =
        awg::build_waveform_plan(result.schedule, cal).total_duration_us;
    table.add_row({name, fmt_time_us(cpu_us), std::to_string(stats.parallel_moves),
                   fmt_double(stats.mean_parallelism, 1), fmt_time_us(physical_us)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_WaveformCompilation(benchmark::State& state) {
  const auto algo = baselines::make_algorithm("qrm");
  const PlanResult result = algo->plan(workload(kSize, 1), centered_square(kSize, kTarget));
  const awg::AodCalibration cal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(awg::build_waveform_plan(result.schedule, cal));
  }
}
BENCHMARK(BM_WaveformCompilation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

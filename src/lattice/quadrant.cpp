#include "lattice/quadrant.hpp"

#include "util/assert.hpp"

namespace qrm {

QuadrantGeometry::QuadrantGeometry(std::int32_t height, std::int32_t width)
    : height_(height), width_(width) {
  QRM_EXPECTS_MSG(height > 0 && width > 0, "quadrant geometry needs a non-empty grid");
  QRM_EXPECTS_MSG(height % 2 == 0 && width % 2 == 0,
                  "QRM quadrant split requires even height and width");
}

Region QuadrantGeometry::global_region(Quadrant q) const noexcept {
  const std::int32_t qh = local_height();
  const std::int32_t qw = local_width();
  switch (q) {
    case Quadrant::NW: return {0, 0, qh, qw};
    case Quadrant::NE: return {0, qw, qh, qw};
    case Quadrant::SW: return {qh, 0, qh, qw};
    case Quadrant::SE: return {qh, qw, qh, qw};
  }
  return {};
}

Flip QuadrantGeometry::flip_of(Quadrant q) noexcept {
  switch (q) {
    case Quadrant::NW: return Flip::Rotate180;
    case Quadrant::NE: return Flip::Vertical;
    case Quadrant::SW: return Flip::Horizontal;
    case Quadrant::SE: return Flip::None;
  }
  return Flip::None;
}

Quadrant QuadrantGeometry::quadrant_of(Coord global) const {
  QRM_EXPECTS(global.row >= 0 && global.row < height_ && global.col >= 0 && global.col < width_);
  const bool south = global.row >= local_height();
  const bool east = global.col >= local_width();
  if (!south && !east) return Quadrant::NW;
  if (!south && east) return Quadrant::NE;
  if (south && !east) return Quadrant::SW;
  return Quadrant::SE;
}

Coord QuadrantGeometry::to_local(Quadrant q, Coord global) const {
  QRM_EXPECTS_MSG(global_region(q).contains(global), "coordinate not in requested quadrant");
  const std::int32_t qh = local_height();
  const std::int32_t qw = local_width();
  switch (q) {
    case Quadrant::NW: return {qh - 1 - global.row, qw - 1 - global.col};
    case Quadrant::NE: return {qh - 1 - global.row, global.col - qw};
    case Quadrant::SW: return {global.row - qh, qw - 1 - global.col};
    case Quadrant::SE: return {global.row - qh, global.col - qw};
  }
  return global;
}

Coord QuadrantGeometry::to_global(Quadrant q, Coord local) const {
  QRM_EXPECTS(local.row >= 0 && local.row < local_height() && local.col >= 0 &&
              local.col < local_width());
  const std::int32_t qh = local_height();
  const std::int32_t qw = local_width();
  switch (q) {
    case Quadrant::NW: return {qh - 1 - local.row, qw - 1 - local.col};
    case Quadrant::NE: return {qh - 1 - local.row, qw + local.col};
    case Quadrant::SW: return {qh + local.row, qw - 1 - local.col};
    case Quadrant::SE: return {qh + local.row, qw + local.col};
  }
  return local;
}

Direction QuadrantGeometry::to_global_direction(Quadrant q, Direction local) noexcept {
  // Horizontal sense inverts for the west-side quadrants, vertical sense for
  // the north-side quadrants (their local axes point away from the centre).
  const bool invert_horizontal = (q == Quadrant::NW || q == Quadrant::SW);
  const bool invert_vertical = (q == Quadrant::NW || q == Quadrant::NE);
  if (is_horizontal(local)) return invert_horizontal ? opposite(local) : local;
  return invert_vertical ? opposite(local) : local;
}

Direction QuadrantGeometry::to_local_direction(Quadrant q, Direction global) noexcept {
  return to_global_direction(q, global);  // mirrors are involutions
}

OccupancyGrid QuadrantGeometry::extract_local(const OccupancyGrid& grid, Quadrant q) const {
  QRM_EXPECTS(grid.height() == height_ && grid.width() == width_);
  return grid.subgrid(global_region(q)).flipped(flip_of(q));
}

std::array<bool, 4> dirty_quadrant_mask(const QuadrantGeometry& geometry,
                                        const std::vector<Coord>& sites) {
  std::array<bool, 4> mask{};
  for (const Coord& site : sites)
    mask[static_cast<std::size_t>(geometry.quadrant_of(site))] = true;
  return mask;
}

void QuadrantGeometry::write_back(OccupancyGrid& grid, Quadrant q,
                                  const OccupancyGrid& local) const {
  QRM_EXPECTS(grid.height() == height_ && grid.width() == width_);
  QRM_EXPECTS(local.height() == local_height() && local.width() == local_width());
  // flip_of(q) is self-inverse for every quadrant (None/H/V/Rot180).
  grid.set_subgrid(global_region(q), local.flipped(flip_of(q)));
}

}  // namespace qrm

// Fig. 7(a): QRM execution time, CPU vs FPGA, for initial array sizes
// 10..90 (step 20). The paper reports 0.8 us (W=10), 1.0 us (W=50) and
// 1.9 us (W=90) on the FPGA, ~54x speedup at W=50 and up to ~134x at W=90.
//
// Our FPGA number comes from the cycle-level model at 250 MHz; the CPU
// number is measured on this machine. Absolute values differ from the
// authors' testbed; the shape (FPGA in low microseconds, growing far slower
// than the CPU, speedup increasing with W) is the reproduction target.
//
// The size sweep is a declarative scenario sweep (expand_sweeps), not a
// hand-rolled loop: the specs' auto target rule and Uniform loader are the
// exact workload construction this bench used to hard-code, so the modelled
// FPGA latencies are bit-identical to the pre-spec version.

#include <algorithm>

#include "bench_common.hpp"
#include "core/cpu_reference.hpp"
#include "core/planner.hpp"
#include "hwmodel/accelerator.hpp"
#include "scenario/spec.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

/// The paper's Fig. 7(a) size axis as a scenario sweep. The defaults carry
/// the rest: Uniform fill 0.55 (bench kFill) and `target=auto` (the even
/// ~0.6*W centred square paper_target encodes).
const std::vector<scenario::ScenarioSpec>& fig7a_sweep() {
  static const std::vector<scenario::ScenarioSpec> sweep = scenario::expand_sweeps(
      "name=fig7a\n"
      "description=Fig. 7(a) QRM execution time, CPU vs FPGA\n"
      "grid=10..90 step 20\n");
  return sweep;
}

const scenario::ScenarioSpec& spec_for(std::int32_t size) {
  for (const scenario::ScenarioSpec& spec : fig7a_sweep())
    if (spec.grid_width == size) return spec;
  std::abort();  // benchmark Arg not in the sweep — a bench bug
}

/// The paper's CPU baseline is the accelerator's own C++ analysis executed
/// in software (no physical-command materialisation); run_cpu_reference is
/// exactly that.
CpuReferenceResult cpu_plan(const OccupancyGrid& grid, const Region& target) {
  QrmConfig config;
  config.target = target;
  return run_cpu_reference(grid, config);
}

/// Median over per-seed workloads drawn from the spec, best-of-`repeats`
/// each (the spec-driven analogue of bench_common's measure_cpu_us).
template <typename Fn>
double measure_spec_cpu_us(const scenario::ScenarioSpec& spec, int seeds, std::size_t repeats,
                           Fn&& fn) {
  std::vector<double> times;
  for (int s = 1; s <= seeds; ++s) {
    const OccupancyGrid grid = generate_workload(spec, static_cast<std::uint64_t>(s));
    times.push_back(best_of_microseconds(repeats, [&] { fn(grid); }));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double fpga_latency_us(const scenario::ScenarioSpec& spec) {
  // Seed-median over the same workloads the CPU sees.
  std::vector<double> times;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OccupancyGrid grid = generate_workload(spec, seed);
    hw::AcceleratorConfig config;
    config.plan.target = spec.target_region();
    times.push_back(hw::QrmAccelerator(config).run(grid).latency_us);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void print_table() {
  print_header("Fig. 7(a) — QRM execution time: CPU vs FPGA",
               "paper: FPGA 0.8/1.0/1.9 us at W=10/50/90; ~54x at W=50, ~134x at W=90");
  TextTable table({"W", "CPU QRM", "FPGA QRM (model)", "speedup", "paper FPGA"});
  const auto paper_value = [](std::int32_t size) {
    switch (size) {
      case 10: return "0.8 us";
      case 50: return "1.0 us";
      case 90: return "1.9 us";
      default: return "-";
    }
  };
  for (const scenario::ScenarioSpec& spec : fig7a_sweep()) {
    const Region target = spec.target_region();
    const double cpu_us = measure_spec_cpu_us(spec, 5, 10, [&](const OccupancyGrid& grid) {
      benchmark::DoNotOptimize(cpu_plan(grid, target));
    });
    const double fpga_us = fpga_latency_us(spec);
    table.add_row({std::to_string(spec.grid_width), fmt_time_us(cpu_us), fmt_time_us(fpga_us),
                   fmt_speedup(cpu_us / fpga_us), paper_value(spec.grid_width)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_CpuQrm(benchmark::State& state) {
  const scenario::ScenarioSpec& spec = spec_for(static_cast<std::int32_t>(state.range(0)));
  const OccupancyGrid grid = generate_workload(spec, 1);
  const Region target = spec.target_region();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_plan(grid, target));
  }
  state.counters["W"] = static_cast<double>(spec.grid_width);
}
BENCHMARK(BM_CpuQrm)->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_CpuQrmFullPlanner(benchmark::State& state) {
  // The full library planner (also materialises the executable, AOD-legal
  // schedule) — the price of a physically checked command stream.
  const scenario::ScenarioSpec& spec = spec_for(static_cast<std::int32_t>(state.range(0)));
  const OccupancyGrid grid = generate_workload(spec, 1);
  const std::int32_t target = spec.target_region().rows;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_qrm(grid, target));
  }
}
BENCHMARK(BM_CpuQrmFullPlanner)->Arg(10)->Arg(50)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_FpgaModelQrm(benchmark::State& state) {
  // Times the *simulation* of the accelerator (host-side cost of the cycle
  // model); the modelled hardware latency is exported as a counter.
  const scenario::ScenarioSpec& spec = spec_for(static_cast<std::int32_t>(state.range(0)));
  const OccupancyGrid grid = generate_workload(spec, 1);
  hw::AcceleratorConfig config;
  config.plan.target = spec.target_region();
  const hw::QrmAccelerator accel(config);
  double modelled_us = 0.0;
  for (auto _ : state) {
    const auto result = accel.run(grid);
    modelled_us = result.latency_us;
    benchmark::DoNotOptimize(result);
  }
  state.counters["modelled_us"] = modelled_us;
}
BENCHMARK(BM_FpgaModelQrm)->Arg(10)->Arg(50)->Arg(90)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

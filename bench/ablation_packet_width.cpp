// Ablation of the AXI packet width (paper Sec. IV-A: "we pack 1024-bit data
// into one packet ... with minimal transmission overhead"). Narrow beats
// make the DDR stream the load-phase bottleneck once W*W/width exceeds the
// LDM's one-row-per-cycle emission.

#include "bench_common.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

void print_table() {
  print_header("Ablation — AXI packet width",
               "paper Sec. IV-A: 1024-bit packets minimise transmission overhead");
  TextTable table({"packet bits", "load cycles (W=50)", "load cycles (W=90)",
                   "total us (W=90)"});
  for (const std::uint32_t bits : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
    std::uint64_t load50 = 0;
    std::uint64_t load90 = 0;
    double total90 = 0.0;
    for (const std::int32_t size : {50, 90}) {
      hw::AcceleratorConfig config;
      config.plan.target = centered_square(size, paper_target(size));
      config.packet_bits = bits;
      const auto result = hw::QrmAccelerator(config).run(workload(size, 1));
      if (size == 50) {
        load50 = result.cycles.load;
      } else {
        load90 = result.cycles.load;
        total90 = result.latency_us;
      }
    }
    table.add_row({std::to_string(bits), std::to_string(load50), std::to_string(load90),
                   fmt_time_us(total90)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_PacketWidth(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  const OccupancyGrid grid = workload(90, 1);
  hw::AcceleratorConfig config;
  config.plan.target = centered_square(90, 54);
  config.packet_bits = bits;
  const hw::QrmAccelerator accel(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.run(grid));
  }
}
BENCHMARK(BM_PacketWidth)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

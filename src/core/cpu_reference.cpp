#include "core/cpu_reference.hpp"

#include <array>

#include "core/quadrant_plan.hpp"
#include "lattice/quadrant.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// Compact one line toward position 0 in place (gated positions keep their
/// contents), returning the number of movement records (atoms that shift).
std::uint64_t compact_line(BitRow& line, std::int32_t sen_limit) {
  const std::uint32_t width = line.width();
  const std::uint32_t gate =
      sen_limit < 0 ? width : std::min(width, static_cast<std::uint32_t>(sen_limit));
  // Atoms below the gate compact to a prefix; everything at/above the gate
  // is frozen. first_hole below the gate marks the already-compact prefix.
  const std::uint32_t atoms = line.count_range(0, gate);
  std::uint32_t prefix = 0;
  while (prefix < gate && line.test(prefix)) ++prefix;
  if (prefix >= atoms) return 0;  // already compact below the gate
  const std::uint64_t records = atoms - prefix;
  // Rebuild: [0, atoms) set, [atoms, gate) clear, tail untouched.
  for (std::uint32_t i = 0; i < atoms; ++i) line.set(i);
  for (std::uint32_t i = atoms; i < gate; ++i) line.clear(i);
  return records;
}

}  // namespace

CpuReferenceResult run_cpu_reference(const OccupancyGrid& initial, const QrmConfig& config) {
  QRM_EXPECTS_MSG(initial.height() > 0 && initial.width() > 0 && initial.height() % 2 == 0 &&
                      initial.width() % 2 == 0,
                  "QRM requires non-empty, even grid dimensions");
  const Region target = config.target;
  QRM_EXPECTS_MSG(
      target == centered_region(initial.height(), initial.width(), target.rows, target.cols) &&
          target.rows % 2 == 0 && target.cols % 2 == 0,
      "QRM requires an even-sized, centred target region");

  const QuadrantGeometry geom(initial.height(), initial.width());
  const std::int32_t quarter_rows = target.rows / 2;
  const std::int32_t quarter_cols = target.cols / 2;

  CpuReferenceResult result;

  // LDM: split + flip into the unified local frame.
  std::array<OccupancyGrid, 4> local;
  for (const Quadrant q : kAllQuadrants)
    local[static_cast<std::size_t>(q)] = geom.extract_local(initial, q);

  const auto compact_pass_all = [&](Axis axis) {
    for (auto& grid : local) {
      const std::int32_t lines = axis == Axis::Rows ? grid.height() : grid.width();
      for (std::int32_t i = 0; i < lines; ++i) {
        BitRow line = axis == Axis::Rows ? grid.row(i) : grid.column(i);
        result.movement_records += compact_line(line, config.sen_limit);
        if (axis == Axis::Rows) {
          grid.set_row(i, std::move(line));
        } else {
          grid.set_column(i, line);
        }
      }
    }
    ++result.passes;
  };

  if (config.mode == PlanMode::Balanced) {
    // Balance unit: demand assignment per quadrant, then write the new row
    // images directly (the hardware realises them as shift commands).
    for (auto& grid : local) {
      BalanceReport report;
      const auto assignments =
          balance_pass(grid, quarter_rows, quarter_cols, config.sen_limit, &report);
      if (!report.feasible) result.feasible = false;
      for (const auto& a : assignments) {
        BitRow line(static_cast<std::uint32_t>(grid.width()));
        // Keep gated atoms in place.
        if (config.sen_limit >= 0) {
          const BitRow& old = grid.row(a.line);
          for (std::uint32_t i = static_cast<std::uint32_t>(config.sen_limit);
               i < old.width(); ++i) {
            if (old.test(i)) line.set(i);
          }
        }
        for (std::size_t i = 0; i < a.targets.size(); ++i) {
          line.set(static_cast<std::uint32_t>(a.targets[i]));
          if (a.targets[i] != a.sources[i]) ++result.movement_records;
        }
        grid.set_row(a.line, std::move(line));
      }
    }
    ++result.passes;
    compact_pass_all(Axis::Cols);
  } else {
    const Region quarter{0, 0, quarter_rows, quarter_cols};
    const auto centre_filled = [&] {
      for (const auto& grid : local)
        if (!grid.region_full(quarter)) return false;
      return true;
    };
    for (std::int32_t it = 0; it < config.max_iterations; ++it) {
      const std::uint64_t before = result.movement_records;
      compact_pass_all(Axis::Rows);
      compact_pass_all(Axis::Cols);
      if (result.movement_records == before) break;  // converged
      if (centre_filled()) break;                    // "until the center is filled"
    }
  }

  // OCM restore: write the local frames back into the global grid.
  result.final_grid = OccupancyGrid(initial.height(), initial.width());
  for (const Quadrant q : kAllQuadrants)
    geom.write_back(result.final_grid, q, local[static_cast<std::size_t>(q)]);
  result.target_filled = result.final_grid.region_full(target);
  return result;
}

}  // namespace qrm

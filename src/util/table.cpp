#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace qrm {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  QRM_EXPECTS(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  QRM_EXPECTS_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_time_us(double microseconds) {
  std::ostringstream os;
  os << std::fixed;
  if (microseconds < 1.0) {
    os << std::setprecision(0) << microseconds * 1000.0 << " ns";
  } else if (microseconds < 1000.0) {
    os << std::setprecision(2) << microseconds << " us";
  } else {
    os << std::setprecision(2) << microseconds / 1000.0 << " ms";
  }
  return os.str();
}

std::string fmt_speedup(double factor) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(factor >= 100.0 ? 0 : 1) << factor << "x";
  return os.str();
}

std::string fmt_percent(double fraction_0_to_1, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction_0_to_1 * 100.0 << "%";
  return os.str();
}

}  // namespace qrm

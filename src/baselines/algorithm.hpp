#pragma once
/// \file algorithm.hpp
/// Common interface over all rearrangement planners, used by the Fig. 7(b)
/// comparison bench and the algorithm_comparison example.
///
/// The paper compares against three published algorithms whose sources are
/// not public; our implementations reproduce each one's *structure* — what
/// is analysed, how often, and with what move granularity — so that the
/// relative cost profile (QRM < Tetris < PSCA < MTA1) emerges from the
/// algorithms themselves rather than from tuned constants. DESIGN.md
/// documents the fidelity of each reconstruction.

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "lattice/grid.hpp"
#include "lattice/region.hpp"

namespace qrm::baselines {

class RearrangementAlgorithm {
 public:
  virtual ~RearrangementAlgorithm() = default;

  /// Short identifier ("tetris", "psca", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line provenance/description for reports.
  [[nodiscard]] virtual std::string description() const = 0;

  /// Compute a rearrangement schedule for `initial` filling `target`.
  /// The returned schedule must be executable (collision-free, AOD-legal)
  /// and fill the target whenever enough atoms are available.
  [[nodiscard]] virtual PlanResult plan(const OccupancyGrid& initial,
                                        const Region& target) const = 0;
};

/// Cross-cutting options applied to every algorithm.
struct AlgorithmOptions {
  /// Split every emitted round into AOD-legal sub-moves. On by default
  /// (schedules are physically executable as-is). Benches measuring pure
  /// *analysis* latency — the quantity the paper times — turn it off, since
  /// the published measurements do not include physical-command
  /// legalisation.
  bool aod_legalize = true;
};

/// Factory. Known names: "qrm" (balanced QRM, the paper's CPU reference),
/// "qrm-compact", "typical", "tetris", "psca", "mta1".
/// Throws PreconditionError for unknown names.
[[nodiscard]] std::unique_ptr<RearrangementAlgorithm> make_algorithm(
    const std::string& name, const AlgorithmOptions& options = {});

/// All registered algorithm names, in comparison-table order.
[[nodiscard]] std::vector<std::string> algorithm_names();

}  // namespace qrm::baselines

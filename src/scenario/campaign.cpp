#include "scenario/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/fnv.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qrm::scenario {

namespace {

std::string hex_fingerprint(std::uint64_t fingerprint) {
  std::ostringstream os;
  os << "0x" << std::hex << fingerprint;
  return os.str();
}

/// Minimal JSON string escaping for names/descriptions (quotes, backslash,
/// control characters).
std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          escaped += buf;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

/// Pre-drawn workloads for every non-Uniform profile, with the same
/// per-shot seed stream the generated path would use. With a pool, the
/// draws fan out one task per shot — each shot's stream is derived
/// independently and each task writes only its own slot, so the captured
/// grids are bit-identical to the serial loop in every order (pinned by the
/// shard/report byte-equality battery).
std::vector<OccupancyGrid> capture_workloads(const ScenarioSpec& spec,
                                             ThreadPool* pool = nullptr) {
  std::vector<OccupancyGrid> captured(spec.shots);
  if (pool != nullptr && spec.shots > 1) {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(spec.shots);
    for (std::uint32_t shot = 0; shot < spec.shots; ++shot) {
      tasks.emplace_back([&spec, &captured, shot] {
        captured[shot] = generate_workload(spec, exec::shot_seed(spec.seed, shot));
      });
    }
    pool->run_all(std::move(tasks));
  } else {
    for (std::uint32_t shot = 0; shot < spec.shots; ++shot)
      captured[shot] = generate_workload(spec, exec::shot_seed(spec.seed, shot));
  }
  return captured;
}

/// SortedSample aggregation + architecture model + fingerprint: everything
/// downstream of the raw per-shot results. Shared by the sequential and
/// fan-out paths so both produce identical outcomes by construction.
ScenarioOutcome finalize_outcome(const ScenarioSpec& spec, std::size_t index,
                                 batch::BatchReport batch) {
  ScenarioOutcome outcome;
  outcome.index = index;
  outcome.spec = spec;
  outcome.batch = std::move(batch);

  // --- SortedSample aggregation over the deterministic columns ------------
  std::vector<double> rounds;
  std::vector<double> commands;
  rounds.reserve(outcome.batch.shots.size());
  commands.reserve(outcome.batch.shots.size());
  for (const batch::ShotResult& shot : outcome.batch.shots) {
    rounds.push_back(static_cast<double>(shot.rounds));
    commands.push_back(static_cast<double>(shot.commands));
  }
  outcome.mean_rounds = stats::mean(rounds);
  const stats::SortedSample round_sample(rounds);
  const stats::SortedSample command_sample(commands);
  outcome.p90_rounds = round_sample.percentile(90.0);
  outcome.p50_commands = command_sample.median();
  outcome.p90_commands = command_sample.percentile(90.0);

  outcome.p50_plan_us = outcome.batch.latency(batch::BatchReport::Stage::Plan).p50;
  outcome.p90_plan_us = outcome.batch.latency(batch::BatchReport::Stage::Plan).p90;
  outcome.p50_execute_us = outcome.batch.latency(batch::BatchReport::Stage::Execute).p50;

  // --- Architecture control-path model (deterministic) --------------------
  // Fig. 2 structure with the runtime module's default constants: the
  // camera frame is pixels_per_site^2 16-bit pixels per trap, a movement
  // record is 4 bytes.
  const rt::SystemConfig system;
  const double pixels = static_cast<double>(spec.grid_height) * spec.grid_width *
                        system.imaging.pixels_per_site * system.imaging.pixels_per_site;
  const double mean_commands = stats::mean(commands);
  if (spec.architecture == rt::Architecture::HostMediated) {
    const double frame_hop = system.host_link.transfer_us(pixels * 2.0);
    // shot.commands sums over rounds; each round's return hop carries only
    // that round's share of the move list.
    const double per_round_records =
        outcome.mean_rounds > 0.0 ? mean_commands / outcome.mean_rounds : 0.0;
    const double records_hop = system.host_link.transfer_us(per_round_records * 4.0);
    outcome.arch_overhead_us = outcome.mean_rounds * (frame_hop + records_hop);
  } else {
    const double detect_us = pixels /
                             static_cast<double>(system.detection_pixels_per_cycle) /
                             system.accelerator.clock_mhz;
    outcome.arch_overhead_us = outcome.mean_rounds * detect_us;
  }

  // --- Identity + outcome fingerprint -------------------------------------
  std::uint64_t hash = fnv::kOffset;
  fnv::mix_text(hash, serialize(spec));
  fnv::mix_u64(hash, outcome.batch.fingerprint());
  outcome.fingerprint = hash;
  return outcome;
}

}  // namespace

std::uint64_t CampaignReport::fingerprint() const noexcept {
  std::uint64_t hash = fnv::kOffset;
  fnv::mix_u64(hash, scenarios.size());
  for (const ScenarioOutcome& outcome : scenarios) fnv::mix_u64(hash, outcome.fingerprint);
  return hash;
}

std::uint32_t shard_of(const std::string& name, std::uint32_t shards) {
  QRM_EXPECTS_MSG(shards >= 1, "shard_of needs a positive shard count");
  return static_cast<std::uint32_t>(fnv::hash_text(name) % shards);
}

exec::ExecPolicy campaign_policy(const CampaignConfig& config) {
  return exec::resolve(config.exec, {config.overrides, config.cli});
}

exec::ExecPolicy resolve_exec(const CampaignConfig& config, const ScenarioSpec& spec) {
  // The spec layer carries the spec's own execution keys; its defaults
  // (0 / Scratch) equal the policy defaults, so an untouched spec is a
  // no-op layer, exactly like an unset override.
  exec::ExecOverrides spec_layer;
  spec_layer.intra_plan_workers = spec.intra_plan_workers;
  spec_layer.replan = spec.replan;
  return exec::resolve(config.exec, {spec_layer, config.overrides, config.cli});
}

batch::BatchConfig to_batch_config(const ScenarioSpec& spec, exec::ExecPolicy policy) {
  batch::BatchConfig config;
  config.plan.target = spec.target_region();
  config.plan.mode = spec.mode;
  config.algorithm = spec.algorithm;
  config.shots = spec.shots;
  config.master_seed = spec.seed;
  config.grid_height = spec.grid_height;
  config.grid_width = spec.grid_width;
  config.fill = spec.fill;  // only the Uniform generated path draws from it
  config.imaged_detection = spec.imaged_detection;
  config.imaging.photons_per_atom = spec.photons_per_atom;
  config.detection.threshold_photons = spec.detection_threshold;
  config.detection.threshold_bias = spec.threshold_bias;
  config.drift.shape = spec.drift;
  config.drift.amplitude = spec.drift_amplitude;
  config.drift.period = spec.drift_period;
  config.loss.per_move_loss = spec.per_move_loss;
  config.loss.background_loss = spec.background_loss;
  config.loss.burst_loss = spec.burst_loss;
  config.loss.burst_length = spec.burst_length;
  config.plan.dead_channels = DeadChannelMask{spec.dead_rows, spec.dead_cols};
  config.max_rounds = spec.max_rounds;
  config.exec = std::move(policy);
  return config;
}

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(std::move(config)) {}

ScenarioOutcome CampaignRunner::run_one(const ScenarioSpec& spec) const {
  validate(spec);

  const batch::BatchPlanner planner(to_batch_config(spec, resolve_exec(config_, spec)));
  batch::BatchReport batch;
  if (spec.load == LoadProfile::Uniform) {
    // The generated path draws exactly this scenario's workload (Bernoulli
    // with per-shot derived seeds); using it keeps scenario runs
    // bit-identical with hand-built BatchPlanner sweeps like the old
    // batch_campaign binary.
    batch = planner.run();
  } else {
    batch = planner.run(capture_workloads(spec));
  }
  return finalize_outcome(spec, 0, std::move(batch));
}

CampaignReport CampaignRunner::run_selected(const std::vector<const ScenarioSpec*>& selected,
                                            const std::vector<std::size_t>& indices) const {
  QRM_EXPECTS(selected.size() == indices.size());
  CampaignReport report;

  // Resolve the campaign-scope policy once per shard: a true plan_cache
  // resolution attaches the shard's shared cache here, so every scenario
  // below inherits the same one (matching what an independent shard
  // process would build).
  const exec::ExecPolicy campaign = campaign_policy(config_);

  if (selected.empty()) {
    // An empty shard: valid, merges as a no-op. Resolve the worker count
    // without paying for an idle pool.
    report.workers = ThreadPool::resolve_workers(campaign.workers);
    return report;
  }
  for (const ScenarioSpec* spec : selected) validate(*spec);

  // One pool serves the whole shard: workload capture below, the
  // scenarios x shots fan-out, and — via the policy's pool field — every
  // shot's quadrant tasks. Sharing one budget is the arbitration scheme;
  // run_all's self-claiming join is what makes the nesting deadlock-free.
  auto pool = std::make_shared<ThreadPool>(campaign.workers);

  // Re-resolving per spec over the campaign-scope base is idempotent for
  // the campaign/CLI layers and folds in each spec's own keys; with the
  // cache already attached, a true plan_cache resolution keeps it shared.
  CampaignConfig scoped = config_;
  scoped.exec = campaign;

  // Per-scenario planners + pre-drawn workloads, prepared up front (the
  // draws themselves fan out on the pool).
  struct Prepared {
    batch::BatchPlanner planner;
    std::vector<OccupancyGrid> captured;  ///< empty for the Uniform generated path
  };
  std::vector<Prepared> prepared;
  prepared.reserve(selected.size());
  for (const ScenarioSpec* spec : selected) {
    exec::ExecPolicy policy = resolve_exec(scoped, *spec);
    if (policy.intra_plan_workers > 0) policy.pool = pool;
    prepared.push_back({batch::BatchPlanner(to_batch_config(*spec, std::move(policy))),
                        spec->load == LoadProfile::Uniform ? std::vector<OccupancyGrid>{}
                                                           : capture_workloads(*spec, pool.get())});
  }

  // Two-level fan-out: every (scenario, shot) is one task on one pool, so
  // a slow scenario no longer serialises the ones after it. Each task
  // writes only its own slot; determinism comes from per-shot derived
  // seeds, exactly as in BatchPlanner::run_impl.
  report.scenarios.resize(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i)
    report.scenarios[i].batch.shots.resize(selected[i]->shots);

  // Per-scenario wall time in a shared pool is the makespan of that
  // scenario's own tasks: span from its first shot starting to its last
  // shot finishing (interleaved work from other scenarios is inside the
  // span — that is what actually happened on the pool). Measurement only;
  // never fingerprinted.
  struct ScenarioTiming {
    std::atomic<std::int64_t> first_start_us{std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> last_end_us{0};
  };
  std::vector<ScenarioTiming> timings(selected.size());

  Stopwatch wall;
  {
    report.workers = pool->worker_count();

    std::vector<std::vector<std::future<void>>> done(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      done[i].reserve(selected[i]->shots);
      for (std::uint32_t shot = 0; shot < selected[i]->shots; ++shot) {
        done[i].push_back(pool->submit([i, shot, &prepared, &report, &timings, &wall] {
          const Prepared& p = prepared[i];
          const auto start = static_cast<std::int64_t>(wall.elapsed_microseconds());
          report.scenarios[i].batch.shots[shot] =
              p.planner.run_shot(shot, p.captured.empty() ? nullptr : &p.captured[shot]);
          const auto end = static_cast<std::int64_t>(wall.elapsed_microseconds());
          ScenarioTiming& timing = timings[i];
          std::int64_t seen = timing.first_start_us.load(std::memory_order_relaxed);
          while (start < seen &&
                 !timing.first_start_us.compare_exchange_weak(seen, start,
                                                              std::memory_order_relaxed)) {
          }
          seen = timing.last_end_us.load(std::memory_order_relaxed);
          while (end > seen && !timing.last_end_us.compare_exchange_weak(
                                   seen, end, std::memory_order_relaxed)) {
          }
        }));
      }
    }

    // Wait for *every* shot before rethrowing, so no worker still writes
    // into `report` after an early failure unwinds the stack.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < done.size(); ++i) {
      for (std::future<void>& future : done[i]) {
        try {
          future.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::int64_t start = timings[i].first_start_us.load(std::memory_order_relaxed);
    const std::int64_t end = timings[i].last_end_us.load(std::memory_order_relaxed);
    report.scenarios[i].batch.wall_us = end > start ? static_cast<double>(end - start) : 0.0;
    report.scenarios[i].batch.workers = report.workers;
  }

  for (std::size_t i = 0; i < selected.size(); ++i)
    report.scenarios[i] =
        finalize_outcome(*selected[i], indices[i], std::move(report.scenarios[i].batch));

  report.wall_us = wall.elapsed_microseconds();
  if (campaign.plan_cache) report.plan_cache = campaign.plan_cache->stats();
  return report;
}

CampaignReport CampaignRunner::run(const std::vector<ScenarioSpec>& specs) const {
  QRM_EXPECTS_MSG(config_.shards >= 1, "campaign shard count must be positive");
  std::vector<const ScenarioSpec*> selected;
  for (const ScenarioSpec& spec : specs)
    if (spec.matches_filter(config_.filter)) selected.push_back(&spec);
  QRM_EXPECTS_MSG(!selected.empty(),
                  "campaign filter '" + config_.filter + "' matches no scenarios");

  if (config_.shards == 1) {
    std::vector<std::size_t> indices(selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) indices[i] = i;
    return run_selected(selected, indices);
  }

  // In-process sharded mode: run every shard exactly as a fleet of
  // independent processes would (per-shard pool and plan cache), then
  // merge. Pinned bit-identical to the shards == 1 path by the test
  // battery.
  std::vector<CampaignReport> shard_reports;
  shard_reports.reserve(config_.shards);
  for (std::uint32_t shard = 0; shard < config_.shards; ++shard) {
    std::vector<const ScenarioSpec*> subset;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (shard_of(selected[i]->name, config_.shards) == shard) {
        subset.push_back(selected[i]);
        indices.push_back(i);
      }
    }
    shard_reports.push_back(run_selected(subset, indices));
  }
  return merge_reports(std::move(shard_reports));
}

CampaignReport CampaignRunner::run_shard(const std::vector<ScenarioSpec>& specs) const {
  QRM_EXPECTS_MSG(config_.shards >= 1, "campaign shard count must be positive");
  QRM_EXPECTS_MSG(config_.shard_index < config_.shards,
                  "campaign shard_index must be below the shard count");
  std::vector<const ScenarioSpec*> subset;
  std::vector<std::size_t> indices;
  std::size_t index = 0;
  for (const ScenarioSpec& spec : specs) {
    if (!spec.matches_filter(config_.filter)) continue;
    if (shard_of(spec.name, config_.shards) == config_.shard_index) {
      subset.push_back(&spec);
      indices.push_back(index);
    }
    ++index;
  }
  // An empty *shard* is valid (the matrix just hashed elsewhere), but a
  // filter matching nothing *anywhere* is the same silent-green-campaign
  // bug run() guards against — every shard process would succeed with
  // zero scenarios and the merge would happily produce an empty report.
  QRM_EXPECTS_MSG(index > 0,
                  "campaign filter '" + config_.filter + "' matches no scenarios");
  return run_selected(subset, indices);
}

CampaignReport merge_reports(std::vector<CampaignReport> shards) {
  CampaignReport merged;
  for (CampaignReport& shard : shards) {
    merged.workers = std::max(merged.workers, shard.workers);
    merged.wall_us += shard.wall_us;
    merged.plan_cache += shard.plan_cache;
    for (ScenarioOutcome& outcome : shard.scenarios)
      merged.scenarios.push_back(std::move(outcome));
  }
  std::sort(merged.scenarios.begin(), merged.scenarios.end(),
            [](const ScenarioOutcome& a, const ScenarioOutcome& b) { return a.index < b.index; });
  for (std::size_t i = 0; i < merged.scenarios.size(); ++i)
    QRM_EXPECTS_MSG(merged.scenarios[i].index == i,
                    "shard reports do not cover the scenario matrix exactly once");
  return merged;
}

void write_csv(const CampaignReport& report, std::ostream& out, ReportMode mode) {
  const bool full = mode == ReportMode::Full;
  CsvWriter csv(out);
  std::vector<std::string> header = {"index",        "scenario",  "grid",
                                     "target",       "load",      "algorithm",
                                     "architecture", "shots"};
  if (full) header.push_back("workers");
  for (const char* name : {"success_rate", "mean_fill_rate", "mean_rounds", "p90_rounds",
                           "total_commands", "p50_commands", "p90_commands",
                           "arch_overhead_us"})
    header.push_back(name);
  if (full)
    for (const char* name :
         {"p50_plan_us", "p90_plan_us", "p50_execute_us", "shots_per_sec", "wall_ms"})
      header.push_back(name);
  header.push_back("fingerprint");
  csv.header(header);

  for (const ScenarioOutcome& outcome : report.scenarios) {
    const ScenarioSpec& spec = outcome.spec;
    const Region target = spec.target_region();
    std::ostringstream grid;
    grid << spec.grid_height << "x" << spec.grid_width;
    std::ostringstream target_text;
    target_text << target.rows << "x" << target.cols;

    std::vector<std::string> cells;
    const auto cell = [&cells](const auto& value) {
      std::ostringstream os;
      os << value;
      cells.push_back(os.str());
    };
    cell(outcome.index);
    cell(spec.name);
    cell(grid.str());
    cell(target_text.str());
    cell(to_cstring(spec.load));
    cell(spec.algorithm);
    cell(arch_key(spec.architecture));
    cell(outcome.batch.shots.size());
    if (full) cell(report.workers);
    cell(outcome.batch.success_rate());
    cell(outcome.batch.mean_fill_rate());
    cell(outcome.mean_rounds);
    cell(outcome.p90_rounds);
    cell(outcome.batch.total_commands());
    cell(outcome.p50_commands);
    cell(outcome.p90_commands);
    cell(outcome.arch_overhead_us);
    if (full) {
      cell(outcome.p50_plan_us);
      cell(outcome.p90_plan_us);
      cell(outcome.p50_execute_us);
      cell(outcome.batch.shots_per_second());
      cell(outcome.batch.wall_us / 1000.0);
    }
    cell(hex_fingerprint(outcome.fingerprint));
    csv.write_row(cells);
  }
}

void write_json(const CampaignReport& report, std::ostream& out, ReportMode mode) {
  const bool full = mode == ReportMode::Full;
  out << "{\n";
  out << "  \"report\": \"qrm-scenario-campaign\",\n";
  out << "  \"mode\": \"" << (full ? "full" : "deterministic") << "\",\n";
  if (full) {
    out << "  \"workers\": " << report.workers << ",\n";
    out << "  \"wall_ms\": " << report.wall_us / 1000.0 << ",\n";
    out << "  \"plan_cache\": {\"hits\": " << report.plan_cache.hits
        << ", \"misses\": " << report.plan_cache.misses
        << ", \"hit_rate\": " << report.plan_cache.hit_rate() << "},\n";
  }
  out << "  \"scenario_count\": " << report.scenarios.size() << ",\n";
  out << "  \"fingerprint\": \"" << hex_fingerprint(report.fingerprint()) << "\",\n";
  out << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
    const ScenarioOutcome& outcome = report.scenarios[i];
    const ScenarioSpec& spec = outcome.spec;
    out << "    {\n";
    out << "      \"index\": " << outcome.index << ",\n";
    out << "      \"name\": \"" << json_escape(spec.name) << "\",\n";
    out << "      \"description\": \"" << json_escape(spec.description) << "\",\n";
    out << "      \"load\": \"" << to_cstring(spec.load) << "\",\n";
    out << "      \"algorithm\": \"" << json_escape(spec.algorithm) << "\",\n";
    out << "      \"architecture\": \"" << arch_key(spec.architecture) << "\",\n";
    out << "      \"grid\": [" << spec.grid_height << ", " << spec.grid_width << "],\n";
    out << "      \"shots\": " << outcome.batch.shots.size() << ",\n";
    out << "      \"success_rate\": " << outcome.batch.success_rate() << ",\n";
    out << "      \"mean_fill_rate\": " << outcome.batch.mean_fill_rate() << ",\n";
    out << "      \"mean_rounds\": " << outcome.mean_rounds << ",\n";
    out << "      \"total_commands\": " << outcome.batch.total_commands() << ",\n";
    out << "      \"arch_overhead_us\": " << outcome.arch_overhead_us << ",\n";
    if (full) {
      out << "      \"p50_plan_us\": " << outcome.p50_plan_us << ",\n";
      out << "      \"p50_execute_us\": " << outcome.p50_execute_us << ",\n";
    }
    out << "      \"fingerprint\": \"" << hex_fingerprint(outcome.fingerprint) << "\"\n";
    out << "    }" << (i + 1 < report.scenarios.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace qrm::scenario

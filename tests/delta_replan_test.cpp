// Differential suite for incremental (delta) replanning.
//
// The contract under test is absolute: DeltaReplanner::plan must be
// bit-identical to QrmPlanner::plan on every call, for every reuse path it
// can take — whole-plan reuse on an empty diff, partial kernel reuse on a
// quadrant-local diff, and every scratch fallback. The suite drives plan
// sequences with randomized site mutations between rounds (the loop's
// loss shape, but adversarially dense) across seeds, grid sizes, plan
// modes, and intra-plan worker counts, and pins the loop/batch/scenario
// plumbing: a Delta loop's report equals the Scratch loop's field for
// field, batch fingerprints are unchanged, and the spec key round-trips
// without disturbing default serializations.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_planner.hpp"
#include "exec/plan_cache.hpp"
#include "core/delta_planner.hpp"
#include "core/planner.hpp"
#include "lattice/quadrant.hpp"
#include "lattice/region.hpp"
#include "loading/loader.hpp"
#include "runtime/rearrangement_loop.hpp"
#include "scenario/spec.hpp"
#include "testutil.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

QrmConfig delta_config(std::int32_t size, std::int32_t target,
                       PlanMode mode = PlanMode::Balanced) {
  QrmConfig config;
  config.target = centered_square(size, target);
  config.mode = mode;
  return config;
}

/// Flip `count` random sites anywhere in the grid (the adversarial loss
/// shape: both disappearances and appearances, unlike real loss).
void flip_random_sites(OccupancyGrid& grid, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const Coord site{static_cast<std::int32_t>(rng.uniform_below(
                         static_cast<std::uint32_t>(grid.height()))),
                     static_cast<std::int32_t>(rng.uniform_below(
                         static_cast<std::uint32_t>(grid.width())))};
    grid.set(site, !grid.occupied(site));
  }
}

/// Flip `count` distinct-ish sites inside one quadrant only.
void flip_in_quadrant(OccupancyGrid& grid, Quadrant quadrant, std::size_t count, Rng& rng) {
  const QuadrantGeometry geometry(grid.height(), grid.width());
  std::size_t flipped = 0;
  while (flipped < count) {
    const Coord site{static_cast<std::int32_t>(rng.uniform_below(
                         static_cast<std::uint32_t>(grid.height()))),
                     static_cast<std::int32_t>(rng.uniform_below(
                         static_cast<std::uint32_t>(grid.width())))};
    if (geometry.quadrant_of(site) != quadrant) continue;
    grid.set(site, !grid.occupied(site));
    ++flipped;
  }
}

/// Every stats counter must reconcile: each plan() call is exactly one of
/// scratch / whole-plan reuse / delta drive.
void expect_stats_consistent(const DeltaReplanStats& stats) {
  EXPECT_EQ(stats.scratch_plans + stats.whole_plan_reuses + stats.delta_plans, stats.plans);
}

TEST(DeltaReplan, FirstPlanIsScratchAndMatchesThePlanner) {
  const QrmConfig config = delta_config(16, 8);
  const OccupancyGrid grid = testutil::seeded_grid(16, 16, 0.6, 11);
  DeltaReplanner replanner(config);
  const PlanResult delta = replanner.plan(grid);
  EXPECT_EQ(delta, QrmPlanner(config).plan(grid));
  EXPECT_EQ(replanner.stats().plans, 1u);
  EXPECT_EQ(replanner.stats().scratch_plans, 1u);
  EXPECT_EQ(replanner.stats().kernels_reused, 0u);
  testutil::expect_plan_valid(grid, delta);
}

TEST(DeltaReplan, EmptyDiffReturnsThePreviousResultVerbatim) {
  const QrmConfig config = delta_config(16, 8);
  const OccupancyGrid grid = testutil::seeded_grid(16, 16, 0.6, 13);
  DeltaReplanner replanner(config);
  const PlanResult first = replanner.plan(grid);
  const PlanResult again = replanner.plan(grid);
  EXPECT_EQ(again, first);
  EXPECT_EQ(replanner.stats().plans, 2u);
  EXPECT_EQ(replanner.stats().whole_plan_reuses, 1u);
  EXPECT_EQ(replanner.stats().dirty_sites, 0u);
  expect_stats_consistent(replanner.stats());
}

TEST(DeltaReplan, SingleQuadrantMutationReusesCleanKernels) {
  const QrmConfig config = delta_config(24, 12);
  OccupancyGrid grid = testutil::seeded_grid(24, 24, 0.62, 17);
  DeltaReplanner replanner(config);
  (void)replanner.plan(grid);

  Rng rng(99);
  flip_in_quadrant(grid, Quadrant::NW, 2, rng);
  const PlanResult delta = replanner.plan(grid);
  EXPECT_EQ(delta, QrmPlanner(config).plan(grid)) << "delta plan diverged from scratch";

  const DeltaReplanStats& stats = replanner.stats();
  EXPECT_EQ(stats.delta_plans, 1u);
  EXPECT_GT(stats.kernels_reused, 0u) << "three clean quadrants must serve from cache";
  EXPECT_GT(stats.kernels_computed, 0u) << "the dirty quadrant must recompute";
  EXPECT_EQ(stats.dirty_sites, 2u);
  expect_stats_consistent(stats);
}

TEST(DeltaReplan, SequencesMatchScratchAcrossSeedsGridsAndModes) {
  // The core differential: multi-plan sequences with randomized mutations
  // between plans, swept over grid sizes x plan modes x seeds x paranoia.
  // Every single plan must equal the from-scratch planner's.
  for (const std::int32_t size : {16, 24}) {
    for (const PlanMode mode : {PlanMode::Balanced, PlanMode::Compact}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        for (const bool paranoid : {false, true}) {
          SCOPED_TRACE("size=" + std::to_string(size) + " mode=" + std::string(to_cstring(mode)) +
                       " seed=" + std::to_string(seed) + " paranoid=" + std::to_string(paranoid));
          const QrmConfig config = delta_config(size, size / 2, mode);
          const QrmPlanner scratch(config);
          DeltaReplanner replanner(config, {.max_dirty_sites = 0, .paranoid = paranoid});
          OccupancyGrid grid = testutil::seeded_grid(size, size, 0.6, seed);
          Rng rng(seed * 1009 + static_cast<std::uint64_t>(size));
          for (int round = 0; round < 6; ++round) {
            const PlanResult delta = replanner.plan(grid);
            ASSERT_EQ(delta, scratch.plan(grid)) << "round " << round;
            // 1-4 flips: small enough that later rounds exercise the
            // partial-reuse path, not just the scratch fallback.
            flip_random_sites(grid, 1 + rng.uniform_below(4), rng);
          }
          expect_stats_consistent(replanner.stats());
          EXPECT_GT(replanner.stats().plans, replanner.stats().scratch_plans)
              << "the sweep never left the scratch path; reuse is untested";
        }
      }
    }
  }
}

TEST(DeltaReplan, AllQuadrantsDirtyFallsBackToScratch) {
  const QrmConfig config = delta_config(16, 8);
  OccupancyGrid grid = testutil::seeded_grid(16, 16, 0.6, 23);
  DeltaReplanner replanner(config);
  (void)replanner.plan(grid);

  Rng rng(7);
  for (const Quadrant quadrant :
       {Quadrant::NW, Quadrant::NE, Quadrant::SW, Quadrant::SE})
    flip_in_quadrant(grid, quadrant, 1, rng);
  EXPECT_EQ(replanner.plan(grid), QrmPlanner(config).plan(grid));
  EXPECT_EQ(replanner.stats().scratch_plans, 2u);
  EXPECT_EQ(replanner.stats().delta_plans, 0u);
  expect_stats_consistent(replanner.stats());
}

TEST(DeltaReplan, OversizedDiffFallsBackToScratch) {
  const QrmConfig config = delta_config(16, 8);
  OccupancyGrid grid = testutil::seeded_grid(16, 16, 0.6, 29);
  DeltaReplanner replanner(config, {.max_dirty_sites = 2, .paranoid = false});
  (void)replanner.plan(grid);

  Rng rng(31);
  flip_in_quadrant(grid, Quadrant::SE, 3, rng);  // 3 > max_dirty_sites
  EXPECT_EQ(replanner.plan(grid), QrmPlanner(config).plan(grid));
  EXPECT_EQ(replanner.stats().scratch_plans, 2u);
  EXPECT_EQ(replanner.stats().delta_plans, 0u);

  // The same mutation size under the default limit takes the delta path.
  DeltaReplanner roomy(config);
  OccupancyGrid grid2 = testutil::seeded_grid(16, 16, 0.6, 29);
  (void)roomy.plan(grid2);
  Rng rng2(31);
  flip_in_quadrant(grid2, Quadrant::SE, 3, rng2);
  EXPECT_EQ(roomy.plan(grid2), QrmPlanner(config).plan(grid2));
  EXPECT_EQ(roomy.stats().delta_plans, 1u);
}

TEST(DeltaReplan, ResetForgetsThePreviousPlan) {
  const QrmConfig config = delta_config(16, 8);
  const OccupancyGrid grid = testutil::seeded_grid(16, 16, 0.6, 37);
  DeltaReplanner replanner(config);
  (void)replanner.plan(grid);
  replanner.reset();
  EXPECT_EQ(replanner.plan(grid), QrmPlanner(config).plan(grid));
  EXPECT_EQ(replanner.stats().scratch_plans, 2u);
  EXPECT_EQ(replanner.stats().whole_plan_reuses, 0u);
}

TEST(DeltaReplan, WorkerCountDoesNotChangeDeltaPlans) {
  // Delta reuse composes with intra-plan quadrant parallelism: any worker
  // count must land on the sequential scratch plans.
  OccupancyGrid base = testutil::seeded_grid(24, 24, 0.6, 41);
  std::vector<PlanResult> reference;
  {
    const QrmPlanner scratch(delta_config(24, 12));
    OccupancyGrid grid = base;
    Rng rng(5);
    for (int round = 0; round < 4; ++round) {
      reference.push_back(scratch.plan(grid));
      flip_random_sites(grid, 2, rng);
    }
  }
  for (const std::uint32_t workers : {0u, 2u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    DeltaReplanner replanner(delta_config(24, 12), DeltaReplanner::Options{},
                             PlanParallelism{workers, nullptr});
    OccupancyGrid grid = base;
    Rng rng(5);  // same mutation stream as the reference
    for (std::size_t round = 0; round < reference.size(); ++round) {
      ASSERT_EQ(replanner.plan(grid), reference[round]) << "round " << round;
      flip_random_sites(grid, 2, rng);
    }
  }
}

TEST(DeltaReplan, LoopDeltaReportMatchesScratchFieldForField) {
  // The loop-level pin: run_rearrangement_loop under Delta must reproduce
  // the Scratch run exactly — rounds, per-round accounting, schedules,
  // final grid, success — across several seeds and loss settings.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const OccupancyGrid initial = testutil::seeded_grid(24, 24, 0.65, seed);
    rt::LoopConfig config;
    config.plan.target = centered_square(24, 14);
    config.loss.per_move_loss = 0.03;
    config.loss.background_loss = 0.005;
    config.exec.keep_schedules = true;

    config.exec.replan = ReplanMode::Scratch;
    const rt::LoopReport scratch = rt::run_rearrangement_loop(initial, config);
    config.exec.replan = ReplanMode::Delta;
    const rt::LoopReport delta = rt::run_rearrangement_loop(initial, config);

    EXPECT_EQ(delta.success, scratch.success);
    EXPECT_EQ(delta.total_atoms_lost, scratch.total_atoms_lost);
    EXPECT_EQ(delta.final_grid, scratch.final_grid);
    EXPECT_EQ(delta.schedules, scratch.schedules);
    ASSERT_EQ(delta.rounds_used(), scratch.rounds_used());
    for (std::size_t i = 0; i < delta.rounds.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(i));
      EXPECT_EQ(delta.rounds[i].atoms_before, scratch.rounds[i].atoms_before);
      EXPECT_EQ(delta.rounds[i].defects_before, scratch.rounds[i].defects_before);
      EXPECT_EQ(delta.rounds[i].commands, scratch.rounds[i].commands);
      EXPECT_EQ(delta.rounds[i].atoms_lost, scratch.rounds[i].atoms_lost);
      EXPECT_EQ(delta.rounds[i].filled_after, scratch.rounds[i].filled_after);
    }

    // Accounting: the Scratch run never touches a DeltaReplanner; the
    // Delta run plans once per planning round and every plan reconciles.
    EXPECT_EQ(scratch.replan, DeltaReplanStats{});
    EXPECT_GT(delta.replan.plans, 0u);
    expect_stats_consistent(delta.replan);
  }
}

TEST(DeltaReplan, LoopWithQuadrantLocalDamageReusesKernels) {
  // The delta sweet spot, constructed deterministically: the target is
  // full except for defects in the NW quadrant, the only spare atoms sit
  // in NW too, and transport loss is certain — so every round's activity
  // (and therefore every round-over-round diff) stays inside NW while the
  // loop burns through the spares. Rounds 2+ must take the partial-reuse
  // path with three clean quadrants, and the plans still reconcile with
  // scratch (the field-for-field test above pins that; here we pin that
  // the loop actually reuses rather than silently falling back).
  const Region target = centered_square(24, 12);
  OccupancyGrid initial(24, 24);
  for (std::int32_t r = 0; r < target.rows; ++r)
    for (std::int32_t c = 0; c < target.cols; ++c)
      initial.set({target.row0 + r, target.col0 + c});
  initial.clear({target.row0, target.col0});  // one defect, NW of the target
  for (const Coord spare : {Coord{1, 1}, Coord{2, 3}, Coord{4, 2}, Coord{0, 4}, Coord{3, 5},
                            Coord{5, 1}, Coord{2, 0}, Coord{5, 5}})
    initial.set(spare);  // repair stock, NW outside the target

  rt::LoopConfig config;
  config.plan.target = target;
  config.loss.per_move_loss = 0.5;  // repairs mostly die; the loop retries
  config.loss.background_loss = 0.0;
  // Pinned loss stream (found by scan) whose first round both fails to fill
  // and leaves >= target-area atoms, so the loop keeps replanning a grid
  // that only ever changes inside NW.
  config.loss.seed = 59;
  config.exec.replan = ReplanMode::Delta;
  config.max_rounds = 8;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);

  expect_stats_consistent(report.replan);
  EXPECT_GT(report.replan.plans, 1u) << "the scenario must replan at least once";
  EXPECT_GT(report.replan.delta_plans, 0u)
      << "NW-local damage never took the partial-reuse path; the loop wiring is dead";
  EXPECT_GT(report.replan.kernels_reused, 0u);
  EXPECT_GT(report.replan.whole_plan_reuses, 0u)
      << "stalled rounds (every repair killed or blocked) must reuse the whole plan";

  // And the delta run is still the scratch run, field for field.
  config.exec.replan = ReplanMode::Scratch;
  const rt::LoopReport scratch = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(report.success, scratch.success);
  EXPECT_EQ(report.total_atoms_lost, scratch.total_atoms_lost);
  EXPECT_EQ(report.final_grid, scratch.final_grid);
  EXPECT_EQ(report.rounds_used(), scratch.rounds_used());
}

/// Field-for-field report comparison shared by the hostile-interaction pins
/// below: rounds, per-round accounting, schedules, final grid, success.
void expect_loop_reports_equal(const rt::LoopReport& delta, const rt::LoopReport& scratch) {
  EXPECT_EQ(delta.success, scratch.success);
  EXPECT_EQ(delta.total_atoms_lost, scratch.total_atoms_lost);
  EXPECT_EQ(delta.final_grid, scratch.final_grid);
  EXPECT_EQ(delta.schedules, scratch.schedules);
  ASSERT_EQ(delta.rounds_used(), scratch.rounds_used());
  for (std::size_t i = 0; i < delta.rounds.size(); ++i) {
    SCOPED_TRACE("round " + std::to_string(i));
    EXPECT_EQ(delta.rounds[i].atoms_before, scratch.rounds[i].atoms_before);
    EXPECT_EQ(delta.rounds[i].defects_before, scratch.rounds[i].defects_before);
    EXPECT_EQ(delta.rounds[i].commands, scratch.rounds[i].commands);
    EXPECT_EQ(delta.rounds[i].atoms_lost, scratch.rounds[i].atoms_lost);
    EXPECT_EQ(delta.rounds[i].filled_after, scratch.rounds[i].filled_after);
  }
}

rt::LoopReport run_both_modes_and_compare(const OccupancyGrid& initial, rt::LoopConfig config) {
  config.exec.keep_schedules = true;
  config.exec.replan = ReplanMode::Scratch;
  const rt::LoopReport scratch = rt::run_rearrangement_loop(initial, config);
  config.exec.replan = ReplanMode::Delta;
  const rt::LoopReport delta = rt::run_rearrangement_loop(initial, config);
  expect_loop_reports_equal(delta, scratch);
  expect_stats_consistent(delta.replan);
  return delta;
}

TEST(DeltaReplan, NotEnoughAtomsEarlyExitMatchesScratchFieldForField) {
  // The interaction pin: when heavy background loss drains the array below
  // the target area mid-loop, the not-enough-atoms early exit must fire on
  // the identical round under Delta — a replanner holding stale kernels
  // across the break would diverge here, not in the happy path.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const OccupancyGrid initial = testutil::seeded_grid(24, 24, 0.45, seed);
    rt::LoopConfig config;
    config.plan.target = centered_square(24, 14);  // 196 of ~260 atoms: tight
    config.loss.per_move_loss = 0.05;
    config.loss.background_loss = 0.15;  // drains below 196 within a round or two
    config.loss.seed = seed;
    const rt::LoopReport delta = run_both_modes_and_compare(initial, config);
    EXPECT_FALSE(delta.success);
    EXPECT_LT(delta.rounds_used(), std::size_t{10})
        << "the scenario must actually hit the early exit, not the round budget";
  }

  // Degenerate form: usable atoms below the target area from the start.
  const OccupancyGrid sparse = testutil::seeded_grid(24, 24, 0.2, 9);
  rt::LoopConfig config;
  config.plan.target = centered_square(24, 14);
  const rt::LoopReport delta = run_both_modes_and_compare(sparse, config);
  EXPECT_EQ(delta.rounds_used(), std::size_t{1});
}

TEST(DeltaReplan, DeadChannelMasksMatchScratchFieldForField) {
  // Dead AOD lines under Delta: both planners mask the grid at plan()
  // entry, so the diff the replanner sees is a diff of *masked* grids and
  // delta stays bit-equal to scratch. Atoms frozen on dead lines must also
  // survive untouched in both modes.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const OccupancyGrid initial = testutil::seeded_grid(24, 24, 0.65, seed);
    rt::LoopConfig config;
    config.plan.target = centered_square(24, 12);  // rows/cols 6..18
    config.plan.dead_channels = DeadChannelMask{{2, 21}, {1}};
    config.loss.per_move_loss = 0.03;
    config.loss.background_loss = 0.0;  // frozen atoms must persist exactly
    config.loss.seed = seed;
    const rt::LoopReport delta = run_both_modes_and_compare(initial, config);
    for (std::int32_t c = 0; c < 24; ++c) {
      EXPECT_EQ(delta.final_grid.occupied({2, c}), initial.occupied({2, c}))
          << "dead row 2 changed at col " << c;
      EXPECT_EQ(delta.final_grid.occupied({21, c}), initial.occupied({21, c}))
          << "dead row 21 changed at col " << c;
    }
    for (std::int32_t r = 0; r < 24; ++r)
      EXPECT_EQ(delta.final_grid.occupied({r, 1}), initial.occupied({r, 1}))
          << "dead col 1 changed at row " << r;
  }
}

TEST(DeltaReplan, DeadMaskNotEnoughUsableAtomsExitsIdenticallyEarly) {
  // Enough atoms in total, but too few *usable* ones once the dead-line
  // freeze is subtracted: the early exit must count masked atoms, and fire
  // on round 1 in both modes.
  OccupancyGrid initial(16, 16);
  const Region target = centered_square(16, 8);  // 64 sites, rows/cols 4..12
  // 40 usable atoms in the target's top rows + 30 frozen on dead row 0.
  std::int32_t placed = 0;
  for (std::int32_t r = target.row0; r < target.row_end() && placed < 40; ++r)
    for (std::int32_t c = target.col0; c < target.col_end() && placed < 40; ++c, ++placed)
      initial.set({r, c});
  for (std::int32_t c = 0; c < 15; ++c) initial.set({0, c});
  for (std::int32_t c = 0; c < 15; ++c) initial.set({1, c});
  ASSERT_GE(initial.atom_count(), target.area());  // unmasked count would proceed

  rt::LoopConfig config;
  config.plan.target = target;
  config.plan.dead_channels = DeadChannelMask{{0, 1}, {}};
  const rt::LoopReport delta = run_both_modes_and_compare(initial, config);
  EXPECT_FALSE(delta.success);
  EXPECT_EQ(delta.rounds_used(), std::size_t{1})
      << "the usable-atom count must subtract dead-line atoms before round 2";
}

TEST(DeltaReplan, BurstLossMatchesScratchFieldForField) {
  // Correlated bursts draw from the loop's derived loss stream after the
  // move/background draws; the stream position is identical under Delta, so
  // every burst lands on the same atoms.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const OccupancyGrid initial = testutil::seeded_grid(24, 24, 0.65, seed);
    rt::LoopConfig config;
    config.plan.target = centered_square(24, 12);
    config.loss.per_move_loss = 0.02;
    config.loss.burst_loss = 0.5;
    config.loss.burst_length = 5;
    config.loss.seed = seed * 7;
    (void)run_both_modes_and_compare(initial, config);
  }
}

TEST(DeltaReplan, BatchFingerprintUnchangedUnderDelta) {
  // Batch plumbing: the per-shot loops run with DeltaReplanner plan
  // functions, and every outcome field — hence the report fingerprint —
  // must equal the Scratch batch, with and without the plan cache.
  batch::BatchConfig config;
  config.plan.target = centered_region(16, 16, 8, 8);
  config.grid_height = 16;
  config.grid_width = 16;
  config.fill = 0.62;
  config.shots = 6;
  config.exec.workers = 2;
  config.max_rounds = 6;
  config.loss.per_move_loss = 0.03;

  config.exec.replan = ReplanMode::Scratch;
  const std::uint64_t scratch = batch::BatchPlanner(config).run().fingerprint();
  config.exec.replan = ReplanMode::Delta;
  EXPECT_EQ(batch::BatchPlanner(config).run().fingerprint(), scratch);

  config.exec.plan_cache = std::make_shared<exec::PlanCache>();
  EXPECT_EQ(batch::BatchPlanner(config).run().fingerprint(), scratch)
      << "delta + plan cache drifted the batch fingerprint";
}

TEST(DeltaReplan, SpecSerializationOmitsScratchAndRoundTripsDelta) {
  // Scratch is the default and must NOT serialize — emitting it would
  // drift every pinned spec fingerprint. Delta must round-trip.
  scenario::ScenarioSpec spec;
  spec.name = "delta-roundtrip";
  EXPECT_EQ(serialize(spec).find("replan="), std::string::npos);

  spec.replan = ReplanMode::Delta;
  const std::string text = serialize(spec);
  EXPECT_NE(text.find("replan=delta"), std::string::npos);
  const scenario::ScenarioSpec parsed = scenario::parse_scenario(text);
  EXPECT_EQ(parsed.replan, ReplanMode::Delta);
  EXPECT_EQ(serialize(parsed), text);

  EXPECT_EQ(scenario::parse_scenario("name=x\nreplan=scratch\n").replan, ReplanMode::Scratch);
  EXPECT_THROW((void)scenario::parse_scenario("name=x\nreplan=sometimes\n"), PreconditionError);
}

}  // namespace
}  // namespace qrm

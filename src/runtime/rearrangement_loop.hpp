#pragma once
/// \file rearrangement_loop.hpp
/// Multi-round rearrangement under atom loss — the scaled-up / mid-circuit
/// scenario the paper's introduction motivates ("the runtime for atom
/// rearrangement in scaled-up systems with mid-circuit measurements
/// remains a challenge").
///
/// Each round: image the (simulated) array, detect, plan, execute — but
/// every executed move loses its atom with some probability, and trapped
/// atoms suffer background loss between rounds. The loop repeats until the
/// target is defect-free or the atom budget is exhausted, reporting how
/// analysis latency multiplies across rounds.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "lattice/grid.hpp"

namespace qrm::rt {

struct LossModel {
  double per_move_loss = 0.005;      ///< probability an atom is lost per executed move
  double background_loss = 0.002;    ///< per-atom loss probability between rounds
  std::uint64_t seed = 0xA70B1055;   ///< loss RNG seed
};

struct LoopConfig {
  QrmConfig plan;                 ///< target + planner settings
  LossModel loss;
  std::uint32_t max_rounds = 10;
};

struct RoundReport {
  std::int64_t atoms_before = 0;
  std::int64_t defects_before = 0;
  std::size_t commands = 0;
  std::int64_t atoms_lost = 0;
  bool filled_after = false;
};

struct LoopReport {
  std::vector<RoundReport> rounds;
  bool success = false;           ///< target defect-free at loop exit
  std::int64_t total_atoms_lost = 0;
  OccupancyGrid final_grid;

  [[nodiscard]] std::size_t rounds_used() const noexcept { return rounds.size(); }
};

/// Run the rearrange-verify loop starting from `initial` ground truth.
/// Detection is assumed perfect (loss, not imaging, is the subject here).
[[nodiscard]] LoopReport run_rearrangement_loop(const OccupancyGrid& initial,
                                                const LoopConfig& config);

}  // namespace qrm::rt

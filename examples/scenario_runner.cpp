// scenario_runner: the CLI face of qrm::scenario. Lists and describes the
// built-in registry, runs campaigns (registry subsets or declarative sweep
// files) through CampaignRunner, and writes CSV/JSON reports.
//
//   scenario_runner list
//   scenario_runner describe <name>
//   scenario_runner run [--filter <substr|tag>] [--workers N]
//                       [--intra-plan-workers N] [--replan scratch|delta]
//                       [--file <campaign.txt>] [--csv <path>] [--json <path>]
//                       [--shards N] [--shard-index i] [--deterministic]
//                       [--plan-cache on|off]
//   scenario_runner merge-csv <out.csv> <shard.csv...>
//   scenario_runner merge-json <out.json> <shard.json...>
//
// Sharded campaigns: `--shards N` partitions the filtered matrix by
// scenario-name hash. Without `--shard-index` all shards run in this
// process and the merged report is written (bit-identical to --shards 1);
// with `--shard-index i` only shard i runs — launch one process per shard,
// write per-shard reports with --deterministic, and reassemble them with
// merge-csv/merge-json. The merged artifact is byte-identical to what a
// 1-shard --deterministic run writes.
//
// Exit codes: 0 on success, 1 on usage errors, 2 when a run fails (bad
// spec file, filter matching nothing, planner precondition, merge error).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"
#include "scenario/report_merge.hpp"
#include "util/table.hpp"

namespace {

using namespace qrm;

int usage() {
  std::cerr << "usage: scenario_runner list\n"
            << "       scenario_runner describe <name>\n"
            << "       scenario_runner run [--filter <substr|tag>] [--workers N]\n"
            << "                           [--intra-plan-workers N] [--replan scratch|delta]\n"
            << "                           [--file <campaign.txt>] [--csv <path>] "
               "[--json <path>]\n"
            << "                           [--shards N] [--shard-index i] [--deterministic]\n"
            << "                           [--plan-cache on|off]\n"
            << "       scenario_runner merge-csv <out.csv> <shard.csv...>\n"
            << "       scenario_runner merge-json <out.json> <shard.json...>\n";
  return 1;
}

/// Strict unsigned option parse: std::stoul would silently wrap "-1".
bool parse_u32(const std::string& text, std::uint32_t max, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (text.empty() || *end != '\0' || text[0] == '-' || value > max) return false;
  out = static_cast<std::uint32_t>(value);
  return true;
}

std::string join_tags(const std::vector<std::string>& tags) {
  std::string joined;
  for (const std::string& tag : tags) joined += (joined.empty() ? "" : ",") + tag;
  return joined;
}

int run_list() {
  TextTable table({"name", "grid", "target", "load", "algorithm", "arch", "shots", "tags"});
  for (const scenario::ScenarioSpec& spec : scenario::registry()) {
    const Region target = spec.target_region();
    std::ostringstream grid;
    grid << spec.grid_height << "x" << spec.grid_width;
    std::ostringstream target_text;
    target_text << target.rows << "x" << target.cols;
    table.add_row({spec.name, grid.str(), target_text.str(),
                   scenario::to_cstring(spec.load), spec.algorithm,
                   scenario::arch_key(spec.architecture), std::to_string(spec.shots),
                   join_tags(spec.tags)});
  }
  std::cout << table.render();
  return 0;
}

int run_describe(const std::string& name) {
  const scenario::ScenarioSpec& spec = scenario::find_scenario(name);
  std::cout << serialize(spec);
  return 0;
}

int run_campaign(const std::vector<std::string>& args) {
  scenario::CampaignConfig config;
  std::string file_path;
  std::string csv_path;
  std::string json_path;
  bool shard_index_given = false;
  scenario::ReportMode mode = scenario::ReportMode::Full;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const bool has_value = i + 1 < args.size();
    if (arg == "--filter" && has_value) {
      config.filter = args[++i];
    } else if (arg == "--workers" && has_value) {
      std::uint32_t workers = 0;
      if (!parse_u32(args[++i], 4096, workers)) {
        std::cerr << "scenario_runner: --workers needs an integer in [0, 4096], got '"
                  << args[i] << "'\n";
        return usage();
      }
      config.cli.workers = workers;
    } else if (arg == "--intra-plan-workers" && has_value) {
      std::uint32_t workers = 0;
      if (!parse_u32(args[++i], 4096, workers)) {
        std::cerr << "scenario_runner: --intra-plan-workers needs an integer in [0, 4096],"
                     " got '" << args[i] << "'\n";
        return usage();
      }
      // CLI-layer override of every spec's knob; plans (and therefore
      // every fingerprint in the report) are identical for any value.
      config.cli.intra_plan_workers = workers;
    } else if (arg == "--replan" && has_value) {
      const std::string& value = args[++i];
      if (value != "scratch" && value != "delta") {
        std::cerr << "scenario_runner: --replan needs scratch|delta, got '" << value << "'\n";
        return usage();
      }
      // CLI-layer override of every spec's knob; delta plans are
      // bit-identical to scratch, so reports are unchanged except timing.
      config.cli.replan = value == "delta" ? qrm::ReplanMode::Delta : qrm::ReplanMode::Scratch;
    } else if (arg == "--shards" && has_value) {
      if (!parse_u32(args[++i], 4096, config.shards) || config.shards == 0) {
        std::cerr << "scenario_runner: --shards needs an integer in [1, 4096], got '"
                  << args[i] << "'\n";
        return usage();
      }
    } else if (arg == "--shard-index" && has_value) {
      if (!parse_u32(args[++i], 4095, config.shard_index)) {
        std::cerr << "scenario_runner: --shard-index needs an integer in [0, 4095], got '"
                  << args[i] << "'\n";
        return usage();
      }
      shard_index_given = true;
    } else if (arg == "--deterministic") {
      mode = scenario::ReportMode::Deterministic;
    } else if (arg == "--plan-cache" && has_value) {
      const std::string& value = args[++i];
      if (value != "on" && value != "off") {
        std::cerr << "scenario_runner: --plan-cache needs on|off, got '" << value << "'\n";
        return usage();
      }
      config.cli.plan_cache = value == "on";
    } else if (arg == "--file" && has_value) {
      file_path = args[++i];
    } else if (arg == "--csv" && has_value) {
      csv_path = args[++i];
    } else if (arg == "--json" && has_value) {
      json_path = args[++i];
    } else {
      std::cerr << "scenario_runner: unknown or incomplete option '" << arg << "'\n";
      return usage();
    }
  }
  if (shard_index_given && config.shard_index >= config.shards) {
    std::cerr << "scenario_runner: --shard-index " << config.shard_index
              << " needs --shards > " << config.shard_index << "\n";
    return usage();
  }

  std::vector<scenario::ScenarioSpec> specs;
  if (file_path.empty()) {
    specs = scenario::registry();
  } else {
    std::ifstream file(file_path);
    if (!file) {
      std::cerr << "scenario_runner: cannot open '" << file_path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    specs = scenario::expand_sweeps(text.str());
  }

  const scenario::CampaignRunner runner(config);
  const scenario::CampaignReport report =
      shard_index_given ? runner.run_shard(specs) : runner.run(specs);

  TextTable table({"idx", "scenario", "shots", "success", "fill", "rounds", "commands",
                   "arch ovh", "p50 plan", "fingerprint"});
  for (const scenario::ScenarioOutcome& outcome : report.scenarios) {
    std::ostringstream fingerprint;
    fingerprint << "0x" << std::hex << outcome.fingerprint;
    table.add_row({std::to_string(outcome.index), outcome.spec.name,
                   std::to_string(outcome.batch.shots.size()),
                   fmt_percent(outcome.batch.success_rate()),
                   fmt_percent(outcome.batch.mean_fill_rate()),
                   fmt_double(outcome.mean_rounds), std::to_string(outcome.batch.total_commands()),
                   fmt_time_us(outcome.arch_overhead_us), fmt_time_us(outcome.p50_plan_us),
                   fingerprint.str()});
  }
  std::cout << table.render();
  std::ostringstream campaign_fingerprint;
  campaign_fingerprint << "0x" << std::hex << report.fingerprint();
  std::cout << report.scenarios.size() << " scenarios, " << report.workers << " workers";
  if (config.shards > 1) {
    std::cout << ", " << config.shards << " shards";
    if (shard_index_given) std::cout << " (ran shard " << config.shard_index << ")";
  }
  std::cout << ", " << report.wall_us / 1000.0 << " ms, campaign fingerprint "
            << campaign_fingerprint.str() << "\n";
  if (scenario::campaign_policy(config).plan_cache != nullptr) {
    const qrm::exec::PlanCacheStats& cache = report.plan_cache;
    std::cout << "plan cache: " << cache.hits << " hits / " << cache.misses << " misses ("
              << fmt_percent(cache.hit_rate()) << " hit rate)\n";
  }

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "scenario_runner: cannot write '" << csv_path << "'\n";
      return 2;
    }
    scenario::write_csv(report, csv, mode);
    std::cerr << "wrote " << csv_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      std::cerr << "scenario_runner: cannot write '" << json_path << "'\n";
      return 2;
    }
    scenario::write_json(report, json, mode);
    std::cerr << "wrote " << json_path << "\n";
  }
  return 0;
}

/// merge-csv / merge-json: reassemble per-shard deterministic reports into
/// the sequential artifact.
int run_merge(const std::string& kind, const std::vector<std::string>& args) {
  if (args.size() < 2) {
    std::cerr << "scenario_runner: merge needs an output path and at least one shard file\n";
    return usage();
  }
  std::vector<std::string> shard_texts;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::ifstream file(args[i]);
    if (!file) {
      std::cerr << "scenario_runner: cannot open '" << args[i] << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    shard_texts.push_back(text.str());
  }
  const std::string merged = kind == "merge-csv"
                                 ? scenario::merge_csv_reports(shard_texts)
                                 : scenario::merge_json_reports(shard_texts);
  std::ofstream out(args[0]);
  if (!out) {
    std::cerr << "scenario_runner: cannot write '" << args[0] << "'\n";
    return 2;
  }
  out << merged;
  std::cerr << "merged " << shard_texts.size() << " shard reports into " << args[0] << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    if (args[0] == "list" && args.size() == 1) return run_list();
    if (args[0] == "describe" && args.size() == 2) return run_describe(args[1]);
    if (args[0] == "run") return run_campaign({args.begin() + 1, args.end()});
    if (args[0] == "merge-csv" || args[0] == "merge-json")
      return run_merge(args[0], {args.begin() + 1, args.end()});
  } catch (const std::exception& error) {
    std::cerr << "scenario_runner: " << error.what() << "\n";
    return 2;
  }
  return usage();
}

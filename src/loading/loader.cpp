#include "loading/loader.hpp"

#include "util/assert.hpp"

namespace qrm {

namespace {

/// Shared fill-probability validation for every stochastic loader. The
/// comparison form also rejects NaN (both comparisons are false), so a
/// corrupted probability can never silently skew sampling.
void check_probability(double p, const char* what) {
  QRM_EXPECTS_MSG(p >= 0.0 && p <= 1.0,
                  std::string(what) + " must be a probability in [0,1]");
}

}  // namespace

OccupancyGrid load_random(std::int32_t height, std::int32_t width, const LoaderConfig& config) {
  QRM_EXPECTS(height >= 0 && width >= 0);
  check_probability(config.fill_probability, "LoaderConfig::fill_probability");
  OccupancyGrid grid(height, width);
  Rng rng(config.seed);
  for (std::int32_t r = 0; r < height; ++r)
    for (std::int32_t c = 0; c < width; ++c)
      if (rng.bernoulli(config.fill_probability)) grid.set({r, c});
  return grid;
}

OccupancyGrid load_random_at_least(std::int32_t height, std::int32_t width,
                                   const LoaderConfig& config, std::int64_t min_atoms,
                                   std::uint32_t max_attempts) {
  QRM_EXPECTS(max_attempts > 0);
  QRM_EXPECTS_MSG(min_atoms >= 0, "load_random_at_least: min_atoms must be non-negative");
  check_probability(config.fill_probability, "LoaderConfig::fill_probability");
  OccupancyGrid best;
  std::int64_t best_count = -1;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    LoaderConfig derived = config;
    // Derive independent streams; attempt 0 uses the caller's exact seed so
    // deterministic callers see the same grid as load_random.
    std::uint64_t mix = config.seed + attempt;
    derived.seed = attempt == 0 ? config.seed : splitmix64(mix);
    OccupancyGrid grid = load_random(height, width, derived);
    const std::int64_t count = grid.atom_count();
    if (count >= min_atoms) return grid;
    if (count > best_count) {
      best_count = count;
      best = std::move(grid);
    }
  }
  return best;
}

OccupancyGrid load_clustered(std::int32_t height, std::int32_t width,
                             const ClusteredLoaderConfig& config) {
  check_probability(config.base.fill_probability, "ClusteredLoaderConfig::base.fill_probability");
  QRM_EXPECTS_MSG(config.cluster_radius >= 0,
                  "ClusteredLoaderConfig::cluster_radius must be non-negative");
  OccupancyGrid grid = load_random(height, width, config.base);
  Rng rng(config.base.seed ^ 0xC1A57E20ULL);
  for (std::uint32_t k = 0; k < config.clusters; ++k) {
    const auto cr = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(height)));
    const auto cc = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(width)));
    const std::int64_t r2 =
        static_cast<std::int64_t>(config.cluster_radius) * config.cluster_radius;
    for (std::int32_t r = 0; r < height; ++r) {
      for (std::int32_t c = 0; c < width; ++c) {
        const std::int64_t dr = r - cr;
        const std::int64_t dc = c - cc;
        if (dr * dr + dc * dc <= r2) grid.clear({r, c});
      }
    }
  }
  return grid;
}

OccupancyGrid load_pattern(std::int32_t height, std::int32_t width, Pattern pattern) {
  OccupancyGrid grid(height, width);
  for (std::int32_t r = 0; r < height; ++r) {
    for (std::int32_t c = 0; c < width; ++c) {
      bool occ = false;
      switch (pattern) {
        case Pattern::Full: occ = true; break;
        case Pattern::Empty: occ = false; break;
        case Pattern::Checkerboard: occ = (r + c) % 2 == 0; break;
        case Pattern::RowStripes: occ = r % 2 == 0; break;
        case Pattern::ColStripes: occ = c % 2 == 0; break;
        case Pattern::Border: occ = r == 0 || c == 0 || r == height - 1 || c == width - 1; break;
        case Pattern::CornerBlock: occ = r < (height + 1) / 2 && c < (width + 1) / 2; break;
        case Pattern::HalfGrid: occ = r < (height + 1) / 2; break;
      }
      if (occ) grid.set({r, c});
    }
  }
  return grid;
}

OccupancyGrid load_gradient(std::int32_t height, std::int32_t width,
                            const GradientLoaderConfig& config) {
  QRM_EXPECTS(height >= 0 && width >= 0);
  check_probability(config.start_fill, "GradientLoaderConfig::start_fill");
  check_probability(config.end_fill, "GradientLoaderConfig::end_fill");
  const std::int32_t span = config.axis == GradientAxis::Rows ? height : width;
  OccupancyGrid grid(height, width);
  Rng rng(config.seed);
  for (std::int32_t r = 0; r < height; ++r) {
    for (std::int32_t c = 0; c < width; ++c) {
      const std::int32_t pos = config.axis == GradientAxis::Rows ? r : c;
      // Endpoints take the configured fills *exactly*: the interpolated form
      // start + (end - start) * 1.0 can land one ulp off end_fill, which
      // turns a nominal 1.0 (always load) or 0.0 (never load) endpoint into
      // a ~1e-16 chance of the opposite — under/over-filling the edge line.
      // A one-line/one-trap span has no ramp to interpolate; use start_fill.
      double p;
      if (pos == 0 || span <= 1) {
        p = config.start_fill;
      } else if (pos == span - 1) {
        p = config.end_fill;
      } else {
        const double t = static_cast<double>(pos) / (span - 1);
        p = config.start_fill + (config.end_fill - config.start_fill) * t;
      }
      if (rng.bernoulli(p)) grid.set({r, c});
    }
  }
  return grid;
}

double estimate_feasibility(std::int32_t height, std::int32_t width, double p,
                            std::int64_t needed, std::uint32_t trials, std::uint64_t seed) {
  QRM_EXPECTS(trials > 0);
  check_probability(p, "estimate_feasibility: p");
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    std::uint64_t mix = seed + t;
    const OccupancyGrid g = load_random(height, width, {p, splitmix64(mix)});
    if (g.atom_count() >= needed) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace qrm

#pragma once
/// \file thread_pool.hpp
/// Compatibility alias: the pool moved to util/thread_pool.hpp when the
/// planner core grew intra-plan parallelism (the core cannot depend on
/// batch, which sits above it). Existing qrm::batch::ThreadPool users keep
/// compiling through this header.

#include "util/thread_pool.hpp"

namespace qrm::batch {

using qrm::ThreadPool;

}  // namespace qrm::batch

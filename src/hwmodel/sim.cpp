#include "hwmodel/sim.hpp"

namespace qrm::hw {

bool Simulation::all_idle() const {
  for (const Module* m : modules_)
    if (m->busy()) return false;
  return true;
}

std::uint64_t Simulation::run(std::uint64_t max_cycles) {
  std::uint64_t executed = 0;
  while (!all_idle()) {
    QRM_ENSURES_MSG(executed < max_cycles, "simulation stalled (deadlock or runaway)");
    for (Module* m : modules_) m->eval(cycle_);
    for (FifoBase* f : fifos_) f->commit();
    ++cycle_;
    ++executed;
  }
  return executed;
}

}  // namespace qrm::hw

// Tests for the cycle-level accelerator model: FIFO/simulation semantics,
// AXI packing, LDM datapath, shift-kernel bit-exactness and pipeline timing,
// OCM accounting, and end-to-end equivalence with the behavioural planner.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "util/assert.hpp"
#include "core/planner.hpp"
#include "hwmodel/accelerator.hpp"
#include "hwmodel/axi.hpp"
#include "hwmodel/balance_unit.hpp"
#include "hwmodel/fifo.hpp"
#include "hwmodel/ldm.hpp"
#include "hwmodel/ocm.hpp"
#include "hwmodel/shift_kernel.hpp"
#include "hwmodel/sim.hpp"
#include "loading/loader.hpp"

namespace qrm::hw {
namespace {

// ---------------------------------------------------------------------------
// FIFO and simulation kernel
// ---------------------------------------------------------------------------

TEST(Fifo, PushVisibleNextCycleOnly) {
  Fifo<int> f("f", 4);
  f.push(1);
  EXPECT_FALSE(f.can_pop()) << "registered FIFO: same-cycle push not visible";
  f.commit();
  ASSERT_TRUE(f.can_pop());
  EXPECT_EQ(f.front(), 1);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_FALSE(f.can_pop());
  f.commit();
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, CapacityEnforced) {
  Fifo<int> f("f", 2);
  f.push(1);
  f.push(2);
  EXPECT_FALSE(f.can_push());
  EXPECT_THROW(f.push(3), PreconditionError);
  f.commit();
  EXPECT_FALSE(f.can_push()) << "pops in flight do not free space within a cycle";
}

TEST(Fifo, FifoOrderPreserved) {
  Fifo<int> f("f", 8);
  for (int i = 0; i < 5; ++i) f.push(i);
  f.commit();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(f.pop(), i);
  EXPECT_EQ(f.total_pushed(), 5u);
}

namespace {
/// Toy producer/consumer to exercise Simulation's idle detection.
class Producer final : public Module {
 public:
  Producer(Fifo<int>& out, int count) : Module("producer"), out_(out), remaining_(count) {}
  void eval(std::uint64_t) override {
    if (remaining_ > 0 && out_.can_push()) {
      out_.push(remaining_--);
    }
  }
  [[nodiscard]] bool busy() const override { return remaining_ > 0; }

 private:
  Fifo<int>& out_;
  int remaining_;
};

class Consumer final : public Module {
 public:
  explicit Consumer(Fifo<int>& in) : Module("consumer"), in_(in) {}
  void eval(std::uint64_t) override {
    if (in_.can_pop()) {
      in_.pop();
      ++consumed_;
    }
  }
  [[nodiscard]] bool busy() const override { return in_.can_pop(); }
  [[nodiscard]] int consumed() const { return consumed_; }

 private:
  Fifo<int>& in_;
  int consumed_ = 0;
};
}  // namespace

TEST(Simulation, RunsUntilDrained) {
  Fifo<int> f("f", 2);
  Producer p(f, 10);
  Consumer c(f);
  Simulation sim;
  sim.add_module(p);
  sim.add_module(c);
  sim.add_fifo(f);
  const std::uint64_t cycles = sim.run();
  EXPECT_EQ(c.consumed(), 10);
  // 10 items, 1/cycle production + 1 cycle pipeline delay.
  EXPECT_GE(cycles, 11u);
  EXPECT_LE(cycles, 13u);
}

TEST(Simulation, DetectsStall) {
  Fifo<int> f("f", 2);
  Consumer c(f);
  // A producer that claims to be busy but never produces.
  class Stuck final : public Module {
   public:
    Stuck() : Module("stuck") {}
    void eval(std::uint64_t) override {}
    [[nodiscard]] bool busy() const override { return true; }
  } stuck;
  Simulation sim;
  sim.add_module(stuck);
  sim.add_module(c);
  sim.add_fifo(f);
  EXPECT_THROW((void)sim.run(100), InvariantError);
}

// ---------------------------------------------------------------------------
// AXI packing
// ---------------------------------------------------------------------------

TEST(Axi, PackUnpackRoundTrip) {
  for (const std::uint32_t packet_bits : {64u, 128u, 1024u}) {
    const OccupancyGrid g = load_random(18, 26, {0.5, 77});
    const auto packets = pack_grid(g, packet_bits);
    const std::uint64_t expected_packets =
        (18ULL * 26 + packet_bits - 1) / packet_bits;
    EXPECT_EQ(packets.size(), expected_packets);
    EXPECT_EQ(unpack_grid(packets, 18, 26, packet_bits), g);
  }
}

TEST(Axi, PackRejectsBadWidth) {
  const OccupancyGrid g(4, 4);
  EXPECT_THROW((void)pack_grid(g, 0), PreconditionError);
  EXPECT_THROW((void)pack_grid(g, 100), PreconditionError);
}

TEST(Axi, UnpackRejectsShortStream) {
  const OccupancyGrid g(4, 4);
  auto packets = pack_grid(g, 64);
  packets.pop_back();
  EXPECT_THROW((void)unpack_grid(packets, 4, 4, 64), PreconditionError);
}

// ---------------------------------------------------------------------------
// Shift kernel
// ---------------------------------------------------------------------------

/// Run a kernel over `rows` and return (beats, cycles).
std::pair<std::vector<CommandBeat>, std::uint64_t> run_kernel(
    const std::vector<BitRow>& rows, std::int32_t sen_limit = -1) {
  Fifo<RowBeat> in("in", 4);
  Fifo<CommandBeat> out("out", rows.size() + 8);
  std::vector<RowBeat> beats;
  for (std::size_t i = 0; i < rows.size(); ++i)
    beats.push_back({static_cast<std::int32_t>(i), rows[i], -1});
  RowSource source("src", std::move(beats), in);
  ShiftKernel kernel("kernel", in, out, sen_limit);
  // Sink that drains the output FIFO so the run terminates.
  class BeatSink final : public Module {
   public:
    explicit BeatSink(Fifo<CommandBeat>& f) : Module("sink"), in_(f) {}
    void eval(std::uint64_t) override {
      while (in_.can_pop()) collected_.push_back(in_.pop());
    }
    [[nodiscard]] bool busy() const override { return in_.can_pop(); }
    std::vector<CommandBeat> collected_;

   private:
    Fifo<CommandBeat>& in_;
  } sink(out);

  Simulation sim;
  sim.add_module(source);
  sim.add_module(kernel);
  sim.add_module(sink);
  sim.add_fifo(in);
  sim.add_fifo(out);
  const std::uint64_t cycles = sim.run();
  return {sink.collected_, cycles};
}

TEST(ShiftKernel, CommandsAreHoleMap) {
  const BitRow row = BitRow::from_string("0101001");
  const auto [beats, cycles] = run_kernel({row});
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].commands.to_string(), "1010110");
  EXPECT_EQ(beats[0].original, row);
  // Records = atoms with nonzero displacement = all 3 atoms here.
  EXPECT_EQ(beats[0].records, 3u);
  (void)cycles;
}

TEST(ShiftKernel, RecordsSkipAlreadyPlacedAtoms) {
  // "1101..." : the first two atoms have no hole below them -> no record.
  const auto [beats, cycles] = run_kernel({BitRow::from_string("110100")});
  ASSERT_EQ(beats.size(), 1u);
  EXPECT_EQ(beats[0].records, 1u);
  (void)cycles;
}

TEST(ShiftKernel, CommandPrefixPopcountEqualsCompactionDisplacement) {
  // Bit-exactness against the behavioural primitive, randomized.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const OccupancyGrid g = load_random(1, 25, {0.5, 300 + seed});
    const BitRow row = g.row(0);
    const auto [beats, cycles] = run_kernel({row});
    ASSERT_EQ(beats.size(), 1u);
    const auto displacements = row.compaction_displacements();
    std::size_t index = 0;
    for (std::uint32_t pos = 0; pos < row.width(); ++pos) {
      if (!row.test(pos)) continue;
      std::uint32_t prefix = 0;
      for (std::uint32_t i = 0; i < pos; ++i)
        if (beats[0].commands.test(i)) ++prefix;
      EXPECT_EQ(prefix, displacements[index]) << "seed " << seed << " pos " << pos;
      ++index;
    }
    (void)cycles;
  }
}

TEST(ShiftKernel, FullyPipelinedLatency) {
  // Q_h rows of width Q_w: admission is 1 row/cycle, each row takes Q_w
  // cycles, so the pass completes in Q_h + Q_w (+1 FIFO delay) cycles.
  for (const auto& [qh, qw] : {std::pair{5, 5}, std::pair{25, 25}, std::pair{45, 45}}) {
    std::vector<BitRow> rows;
    for (int r = 0; r < qh; ++r) {
      const OccupancyGrid g =
          load_random(1, qw, {0.5, static_cast<std::uint64_t>(qh * 100 + r)});
      rows.push_back(g.row(0));
    }
    const auto [beats, cycles] = run_kernel(rows);
    EXPECT_EQ(beats.size(), static_cast<std::size_t>(qh));
    EXPECT_GE(cycles, static_cast<std::uint64_t>(qh + qw));
    EXPECT_LE(cycles, static_cast<std::uint64_t>(qh + qw + 3))
        << "pipeline must sustain one row per cycle";
  }
}

TEST(ShiftKernel, PeakInFlightEqualsPipelineDepth) {
  std::vector<BitRow> rows(20, BitRow(10));
  Fifo<RowBeat> in("in", 4);
  Fifo<CommandBeat> out("out", 64);
  std::vector<RowBeat> beats;
  for (std::size_t i = 0; i < rows.size(); ++i)
    beats.push_back({static_cast<std::int32_t>(i), rows[i], -1});
  RowSource source("src", std::move(beats), in);
  ShiftKernel kernel("kernel", in, out);
  class Drain final : public Module {
   public:
    explicit Drain(Fifo<CommandBeat>& f) : Module("drain"), in_(f) {}
    void eval(std::uint64_t) override {
      while (in_.can_pop()) (void)in_.pop();
    }
    [[nodiscard]] bool busy() const override { return in_.can_pop(); }

   private:
    Fifo<CommandBeat>& in_;
  } drain(out);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(kernel);
  sim.add_module(drain);
  sim.add_fifo(in);
  sim.add_fifo(out);
  (void)sim.run();
  EXPECT_EQ(kernel.rows_processed(), 20u);
  EXPECT_LE(kernel.peak_in_flight(), 10u) << "in-flight rows bounded by row width";
  EXPECT_GE(kernel.peak_in_flight(), 9u) << "pipeline should actually fill";
}

TEST(ShiftKernel, SenGateSuppressesCommandsBeyondLimit) {
  const auto [beats, cycles] = run_kernel({BitRow::from_string("01001010")}, 4);
  ASSERT_EQ(beats.size(), 1u);
  // Holes at 0,2,3 are within the gate; positions >= 4 must have no command.
  EXPECT_EQ(beats[0].commands.to_string(), "10110000");
  // Records: only atoms below the gate count (atom at 1 has hole below).
  EXPECT_EQ(beats[0].records, 1u);
  (void)cycles;
}

TEST(ShiftKernel, TraceNarratesFig6) {
  Fifo<RowBeat> in("in", 4);
  Fifo<CommandBeat> out("out", 8);
  RowSource source("src", {{0, BitRow::from_string("01100"), -1}}, in);
  ShiftKernel kernel("kernel", in, out);
  kernel.enable_trace();
  class Drain final : public Module {
   public:
    explicit Drain(Fifo<CommandBeat>& f) : Module("drain"), in_(f) {}
    void eval(std::uint64_t) override {
      while (in_.can_pop()) (void)in_.pop();
    }
    [[nodiscard]] bool busy() const override { return in_.can_pop(); }

   private:
    Fifo<CommandBeat>& in_;
  } drain(out);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(kernel);
  sim.add_module(drain);
  sim.add_fifo(in);
  sim.add_fifo(out);
  (void)sim.run();
  ASSERT_FALSE(kernel.trace().empty());
  EXPECT_NE(kernel.trace().front().find("admits row 0"), std::string::npos);
  bool saw_command = false;
  for (const auto& line : kernel.trace()) {
    if (line.find("shift command") != std::string::npos) saw_command = true;
  }
  EXPECT_TRUE(saw_command);
}

// ---------------------------------------------------------------------------
// Balance unit
// ---------------------------------------------------------------------------

TEST(BalanceUnit, LatencyIsCountPlusGrantPlusWriteback) {
  // 8 rows, 3 target columns: Q_h + T_qc + Q_h = 19 cycles (+ stream-in).
  Fifo<RowBeat> rows("rows", 4);
  std::vector<RowBeat> beats;
  for (std::int32_t r = 0; r < 8; ++r) {
    const OccupancyGrid g = load_random(1, 8, {0.6, static_cast<std::uint64_t>(r) + 50});
    beats.push_back({r, g.row(0), -1});
  }
  RowSource source("src", std::move(beats), rows);
  BalanceUnit unit("bal", rows, 8, 3, 3);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(unit);
  sim.add_fifo(rows);
  const std::uint64_t cycles = sim.run();
  EXPECT_GE(cycles, 8u + 3u + 8u);
  EXPECT_LE(cycles, 8u + 3u + 8u + 3u) << "latency must be 2*Q_h + T_qc plus stream slack";
}

TEST(BalanceUnit, GrantsFullDemandWhenCapacitySuffices) {
  Fifo<RowBeat> rows("rows", 4);
  std::vector<RowBeat> beats;
  BitRow full(6);
  full.fill();
  for (std::int32_t r = 0; r < 6; ++r) beats.push_back({r, full, -1});
  RowSource source("src", std::move(beats), rows);
  BalanceUnit unit("bal", rows, 6, 3, 3);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(unit);
  sim.add_fifo(rows);
  (void)sim.run();
  EXPECT_TRUE(unit.feasible());
  EXPECT_EQ(unit.grants(), 9u);
  EXPECT_EQ(unit.shortfall(), 0u);
}

TEST(BalanceUnit, ReportsShortfallOnEmptyQuadrant) {
  Fifo<RowBeat> rows("rows", 4);
  std::vector<RowBeat> beats;
  for (std::int32_t r = 0; r < 6; ++r) beats.push_back({r, BitRow(6), -1});
  RowSource source("src", std::move(beats), rows);
  BalanceUnit unit("bal", rows, 6, 3, 3);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(unit);
  sim.add_fifo(rows);
  (void)sim.run();
  EXPECT_FALSE(unit.feasible());
  EXPECT_EQ(unit.grants(), 0u);
  EXPECT_EQ(unit.shortfall(), 9u);
}

TEST(BalanceUnit, SenGateLimitsCapacity) {
  Fifo<RowBeat> rows("rows", 4);
  std::vector<RowBeat> beats;
  BitRow tail_heavy = BitRow::from_string("000111");  // all atoms beyond gate 3
  for (std::int32_t r = 0; r < 4; ++r) beats.push_back({r, tail_heavy, -1});
  RowSource source("src", std::move(beats), rows);
  BalanceUnit unit("bal", rows, 4, 2, 2, /*sen_limit=*/3);
  Simulation sim;
  sim.add_module(source);
  sim.add_module(unit);
  sim.add_fifo(rows);
  (void)sim.run();
  EXPECT_EQ(unit.grants(), 0u) << "gated atoms must not count as capacity";
}

// ---------------------------------------------------------------------------
// OCM
// ---------------------------------------------------------------------------

TEST(Ocm, ConsumesFourStreamsSimultaneouslyAndDrains) {
  std::array<std::unique_ptr<Fifo<CommandBeat>>, 4> fifos;
  std::array<Fifo<CommandBeat>*, 4> ptrs{};
  for (std::size_t q = 0; q < 4; ++q) {
    fifos[q] = std::make_unique<Fifo<CommandBeat>>("c" + std::to_string(q), 16);
    ptrs[q] = fifos[q].get();
  }
  // 8 beats per quadrant, 2 records each -> 64 records total.
  for (auto& f : fifos) {
    for (int i = 0; i < 8; ++i) {
      CommandBeat beat;
      beat.records = 2;
      f->push(beat);
    }
    f->commit();
  }
  OutputConcatModule ocm("ocm", ptrs, 4);
  Simulation sim;
  sim.add_module(ocm);
  for (auto& f : fifos) sim.add_fifo(*f);
  const std::uint64_t cycles = sim.run();
  EXPECT_EQ(ocm.records_emitted(), 64u);
  EXPECT_EQ(ocm.beats_consumed(), 32u);
  // 8 cycles consume all beats (4 at a time = 8 records/cycle arriving),
  // drain 4/cycle -> 16 cycles + epsilon.
  EXPECT_GE(cycles, 16u);
  EXPECT_LE(cycles, 20u);
}

// ---------------------------------------------------------------------------
// Accelerator end-to-end
// ---------------------------------------------------------------------------

AcceleratorConfig config_for(std::int32_t size, std::int32_t target, PlanMode mode) {
  AcceleratorConfig config;
  config.plan.target = centered_square(size, target);
  config.plan.mode = mode;
  return config;
}

TEST(Accelerator, MatchesBehaviouralPlannerExactly) {
  for (const PlanMode mode : {PlanMode::Balanced, PlanMode::Compact}) {
    const OccupancyGrid initial = load_random(20, 20, {0.55, 1234});
    const AcceleratorConfig config = config_for(20, 12, mode);
    const AccelResult hw_result = QrmAccelerator(config).run(initial);
    const PlanResult sw_result = QrmPlanner(config.plan).plan(initial);
    EXPECT_EQ(hw_result.plan.final_grid, sw_result.final_grid);
    EXPECT_EQ(hw_result.plan.schedule, sw_result.schedule);
    EXPECT_EQ(hw_result.plan.stats.target_filled, sw_result.stats.target_filled);
  }
}

TEST(Accelerator, PaperHeadlineLatencyIsMicroseconds) {
  // 50x50 -> 30x30: the paper reports ~1.0 us at 250 MHz. Our structural
  // model must land in the same regime (hundreds of cycles, low single-digit
  // microseconds).
  const OccupancyGrid initial = load_random(50, 50, {0.55, 42});
  const AccelResult result = QrmAccelerator(config_for(50, 30, PlanMode::Balanced)).run(initial);
  EXPECT_TRUE(result.plan.stats.target_filled);
  EXPECT_GT(result.latency_us, 0.2);
  EXPECT_LT(result.latency_us, 5.0);
  EXPECT_GT(result.cycles.total(), 100u);
  EXPECT_LT(result.cycles.total(), 1500u);
}

TEST(Accelerator, LatencyGrowsModeratelyWithSize) {
  // Fig. 7(a) scalability: latency grows far slower than the CPU's O(W^2).
  std::vector<double> latencies;
  for (const std::int32_t size : {10, 30, 50, 70, 90}) {
    const OccupancyGrid initial =
        load_random(size, size, {0.55, static_cast<std::uint64_t>(size)});
    const std::int32_t target = size * 3 / 5 / 2 * 2;
    latencies.push_back(
        QrmAccelerator(config_for(size, target, PlanMode::Balanced)).run(initial).latency_us);
  }
  for (std::size_t i = 1; i < latencies.size(); ++i)
    EXPECT_GT(latencies[i], latencies[i - 1]) << "latency must grow with array size";
  // 9x the array width should cost well under 9x the latency (pipelining).
  EXPECT_LT(latencies.back() / latencies.front(), 6.0);
}

TEST(Accelerator, QuadrantPathwayAblation) {
  // Fewer pathways serialize the quadrants: 1-path must be slower than
  // 2-path, which must be slower than the 4-path design.
  const OccupancyGrid initial = load_random(40, 40, {0.55, 9});
  double previous = 0.0;
  for (const std::uint32_t pathways : {4u, 2u, 1u}) {
    AcceleratorConfig config = config_for(40, 24, PlanMode::Balanced);
    config.quadrant_pathways = pathways;
    const AccelResult result = QrmAccelerator(config).run(initial);
    EXPECT_GT(result.latency_us, previous) << pathways << " pathways";
    previous = result.latency_us;
    // Semantics never change with the pathway count.
    EXPECT_TRUE(result.plan.stats.target_filled);
  }
}

TEST(Accelerator, PacketWidthChangesLoadCycles) {
  // Narrow beats only hurt once the bus, not the 1-row-per-cycle LDM
  // emission, is the bottleneck: 90*90 bits / 64 > 90 rows.
  const OccupancyGrid initial = load_random(90, 90, {0.55, 4});
  AcceleratorConfig narrow = config_for(90, 54, PlanMode::Balanced);
  narrow.packet_bits = 64;
  AcceleratorConfig wide = config_for(90, 54, PlanMode::Balanced);
  wide.packet_bits = 1024;
  const auto narrow_result = QrmAccelerator(narrow).run(initial);
  const auto wide_result = QrmAccelerator(wide).run(initial);
  EXPECT_GT(narrow_result.cycles.load, wide_result.cycles.load)
      << "wider packets must reduce load-phase cycles";
  EXPECT_EQ(narrow_result.plan.final_grid, wide_result.plan.final_grid);
}

TEST(Accelerator, CycleReportBreakdownSumsToTotal) {
  const OccupancyGrid initial = load_random(30, 30, {0.5, 21});
  const AccelResult result = QrmAccelerator(config_for(30, 18, PlanMode::Balanced)).run(initial);
  const CycleReport& r = result.cycles;
  EXPECT_EQ(r.total(), r.control + r.load + r.balance + r.pass_total() + r.dma_out);
  EXPECT_GT(r.load, 0u);
  EXPECT_GT(r.pass_total(), 0u);
  EXPECT_GT(r.dma_out, 0u);
  EXPECT_FALSE(r.to_string().empty());
  EXPECT_NE(r.to_string().find("total"), std::string::npos);
}

TEST(Accelerator, DeterministicCycleCounts) {
  const OccupancyGrid initial = load_random(30, 30, {0.5, 8});
  const AcceleratorConfig config = config_for(30, 18, PlanMode::Balanced);
  const auto a = QrmAccelerator(config).run(initial);
  const auto b = QrmAccelerator(config).run(initial);
  EXPECT_EQ(a.cycles.total(), b.cycles.total());
  EXPECT_EQ(a.movement_records, b.movement_records);
}

TEST(Accelerator, RejectsBadPathwayCount) {
  AcceleratorConfig config = config_for(20, 12, PlanMode::Balanced);
  config.quadrant_pathways = 3;
  EXPECT_THROW(QrmAccelerator{config}, PreconditionError);
}

TEST(Accelerator, LatencyIndependentOfTargetSizeClaim) {
  // Paper Sec. V-B: "the latency of our design is not directly dependent on
  // the target area... it correlates solely with the initial size of the
  // array". Compact-mode pass structure is identical across target sizes;
  // verify latencies are close (within the OCM drain variation).
  const OccupancyGrid initial = load_random(40, 40, {0.6, 13});
  std::vector<double> latencies;
  for (const std::int32_t target : {12, 10, 20, 24}) {
    AcceleratorConfig config = config_for(40, target, PlanMode::Compact);
    latencies.push_back(QrmAccelerator(config).run(initial).latency_us);
  }
  const double lo = *std::min_element(latencies.begin(), latencies.end());
  const double hi = *std::max_element(latencies.begin(), latencies.end());
  EXPECT_LT(hi / lo, 1.5) << "compact-mode latency should be nearly target-independent";
}

// Sweep: hw/sw equivalence across sizes, fills, and modes.
using HwSweepParam = std::tuple<std::int32_t, double, int>;
class HwEquivalenceSweep : public ::testing::TestWithParam<HwSweepParam> {};

TEST_P(HwEquivalenceSweep, HardwareAndSoftwareAgree) {
  const auto [size, fill, mode_int] = GetParam();
  const PlanMode mode = mode_int == 0 ? PlanMode::Balanced : PlanMode::Compact;
  const OccupancyGrid initial =
      load_random(size, size, {fill, static_cast<std::uint64_t>(size * 7)});
  const std::int32_t target = size * 3 / 5 / 2 * 2;
  if (target < 2) GTEST_SKIP();
  const AcceleratorConfig config = config_for(size, target, mode);
  const AccelResult hw_result = QrmAccelerator(config).run(initial);
  const PlanResult sw_result = QrmPlanner(config.plan).plan(initial);
  EXPECT_EQ(hw_result.plan.final_grid, sw_result.final_grid);
  EXPECT_EQ(hw_result.plan.schedule, sw_result.schedule);
}

INSTANTIATE_TEST_SUITE_P(SizesFillsModes, HwEquivalenceSweep,
                         ::testing::Combine(::testing::Values<std::int32_t>(8, 14, 20, 30),
                                            ::testing::Values(0.45, 0.6),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace qrm::hw

// Fig. 7(a): QRM execution time, CPU vs FPGA, for initial array sizes
// 10..90 (step 20). The paper reports 0.8 us (W=10), 1.0 us (W=50) and
// 1.9 us (W=90) on the FPGA, ~54x speedup at W=50 and up to ~134x at W=90.
//
// Our FPGA number comes from the cycle-level model at 250 MHz; the CPU
// number is measured on this machine. Absolute values differ from the
// authors' testbed; the shape (FPGA in low microseconds, growing far slower
// than the CPU, speedup increasing with W) is the reproduction target.

#include <algorithm>

#include "bench_common.hpp"
#include "core/cpu_reference.hpp"
#include "core/planner.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

/// The paper's CPU baseline is the accelerator's own C++ analysis executed
/// in software (no physical-command materialisation); run_cpu_reference is
/// exactly that.
CpuReferenceResult cpu_plan(const OccupancyGrid& grid, std::int32_t target_size) {
  QrmConfig config;
  config.target = centered_square(grid.height(), target_size);
  return run_cpu_reference(grid, config);
}

double fpga_latency_us(std::int32_t size) {
  // Seed-median over the same workloads the CPU sees.
  std::vector<double> times;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OccupancyGrid grid = workload(size, seed);
    hw::AcceleratorConfig config;
    config.plan.target = centered_square(size, paper_target(size));
    times.push_back(hw::QrmAccelerator(config).run(grid).latency_us);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void print_table() {
  print_header("Fig. 7(a) — QRM execution time: CPU vs FPGA",
               "paper: FPGA 0.8/1.0/1.9 us at W=10/50/90; ~54x at W=50, ~134x at W=90");
  TextTable table({"W", "CPU QRM", "FPGA QRM (model)", "speedup", "paper FPGA"});
  const std::vector<std::pair<int, const char*>> paper{
      {10, "0.8 us"}, {30, "-"}, {50, "1.0 us"}, {70, "-"}, {90, "1.9 us"}};
  for (const auto& [size, paper_value] : paper) {
    const double cpu_us = measure_cpu_us(size, 5, 10, [&](const OccupancyGrid& grid) {
      benchmark::DoNotOptimize(cpu_plan(grid, paper_target(size)));
    });
    const double fpga_us = fpga_latency_us(size);
    table.add_row({std::to_string(size), fmt_time_us(cpu_us), fmt_time_us(fpga_us),
                   fmt_speedup(cpu_us / fpga_us), paper_value});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_CpuQrm(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const OccupancyGrid grid = workload(size, 1);
  const std::int32_t target = paper_target(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_plan(grid, target));
  }
  state.counters["W"] = size;
}
BENCHMARK(BM_CpuQrm)->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_CpuQrmFullPlanner(benchmark::State& state) {
  // The full library planner (also materialises the executable, AOD-legal
  // schedule) — the price of a physically checked command stream.
  const auto size = static_cast<std::int32_t>(state.range(0));
  const OccupancyGrid grid = workload(size, 1);
  const std::int32_t target = paper_target(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_qrm(grid, target));
  }
}
BENCHMARK(BM_CpuQrmFullPlanner)->Arg(10)->Arg(50)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_FpgaModelQrm(benchmark::State& state) {
  // Times the *simulation* of the accelerator (host-side cost of the cycle
  // model); the modelled hardware latency is exported as a counter.
  const auto size = static_cast<std::int32_t>(state.range(0));
  const OccupancyGrid grid = workload(size, 1);
  hw::AcceleratorConfig config;
  config.plan.target = centered_square(size, paper_target(size));
  const hw::QrmAccelerator accel(config);
  double modelled_us = 0.0;
  for (auto _ : state) {
    const auto result = accel.run(grid);
    modelled_us = result.latency_us;
    benchmark::DoNotOptimize(result);
  }
  state.counters["modelled_us"] = modelled_us;
}
BENCHMARK(BM_FpgaModelQrm)->Arg(10)->Arg(50)->Arg(90)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

#pragma once
/// \file campaign.hpp
/// CampaignRunner: fan a scenario matrix through qrm::batch and aggregate
/// per-scenario results into a CSV/JSON report.
///
/// Determinism guarantee, inherited from BatchPlanner and extended across
/// scenarios: every outcome field of a CampaignReport — per-shot grids,
/// counts, rates, per-scenario fingerprints, and the campaign fingerprint —
/// is bit-identical for any worker count, any shard count, and with the
/// plan cache on or off. Only measurement fields (`*_us`, `wall_us`,
/// shots/sec, cache hit counts) vary run to run; they are excluded from
/// every fingerprint and from ReportMode::Deterministic artifacts.
///
/// Sharding model: the filtered scenario matrix is partitioned by
/// shard_of(name, shards) — a stable FNV-1a property of the scenario name,
/// never of list order or timing — so independent processes can each run
/// one shard (`scenario_runner run --shards N --shard-index i`) and the
/// merged report (merge_reports, or the text-level mergers in
/// report_merge.hpp) is bit-identical to a sequential 1-shard run. Every
/// outcome carries its global matrix index for exactly this reassembly.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "batch/batch_planner.hpp"
#include "batch/plan_cache.hpp"
#include "scenario/spec.hpp"

namespace qrm::scenario {

struct CampaignConfig {
  std::uint32_t workers = 0;    ///< shot pool size; 0 -> hardware_concurrency
  std::string filter;           ///< scenario name-substring / tag filter
  bool keep_schedules = false;  ///< retain per-round schedules per shot
  /// Shard count over the filtered matrix. 1 = unsharded. run() with
  /// shards > 1 executes every shard in-process and merges; run_shard()
  /// executes only shard_index (the multi-process mode).
  std::uint32_t shards = 1;
  std::uint32_t shard_index = 0;  ///< which shard run_shard() executes
  /// Share one batch::PlanCache across the scenarios of a run (per shard,
  /// matching what independent shard processes would see). Outcomes are
  /// bit-identical either way; Pattern scenarios and repeated sweep cells
  /// skip replanning when on.
  bool plan_cache = true;
  /// Campaign-level override of every spec's intra_plan_workers knob:
  /// -1 = honour each spec, >= 0 = force this value. Plans are bit-identical
  /// for any worker count, so the override changes no outcome, fingerprint,
  /// or spec serialization — which is exactly what lets the golden corpus be
  /// re-run under parallel planning without touching the specs.
  std::int32_t intra_plan_workers = -1;
  /// Campaign-level override of every spec's replan knob: -1 = honour each
  /// spec, 0 = force Scratch, 1 = force Delta. Delta plans are bit-identical
  /// to scratch, so — like intra_plan_workers — the override changes no
  /// outcome, fingerprint, or spec serialization, which is what lets the
  /// golden corpus be re-run under ReplanMode::Delta untouched.
  std::int32_t replan = -1;
};

/// One scenario's batch outcome plus its SortedSample aggregation.
struct ScenarioOutcome {
  /// Position in the filtered scenario matrix — the key that lets shard
  /// reports merge back into sequential order.
  std::size_t index = 0;
  ScenarioSpec spec;
  batch::BatchReport batch;

  // Deterministic aggregates.
  double mean_rounds = 0.0;
  double p90_rounds = 0.0;
  double p50_commands = 0.0;
  double p90_commands = 0.0;
  /// Deterministic per-shot control-path overhead of the spec's
  /// architecture (Fig. 2 structural model): host-mediated pays the camera
  /// frame and the move list crossing the host link every round;
  /// FPGA-integrated pays only streaming detection cycles. Computed from
  /// the link/clock constants of runtime/control_system.hpp and the
  /// scenario's own mean rounds / commands, so it is reproducible and
  /// worker-count independent (unlike the measured `*_us` columns).
  double arch_overhead_us = 0.0;

  // Wall-clock aggregates (measurement, excluded from fingerprints).
  double p50_plan_us = 0.0;
  double p90_plan_us = 0.0;
  double p50_execute_us = 0.0;

  /// FNV-1a over the serialized spec and the batch outcome fingerprint.
  std::uint64_t fingerprint = 0;
};

struct CampaignReport {
  std::vector<ScenarioOutcome> scenarios;
  std::uint32_t workers = 0;  ///< pool size actually used
  double wall_us = 0.0;       ///< end-to-end campaign wall time
  /// Plan-cache counters for the run (measurement: hit/miss split depends
  /// on scheduling; zeros when the cache is off).
  batch::PlanCacheStats plan_cache;

  /// Order-sensitive combination of the per-scenario fingerprints. Two
  /// campaigns over the same scenario list must agree here regardless of
  /// worker count, shard count, or cache mode.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Deterministic shard assignment: fnv::hash_text(name) % shards. Stable
/// across processes and releases — renaming a scenario is the only way to
/// move it between shards.
[[nodiscard]] std::uint32_t shard_of(const std::string& name, std::uint32_t shards);

/// The exact BatchConfig a scenario runs as. Exposed so tests (and anyone
/// porting a hand-coded sweep binary) can prove the scenario path is
/// bit-identical to driving BatchPlanner directly. The plan cache is not
/// set here — CampaignRunner attaches its shared cache afterwards.
[[nodiscard]] batch::BatchConfig to_batch_config(const ScenarioSpec& spec, std::uint32_t workers,
                                                 bool keep_schedules = false);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

  /// Run one scenario (validated first; the config filter is not applied).
  [[nodiscard]] ScenarioOutcome run_one(const ScenarioSpec& spec) const;

  /// Run every scenario matching the config filter. Scenarios × shots fan
  /// out across one ThreadPool (two-level parallelism: a slow scenario no
  /// longer serialises the ones after it). With config.shards > 1, every
  /// shard runs in-process and the reports are merged — bit-identical to
  /// the shards == 1 path. Throws PreconditionError when the filter
  /// matches nothing — a silently empty campaign would read as a green CI
  /// run.
  [[nodiscard]] CampaignReport run(const std::vector<ScenarioSpec>& specs) const;

  /// Run only shard config.shard_index of the filtered matrix (the
  /// multi-process mode). Unlike run(), an empty shard is a valid result —
  /// its report has no scenarios and merges as a no-op.
  [[nodiscard]] CampaignReport run_shard(const std::vector<ScenarioSpec>& specs) const;

 private:
  /// The fan-out core: run `selected` (paired with global matrix indices)
  /// as scenarios × shots tasks on one pool.
  [[nodiscard]] CampaignReport run_selected(const std::vector<const ScenarioSpec*>& selected,
                                            const std::vector<std::size_t>& indices) const;

  CampaignConfig config_;
};

/// Merge per-shard reports back into canonical matrix order. Outcome
/// indices across the shards must form exactly 0..N-1 (throws otherwise);
/// wall time and cache counters sum, the campaign fingerprint is
/// recomputed and equals the sequential run's.
[[nodiscard]] CampaignReport merge_reports(std::vector<CampaignReport> shards);

/// Which columns/fields the report writers emit. Deterministic drops every
/// measurement field (workers, wall, `*_us` timings, shots/sec, cache
/// counters), leaving only worker/shard/cache-invariant content — the mode
/// whose artifacts are byte-comparable across runs and whose shard files
/// the report_merge.hpp mergers accept.
enum class ReportMode : std::uint8_t { Full, Deterministic };

/// One CSV row per scenario, led by the global matrix index.
void write_csv(const CampaignReport& report, std::ostream& out,
               ReportMode mode = ReportMode::Full);

/// The same content as a JSON document, for tooling that wants structure.
void write_json(const CampaignReport& report, std::ostream& out,
                ReportMode mode = ReportMode::Full);

}  // namespace qrm::scenario

#pragma once
/// \file batch_planner.hpp
/// Shot-level parallelism over the full image -> detect -> plan -> execute
/// pipeline.
///
/// A batch is N independent shots of the same experiment. Each shot draws
/// its own workload (or consumes a pre-captured occupancy grid), optionally
/// runs imaged detection, then plans and lossily executes the multi-round
/// rearrangement loop. Shots fan out across a ThreadPool.
///
/// Determinism guarantee: every per-shot RNG stream (loading, photon noise,
/// loss) is derived from one master seed via qrm::derive_seed(master, shot),
/// and each shot writes only its own result slot. The *outcome* fields of a
/// BatchReport — grids, schedules, counts, rates, fingerprint() — are
/// therefore bit-identical for any worker count and any scheduling order.
/// Only the wall-clock fields (`*_us`, wall_us) vary run to run; they are
/// excluded from fingerprint().

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "detection/calibration.hpp"
#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "exec/policy.hpp"
#include "lattice/grid.hpp"
#include "runtime/rearrangement_loop.hpp"

namespace qrm::batch {

struct BatchConfig {
  QrmConfig plan;  ///< target + planner settings (honoured fully for "qrm")
  /// Planner registry name (baselines::algorithm_names()): "qrm",
  /// "qrm-compact", "typical", "tetris", "psca", "mta1". Non-qrm names run
  /// behind the same interface with plan.target as their goal.
  std::string algorithm = "qrm";
  std::uint32_t shots = 16;        ///< ignored when captured grids are given
  std::uint64_t master_seed = 0x5EED;  ///< root of every per-shot stream

  /// Generated-workload geometry (ignored when captured grids are given).
  std::int32_t grid_height = 0;
  std::int32_t grid_width = 0;
  double fill = 0.55;              ///< Bernoulli load probability

  /// When set, each shot renders a fluorescence frame of its ground truth
  /// and plans on the *detected* grid (detection errors and latency are
  /// reported per shot). Off by default: detection is perfect and free.
  bool imaged_detection = false;
  ImagingConfig imaging;
  DetectionConfig detection;
  /// Per-shot calibration drift (only meaningful with imaged_detection):
  /// shot i images with photons_per_atom * drift.factor(i), and a manual
  /// detection threshold drifts by factor(i + period/2) — half a period out
  /// of phase, the way a threshold calibrated against a *past* photon rate
  /// mis-tracks the current one, so the two drifts never cancel. Keyed only
  /// by the shot index: no RNG stream is consumed, worker invariance holds.
  CalibrationDrift drift;

  rt::LossModel loss;              ///< master loss model; shots derive streams
  std::uint32_t max_rounds = 10;   ///< lossy-loop round budget per shot

  /// Execution policy (exec/policy.hpp). The batch honours every field:
  /// workers sizes the shot pool (0 -> hardware_concurrency), pool shares a
  /// caller-owned pool instead (the campaign runner's mode), the intra-plan
  /// fields fan quadrant work out within each shot, replan selects each
  /// shot loop's strategy (Delta is honoured only by the "qrm" algorithm;
  /// baselines always plan as given), plan_cache attaches shared plan
  /// memoisation (null = off; hits are bit-equal to cold plans), and
  /// keep_schedules retains per-round schedules per shot. Pure mechanism:
  /// outcome fields and fingerprint() never depend on it.
  exec::ExecPolicy exec;
};

/// Outcome of one shot. All fields except the `*_us` timings are
/// deterministic functions of (config, shot index).
struct ShotResult {
  std::uint32_t shot = 0;
  std::uint64_t seed = 0;          ///< derive_seed(master_seed, shot)
  OccupancyGrid planned_input;     ///< grid the first round planned on
  OccupancyGrid final_grid;        ///< world state at loop exit
  bool success = false;            ///< target defect-free at loop exit
  std::uint32_t rounds = 0;
  std::size_t commands = 0;        ///< schedule commands, summed over rounds
  std::int64_t atoms_lost = 0;
  std::int64_t defects_remaining = 0;
  double fill_rate = 0.0;          ///< target occupancy fraction at exit
  DetectionErrors detection_errors;   ///< zeros unless imaged_detection
  std::vector<Schedule> schedules;    ///< per round, only when keep_schedules

  // Wall-clock stage latencies — measurement, not outcome; excluded from
  // the determinism guarantee and from BatchReport::fingerprint().
  double detect_us = 0.0;
  double plan_us = 0.0;
  double execute_us = 0.0;
};

/// Descriptive summary of one latency column across the batch.
struct LatencySummary {
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct BatchReport {
  std::vector<ShotResult> shots;   ///< indexed by shot number
  std::uint32_t workers = 0;       ///< pool size actually used
  double wall_us = 0.0;            ///< end-to-end batch wall time

  [[nodiscard]] double shots_per_second() const noexcept;
  [[nodiscard]] double success_rate() const noexcept;
  [[nodiscard]] double mean_fill_rate() const noexcept;
  [[nodiscard]] std::size_t total_commands() const noexcept;

  enum class Stage : std::uint8_t { Detect, Plan, Execute };
  [[nodiscard]] LatencySummary latency(Stage stage) const;

  /// Order-sensitive FNV-1a hash of every deterministic outcome field of
  /// every shot (grids included, timings excluded). Two batches of the same
  /// config must agree here regardless of worker count.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Fans shots across a ThreadPool and aggregates their results.
class BatchPlanner {
 public:
  /// Validates the config: shots > 0, generated geometry positive (unless
  /// only captured runs are used), fill/loss probabilities in [0,1].
  explicit BatchPlanner(BatchConfig config);

  [[nodiscard]] const BatchConfig& config() const noexcept { return config_; }

  /// The loss master the shots actually draw from: config().loss with its
  /// seed domain-separated from the loading/imaging streams, so that
  /// master_seed == loss.seed cannot correlate loss flips with the loading
  /// pattern. A serial rt::run_rearrangement_loop reconstruction of shot i
  /// must use this model (with shot_index = i) to match the batch exactly.
  [[nodiscard]] rt::LossModel effective_loss() const noexcept;

  /// Run config.shots generated shots.
  [[nodiscard]] BatchReport run() const;

  /// Run one shot per pre-captured occupancy grid (real camera frames or
  /// replayed experiments); loading config is ignored, loss/photon streams
  /// are still derived per shot.
  [[nodiscard]] BatchReport run(const std::vector<OccupancyGrid>& captured) const;

  /// The exact work one shot performs; exposed so tests can compare the
  /// serial answer against the pooled one. `captured` may be null.
  ///
  /// Worker arbitration: when exec.intra_plan_workers > 0, the batched
  /// paths (run / run_impl) hand every shot the *same* pool its own task
  /// runs on, so shot-level and quadrant-level parallelism share one worker
  /// budget — ThreadPool::run_all lets a pooled shot join its own quadrant
  /// tasks without deadlock at any pool size. This entry point has no batch
  /// pool; QrmPlanner::plan spins up a transient pool per plan instead
  /// (bit-identical results either way).
  [[nodiscard]] ShotResult run_shot(std::uint32_t shot, const OccupancyGrid* captured) const;

 private:
  [[nodiscard]] BatchReport run_impl(std::uint32_t shot_count,
                                     const std::vector<OccupancyGrid>* captured) const;
  /// run_shot with an explicit intra-plan pool (null = config's own, or a
  /// transient per-plan pool when the knob is on and none is configured).
  [[nodiscard]] ShotResult run_shot_impl(std::uint32_t shot, const OccupancyGrid* captured,
                                         std::shared_ptr<ThreadPool> intra_pool) const;

  BatchConfig config_;
};

}  // namespace qrm::batch

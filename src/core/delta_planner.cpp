#include "core/delta_planner.hpp"

#include <memory>
#include <utility>

#include "lattice/quadrant.hpp"
#include "moves/dead_channels.hpp"
#include "util/thread_pool.hpp"

namespace qrm {

DeltaReplanner::DeltaReplanner(QrmConfig config, Options options, PlanParallelism parallelism)
    : config_(std::move(config)), options_(options), parallelism_(std::move(parallelism)) {}

PlanResult DeltaReplanner::plan(const OccupancyGrid& raw_current) {
  ++stats_.plans;

  // Dead channels: mask once at the entry, exactly as QrmPlanner::plan does,
  // so prev_input_ / diffs / drives all live in the masked world and delta
  // stays bit-identical to scratch under any mask.
  const OccupancyGrid* current_ptr = &raw_current;
  OccupancyGrid masked;
  if (!config_.dead_channels.empty()) {
    masked = mask_dead_lines(raw_current, config_.dead_channels);
    current_ptr = &masked;
  }
  const OccupancyGrid& current = *current_ptr;

  PlanParallelism parallelism = parallelism_;
  if (parallelism.workers > 0 && parallelism.pool == nullptr) {
    // Mirror QrmPlanner::plan: standalone callers get a transient pool,
    // layered callers (batch/campaign) share theirs via parallelism_.
    parallelism.pool = std::make_shared<ThreadPool>(parallelism.workers);
  }

  if (!has_previous_ || current.height() != prev_input_.height() ||
      current.width() != prev_input_.width()) {
    return scratch_plan(current, parallelism);
  }

  const std::vector<Coord> dirty_sites = diff_positions(prev_input_, current);
  if (dirty_sites.empty()) {
    // Identical input: the previous plan is this plan.
    ++stats_.whole_plan_reuses;
    return prev_result_;
  }
  stats_.dirty_sites += dirty_sites.size();

  const std::size_t limit =
      options_.max_dirty_sites != 0
          ? options_.max_dirty_sites
          : static_cast<std::size_t>(current.height()) * static_cast<std::size_t>(current.width()) / 4;
  const QuadrantGeometry geometry(current.height(), current.width());
  const std::array<bool, 4> dirty = dirty_quadrant_mask(geometry, dirty_sites);
  const bool all_dirty = dirty[0] && dirty[1] && dirty[2] && dirty[3];
  if (dirty_sites.size() > limit || all_dirty) return scratch_plan(current, parallelism);

  return delta_plan(current, parallelism, dirty);
}

void DeltaReplanner::reset() noexcept {
  has_previous_ = false;
  prev_input_ = {};
  prev_passes_.clear();
  prev_result_ = {};
}

PlanResult DeltaReplanner::scratch_plan(const OccupancyGrid& current,
                                        const PlanParallelism& parallelism) {
  ++stats_.scratch_plans;
  std::vector<QuadrantPass> captured;
  PassDriver driver(current, config_, parallelism);
  driver.capture_passes(&captured);
  while (auto pass = driver.next()) driver.apply(std::move(*pass));
  PlanResult result = driver.take_result();
  remember(current, std::move(captured), result);
  return result;
}

PlanResult DeltaReplanner::delta_plan(const OccupancyGrid& current,
                                      const PlanParallelism& parallelism,
                                      const std::array<bool, 4>& dirty) {
  ++stats_.delta_plans;
  std::vector<QuadrantPass> captured;
  PassReuseStats reuse;
  PassDriver driver(current, config_, parallelism);
  driver.capture_passes(&captured);
  driver.reuse_passes(&prev_passes_, dirty, options_.paranoid, &reuse);
  // The drive consumes prev_passes_ (reused entries are moved from); that is
  // fine because remember() below replaces it wholesale with this drive's
  // freshly captured trajectory.
  while (auto pass = driver.next()) driver.apply(std::move(*pass));
  PlanResult result = driver.take_result();
  stats_.kernels_reused += reuse.kernels_reused;
  stats_.kernels_computed += reuse.kernels_computed;
  remember(current, std::move(captured), result);
  return result;
}

void DeltaReplanner::remember(const OccupancyGrid& input, std::vector<QuadrantPass> passes,
                              PlanResult result) {
  prev_input_ = input;
  prev_passes_ = std::move(passes);
  prev_result_ = std::move(result);
  has_previous_ = true;
}

}  // namespace qrm

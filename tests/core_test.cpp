// Tests for the QRM planner: fill guarantees, physical legality of emitted
// schedules, quadrant-merge semantics, and agreement with the typical
// (non-quadrant) reference procedure.

#include <gtest/gtest.h>

#include <tuple>

#include "util/assert.hpp"
#include "core/cpu_reference.hpp"
#include "core/planner.hpp"
#include "core/quadrant_plan.hpp"
#include "core/typical.hpp"
#include "lattice/quadrant.hpp"
#include "loading/loader.hpp"
#include "testutil.hpp"

namespace qrm {
namespace {

/// Executes `result.schedule` on `initial` with full validation (including
/// the AOD cross-product rule) and checks it reproduces result.final_grid.
using testutil::expect_plan_valid;

TEST(QrmPlanner, FillsPaperHeadlineConfiguration) {
  // The paper's headline experiment: 30x30 defect-free array from a 50x50
  // stochastically loaded lattice.
  const OccupancyGrid initial = load_random(50, 50, {0.55, 42});
  const PlanResult result = plan_qrm(initial, 30);
  EXPECT_TRUE(result.stats.target_filled)
      << "defects: " << result.stats.defects_remaining;
  expect_plan_valid(initial, result);
}

TEST(QrmPlanner, BalancedFillsAtExactly50PercentTypicalSeeds) {
  int filled = 0;
  constexpr int kSeeds = 10;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const OccupancyGrid initial =
        load_random(50, 50, {0.5, static_cast<std::uint64_t>(seed) + 1});
    const PlanResult result = plan_qrm(initial, 30);
    expect_plan_valid(initial, result);
    if (result.stats.target_filled) ++filled;
  }
  // At exactly 50% fill each quadrant holds ~312 atoms for a 225-site
  // quarter; the balance demand is almost always satisfiable.
  EXPECT_GE(filled, 8) << "balanced mode should fill in the vast majority of loads";
}

TEST(QrmPlanner, ReportsInfeasibleWhenAtomsShort) {
  // 20% fill cannot populate a 30x30 target from 50x50 (needs 36% minimum).
  const OccupancyGrid initial = load_random(50, 50, {0.2, 7});
  const PlanResult result = plan_qrm(initial, 30);
  EXPECT_FALSE(result.stats.target_filled);
  EXPECT_FALSE(result.stats.feasible);
  EXPECT_GT(result.stats.defects_remaining, 0);
  expect_plan_valid(initial, result);  // partial schedule still legal
}

TEST(QrmPlanner, CompactModeMatchesTypicalReference) {
  // QRM's compact mode is the quadrant-parallel formulation of the typical
  // centre-out procedure; both must converge to the same occupancy.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const OccupancyGrid initial = load_random(20, 20, {0.5, seed});
    const PlanResult qrm_result = plan_qrm(initial, 8, PlanMode::Compact);
    TypicalConfig typical_config;
    typical_config.target = centered_square(20, 8);
    const PlanResult typical_result = plan_typical(initial, typical_config);
    EXPECT_EQ(qrm_result.final_grid, typical_result.final_grid) << "seed " << seed;
    expect_plan_valid(initial, qrm_result);
    expect_plan_valid(initial, typical_result);
  }
}

TEST(QrmPlanner, CompactModeFillsSmallTargetsAtHighFill) {
  const OccupancyGrid initial = load_random(40, 40, {0.7, 11});
  const PlanResult result = plan_qrm(initial, 12, PlanMode::Compact);
  EXPECT_TRUE(result.stats.target_filled);
  expect_plan_valid(initial, result);
}

TEST(QrmPlanner, MergeHalvesCommandCountButNotSemantics) {
  const OccupancyGrid initial = load_random(30, 30, {0.55, 99});

  QrmConfig merged_config;
  merged_config.target = centered_square(30, 16);
  merged_config.merge_quadrants = true;
  const PlanResult merged = QrmPlanner(merged_config).plan(initial);

  QrmConfig unmerged_config = merged_config;
  unmerged_config.merge_quadrants = false;
  const PlanResult unmerged = QrmPlanner(unmerged_config).plan(initial);

  EXPECT_EQ(merged.final_grid, unmerged.final_grid);
  EXPECT_LT(merged.schedule.size(), unmerged.schedule.size())
      << "cross-quadrant merge must reduce the number of commands";
  expect_plan_valid(initial, merged);
  expect_plan_valid(initial, unmerged);
}

TEST(QrmPlanner, SenGateBlocksFarAtoms) {
  // With a tight sen gate the planner may not fill the target, but no atom
  // beyond the gate (in the local frame) may move.
  const OccupancyGrid initial = load_random(20, 20, {0.5, 5});
  QrmConfig config;
  config.target = centered_square(20, 8);
  config.sen_limit = 6;  // only the 6 centre-most local positions may shift
  const PlanResult result = QrmPlanner(config).plan(initial);
  expect_plan_valid(initial, result);
  // The gate is per scan axis: an atom may shift horizontally only when its
  // local column is below the gate and vertically only when its local row
  // is. Cells with BOTH local coordinates at or beyond the gate can
  // therefore neither be vacated nor filled.
  const QuadrantGeometry geom(20, 20);
  for (std::int32_t r = 0; r < 20; ++r) {
    for (std::int32_t c = 0; c < 20; ++c) {
      const Quadrant q = geom.quadrant_of({r, c});
      const Coord local = geom.to_local(q, {r, c});
      if (local.row >= config.sen_limit && local.col >= config.sen_limit) {
        EXPECT_EQ(result.final_grid.occupied({r, c}), initial.occupied({r, c}))
            << "gated cell changed at (" << r << "," << c << ")";
      }
    }
  }
}

TEST(QrmPlanner, RejectsOddGridsAndUncentredTargets) {
  QrmConfig config;
  config.target = centered_square(20, 8);
  const QrmPlanner planner(config);
  EXPECT_THROW((void)planner.plan(OccupancyGrid(19, 20)), PreconditionError);
  EXPECT_THROW((void)planner.plan(OccupancyGrid(20, 19)), PreconditionError);

  QrmConfig off_centre = config;
  off_centre.target.row0 += 1;
  EXPECT_THROW((void)QrmPlanner(off_centre).plan(OccupancyGrid(20, 20)), PreconditionError);

  QrmConfig odd_target = config;
  odd_target.target = Region{6, 6, 7, 7};
  EXPECT_THROW((void)QrmPlanner(odd_target).plan(OccupancyGrid(20, 20)), PreconditionError);
}

TEST(QrmPlanner, RectangularGridsAndTargets) {
  // Quadrant geometry and both planner modes support rectangular (even)
  // grids with rectangular centred targets.
  const OccupancyGrid initial = load_random(20, 32, {0.6, 31});
  QrmConfig config;
  config.target = centered_region(20, 32, 12, 18);
  const PlanResult result = QrmPlanner(config).plan(initial);
  EXPECT_TRUE(result.stats.target_filled) << "defects " << result.stats.defects_remaining;
  expect_plan_valid(initial, result);

  QrmConfig compact = config;
  compact.mode = PlanMode::Compact;
  const PlanResult compact_result = QrmPlanner(compact).plan(initial);
  expect_plan_valid(initial, compact_result);
}

TEST(QrmPlanner, EmptyGridProducesEmptySchedule) {
  const OccupancyGrid initial(20, 20);
  const PlanResult result = plan_qrm(initial, 8);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_FALSE(result.stats.target_filled);
  EXPECT_FALSE(result.stats.feasible);
}

TEST(QrmPlanner, FullGridNeedsNoMoves) {
  const OccupancyGrid initial = load_pattern(20, 20, Pattern::Full);
  const PlanResult result = plan_qrm(initial, 10);
  EXPECT_TRUE(result.stats.target_filled);
  EXPECT_TRUE(result.schedule.empty()) << result.schedule.to_string();
}

TEST(QrmPlanner, ChequerboardIsBalanceable) {
  // Exactly 50% fill arranged adversarially: every row of every quadrant has
  // the same atom count, so compact mode's Young diagram is rectangular and
  // the balance pass has no slack. Still must fill a half-size target.
  const OccupancyGrid initial = load_pattern(40, 40, Pattern::Checkerboard);
  const PlanResult result = plan_qrm(initial, 20);
  EXPECT_TRUE(result.stats.target_filled);
  expect_plan_valid(initial, result);
}

TEST(QrmPlanner, RowStripesNeedVerticalRedistribution) {
  // Odd rows are empty; only vertical moves can populate them.
  const OccupancyGrid initial = load_pattern(24, 24, Pattern::RowStripes);
  const PlanResult result = plan_qrm(initial, 12);
  EXPECT_TRUE(result.stats.target_filled);
  expect_plan_valid(initial, result);
}

TEST(QrmPlanner, PassInfoAccountsForEveryMovedAtom) {
  const OccupancyGrid initial = load_random(30, 30, {0.5, 3});
  const PlanResult result = plan_qrm(initial, 14);
  std::size_t pass_atoms = 0;
  for (const auto& p : result.stats.passes) pass_atoms += p.atoms_moved;
  EXPECT_GT(pass_atoms, 0u);
  // Every unit round corresponds to at least one schedule entry (possibly
  // split by AOD legalisation into several).
  std::size_t rounds = 0;
  for (const auto& p : result.stats.passes) rounds += p.unit_rounds;
  EXPECT_GE(result.schedule.size(), rounds);
}

// ---------------------------------------------------------------------------
// Property sweep: balanced QRM must produce a legal schedule for every
// (size, fill, seed) combination, and must fill whenever its own demand
// computation reported feasibility.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::int32_t /*size*/, double /*fill*/, std::uint64_t /*seed*/>;

class QrmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(QrmSweep, LegalAndFillsWhenFeasible) {
  const auto [size, fill, seed] = GetParam();
  const OccupancyGrid initial = load_random(size, size, {fill, seed});
  const std::int32_t target_size = size * 3 / 5 / 2 * 2;  // ~0.6*size, even
  if (target_size < 2) GTEST_SKIP();
  const PlanResult result = plan_qrm(initial, target_size);
  expect_plan_valid(initial, result);
  if (result.stats.feasible) {
    EXPECT_TRUE(result.stats.target_filled)
        << "size=" << size << " fill=" << fill << " seed=" << seed
        << " defects=" << result.stats.defects_remaining;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesFillsSeeds, QrmSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(8, 10, 16, 20, 30, 50),
                       ::testing::Values(0.5, 0.6, 0.75),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

// Compact-mode sweep: always legal; agrees with typical reference.
class CompactSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CompactSweep, LegalAndMatchesTypical) {
  const auto [size, fill, seed] = GetParam();
  const OccupancyGrid initial = load_random(size, size, {fill, seed});
  const std::int32_t target_size = size / 2 / 2 * 2;
  if (target_size < 2) GTEST_SKIP();
  const PlanResult qrm_result = plan_qrm(initial, target_size, PlanMode::Compact);
  expect_plan_valid(initial, qrm_result);
  TypicalConfig typical_config;
  typical_config.target = centered_square(size, target_size);
  const PlanResult typical_result = plan_typical(initial, typical_config);
  EXPECT_EQ(qrm_result.final_grid, typical_result.final_grid);
}

INSTANTIATE_TEST_SUITE_P(
    SizesFillsSeeds, CompactSweep,
    ::testing::Combine(::testing::Values<std::int32_t>(8, 12, 20, 34),
                       ::testing::Values(0.4, 0.55, 0.7),
                       ::testing::Values<std::uint64_t>(9, 10)));

// ---------------------------------------------------------------------------
// CPU reference (the paper's software baseline): must agree with the full
// planner on the final occupancy while skipping schedule materialisation.
// ---------------------------------------------------------------------------

TEST(CpuReference, MatchesPlannerFinalGridBothModes) {
  for (const PlanMode mode : {PlanMode::Balanced, PlanMode::Compact}) {
    for (const std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
      const OccupancyGrid initial = load_random(30, 30, {0.55, seed});
      QrmConfig config;
      config.target = centered_square(30, 18);
      config.mode = mode;
      const CpuReferenceResult reference = run_cpu_reference(initial, config);
      const PlanResult plan = QrmPlanner(config).plan(initial);
      EXPECT_EQ(reference.final_grid, plan.final_grid)
          << to_cstring(mode) << " seed " << seed;
      EXPECT_EQ(reference.target_filled, plan.stats.target_filled);
      EXPECT_EQ(reference.feasible, plan.stats.feasible);
    }
  }
}

TEST(CpuReference, RecordsMatchMovedAtoms) {
  const OccupancyGrid initial = load_random(20, 20, {0.5, 4});
  QrmConfig config;
  config.target = centered_square(20, 12);
  const CpuReferenceResult reference = run_cpu_reference(initial, config);
  const PlanResult plan = QrmPlanner(config).plan(initial);
  std::size_t moved = 0;
  for (const auto& p : plan.stats.passes) moved += p.atoms_moved;
  EXPECT_EQ(reference.movement_records, moved);
}

TEST(CpuReference, ConservesAtoms) {
  for (const std::uint64_t seed : {2ULL, 3ULL}) {
    const OccupancyGrid initial = load_random(24, 24, {0.6, seed});
    QrmConfig config;
    config.target = centered_square(24, 14);
    const CpuReferenceResult reference = run_cpu_reference(initial, config);
    EXPECT_EQ(reference.final_grid.atom_count(), initial.atom_count());
  }
}

TEST(CpuReference, HonoursSenGate) {
  const OccupancyGrid initial = load_random(20, 20, {0.5, 5});
  QrmConfig config;
  config.target = centered_square(20, 8);
  config.sen_limit = 6;
  const CpuReferenceResult reference = run_cpu_reference(initial, config);
  const PlanResult plan = QrmPlanner(config).plan(initial);
  EXPECT_EQ(reference.final_grid, plan.final_grid);
}

TEST(CpuReference, RejectsBadGeometry) {
  QrmConfig config;
  config.target = centered_square(20, 8);
  EXPECT_THROW((void)run_cpu_reference(OccupancyGrid(19, 20), config), PreconditionError);
  config.target.row0 += 1;
  EXPECT_THROW((void)run_cpu_reference(OccupancyGrid(20, 20), config), PreconditionError);
}

// ---------------------------------------------------------------------------
// Quadrant pass generators in isolation.
// ---------------------------------------------------------------------------

TEST(QuadrantPlan, CompactPassProducesPrefixTargets) {
  const OccupancyGrid local = OccupancyGrid::from_strings({
      "0101",
      "1100",
      "0000",
      "1111",
  });
  const auto passes = compact_pass(local, Axis::Rows, -1);
  // Row 0 moves (0101 -> 1100); rows 1 and 3 are already compact; row 2 empty.
  ASSERT_EQ(passes.size(), 1u);
  EXPECT_EQ(passes[0].line, 0);
  EXPECT_EQ(passes[0].sources, (std::vector<std::int32_t>{1, 3}));
  EXPECT_EQ(passes[0].targets, (std::vector<std::int32_t>{0, 1}));
}

TEST(QuadrantPlan, BalancePassMeetsColumnDemand) {
  // 6x6 quadrant, target quarter 3x3, rows each hold 2 atoms in the last two
  // columns: compaction alone would leave column 2 starved.
  std::vector<std::string> art(6, "000011");
  const OccupancyGrid local = OccupancyGrid::from_strings(art);
  BalanceReport report;
  const auto assignments = balance_pass(local, 3, 3, -1, &report);
  EXPECT_TRUE(report.feasible);
  // Simulate: count atoms per column after applying assignments.
  std::vector<int> column_count(6, 0);
  for (const auto& a : assignments)
    for (const auto t : a.targets) column_count[static_cast<std::size_t>(t)]++;
  // Rows with no assignment keep their atoms in place — none here (all move).
  for (int c = 0; c < 3; ++c) EXPECT_GE(column_count[static_cast<std::size_t>(c)], 3)
      << "column " << c << " under-supplied";
}

TEST(QuadrantPlan, BalancePassReportsShortfall) {
  const OccupancyGrid local(6, 6);  // no atoms at all
  BalanceReport report;
  const auto assignments = balance_pass(local, 3, 3, -1, &report);
  EXPECT_TRUE(assignments.empty());
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.shortfall, 9);
}

}  // namespace
}  // namespace qrm

// Fig. 7(b): execution-time comparison of rearrangement algorithms on a
// 20x20 initial array (the experimental setup of the PSCA and MTA1 papers).
// Paper ratios: QRM-CPU ~20x faster than Tetris, ~246x than PSCA, ~1000x
// than MTA1; QRM-FPGA ~120x faster than Tetris (~300x at 50x50).
//
// Tetris/PSCA/MTA1 are our structural reconstructions (see DESIGN.md);
// the reproduction target is the ordering and the orders of magnitude.

#include "bench_common.hpp"
#include "baselines/algorithm.hpp"
#include "core/cpu_reference.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

constexpr std::int32_t kSize = 20;
constexpr std::int32_t kTarget = 12;

double algorithm_cpu_us(const std::string& name) {
  const Region target = centered_square(kSize, kTarget);
  if (name == "qrm") {
    // The paper's QRM-CPU is the accelerator's own analysis run in
    // software: no schedule materialisation, exactly like the hardware.
    QrmConfig config;
    config.target = target;
    return measure_cpu_us(kSize, 5, 20, [&](const OccupancyGrid& grid) {
      benchmark::DoNotOptimize(run_cpu_reference(grid, config));
    });
  }
  // Baselines: analysis latency only (no AOD legalisation), matching what
  // the paper's comparison times.
  const auto algo = baselines::make_algorithm(name, {.aod_legalize = false});
  const std::size_t repeats = name == "mta1" ? 3 : 10;
  return measure_cpu_us(kSize, 5, repeats, [&](const OccupancyGrid& grid) {
    benchmark::DoNotOptimize(algo->plan(grid, target));
  });
}

void print_table() {
  print_header("Fig. 7(b) — algorithm comparison, 20x20 initial array",
               "paper: QRM-CPU ~20x vs Tetris, ~246x vs PSCA, ~1000x vs MTA1; "
               "QRM-FPGA ~120x vs Tetris");

  double fpga_us = 0.0;
  {
    std::vector<double> times;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      hw::AcceleratorConfig config;
      config.plan.target = centered_square(kSize, kTarget);
      times.push_back(hw::QrmAccelerator(config).run(workload(kSize, seed)).latency_us);
    }
    std::sort(times.begin(), times.end());
    fpga_us = times[times.size() / 2];
  }

  const std::vector<std::string> names{"qrm", "tetris", "psca", "mta1"};
  std::vector<double> cpu_times;
  for (const auto& name : names) cpu_times.push_back(algorithm_cpu_us(name));
  const double qrm_us = cpu_times[0];
  const double tetris_us = cpu_times[1];

  TextTable table({"algorithm", "analysis time", "slowdown vs QRM-FPGA",
                   "slowdown vs QRM-CPU", "paper (vs QRM-CPU)"});
  const std::vector<const char*> labels{"QRM-CPU", "Tetris (recon.)", "PSCA (recon.)",
                                        "MTA1 (recon.)"};
  const std::vector<const char*> paper_notes{"1x (reference)", "~20x", "~246x", "~1000x"};
  table.add_row({"QRM-FPGA (model)", fmt_time_us(fpga_us), "1.0x",
                 fmt_double(fpga_us / qrm_us, 2) + "x", "-"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    table.add_row({labels[i], fmt_time_us(cpu_times[i]), fmt_speedup(cpu_times[i] / fpga_us),
                   fmt_speedup(cpu_times[i] / qrm_us), paper_notes[i]});
  }
  std::printf("%s", table.render().c_str());
  std::printf("QRM-FPGA speedup vs Tetris: %.0fx (paper: ~120x at 20x20)\n\n",
              tetris_us / fpga_us);
}

void BM_Algorithm(benchmark::State& state, const std::string& name) {
  const auto algo = baselines::make_algorithm(name);
  const OccupancyGrid grid = workload(kSize, 1);
  const Region target = centered_square(kSize, kTarget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->plan(grid, target));
  }
}
void BM_Qrm(benchmark::State& state) { BM_Algorithm(state, "qrm"); }
void BM_Tetris(benchmark::State& state) { BM_Algorithm(state, "tetris"); }
void BM_Psca(benchmark::State& state) { BM_Algorithm(state, "psca"); }
void BM_Mta1(benchmark::State& state) { BM_Algorithm(state, "mta1"); }
BENCHMARK(BM_Qrm)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Tetris)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Psca)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Mta1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

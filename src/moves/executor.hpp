#pragma once
/// \file executor.hpp
/// Applies schedules to a grid with full physical validation: occupancy,
/// bounds, lockstep collision freedom along swept paths, and (optionally)
/// the AOD cross-product rule. This is the ground truth the tests use to
/// prove that planned schedules are executable.

#include <optional>
#include <string>

#include "lattice/grid.hpp"
#include "moves/schedule.hpp"

namespace qrm {

struct ExecutionOptions {
  bool check_aod = true;  ///< enforce the 2D-AOD cross-product legality rule
};

struct ExecutionReport {
  bool ok = true;
  std::size_t moves_applied = 0;
  std::size_t atoms_displaced = 0;
  std::string error;  ///< first violation, empty when ok

  explicit operator bool() const noexcept { return ok; }
};

/// Returns a description of the first physics violation of `move` against
/// `grid` (occupancy, bounds, path collisions, duplicate sites, and the AOD
/// rule when `check_aod`), or nullopt when the move is valid.
[[nodiscard]] std::optional<std::string> validate_move(const OccupancyGrid& grid,
                                                       const ParallelMove& move, bool check_aod);

/// Apply a move assumed valid (no checks). Sources are cleared first, then
/// destinations set, implementing lockstep semantics.
void apply_move_unchecked(OccupancyGrid& grid, const ParallelMove& move);

/// Validate then apply; throws PreconditionError on violation.
void apply_move(OccupancyGrid& grid, const ParallelMove& move, bool check_aod = true);

/// Run all moves in order, stopping at the first violation. The grid is left
/// in the state reached so far (all-or-nothing callers should copy first).
ExecutionReport run_schedule(OccupancyGrid& grid, const Schedule& schedule,
                             const ExecutionOptions& options = {});

}  // namespace qrm

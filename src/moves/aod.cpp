#include "moves/aod.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// Sort sites so that atoms nearest the destination side ("front" of the
/// motion) come first; chain followers then see their leaders handled first.
std::vector<Coord> front_first(std::span<const Coord> sites, Direction dir) {
  std::vector<Coord> out(sites.begin(), sites.end());
  const auto key_less = [dir](const Coord& a, const Coord& b) {
    switch (dir) {
      case Direction::West: return a.col != b.col ? a.col < b.col : a.row < b.row;
      case Direction::East: return a.col != b.col ? a.col > b.col : a.row < b.row;
      case Direction::North: return a.row != b.row ? a.row < b.row : a.col < b.col;
      case Direction::South: return a.row != b.row ? a.row > b.row : a.col < b.col;
    }
    return a < b;
  };
  std::sort(out.begin(), out.end(), key_less);
  return out;
}

}  // namespace

std::optional<std::string> aod_violation(const OccupancyGrid& grid, const ParallelMove& move) {
  if (move.sites.empty()) return std::nullopt;
  // Word-parallel cross-product check: a violation in row r is any bit of
  //   occupied(r) AND cols-mask AND NOT members(r),
  // where the cols-mask has one bit per selected column and members(r) marks
  // the move's own sites in that row. One pass over the touched rows'
  // words replaces the O(|rows|*|cols|) per-cell std::set scan. The map keeps
  // rows ascending so the reported first violation (lowest row, then lowest
  // column) matches the historical per-cell scan order.
  BitRow colmask(static_cast<std::uint32_t>(grid.width()));
  for (const Coord& s : move.sites)
    if (s.col >= 0 && s.col < grid.width()) colmask.set(static_cast<std::uint32_t>(s.col));
  std::map<std::int32_t, BitRow> members;
  for (const Coord& s : move.sites) {
    if (s.row < 0 || s.row >= grid.height()) continue;
    const auto it = members.try_emplace(s.row, static_cast<std::uint32_t>(grid.width())).first;
    if (s.col >= 0 && s.col < grid.width()) it->second.set(static_cast<std::uint32_t>(s.col));
  }
  for (const auto& [r, member_row] : members) {
    const auto& occ = grid.row(r).words();
    const auto& sel = colmask.words();
    const auto& own = member_row.words();
    for (std::size_t wi = 0; wi < occ.size(); ++wi) {
      const BitRow::Word bystanders = occ[wi] & sel[wi] & ~own[wi];
      if (bystanders != 0) {
        const auto c = static_cast<std::int32_t>(wi * BitRow::kWordBits +
                                                 static_cast<std::size_t>(std::countr_zero(bystanders)));
        return "AOD cross trap at " + qrm::to_string(Coord{r, c}) +
               " holds a bystander atom not part of the move";
      }
    }
  }
  return std::nullopt;
}

std::vector<ParallelMove> legalize(const OccupancyGrid& grid, std::span<const Coord> sites,
                                   Direction dir, std::int32_t steps) {
  QRM_EXPECTS(steps >= 1);
  std::vector<ParallelMove> out;
  if (sites.empty()) return out;

  OccupancyGrid scratch = grid;
  std::vector<Coord> remaining = front_first(sites, dir);
  for (const Coord& s : remaining) {
    QRM_EXPECTS_MSG(scratch.in_bounds(s) && scratch.occupied(s),
                    "legalize: site must hold an atom");
  }
  // A duplicated site would pass the occupancy check above (both copies see
  // the same atom) and then be emitted twice inside one ParallelMove —
  // physically one tweezer trying to pick the same atom up twice. front_first
  // sorts by a total order on (row, col), so duplicates are adjacent.
  for (std::size_t i = 1; i < remaining.size(); ++i) {
    QRM_EXPECTS_MSG(remaining[i] != remaining[i - 1],
                    "legalize: duplicate site " + qrm::to_string(remaining[i]) +
                        " in the intended move set");
  }

  // Fast path: when the whole intended set is already legal as one lockstep
  // command (frequent for sparse rounds), skip the greedy partition.
  {
    ParallelMove whole{dir, steps, remaining};
    const bool legal = !validate_move(grid, whole, /*check_aod=*/true).has_value();
    if (legal) return {std::move(whole)};
  }

  while (!remaining.empty()) {
    std::vector<Coord> batch;
    std::set<Coord> batch_set;
    std::set<std::int32_t> rows;
    std::set<std::int32_t> cols;
    std::vector<Coord> deferred;

    for (const Coord& s : remaining) {
      bool ok = true;
      // Path/collision: every swept cell must be free or vacated by an atom
      // already accepted into this lockstep batch.
      for (std::int32_t k = 1; k <= steps && ok; ++k) {
        const Coord cell = moved(s, dir, k);
        if (!scratch.in_bounds(cell)) {
          ok = false;
        } else if (scratch.occupied(cell) && !batch_set.contains(cell)) {
          ok = false;
        }
      }
      // AOD cross-product: new traps created by adding row s.row / col s.col
      // must not capture bystanders.
      if (ok) {
        for (const std::int32_t c : cols) {
          const Coord cross{s.row, c};
          if (scratch.occupied(cross) && !batch_set.contains(cross) && cross != s) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        for (const std::int32_t r : rows) {
          const Coord cross{r, s.col};
          if (scratch.occupied(cross) && !batch_set.contains(cross) && cross != s) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        batch.push_back(s);
        batch_set.insert(s);
        rows.insert(s.row);
        cols.insert(s.col);
      } else {
        deferred.push_back(s);
      }
    }

    QRM_ENSURES_MSG(!batch.empty(),
                    "legalize made no progress; the intended move set is not realisable");

    // Apply the batch to the scratch state: clear all sources, then set all
    // destinations (lockstep semantics).
    for (const Coord& s : batch) scratch.clear(s);
    for (const Coord& s : batch) {
      const Coord d = moved(s, dir, steps);
      QRM_ENSURES_MSG(!scratch.occupied(d), "legalize produced a colliding batch");
      scratch.set(d);
    }

    out.push_back(ParallelMove{dir, steps, std::move(batch)});
    remaining = std::move(deferred);
  }
  return out;
}

}  // namespace qrm

// Differential suite for the word-parallel BitRow / OccupancyGrid kernels.
//
// Every rewritten primitive is pinned bit-for-bit against the naive per-bit
// reference implementations in util/bitref.hpp and lattice/gridref.hpp over
// randomized contents at word-boundary-hostile widths (63/64/65/127/128/
// 1023/1024/...), plus randomized fuzz rounds with random widths. A failure
// prints the width and seed so the case can be replayed directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

#include "lattice/grid.hpp"
#include "lattice/gridref.hpp"
#include "moves/aod.hpp"
#include "util/bitref.hpp"
#include "util/bitrow.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

/// Widths that straddle every interesting word boundary, plus degenerate
/// small rows.
const std::vector<std::uint32_t> kWidths = {0,  1,  2,   31,  32,  33,  63,   64,   65,
                                            97, 127, 128, 129, 191, 192, 1023, 1024, 1025};

[[nodiscard]] BitRow random_row(std::uint32_t width, double fill, Rng& rng) {
  BitRow row(width);
  for (std::uint32_t i = 0; i < width; ++i)
    if (rng.bernoulli(fill)) row.set(i);
  return row;
}

[[nodiscard]] OccupancyGrid random_grid(std::int32_t height, std::int32_t width, double fill,
                                        Rng& rng) {
  OccupancyGrid g(height, width);
  for (std::int32_t r = 0; r < height; ++r)
    for (std::int32_t c = 0; c < width; ++c)
      if (rng.bernoulli(fill)) g.set({r, c});
  return g;
}

/// Run `check(row)` for every boundary width x three fill levels x several
/// seeds. `check` receives the row plus a SCOPED_TRACE tag already naming
/// (width, fill, seed).
template <typename Check>
void for_each_random_row(Check&& check) {
  for (const std::uint32_t width : kWidths) {
    for (const double fill : {0.0, 0.5, 1.0}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        Rng rng(seed * 7919 + width);
        const BitRow row = random_row(width, fill, rng);
        SCOPED_TRACE("width=" + std::to_string(width) + " fill=" + std::to_string(fill) +
                     " seed=" + std::to_string(seed));
        check(row, rng);
      }
    }
  }
}

TEST(BitOpsDifferential, Reversed) {
  for_each_random_row([](const BitRow& row, Rng&) { EXPECT_EQ(row.reversed(), ref::reversed(row)); });
}

TEST(BitOpsDifferential, Compacted) {
  for_each_random_row(
      [](const BitRow& row, Rng&) { EXPECT_EQ(row.compacted(), ref::compacted(row)); });
}

TEST(BitOpsDifferential, CountRange) {
  for_each_random_row([](const BitRow& row, Rng& rng) {
    const std::uint32_t w = row.width();
    // Random sub-ranges plus the boundary-hugging ones.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {
        {0, 0}, {0, w}, {w, w}, {w / 2, w / 2}};
    for (int i = 0; i < 16; ++i) {
      std::uint32_t lo = rng.uniform_below(w + 1);
      std::uint32_t hi = rng.uniform_below(w + 1);
      if (lo > hi) std::swap(lo, hi);
      ranges.emplace_back(lo, hi);
    }
    for (const auto& [lo, hi] : ranges) {
      SCOPED_TRACE("lo=" + std::to_string(lo) + " hi=" + std::to_string(hi));
      EXPECT_EQ(row.count_range(lo, hi), ref::count_range(row, lo, hi));
    }
  });
}

TEST(BitOpsDifferential, HolePositions) {
  for_each_random_row(
      [](const BitRow& row, Rng&) { EXPECT_EQ(row.hole_positions(), ref::hole_positions(row)); });
}

TEST(BitOpsDifferential, CompactionDisplacements) {
  for_each_random_row([](const BitRow& row, Rng&) {
    EXPECT_EQ(row.compaction_displacements(), ref::compaction_displacements(row));
  });
}

TEST(BitOpsDifferential, SliceAndPaste) {
  for_each_random_row([](const BitRow& row, Rng& rng) {
    const std::uint32_t w = row.width();
    for (int i = 0; i < 8; ++i) {
      std::uint32_t pos = rng.uniform_below(w + 1);
      const std::uint32_t len = rng.uniform_below(w - pos + 1);
      SCOPED_TRACE("pos=" + std::to_string(pos) + " len=" + std::to_string(len));
      EXPECT_EQ(row.slice(pos, len), ref::slice(row, pos, len));

      const BitRow piece = random_row(len, 0.5, rng);
      BitRow pasted = row;
      pasted.paste(pos, piece);
      EXPECT_EQ(pasted, ref::pasted(row, pos, piece));
    }
  });
}

TEST(BitOpsDifferential, SlicePasteRoundTrip) {
  // paste(slice) must be the identity for any sub-range.
  Rng rng(42);
  const BitRow row = random_row(1023, 0.5, rng);
  for (const auto& [pos, len] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{{0, 64}, {63, 65}, {64, 959}, {1, 1022}}) {
    BitRow copy = row;
    copy.paste(pos, row.slice(pos, len));
    EXPECT_EQ(copy, row);
  }
}

TEST(BitOpsDifferential, SliceBoundsChecked) {
  const BitRow row(100);
  EXPECT_THROW((void)row.slice(50, 51), PreconditionError);
  BitRow target(100);
  EXPECT_THROW(target.paste(50, BitRow(51)), PreconditionError);
}

/// Grid shapes straddling the 64-row/column block boundaries.
const std::vector<std::pair<std::int32_t, std::int32_t>> kShapes = {
    {1, 1}, {3, 130}, {63, 63}, {64, 64}, {65, 64}, {64, 65}, {65, 65}, {100, 200}, {128, 128}};

TEST(GridOpsDifferential, Transpose) {
  for (const auto& [h, w] : kShapes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed);
      const OccupancyGrid g = random_grid(h, w, 0.5, rng);
      SCOPED_TRACE("h=" + std::to_string(h) + " w=" + std::to_string(w) +
                   " seed=" + std::to_string(seed));
      const OccupancyGrid t = g.flipped(Flip::Transpose);
      EXPECT_EQ(t, ref::transposed(g));
      EXPECT_EQ(t.flipped(Flip::Transpose), g) << "transpose must be an involution";
    }
  }
}

TEST(GridOpsDifferential, ColumnAndSetColumn) {
  for (const auto& [h, w] : kShapes) {
    Rng rng(h * 1000 + w);
    const OccupancyGrid g = random_grid(h, w, 0.5, rng);
    SCOPED_TRACE("h=" + std::to_string(h) + " w=" + std::to_string(w));
    for (const std::int32_t c : {0, w / 2, w - 1}) {
      EXPECT_EQ(g.column(c), ref::column(g, c));
      const BitRow bits = random_row(static_cast<std::uint32_t>(h), 0.5, rng);
      OccupancyGrid fast = g;
      fast.set_column(c, bits);
      EXPECT_EQ(fast, ref::with_column(g, c, bits));
      EXPECT_EQ(fast.column(c), bits) << "set_column/column round trip";
    }
  }
}

TEST(GridOpsDifferential, SubgridAndSetSubgrid) {
  for (const auto& [h, w] : kShapes) {
    Rng rng(h * 7 + w * 13);
    const OccupancyGrid g = random_grid(h, w, 0.5, rng);
    SCOPED_TRACE("h=" + std::to_string(h) + " w=" + std::to_string(w));
    for (int i = 0; i < 8; ++i) {
      Region region;
      region.row0 = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(h)));
      region.col0 = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(w)));
      region.rows =
          static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(h - region.row0) + 1));
      region.cols =
          static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(w - region.col0) + 1));
      SCOPED_TRACE("region=(" + std::to_string(region.row0) + "," + std::to_string(region.col0) +
                   ")+" + std::to_string(region.rows) + "x" + std::to_string(region.cols));
      const OccupancyGrid sub = g.subgrid(region);
      EXPECT_EQ(sub, ref::subgrid(g, region));

      const OccupancyGrid content = random_grid(region.rows, region.cols, 0.5, rng);
      OccupancyGrid fast = g;
      fast.set_subgrid(region, content);
      EXPECT_EQ(fast, ref::with_subgrid(g, region, content));
      EXPECT_EQ(fast.subgrid(region), content) << "set_subgrid/subgrid round trip";
    }
  }
}

/// Naive cross-product AOD check, kept verbatim from the pre-word-mask
/// implementation as the differential reference.
[[nodiscard]] bool naive_aod_legal(const OccupancyGrid& grid, const ParallelMove& move) {
  std::vector<std::int32_t> rows, cols;
  for (const Coord& s : move.sites) {
    rows.push_back(s.row);
    cols.push_back(s.col);
  }
  for (const std::int32_t r : rows) {
    for (const std::int32_t c : cols) {
      const Coord cross{r, c};
      const bool member =
          std::find(move.sites.begin(), move.sites.end(), cross) != move.sites.end();
      if (grid.in_bounds(cross) && grid.occupied(cross) && !member) return false;
    }
  }
  return true;
}

TEST(GridOpsDifferential, DiffPositionsAndCount) {
  // The delta replanner's word-parallel XOR diff vs the per-cell reference,
  // across word-boundary shapes and correlation levels (identical grids,
  // near-identical grids, independent grids).
  for (const auto& [h, w] : kShapes) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed * 31 + h + w);
      const OccupancyGrid a = random_grid(h, w, 0.5, rng);
      SCOPED_TRACE("h=" + std::to_string(h) + " w=" + std::to_string(w) +
                   " seed=" + std::to_string(seed));

      EXPECT_TRUE(diff_positions(a, a).empty());
      EXPECT_EQ(diff_count(a, a), 0);

      // A few flips: the common (sparse-diff) case.
      OccupancyGrid b = a;
      for (int i = 0; i < 3; ++i) {
        const Coord site{static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(h))),
                         static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(w)))};
        b.set(site, !b.occupied(site));
      }
      EXPECT_EQ(diff_positions(a, b), ref::diff_positions(a, b));
      EXPECT_EQ(diff_count(a, b), ref::diff_count(a, b));
      EXPECT_EQ(diff_positions(a, b), diff_positions(b, a)) << "diff must be symmetric";

      // Independent grids: the dense case.
      const OccupancyGrid c = random_grid(h, w, 0.5, rng);
      EXPECT_EQ(diff_positions(a, c), ref::diff_positions(a, c));
      EXPECT_EQ(diff_count(a, c), static_cast<std::int64_t>(ref::diff_positions(a, c).size()));
    }
  }
}

TEST(GridOpsDifferential, DiffRejectsShapeMismatch) {
  const OccupancyGrid a(4, 8);
  const OccupancyGrid b(8, 4);
  EXPECT_THROW((void)diff_positions(a, b), PreconditionError);
  EXPECT_THROW((void)diff_count(a, b), PreconditionError);
}

TEST(GridOpsDifferential, AodViolationMatchesNaiveCrossProduct) {
  Rng rng(99);
  int violations = 0;
  for (int round = 0; round < 200; ++round) {
    const OccupancyGrid g = random_grid(40, 40, 0.3, rng);
    ParallelMove move{Direction::West, 1, {}};
    const std::uint32_t n = 1 + rng.uniform_below(8);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Coord s{static_cast<std::int32_t>(rng.uniform_below(40)),
                    static_cast<std::int32_t>(rng.uniform_below(40))};
      if (std::find(move.sites.begin(), move.sites.end(), s) == move.sites.end())
        move.sites.push_back(s);
    }
    SCOPED_TRACE("round=" + std::to_string(round));
    const bool legal = is_aod_legal(g, move);
    EXPECT_EQ(legal, naive_aod_legal(g, move));
    if (!legal) ++violations;
  }
  EXPECT_GT(violations, 0) << "fuzz must exercise the violating path";
}

TEST(GridOpsDifferential, AodViolationReportsLowestRowThenColumn) {
  // Atoms at (1,5) and (5,1); moving (1,1)'s row/col cross both. The first
  // violation must be the lowest row, then lowest column — the contract the
  // word-mask scan shares with the historical per-cell scan.
  OccupancyGrid g(8, 8);
  g.set({1, 1});
  g.set({1, 5});
  g.set({5, 1});
  const ParallelMove move{Direction::West, 1, {{1, 1}, {1, 5}, {5, 5}}};
  const auto violation = aod_violation(g, move);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("(5,1)"), std::string::npos) << *violation;
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file fifo.hpp
/// Two-phase (registered) FIFO for the cycle-level simulation.
///
/// During a cycle every module calls eval(), observing the FIFO state as it
/// was at the *start* of the cycle and staging pushes/pops; Simulation then
/// commits all FIFOs. A value pushed in cycle t is therefore first visible
/// to consumers in cycle t+1, exactly like a registered hardware FIFO.

#include <cstdint>
#include <deque>
#include <string>

#include "util/assert.hpp"

namespace qrm::hw {

class FifoBase {
 public:
  explicit FifoBase(std::string name) : name_(std::move(name)) {}
  virtual ~FifoBase() = default;
  FifoBase(const FifoBase&) = delete;
  FifoBase& operator=(const FifoBase&) = delete;

  virtual void commit() = 0;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

template <typename T>
class Fifo final : public FifoBase {
 public:
  Fifo(std::string name, std::size_t capacity) : FifoBase(std::move(name)), capacity_(capacity) {
    QRM_EXPECTS(capacity > 0);
  }

  /// True when a pop this cycle would succeed (state at cycle start).
  [[nodiscard]] bool can_pop() const noexcept { return staged_pops_ < items_.size(); }
  /// Next item that pop() would consume. Precondition: can_pop().
  [[nodiscard]] const T& front() const {
    QRM_EXPECTS(can_pop());
    return items_[staged_pops_];
  }
  /// Stage a pop; takes effect at commit().
  T pop() {
    QRM_EXPECTS(can_pop());
    return items_[staged_pops_++];
  }

  /// True when a push this cycle would fit (committed occupancy + already
  /// staged pushes; staged pops do NOT free space until next cycle, like a
  /// full-throughput hardware FIFO with registered occupancy would at worst).
  [[nodiscard]] bool can_push() const noexcept {
    return items_.size() + staged_pushes_.size() < capacity_;
  }
  void push(T value) {
    QRM_EXPECTS_MSG(can_push(), "push into full FIFO " + name());
    staged_pushes_.push_back(std::move(value));
  }

  void commit() override {
    for (std::size_t i = 0; i < staged_pops_; ++i) items_.pop_front();
    staged_pops_ = 0;
    for (auto& v : staged_pushes_) items_.push_back(std::move(v));
    total_pushed_ += staged_pushes_.size();
    staged_pushes_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty() && staged_pushes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::uint64_t total_pushed() const noexcept { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<T> staged_pushes_;
  std::size_t staged_pops_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace qrm::hw

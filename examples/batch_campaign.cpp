// Batch campaign: sweep grid sizes, fan shots across the worker pool, and
// emit one CSV row per (grid, worker-count) cell. Since the qrm::scenario
// subsystem landed this binary is a thin port: the sweep that used to be a
// hand-coded loop is now a declarative spec expanded by expand_sweeps and
// run by CampaignRunner — same columns, same seeds, bit-identical
// fingerprints as the original hand-built BatchPlanner loop.
//
//   ./build/examples/batch_campaign > campaign.csv

#include <cstdio>
#include <iostream>

#include "util/thread_pool.hpp"
#include "scenario/campaign.hpp"
#include "util/csv.hpp"

int main() {
  using namespace qrm;

  // The original sweep, as data: four grid sizes, the paper's ~0.6W even
  // target (`target=auto`), 32 shots per cell, master seed 0xCA3BA1.
  constexpr const char* kSweep =
      "name=batch-campaign\n"
      "grid=24,32,48,64\n"
      "target=auto\n"
      "load=uniform\n"
      "fill=0.6\n"
      "shots=32\n"
      "seed=0xca3ba1\n"
      "per_move_loss=0.01\n"
      "background_loss=0.002\n"
      "max_rounds=6\n";
  const std::vector<scenario::ScenarioSpec> sweep = scenario::expand_sweeps(kSweep);

  const std::uint32_t hw_workers = ThreadPool::resolve_workers(0);
  std::vector<std::uint32_t> worker_sweep = {1u};
  if (hw_workers > 1) worker_sweep.push_back(hw_workers);

  CsvWriter csv(std::cout);
  csv.header({"grid", "target", "shots", "workers", "success_rate", "mean_fill_rate",
              "total_commands", "mean_rounds", "p50_plan_us", "p50_execute_us",
              "shots_per_sec", "wall_ms", "fingerprint"});

  for (const scenario::ScenarioSpec& spec : sweep) {
    for (const std::uint32_t workers : worker_sweep) {
      scenario::CampaignConfig config;
      config.exec.workers = workers;
      const scenario::ScenarioOutcome outcome =
          scenario::CampaignRunner(config).run_one(spec);
      const batch::BatchReport& report = outcome.batch;
      csv.row(spec.grid_height, spec.target_region().rows, spec.shots, report.workers,
              report.success_rate(), report.mean_fill_rate(), report.total_commands(),
              outcome.mean_rounds, outcome.p50_plan_us, outcome.p50_execute_us,
              report.shots_per_second(), report.wall_us / 1000.0, report.fingerprint());
    }
  }

  // The fingerprint column is the point of the determinism guarantee: for
  // each grid size, the 1-worker and hw-worker rows must show the same hash.
  std::fprintf(stderr, "batch_campaign: %u-worker pool, 32 shots per cell\n", hw_workers);
  return 0;
}

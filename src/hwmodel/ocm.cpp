#include "hwmodel/ocm.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qrm::hw {

OutputConcatModule::OutputConcatModule(std::string name, std::array<Fifo<CommandBeat>*, 4> in,
                                       std::uint32_t drain_width)
    : Module(std::move(name)), in_(in), drain_width_(drain_width) {
  QRM_EXPECTS(drain_width > 0);
}

void OutputConcatModule::eval(std::uint64_t) {
  // Row Combination: process one command buffer from each quadrant per
  // cycle ("all four command buffers are processed at the same time").
  for (Fifo<CommandBeat>* fifo : in_) {
    if (fifo != nullptr && fifo->can_pop()) {
      const CommandBeat beat = fifo->pop();
      pending_records_ += beat.records;
      ++beats_consumed_;
    }
  }
  // Output stream: serialize up to drain_width records this cycle.
  const std::uint64_t drained = std::min<std::uint64_t>(pending_records_, drain_width_);
  pending_records_ -= drained;
  records_emitted_ += drained;
}

bool OutputConcatModule::busy() const {
  if (pending_records_ > 0) return true;
  for (const Fifo<CommandBeat>* fifo : in_) {
    if (fifo != nullptr && fifo->can_pop()) return true;
  }
  return false;
}

}  // namespace qrm::hw

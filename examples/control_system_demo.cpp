/// \file control_system_demo.cpp
/// The full Fig. 1 workflow of a neutral-atom quantum computer, end to end:
/// synthetic fluorescence image -> threshold detection -> QRM rearrangement
/// analysis (cycle-level accelerator model) -> AWG tone-ramp program —
/// under both Fig. 2 architectures.
///
///   $ ./examples/control_system_demo

#include <cstdio>

#include "loading/loader.hpp"
#include "runtime/control_system.hpp"

int main() {
  using namespace qrm;

  // Ground truth: a 30x30 array loaded at ~55%.
  const OccupancyGrid atoms = load_random(30, 30, {0.55, 7});
  std::printf("True atom distribution: %lld atoms in 30x30\n",
              static_cast<long long>(atoms.atom_count()));

  rt::SystemConfig config;
  config.accelerator.plan.target = centered_square(30, 18);
  config.imaging.photons_per_atom = 300.0;
  config.imaging.background_photons = 2.0;
  config.detection.pixels_per_site = config.imaging.pixels_per_site;

  for (const rt::Architecture arch :
       {rt::Architecture::HostMediated, rt::Architecture::FpgaIntegrated}) {
    config.architecture = arch;
    const rt::ControlSystem system(config);
    const rt::WorkflowReport report = system.run(atoms);
    std::printf("\n--- %s ---\n%s", rt::to_cstring(arch), report.to_string().c_str());
    std::printf("detection errors: %lld\n",
                static_cast<long long>(report.detection_errors.total()));
  }

  std::printf("\nThe FPGA-integrated architecture removes the host round trips;\n");
  std::printf("after that, physical atom motion dominates the cycle time.\n");
  return 0;
}

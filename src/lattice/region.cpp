#include "lattice/region.hpp"

#include "util/assert.hpp"

namespace qrm {

Region centered_region(std::int32_t height, std::int32_t width, std::int32_t target_rows,
                       std::int32_t target_cols) {
  QRM_EXPECTS(height > 0 && width > 0 && target_rows > 0 && target_cols > 0);
  QRM_EXPECTS_MSG(target_rows <= height && target_cols <= width,
                  "target region must fit inside the grid");
  Region r;
  r.rows = target_rows;
  r.cols = target_cols;
  r.row0 = (height - target_rows) / 2;
  r.col0 = (width - target_cols) / 2;
  return r;
}

Region centered_square(std::int32_t grid_size, std::int32_t target_size) {
  return centered_region(grid_size, grid_size, target_size, target_size);
}

}  // namespace qrm

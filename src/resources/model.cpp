#include "resources/model.hpp"

#include "util/assert.hpp"

namespace qrm::res {

DeviceSpec zcu216() { return {"ZCU216 (XCZU49DR)", 425'280, 850'560, 1080}; }

DeviceSpec zcu111() { return {"ZCU111 (XCZU28DR)", 425'280, 850'560, 1080}; }

Utilization estimate_shift_kernel(std::int32_t quadrant_width) {
  QRM_EXPECTS(quadrant_width > 0);
  const auto qw = static_cast<std::uint64_t>(quadrant_width);
  Utilization u;
  // Row shift register + column buffer + shift-command buffer + line tags,
  // all Q_w wide, plus per-bit scan logic and the admission handshake.
  u.ffs = qw * 120 + 512;
  u.luts = qw * 45 + 384;
  // One input row queue and one command queue per kernel.
  u.bram36 = 2;
  return u;
}

Utilization estimate_ldm(std::int32_t array_width, std::uint32_t packet_bits) {
  QRM_EXPECTS(array_width > 0);
  const auto w = static_cast<std::uint64_t>(array_width);
  Utilization u;
  // Beat deserializer (packet_bits wide), row assembly register (W bits),
  // four Load Vector mirror networks (mux trees scale with W).
  u.ffs = w * 30 + packet_bits / 2 + 256;
  u.luts = w * 21 + packet_bits / 4 + 192;
  // Double-buffered packet staging.
  u.bram36 = 2;
  return u;
}

Utilization estimate_ocm(std::int32_t array_width, std::uint32_t record_bits) {
  QRM_EXPECTS(array_width > 0);
  const auto w = static_cast<std::uint64_t>(array_width);
  Utilization u;
  // Movement recording (origin/direction/steps per line in flight), the
  // four-way Row Combination merge network and the output serializer. The
  // paper notes this integration logic costs about as much as the four QPMs
  // together; the coefficients reflect that.
  u.ffs = w * 240 + record_bits * 8;
  u.luts = w * 92 + record_bits * 4;
  // Four command FIFOs plus the large output FIFO.
  u.bram36 = 6;
  return u;
}

Utilization estimate_infrastructure(std::uint32_t packet_bits) {
  Utilization u;
  // AXI-full DMA engine, PS control/status registers, interrupt logic.
  u.ffs = 3000 + packet_bits;
  u.luts = 7200 + packet_bits / 2;
  u.bram36 = 4;
  return u;
}

Utilization estimate_accelerator(std::int32_t array_width, const ResourceModelConfig& config) {
  QRM_EXPECTS_MSG(array_width > 0 && array_width % 2 == 0,
                  "resource model expects an even array width");
  Utilization total;
  const std::int32_t qw = array_width / 2;
  for (std::uint32_t k = 0; k < config.quadrant_pathways; ++k) {
    total += estimate_shift_kernel(qw);
  }
  total += estimate_ldm(array_width, config.packet_bits);
  total += estimate_ocm(array_width, config.record_bits);
  total += estimate_infrastructure(config.packet_bits);
  return total;
}

std::vector<ModuleUsage> estimate_breakdown(std::int32_t array_width,
                                            const ResourceModelConfig& config) {
  QRM_EXPECTS(array_width > 0 && array_width % 2 == 0);
  std::vector<ModuleUsage> out;
  const std::int32_t qw = array_width / 2;
  Utilization qpm;
  for (std::uint32_t k = 0; k < config.quadrant_pathways; ++k) qpm += estimate_shift_kernel(qw);
  out.push_back({"QPM (" + std::to_string(config.quadrant_pathways) + "x shift kernel)", qpm});
  out.push_back({"LDM", estimate_ldm(array_width, config.packet_bits)});
  out.push_back({"OCM / row combination", estimate_ocm(array_width, config.record_bits)});
  out.push_back({"AXI/DMA/control", estimate_infrastructure(config.packet_bits)});
  return out;
}

bool fits(const Utilization& usage, const DeviceSpec& device, double margin) {
  QRM_EXPECTS(margin >= 0.0 && margin < 1.0);
  const double budget = 1.0 - margin;
  return usage.lut_fraction(device) <= budget && usage.ff_fraction(device) <= budget &&
         usage.bram_fraction(device) <= budget;
}

}  // namespace qrm::res

#include "runtime/control_system.hpp"

#include <sstream>

#include "core/cpu_reference.hpp"
#include "core/planner.hpp"
#include "util/assert.hpp"
#include "util/stopwatch.hpp"

namespace qrm::rt {

std::string WorkflowReport::to_string() const {
  std::ostringstream os;
  os << "detection   " << detection_us << " us\n";
  os << "transfers   " << transfer_us << " us\n";
  os << "analysis    " << analysis_us << " us\n";
  os << "control     " << control_latency_us() << " us\n";
  os << "awg program " << awg_program_us << " us (" << schedule_commands << " commands)\n";
  os << "filled      " << (target_filled ? "yes" : "no") << " (defects "
     << defects_remaining << ")\n";
  return os.str();
}

ControlSystem::ControlSystem(SystemConfig config) : config_(std::move(config)) {
  QRM_EXPECTS(config_.detection_pixels_per_cycle > 0);
  QRM_EXPECTS_MSG(config_.detection.pixels_per_site == config_.imaging.pixels_per_site,
                  "detection geometry must match imaging geometry");
}

WorkflowReport ControlSystem::run(const OccupancyGrid& true_atoms) const {
  WorkflowReport report;

  // --- Imaging (common to both architectures; the camera is the camera) ---
  const FluorescenceImage image = render_image(true_atoms, config_.imaging);
  const double image_bytes = static_cast<double>(image.height()) *
                             static_cast<double>(image.width()) * 2.0;  // 16-bit pixels

  // --- Detection + analysis, per architecture ------------------------------
  OccupancyGrid detected(true_atoms.height(), true_atoms.width());
  if (config_.architecture == Architecture::HostMediated) {
    // (a) Frame crosses to the host...
    report.transfer_us += config_.host_link.transfer_us(image_bytes);
    // ...detection runs on the CPU (measured)...
    {
      Stopwatch sw;
      detected = detect_atoms(image, true_atoms.height(), true_atoms.width(),
                              config_.detection);
      report.detection_us = sw.elapsed_microseconds();
    }
    // ...scheduling runs on the CPU. The timed quantity is the same
    // analysis the accelerator performs (no physical-command
    // materialisation); the executable schedule for the AWG is produced
    // outside the timed region.
    {
      Stopwatch sw;
      const CpuReferenceResult analysis =
          run_cpu_reference(detected, config_.accelerator.plan);
      report.analysis_us = sw.elapsed_microseconds();
      QRM_ENSURES_MSG(analysis.final_grid.atom_count() == detected.atom_count(),
                      "analysis must conserve atoms");  // also keeps the timing observable
    }
    const PlanResult plan =
        QrmPlanner(config_.accelerator.plan, config_.plan_parallelism).plan(detected);
    report.target_filled = plan.stats.target_filled;
    report.defects_remaining = plan.stats.defects_remaining;
    report.schedule_commands = plan.schedule.size();
    // ...and the move list crosses back to the AWG FPGA.
    const double record_bytes = static_cast<double>(plan.schedule.records().size()) * 4.0;
    report.transfer_us += config_.host_link.transfer_us(record_bytes);
    report.awg_program_us =
        awg::build_waveform_plan(plan.schedule, config_.aod).total_duration_us;
  } else {
    // (b) Streaming threshold detection in hardware: pixels flow through at
    // detection_pixels_per_cycle per accelerator clock.
    const double pixel_count =
        static_cast<double>(image.height()) * static_cast<double>(image.width());
    const double detection_cycles =
        pixel_count / static_cast<double>(config_.detection_pixels_per_cycle);
    report.detection_us = detection_cycles / config_.accelerator.clock_mhz;
    detected =
        detect_atoms(image, true_atoms.height(), true_atoms.width(), config_.detection);
    // On-chip handoff to the QRM accelerator; its cycle model includes the
    // DDR/AXI load and output phases.
    const hw::AccelResult accel = hw::QrmAccelerator(config_.accelerator).run(detected);
    report.analysis_us = accel.latency_us;
    report.target_filled = accel.plan.stats.target_filled;
    report.defects_remaining = accel.plan.stats.defects_remaining;
    report.schedule_commands = accel.plan.schedule.size();
    report.awg_program_us =
        awg::build_waveform_plan(accel.plan.schedule, config_.aod).total_duration_us;
  }

  report.detection_errors = compare_detection(true_atoms, detected);
  return report;
}

}  // namespace qrm::rt

// Two Sec. V-B claims:
//  1. "In our experiment, four iterations were used to complete the entire
//     process" — we report how many compact iterations the planner actually
//     needs across sizes and fills.
//  2. "The latency of our design is not directly dependent on the target
//     area ... it correlates solely with the initial size of the array" —
//     we sweep the target size at fixed W and show latency is ~flat.

#include "bench_common.hpp"
#include "core/planner.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

void print_iterations_table() {
  print_header("Claim — compact-mode iteration count",
               "paper Sec. V-B: four iterations completed the 50x50 process");
  TextTable table({"W", "fill", "iterations used", "target filled"});
  for (const std::int32_t size : {20, 50, 90}) {
    for (const double fill : {0.5, 0.7}) {
      QrmConfig config;
      config.target = centered_square(size, size / 2 / 2 * 2);
      config.mode = PlanMode::Compact;
      config.max_iterations = 10;
      const PlanResult result =
          QrmPlanner(config).plan(load_random(size, size, {fill, 1}));
      table.add_row({std::to_string(size), fmt_double(fill, 2),
                     std::to_string(result.stats.iterations),
                     result.stats.target_filled ? "yes" : "no"});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void print_target_independence_table() {
  print_header("Claim — latency vs target size at fixed W=50",
               "paper Sec. V-B: latency correlates with the initial array size, "
               "not the target area");
  TextTable table({"target", "FPGA latency (compact)", "FPGA latency (balanced)"});
  const OccupancyGrid grid = workload(50, 1);
  for (const std::int32_t target : {10, 20, 30, 40}) {
    double compact_us = 0.0;
    double balanced_us = 0.0;
    for (const PlanMode mode : {PlanMode::Compact, PlanMode::Balanced}) {
      hw::AcceleratorConfig config;
      config.plan.target = centered_square(50, target);
      config.plan.mode = mode;
      const double us = hw::QrmAccelerator(config).run(grid).latency_us;
      (mode == PlanMode::Compact ? compact_us : balanced_us) = us;
    }
    table.add_row({std::to_string(target), fmt_time_us(compact_us), fmt_time_us(balanced_us)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_CompactIterations(benchmark::State& state) {
  const OccupancyGrid grid = workload(50, 1);
  QrmConfig config;
  config.target = centered_square(50, 24);
  config.mode = PlanMode::Compact;
  config.max_iterations = static_cast<std::int32_t>(state.range(0));
  const QrmPlanner planner(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(grid));
  }
}
BENCHMARK(BM_CompactIterations)->Arg(1)->Arg(4)->Arg(10)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_iterations_table();
  print_target_independence_table();
  run_benchmarks(argc, argv);
  return 0;
}

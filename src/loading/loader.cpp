#include "loading/loader.hpp"

#include "util/assert.hpp"

namespace qrm {

OccupancyGrid load_random(std::int32_t height, std::int32_t width, const LoaderConfig& config) {
  QRM_EXPECTS(height >= 0 && width >= 0);
  QRM_EXPECTS(config.fill_probability >= 0.0 && config.fill_probability <= 1.0);
  OccupancyGrid grid(height, width);
  Rng rng(config.seed);
  for (std::int32_t r = 0; r < height; ++r)
    for (std::int32_t c = 0; c < width; ++c)
      if (rng.bernoulli(config.fill_probability)) grid.set({r, c});
  return grid;
}

OccupancyGrid load_random_at_least(std::int32_t height, std::int32_t width,
                                   const LoaderConfig& config, std::int64_t min_atoms,
                                   std::uint32_t max_attempts) {
  QRM_EXPECTS(max_attempts > 0);
  OccupancyGrid best;
  std::int64_t best_count = -1;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    LoaderConfig derived = config;
    // Derive independent streams; attempt 0 uses the caller's exact seed so
    // deterministic callers see the same grid as load_random.
    std::uint64_t mix = config.seed + attempt;
    derived.seed = attempt == 0 ? config.seed : splitmix64(mix);
    OccupancyGrid grid = load_random(height, width, derived);
    const std::int64_t count = grid.atom_count();
    if (count >= min_atoms) return grid;
    if (count > best_count) {
      best_count = count;
      best = std::move(grid);
    }
  }
  return best;
}

OccupancyGrid load_clustered(std::int32_t height, std::int32_t width,
                             const ClusteredLoaderConfig& config) {
  OccupancyGrid grid = load_random(height, width, config.base);
  Rng rng(config.base.seed ^ 0xC1A57E20ULL);
  for (std::uint32_t k = 0; k < config.clusters; ++k) {
    const auto cr = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(height)));
    const auto cc = static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(width)));
    const std::int64_t r2 =
        static_cast<std::int64_t>(config.cluster_radius) * config.cluster_radius;
    for (std::int32_t r = 0; r < height; ++r) {
      for (std::int32_t c = 0; c < width; ++c) {
        const std::int64_t dr = r - cr;
        const std::int64_t dc = c - cc;
        if (dr * dr + dc * dc <= r2) grid.clear({r, c});
      }
    }
  }
  return grid;
}

OccupancyGrid load_pattern(std::int32_t height, std::int32_t width, Pattern pattern) {
  OccupancyGrid grid(height, width);
  for (std::int32_t r = 0; r < height; ++r) {
    for (std::int32_t c = 0; c < width; ++c) {
      bool occ = false;
      switch (pattern) {
        case Pattern::Full: occ = true; break;
        case Pattern::Empty: occ = false; break;
        case Pattern::Checkerboard: occ = (r + c) % 2 == 0; break;
        case Pattern::RowStripes: occ = r % 2 == 0; break;
        case Pattern::ColStripes: occ = c % 2 == 0; break;
        case Pattern::Border: occ = r == 0 || c == 0 || r == height - 1 || c == width - 1; break;
      }
      if (occ) grid.set({r, c});
    }
  }
  return grid;
}

double estimate_feasibility(std::int32_t height, std::int32_t width, double p,
                            std::int64_t needed, std::uint32_t trials, std::uint64_t seed) {
  QRM_EXPECTS(trials > 0);
  std::uint32_t hits = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    std::uint64_t mix = seed + t;
    const OccupancyGrid g = load_random(height, width, {p, splitmix64(mix)});
    if (g.atom_count() >= needed) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace qrm

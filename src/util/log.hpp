#pragma once
/// \file log.hpp
/// Leveled diagnostic logging. Off (Warn) by default so library code is quiet
/// in benches; examples raise the level to narrate the workflow.

#include <sstream>
#include <string>

namespace qrm {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit one line to stderr with a level tag if `level` >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
std::string concat(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}
}  // namespace detail

template <typename... Ts>
void log_info(const Ts&... parts) {
  if (log_level() <= LogLevel::Info) log_line(LogLevel::Info, detail::concat(parts...));
}
template <typename... Ts>
void log_debug(const Ts&... parts) {
  if (log_level() <= LogLevel::Debug) log_line(LogLevel::Debug, detail::concat(parts...));
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  if (log_level() <= LogLevel::Warn) log_line(LogLevel::Warn, detail::concat(parts...));
}

}  // namespace qrm

/// \file shift_kernel_trace.cpp
/// Cycle-by-cycle walk-through of the Shift Kernel on a 10x10 array's NW
/// quadrant — the scenario of the paper's Fig. 6. Shows rows being admitted
/// one per cycle, each bit routed to the column buffer or recorded as a
/// shift command, and the resulting command buffers.
///
///   $ ./examples/shift_kernel_trace

#include <cstdio>

#include "hwmodel/ldm.hpp"
#include "hwmodel/shift_kernel.hpp"
#include "lattice/quadrant.hpp"
#include "loading/loader.hpp"

int main() {
  using namespace qrm;
  using namespace qrm::hw;

  // A 10x10 array -> each quadrant is 5x5 (the paper's Q_w = 5 example).
  const OccupancyGrid grid = load_random(10, 10, {0.5, 21});
  const QuadrantGeometry geom(10, 10);
  const OccupancyGrid nw = geom.extract_local(grid, Quadrant::NW);
  std::printf("NW quadrant in the unified local frame (bit 0 = centre-most):\n");
  for (std::int32_t r = 0; r < nw.height(); ++r) {
    std::printf("  row %d: %s\n", r, nw.row(r).to_string().c_str());
  }

  // Feed the quadrant's rows through one kernel, tracing every cycle.
  Fifo<RowBeat> in("in", 4);
  Fifo<CommandBeat> out("out", 16);
  std::vector<RowBeat> beats;
  for (std::int32_t r = 0; r < nw.height(); ++r) beats.push_back({r, nw.row(r), -1});
  RowSource source("source", std::move(beats), in);
  ShiftKernel kernel("kernel", in, out);
  kernel.enable_trace();

  class Collector final : public Module {
   public:
    explicit Collector(Fifo<CommandBeat>& f) : Module("collector"), in_(f) {}
    void eval(std::uint64_t) override {
      while (in_.can_pop()) beats_.push_back(in_.pop());
    }
    [[nodiscard]] bool busy() const override { return in_.can_pop(); }
    std::vector<CommandBeat> beats_;

   private:
    Fifo<CommandBeat>& in_;
  } collector(out);

  Simulation sim;
  sim.add_module(source);
  sim.add_module(kernel);
  sim.add_module(collector);
  sim.add_fifo(in);
  sim.add_fifo(out);
  const std::uint64_t cycles = sim.run();

  std::printf("\nPer-cycle trace (Fig. 6 walk-through):\n");
  for (const auto& line : kernel.trace()) std::printf("  %s\n", line.c_str());

  std::printf("\nShift-command buffers (bit set where the scan saw a hole):\n");
  for (const auto& beat : collector.beats_) {
    std::printf("  row %d: %s -> commands %s, %u movement records\n", beat.line,
                beat.original.to_string().c_str(), beat.commands.to_string().c_str(),
                beat.records);
  }
  std::printf("\nPass completed in %llu cycles (Q_h + Q_w pipeline: %d + %d)\n",
              static_cast<unsigned long long>(cycles), nw.height(), nw.width());
  return 0;
}

#include "moves/realizer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "moves/aod.hpp"
#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// A moving atom tracked through the rounds.
struct Mover {
  std::int32_t line;
  std::int32_t pos;     // current position along the line
  std::int32_t target;  // final position
};

Coord to_coord(Axis axis, std::int32_t line, std::int32_t pos) {
  return axis == Axis::Rows ? Coord{line, pos} : Coord{pos, line};
}

void validate_assignment(const OccupancyGrid& grid, Axis axis, const LineAssignment& a) {
  const std::int32_t line_count = axis == Axis::Rows ? grid.height() : grid.width();
  const std::int32_t line_length = axis == Axis::Rows ? grid.width() : grid.height();
  QRM_EXPECTS_MSG(a.line >= 0 && a.line < line_count, "assignment line out of range");
  QRM_EXPECTS_MSG(a.sources.size() == a.targets.size(),
                  "assignment sources/targets size mismatch");
  for (std::size_t i = 0; i < a.sources.size(); ++i) {
    QRM_EXPECTS_MSG(a.sources[i] >= 0 && a.sources[i] < line_length,
                    "assignment source out of range");
    QRM_EXPECTS_MSG(a.targets[i] >= 0 && a.targets[i] < line_length,
                    "assignment target out of range");
    QRM_EXPECTS_MSG(grid.occupied(to_coord(axis, a.line, a.sources[i])),
                    "assignment source holds no atom");
    if (i > 0) {
      QRM_EXPECTS_MSG(a.sources[i] > a.sources[i - 1], "assignment sources must ascend");
      QRM_EXPECTS_MSG(a.targets[i] > a.targets[i - 1], "assignment targets must ascend");
    }
  }
  // Full-line order consistency: merge fixed atoms (unselected) with the
  // moving atoms' targets in source order; the sequence must stay strictly
  // increasing and duplicate-free, or motion would require passing an atom.
  // Sources are strictly ascending (checked above), so a two-pointer sweep
  // pairs each selected occupied site with its target in index order —
  // no set lookups or per-line allocations on this hot path.
  std::size_t next_moving = 0;
  std::int32_t prev_final = -1;
  bool have_prev = false;
  for (std::int32_t pos = 0; pos < line_length; ++pos) {
    if (!grid.occupied(to_coord(axis, a.line, pos))) continue;
    std::int32_t final_pos = pos;
    if (next_moving < a.sources.size() && a.sources[next_moving] == pos) {
      final_pos = a.targets[next_moving++];
    }
    QRM_EXPECTS_MSG(!have_prev || final_pos > prev_final,
                    "assignment would require an atom to pass another in line " +
                        std::to_string(a.line));
    prev_final = final_pos;
    have_prev = true;
  }
}

/// Emit one unit-step round (all `sites` move one step in `dir`), splitting
/// into AOD-legal sub-moves when requested, and advance the grid.
/// `major_mirror` (nullable) is the grid in major-line orientation, kept in
/// sync by legalize across rounds so each round skips an O(area) transpose.
void emit_round(OccupancyGrid& grid, std::vector<Coord> sites, Direction dir,
                Schedule& schedule, const RealizeOptions& options,
                OccupancyGrid* major_mirror) {
  if (sites.empty()) return;
  if (options.aod_legalize) {
    for (auto& sub : legalize(grid, sites, dir, 1, major_mirror)) {
      apply_move_unchecked(grid, sub);
      schedule.push_back(std::move(sub));
    }
  } else {
    ParallelMove move{dir, 1, std::move(sites)};
    apply_move_unchecked(grid, move);
    schedule.push_back(std::move(move));
  }
}

/// Run all rounds of one phase. `toward_origin` selects atoms that must
/// decrease their position (motion W/N); otherwise increase (E/S).
///
/// Movers are sorted by remaining displacement (descending) so that each
/// round only touches the prefix still in motion; total work is the sum of
/// displacements, not movers x rounds.
std::size_t run_phase(OccupancyGrid& grid, Axis axis, std::vector<Mover>& movers,
                      bool toward_origin, Schedule& schedule, const RealizeOptions& options,
                      OccupancyGrid* major_mirror) {
  const Direction dir = axis == Axis::Rows
                            ? (toward_origin ? Direction::West : Direction::East)
                            : (toward_origin ? Direction::North : Direction::South);
  const auto remaining = [toward_origin](const Mover& m) {
    return toward_origin ? m.pos - m.target : m.target - m.pos;
  };
  std::vector<Mover*> active;
  active.reserve(movers.size());
  for (auto& m : movers) {
    if (remaining(m) > 0) active.push_back(&m);
  }
  std::sort(active.begin(), active.end(),
            [&remaining](const Mover* a, const Mover* b) { return remaining(*a) > remaining(*b); });

  const std::int32_t delta = toward_origin ? -1 : +1;
  std::size_t rounds = 0;
  while (!active.empty()) {
    std::vector<Coord> stepping;
    stepping.reserve(active.size());
    for (Mover* m : active) stepping.push_back(to_coord(axis, m->line, m->pos));
    emit_round(grid, std::move(stepping), dir, schedule, options, major_mirror);
    for (Mover* m : active) m->pos += delta;
    // Arrived movers form a suffix of the displacement-sorted list.
    while (!active.empty() && remaining(*active.back()) == 0) active.pop_back();
    ++rounds;
  }
  return rounds;
}

}  // namespace

RealizeResult realize_assignments(OccupancyGrid& grid, Axis axis,
                                  std::span<const LineAssignment> assignments,
                                  Schedule& schedule, const RealizeOptions& options) {
  std::set<std::int32_t> seen_lines;
  std::vector<Mover> movers;
  for (const auto& a : assignments) {
    QRM_EXPECTS_MSG(seen_lines.insert(a.line).second,
                    "duplicate line in one realize call");
    validate_assignment(grid, axis, a);
    for (std::size_t i = 0; i < a.sources.size(); ++i) {
      if (a.sources[i] != a.targets[i]) movers.push_back({a.line, a.sources[i], a.targets[i]});
    }
  }

  RealizeResult result;
  result.atoms_moved = movers.size();
  // All rounds of both phases move along `axis`, so one major-oriented copy
  // of the grid (transposed for row moves, plain for column moves) serves
  // every legalize call; legalize advances it move by move, replacing the
  // O(area) transpose it would otherwise pay per unit round.
  OccupancyGrid major_mirror;
  OccupancyGrid* mirror_ptr = nullptr;
  if (options.aod_legalize && !movers.empty()) {
    major_mirror = axis == Axis::Rows ? grid.flipped(Flip::Transpose) : grid;
    mirror_ptr = &major_mirror;
  }
  // Toward-origin movers are provably never blocked by fixed atoms, arrived
  // atoms, or away-movers (order preservation forbids all three), so the
  // phase completes in max|displacement| rounds; the away phase mirrors it.
  result.rounds_toward_origin = run_phase(grid, axis, movers, true, schedule, options, mirror_ptr);
  result.rounds_away = run_phase(grid, axis, movers, false, schedule, options, mirror_ptr);

  for (const auto& m : movers) {
    QRM_ENSURES_MSG(m.pos == m.target, "realizer failed to deliver an atom");
  }
  return result;
}

}  // namespace qrm

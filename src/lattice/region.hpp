#pragma once
/// \file region.hpp
/// Rectangular regions of the trap lattice; used for the compact target area
/// ("the red square" of the paper's Fig. 3) and for sub-grid extraction.

#include <cstdint>

#include "lattice/coord.hpp"

namespace qrm {

/// Half-open rectangle [row0, row0+rows) x [col0, col0+cols).
struct Region {
  std::int32_t row0 = 0;
  std::int32_t col0 = 0;
  std::int32_t rows = 0;
  std::int32_t cols = 0;

  [[nodiscard]] std::int32_t row_end() const noexcept { return row0 + rows; }
  [[nodiscard]] std::int32_t col_end() const noexcept { return col0 + cols; }
  [[nodiscard]] std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(rows) * cols;
  }
  [[nodiscard]] bool contains(Coord c) const noexcept {
    return c.row >= row0 && c.row < row_end() && c.col >= col0 && c.col < col_end();
  }
  /// True when this rectangle lies within a height x width grid.
  [[nodiscard]] bool within(std::int32_t height, std::int32_t width) const noexcept {
    return row0 >= 0 && col0 >= 0 && rows >= 0 && cols >= 0 && row_end() <= height &&
           col_end() <= width;
  }

  friend bool operator==(const Region&, const Region&) = default;
};

/// The centred target region used throughout the paper: a target_rows x
/// target_cols rectangle centred in a height x width grid. When the margins
/// are odd the extra site goes to the bottom/right, matching integer centre
/// placement. Throws if the target does not fit.
[[nodiscard]] Region centered_region(std::int32_t height, std::int32_t width,
                                     std::int32_t target_rows, std::int32_t target_cols);

/// Square convenience overload: T x T target centred in a W x W grid.
[[nodiscard]] Region centered_square(std::int32_t grid_size, std::int32_t target_size);

}  // namespace qrm

#pragma once
/// \file schedule.hpp
/// Move representation: what the rearrangement analysis produces and what is
/// ultimately handed to the AWG.

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/coord.hpp"
#include "lattice/direction.hpp"

namespace qrm {

/// One simultaneous multi-tweezer move: every atom listed in `sites` is
/// displaced by `steps` unit moves in direction `dir`, in lockstep.
///
/// This is exactly the operation the 2D-AOD hardware supports (Sec. II-B of
/// the paper): a set of atoms moved "at the same time when they are to be
/// moved towards the same direction with the same step size".
struct ParallelMove {
  Direction dir = Direction::West;
  std::int32_t steps = 1;
  std::vector<Coord> sites;  ///< source coordinates, unique

  [[nodiscard]] std::size_t atom_count() const noexcept { return sites.size(); }
  [[nodiscard]] Coord destination(std::size_t i) const {
    return moved(sites[i], dir, steps);
  }

  friend bool operator==(const ParallelMove&, const ParallelMove&) = default;
};

/// The per-atom record emitted by the accelerator's Movement Recording unit:
/// original location, direction of travel and step count.
struct MoveRecord {
  Coord origin;
  Direction dir = Direction::West;
  std::int32_t steps = 1;

  friend bool operator==(const MoveRecord&, const MoveRecord&) = default;
};

/// Aggregate statistics of a schedule, used by benches and reports.
struct ScheduleStats {
  std::size_t parallel_moves = 0;   ///< number of AWG commands
  std::size_t atom_moves = 0;       ///< sum over moves of |sites|
  std::int64_t total_steps = 0;     ///< sum over moves of |sites| * steps
  std::int32_t max_steps = 0;       ///< largest single-move step count
  std::size_t max_parallelism = 0;  ///< largest |sites| in one move
  double mean_parallelism = 0.0;    ///< atom_moves / parallel_moves
};

/// An ordered list of parallel moves. Order matters: moves execute
/// sequentially and each is validated against the grid state it sees.
class Schedule {
 public:
  Schedule() = default;

  void push_back(ParallelMove move) { moves_.push_back(std::move(move)); }
  void append(const Schedule& other);
  void clear() noexcept { moves_.clear(); }

  [[nodiscard]] bool empty() const noexcept { return moves_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return moves_.size(); }
  [[nodiscard]] const ParallelMove& operator[](std::size_t i) const { return moves_[i]; }
  [[nodiscard]] const std::vector<ParallelMove>& moves() const noexcept { return moves_; }
  [[nodiscard]] std::vector<ParallelMove>& moves() noexcept { return moves_; }

  /// Expand to per-atom movement records (the OCM output format).
  [[nodiscard]] std::vector<MoveRecord> records() const;

  [[nodiscard]] ScheduleStats stats() const noexcept;

  /// Human-readable dump ("E x1 {(3,4),(7,2)}"), one move per line.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<ParallelMove> moves_;
};

}  // namespace qrm

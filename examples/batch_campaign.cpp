// Batch campaign: sweep grid sizes, fan shots across the worker pool, and
// emit one CSV row per (grid, worker-count) cell — the many-experiment
// workload shape that motivates qrm::batch. Pipe the output into a file to
// plot fill rate and throughput against array size:
//
//   ./build/examples/batch_campaign > campaign.csv

#include <cstdio>
#include <iostream>

#include "batch/batch_planner.hpp"
#include "batch/thread_pool.hpp"
#include "lattice/region.hpp"
#include "util/csv.hpp"

int main() {
  using namespace qrm;

  constexpr std::uint32_t kShots = 32;
  const std::uint32_t hw_workers = batch::ThreadPool::resolve_workers(0);

  CsvWriter csv(std::cout);
  csv.header({"grid", "target", "shots", "workers", "success_rate", "mean_fill_rate",
              "total_commands", "mean_rounds", "p50_plan_us", "p50_execute_us",
              "shots_per_sec", "wall_ms", "fingerprint"});

  std::vector<std::uint32_t> worker_sweep = {1u};
  if (hw_workers > 1) worker_sweep.push_back(hw_workers);

  for (const std::int32_t size : {24, 32, 48, 64}) {
    const std::int32_t target = size * 3 / 5 / 2 * 2;  // paper's ~0.6W even target
    for (const std::uint32_t workers : worker_sweep) {
      batch::BatchConfig config;
      config.plan.target = centered_square(size, target);
      config.grid_height = size;
      config.grid_width = size;
      config.fill = 0.6;
      config.shots = kShots;
      config.workers = workers;
      config.master_seed = 0xCA3BA1;
      config.loss.per_move_loss = 0.01;
      config.loss.background_loss = 0.002;
      config.max_rounds = 6;

      const batch::BatchReport report = batch::BatchPlanner(config).run();
      double rounds = 0.0;
      for (const batch::ShotResult& shot : report.shots) rounds += shot.rounds;
      rounds /= static_cast<double>(report.shots.size());

      csv.row(size, target, kShots, report.workers, report.success_rate(),
              report.mean_fill_rate(), report.total_commands(), rounds,
              report.latency(batch::BatchReport::Stage::Plan).p50,
              report.latency(batch::BatchReport::Stage::Execute).p50,
              report.shots_per_second(), report.wall_us / 1000.0, report.fingerprint());
    }
  }

  // The fingerprint column is the point of the determinism guarantee: for
  // each grid size, the 1-worker and hw-worker rows must show the same hash.
  std::fprintf(stderr, "batch_campaign: %u-worker pool, %u shots per cell\n", hw_workers,
               kShots);
  return 0;
}

// Tests for qrm::exec — the unified execution-policy layer. The core
// contract is the precedence matrix: CLI flags > campaign overrides > spec
// keys > built-in defaults, for every knob (replan, intra_plan_workers,
// workers, keep_schedules) including the tri-state plan_cache attachment,
// with "unset" layers falling through instead of clobbering. The campaign
// half of the suite pins that CampaignRunner's resolve_exec/campaign_policy
// implement exactly this stack — the behaviour the scenario_runner CLI
// flags promise.

#include <gtest/gtest.h>

#include <memory>

#include "exec/plan_cache.hpp"
#include "exec/policy.hpp"
#include "scenario/campaign.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

// ---------------------------------------------------------------------------
// resolve(): layer semantics
// ---------------------------------------------------------------------------

TEST(ExecResolve, NoLayersReturnsTheBaseUnchanged) {
  exec::ExecPolicy base;
  base.workers = 3;
  base.intra_plan_workers = 2;
  base.replan = ReplanMode::Delta;
  base.keep_schedules = true;
  const exec::ExecPolicy resolved = exec::resolve(base, {});
  EXPECT_EQ(resolved.workers, 3u);
  EXPECT_EQ(resolved.intra_plan_workers, 2u);
  EXPECT_EQ(resolved.replan, ReplanMode::Delta);
  EXPECT_TRUE(resolved.keep_schedules);
  EXPECT_EQ(resolved.plan_cache, nullptr);
}

TEST(ExecResolve, UnsetFieldsFallThroughEveryLayer) {
  exec::ExecPolicy base;
  base.workers = 7;
  base.replan = ReplanMode::Delta;
  // Two layers, each setting only one field: the untouched fields must
  // survive from the base, not reset to defaults.
  exec::ExecOverrides low;
  low.intra_plan_workers = 4;
  exec::ExecOverrides high;
  high.keep_schedules = true;
  const exec::ExecPolicy resolved = exec::resolve(base, {low, high});
  EXPECT_EQ(resolved.workers, 7u);
  EXPECT_EQ(resolved.intra_plan_workers, 4u);
  EXPECT_EQ(resolved.replan, ReplanMode::Delta);
  EXPECT_TRUE(resolved.keep_schedules);
}

TEST(ExecResolve, LaterLayersWinFieldByField) {
  // The full matrix for the scalar knobs: for each knob, a value set in the
  // high layer beats the low layer, and an unset high layer exposes the low
  // one. This is the CLI > campaign > spec ordering in miniature.
  exec::ExecOverrides low;
  low.workers = 1;
  low.intra_plan_workers = 1;
  low.replan = ReplanMode::Scratch;
  low.keep_schedules = false;

  exec::ExecOverrides high;
  high.workers = 8;
  high.intra_plan_workers = 6;
  high.replan = ReplanMode::Delta;
  high.keep_schedules = true;

  const exec::ExecPolicy both = exec::resolve({}, {low, high});
  EXPECT_EQ(both.workers, 8u);
  EXPECT_EQ(both.intra_plan_workers, 6u);
  EXPECT_EQ(both.replan, ReplanMode::Delta);
  EXPECT_TRUE(both.keep_schedules);

  const exec::ExecPolicy low_only = exec::resolve({}, {low, exec::ExecOverrides{}});
  EXPECT_EQ(low_only.workers, 1u);
  EXPECT_EQ(low_only.intra_plan_workers, 1u);
  EXPECT_EQ(low_only.replan, ReplanMode::Scratch);
  EXPECT_FALSE(low_only.keep_schedules);
}

TEST(ExecResolve, ZeroIsAValueNotUnset) {
  // The old `-1` sentinel scheme could not express "force the default";
  // std::optional can. An explicit 0 in a high layer must override a lower
  // layer's nonzero value.
  exec::ExecOverrides low;
  low.intra_plan_workers = 4;
  exec::ExecOverrides high;
  high.intra_plan_workers = 0;
  const exec::ExecPolicy resolved = exec::resolve({}, {low, high});
  EXPECT_EQ(resolved.intra_plan_workers, 0u);
}

// ---------------------------------------------------------------------------
// resolve(): the tri-state plan_cache attachment
// ---------------------------------------------------------------------------

TEST(ExecResolve, PlanCacheTrueAttachesAFreshCacheWhenBaseHasNone) {
  exec::ExecOverrides layer;
  layer.plan_cache = true;
  const exec::ExecPolicy resolved = exec::resolve({}, {layer});
  ASSERT_NE(resolved.plan_cache, nullptr);
  EXPECT_EQ(resolved.plan_cache->stats().hits, 0u);
}

TEST(ExecResolve, PlanCacheTrueKeepsAnAlreadyAttachedCache) {
  // The cross-shard warm-cache mode: a cache attached to the base must
  // survive a true resolution (same pointer, not a fresh cache).
  exec::ExecPolicy base;
  base.plan_cache = std::make_shared<exec::PlanCache>();
  exec::ExecOverrides layer;
  layer.plan_cache = true;
  const exec::ExecPolicy resolved = exec::resolve(base, {layer});
  EXPECT_EQ(resolved.plan_cache, base.plan_cache);
}

TEST(ExecResolve, PlanCacheFalseDetachesAndUnsetKeeps) {
  exec::ExecPolicy base;
  base.plan_cache = std::make_shared<exec::PlanCache>();

  exec::ExecOverrides off;
  off.plan_cache = false;
  EXPECT_EQ(exec::resolve(base, {off}).plan_cache, nullptr);

  EXPECT_EQ(exec::resolve(base, {exec::ExecOverrides{}}).plan_cache, base.plan_cache)
      << "an unset layer must not detach the base cache";
}

TEST(ExecResolve, PlanCacheLastLayerWins) {
  // true-then-false detaches; false-then-true attaches. Only the final
  // resolution matters — intermediate layers never materialise a cache.
  exec::ExecOverrides on;
  on.plan_cache = true;
  exec::ExecOverrides off;
  off.plan_cache = false;
  EXPECT_EQ(exec::resolve({}, {on, off}).plan_cache, nullptr);
  EXPECT_NE(exec::resolve({}, {off, on}).plan_cache, nullptr);
}

// ---------------------------------------------------------------------------
// Campaign stack: CLI > campaign > spec > default
// ---------------------------------------------------------------------------

scenario::ScenarioSpec exec_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "exec-test";
  spec.grid_height = spec.grid_width = 16;
  spec.target_rows = spec.target_cols = 8;
  spec.shots = 2;
  return spec;
}

TEST(ExecCampaignStack, DefaultsApplyWhenEveryLayerIsSilent) {
  scenario::CampaignConfig config;
  config.overrides = {};  // strip the campaign's plan_cache=true default
  const exec::ExecPolicy policy = scenario::resolve_exec(config, exec_spec());
  EXPECT_EQ(policy.workers, 0u);
  EXPECT_EQ(policy.intra_plan_workers, 0u);
  EXPECT_EQ(policy.replan, ReplanMode::Scratch);
  EXPECT_EQ(policy.plan_cache, nullptr);
  EXPECT_FALSE(policy.keep_schedules);
}

TEST(ExecCampaignStack, SpecKeysBeatDefaults) {
  scenario::ScenarioSpec spec = exec_spec();
  spec.intra_plan_workers = 3;
  spec.replan = ReplanMode::Delta;
  const exec::ExecPolicy policy = scenario::resolve_exec({}, spec);
  EXPECT_EQ(policy.intra_plan_workers, 3u);
  EXPECT_EQ(policy.replan, ReplanMode::Delta);
}

TEST(ExecCampaignStack, CampaignOverridesBeatSpecKeys) {
  scenario::ScenarioSpec spec = exec_spec();
  spec.intra_plan_workers = 3;
  spec.replan = ReplanMode::Delta;

  scenario::CampaignConfig config;
  config.overrides.intra_plan_workers = 0;  // force sequential over the spec
  config.overrides.replan = ReplanMode::Scratch;
  const exec::ExecPolicy policy = scenario::resolve_exec(config, spec);
  EXPECT_EQ(policy.intra_plan_workers, 0u);
  EXPECT_EQ(policy.replan, ReplanMode::Scratch);
}

TEST(ExecCampaignStack, CliBeatsCampaignAndSpec) {
  scenario::ScenarioSpec spec = exec_spec();
  spec.intra_plan_workers = 3;
  spec.replan = ReplanMode::Scratch;

  scenario::CampaignConfig config;
  config.overrides.intra_plan_workers = 1;
  config.overrides.replan = ReplanMode::Scratch;
  config.overrides.plan_cache = false;
  config.cli.intra_plan_workers = 5;
  config.cli.replan = ReplanMode::Delta;
  config.cli.plan_cache = true;

  const exec::ExecPolicy policy = scenario::resolve_exec(config, spec);
  EXPECT_EQ(policy.intra_plan_workers, 5u);
  EXPECT_EQ(policy.replan, ReplanMode::Delta);
  EXPECT_NE(policy.plan_cache, nullptr);
}

TEST(ExecCampaignStack, UnsetCliExposesCampaignThenSpec) {
  scenario::ScenarioSpec spec = exec_spec();
  spec.intra_plan_workers = 3;
  spec.replan = ReplanMode::Delta;

  scenario::CampaignConfig config;
  config.overrides.intra_plan_workers = 2;  // campaign set, CLI silent
  // replan: campaign and CLI both silent -> the spec's Delta shows through.
  const exec::ExecPolicy policy = scenario::resolve_exec(config, spec);
  EXPECT_EQ(policy.intra_plan_workers, 2u);
  EXPECT_EQ(policy.replan, ReplanMode::Delta);
}

TEST(ExecCampaignStack, PlanCacheDefaultsOnAndCliTurnsItOff) {
  // CampaignConfig ships overrides.plan_cache = true; `--plan-cache off`
  // writes cli.plan_cache = false and must win.
  scenario::CampaignConfig config;
  EXPECT_NE(scenario::campaign_policy(config).plan_cache, nullptr);
  config.cli.plan_cache = false;
  EXPECT_EQ(scenario::campaign_policy(config).plan_cache, nullptr);
}

TEST(ExecCampaignStack, CampaignPolicyIgnoresSpecKeys) {
  // campaign_policy resolves the campaign-scope policy only; per-spec keys
  // enter via resolve_exec. A campaign whose specs ask for Delta still has
  // a Scratch campaign policy.
  scenario::CampaignConfig config;
  const exec::ExecPolicy policy = scenario::campaign_policy(config);
  EXPECT_EQ(policy.replan, ReplanMode::Scratch);
  EXPECT_EQ(policy.intra_plan_workers, 0u);
}

// ---------------------------------------------------------------------------
// RNG stream derivation helpers
// ---------------------------------------------------------------------------

TEST(ExecSeeds, HelpersMatchTheRawDerivationSchema) {
  // The helpers are the single home of the seed-stream schema; they must
  // equal the raw derive_seed calls the pre-exec layers hard-coded, or the
  // golden corpus (which pins the derived byte values) would drift.
  EXPECT_EQ(exec::shot_seed(0x5EED, 7), derive_seed(0x5EED, 7));
  EXPECT_EQ(exec::imaging_seed(exec::shot_seed(0x5EED, 7)),
            derive_seed(exec::shot_seed(0x5EED, 7), exec::kImagingStream));
  EXPECT_EQ(exec::loss_master_seed(42), derive_seed(42, exec::kLossDomain));
  EXPECT_NE(exec::shot_seed(1, 0), exec::shot_seed(1, 1));
  EXPECT_NE(exec::loss_master_seed(1), exec::shot_seed(1, 0))
      << "loss stream must be domain-separated from the loading stream";
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file registry.hpp
/// Built-in named scenarios: the workload families every evaluation binary
/// previously hard-coded, now addressable by name from the CLI, tests and
/// CI. Spans all five loader families, both control architectures, and the
/// paper's own workload (`paper-fig7`). Scenarios tagged "smoke" are sized
/// to finish in seconds and drive the CI scenario-smoke job.

#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace qrm::scenario {

/// All built-in scenarios, in presentation order. Every entry validates.
[[nodiscard]] const std::vector<ScenarioSpec>& registry();

/// Look up one built-in scenario. Throws PreconditionError for unknown
/// names, listing the registry so typos are self-diagnosing.
[[nodiscard]] const ScenarioSpec& find_scenario(const std::string& name);

/// Registry subset matching a campaign filter (see
/// ScenarioSpec::matches_filter); empty filter returns everything.
[[nodiscard]] std::vector<ScenarioSpec> filter_registry(const std::string& filter);

}  // namespace qrm::scenario

#pragma once
/// \file config.hpp
/// Configuration and result types of the QRM planner.

#include <cstdint>
#include <memory>
#include <vector>

#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "moves/dead_channels.hpp"
#include "moves/realizer.hpp"
#include "moves/schedule.hpp"

namespace qrm {

class ThreadPool;

/// Per-quadrant scheduling strategy.
enum class PlanMode : std::uint8_t {
  /// Paper-literal iterated row-wise/column-wise inward compaction — exactly
  /// what the described Shift Kernel computes. Fills the target only when
  /// the post-compaction Young-diagram occupancy covers it (small targets or
  /// high fill); see DESIGN.md for the analysis.
  Compact,
  /// Demand-balanced assignment (one row-scan balance pass) followed by
  /// column compaction. Guaranteed to fill whenever each quadrant holds
  /// enough reachable atoms. Default, and what the 30x30-from-50x50
  /// experiment requires.
  Balanced,
};

[[nodiscard]] constexpr const char* to_cstring(PlanMode m) noexcept {
  return m == PlanMode::Compact ? "compact" : "balanced";
}

/// How the rearrangement loop replans between rounds.
enum class ReplanMode : std::uint8_t {
  /// Plan every round from scratch (the default, and the reference
  /// behaviour delta mode is pinned against).
  Scratch,
  /// Incremental: diff the round's grid against the previous plan's input,
  /// reuse cached quadrant-kernel outputs for quadrants the diff never
  /// touches, and recompute only dirty ones. Bit-identical to Scratch by
  /// construction (see core/delta_planner.hpp), so the knob never enters
  /// plan fingerprints or cache keys.
  Delta,
};

[[nodiscard]] constexpr const char* to_cstring(ReplanMode m) noexcept {
  return m == ReplanMode::Scratch ? "scratch" : "delta";
}

struct QrmConfig {
  /// Global target region; must be even-sized and centred so each quadrant
  /// owns exactly one quarter of it.
  Region target;
  PlanMode mode = PlanMode::Balanced;
  /// Compact-mode iteration cap (one iteration = one H pass + one V pass).
  /// The paper reports four iterations for its 50x50 experiment.
  std::int32_t max_iterations = 4;
  /// Merge the four quadrants' shift commands into shared global rounds
  /// (paper Sec. IV-C: NW+SW west-side shifts and NE+SE east-side shifts
  /// execute as single commands). Disable to study the ablation.
  bool merge_quadrants = true;
  /// Split every round into AOD-legal sub-moves (cross-product rule).
  bool aod_legalize = true;
  /// The kernel's manual shift-enable gate: local positions >= sen_limit
  /// never shift ("prevent unnecessary shifts far from the center").
  /// Negative disables gating.
  std::int32_t sen_limit = -1;
  /// Dead AOD channels the plan must route around: planners mask these
  /// lines out of their input (frozen atoms are invisible), and the
  /// realizer hops shift commands across them (moves/dead_channels.hpp).
  /// A planner axis like every field above — it changes plan output, so it
  /// enters PlanCache::config_key.
  DeadChannelMask dead_channels;
};

/// How one plan's quadrant work fans out — mechanism, not identity. Every
/// QrmConfig field above is a planner axis that can change a plan's output;
/// these two cannot (the quadrants are data-independent and their results
/// merge in a fixed order, so any worker count produces bit-identical
/// plans). Keeping them out of QrmConfig is what lets PlanCache keys and
/// spec serialization ignore execution policy by construction. The policy
/// layer (exec::ExecPolicy::plan_parallelism()) is the usual source of a
/// value; planners accept one alongside their config.
struct PlanParallelism {
  /// Fan each pass's four quadrant kernels (and the per-quadrant lowering
  /// in PassDriver::apply()) across this many workers. 0 = strictly
  /// sequential (the default).
  std::uint32_t workers = 0;
  /// Pool the quadrant tasks run on when workers > 0. Layers that already
  /// own a pool (BatchPlanner, CampaignRunner) share it here so shot-level
  /// and quadrant-level work draw from one budget; when left null,
  /// QrmPlanner::plan spins up a transient pool per call.
  std::shared_ptr<ThreadPool> pool;
};

/// What one line-scan pass over the quadrants did (used by the cycle model
/// to account hardware time pass-by-pass).
struct PassInfo {
  Axis axis = Axis::Rows;
  std::size_t lines_with_motion = 0;  ///< line assignments emitted
  std::size_t unit_rounds = 0;        ///< single-step shift rounds executed
  std::size_t atoms_moved = 0;

  friend bool operator==(const PassInfo&, const PassInfo&) = default;
};

/// Wall-clock breakdown of one plan's serial-vs-parallel structure:
/// pass_compute is the quadrant-kernel work next() fans out, merge is the
/// cross-quadrant assignment stitching, realize is the schedule lowering
/// that advances the grid. Measurement only — never part of a plan's
/// identity (see PlanStats::operator==).
struct PhaseTimers {
  double pass_compute_us = 0.0;
  double merge_us = 0.0;
  double realize_us = 0.0;
};

struct PlanStats {
  std::int32_t iterations = 0;  ///< compact iterations used (balanced: 1)
  bool target_filled = false;
  std::int64_t defects_remaining = 0;
  bool feasible = true;  ///< balanced mode: demand was satisfiable
  std::vector<PassInfo> passes;
  PhaseTimers timers;  ///< excluded from equality: timing is not outcome

  /// Outcome equality: every deterministic field, timers excluded — this is
  /// what "a cache hit is indistinguishable from a cold plan" and "parallel
  /// plans are bit-identical to sequential" are measured with.
  friend bool operator==(const PlanStats& a, const PlanStats& b) noexcept {
    return a.iterations == b.iterations && a.target_filled == b.target_filled &&
           a.defects_remaining == b.defects_remaining && a.feasible == b.feasible &&
           a.passes == b.passes;
  }
};

struct PlanResult {
  Schedule schedule;
  OccupancyGrid final_grid;
  PlanStats stats;

  /// Bit-level equality over every field — what "a cache hit is
  /// indistinguishable from a cold plan" means (exec::PlanCache).
  friend bool operator==(const PlanResult&, const PlanResult&) = default;
};

}  // namespace qrm

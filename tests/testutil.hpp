#pragma once
/// \file testutil.hpp
/// Shared fixtures and assertion helpers for the test suites. Everything
/// here used to be copy-pasted per test file; keep additions generic.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/config.hpp"
#include "lattice/grid.hpp"
#include "loading/loader.hpp"
#include "moves/executor.hpp"
#include "moves/schedule.hpp"

namespace qrm::testutil {

/// Bernoulli-loaded grid with an explicit seed; the standard workload of
/// the suites (same distribution the paper evaluates on).
[[nodiscard]] inline OccupancyGrid seeded_grid(std::int32_t height, std::int32_t width,
                                               double fill, std::uint64_t seed) {
  return load_random(height, width, {fill, seed});
}

/// Replay `schedule` from `initial` under full physical checks (including
/// the AOD cross-product rule) and assert it is legal and lands exactly on
/// `expected`, conserving atoms.
inline void expect_replays_to(const OccupancyGrid& initial, const Schedule& schedule,
                              const OccupancyGrid& expected) {
  OccupancyGrid replay = initial;
  const ExecutionReport report = run_schedule(replay, schedule, {.check_aod = true});
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(replay, expected);
  EXPECT_EQ(replay.atom_count(), initial.atom_count()) << "atoms must be conserved";
}

/// Schedule-replay assertion for a full planner result: the schedule must
/// replay legally from `initial` onto the planner's own predicted grid.
inline void expect_plan_valid(const OccupancyGrid& initial, const PlanResult& result) {
  expect_replays_to(initial, result.schedule, result.final_grid);
}

}  // namespace qrm::testutil

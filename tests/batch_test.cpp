// Tests for the qrm::batch subsystem: the shared qrm::ThreadPool substrate
// (util/thread_pool.hpp) and the BatchPlanner's hard determinism guarantee —
// identical outcomes for any worker count — plus the
// ControlSystem::run_batch entry point.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"
#include "batch/batch_planner.hpp"
#include "util/thread_pool.hpp"
#include "lattice/region.hpp"
#include "loading/loader.hpp"
#include "runtime/control_system.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, WorkerCountIsFixedAndResolved) {
  const ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  EXPECT_GE(ThreadPool::resolve_workers(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_workers(7), 7u);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnceInAnyOrder) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<int> seen;
  std::vector<std::future<void>> done;
  for (int i = 0; i < 200; ++i) {
    done.push_back(pool.submit([i, &mutex, &seen] {
      const std::lock_guard<std::mutex> lock(mutex);
      const bool inserted = seen.insert(i).second;
      ASSERT_TRUE(inserted) << "task " << i << " ran twice";
    }));
  }
  for (auto& future : done) future.get();
  EXPECT_EQ(seen.size(), 200u);  // every task ran, order irrelevant
}

TEST(ThreadPool, SubmitReturnsTaskValueThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureAndWorkerSurvives) {
  ThreadPool pool(1);
  auto failing = pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(
      {
        try {
          (void)failing.get();
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
  // The worker that threw must still serve subsequent tasks.
  auto after = pool.submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasksWithoutDeadlock) {
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> executed{0};
  std::vector<std::future<void>> done;
  {
    ThreadPool pool(1);
    // First task blocks the only worker so the rest stay queued...
    done.push_back(pool.submit([open] { open.wait(); }));
    for (int i = 0; i < 50; ++i) {
      done.push_back(pool.submit([&executed] { ++executed; }));
    }
    EXPECT_GT(pool.pending(), 0u);
    gate.set_value();
    // ...and the destructor must let all 50 queued tasks finish.
  }
  for (auto& future : done) future.get();
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, RunAllCompletesNestedFanOutFromAPoolTask) {
  // Self-claiming fork-join: run_all called from *inside* a pool task must
  // make progress even when the only worker is the caller itself. 1 worker,
  // two nesting levels — a blocking join would deadlock (and trip the ctest
  // TIMEOUT); the self-claiming caller drains its own fan-out.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  auto outer = pool.submit([&] {
    std::vector<std::function<void()>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back([&] {
        std::vector<std::function<void()>> leaf;
        for (int j = 0; j < 4; ++j) leaf.push_back([&executed] { ++executed; });
        pool.run_all(std::move(leaf));
      });
    }
    pool.run_all(std::move(inner));
  });
  outer.get();
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPool, RunAllRunsEveryTaskAndRethrowsTheFirstException) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> executed{0};
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i, &executed] {
      ++executed;
      if (i == 5) throw std::runtime_error("fan-out boom");
    });
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(executed.load(), 16) << "a throwing task must not abandon its siblings";
}

// ---------------------------------------------------------------------------
// Seed splitting
// ---------------------------------------------------------------------------

TEST(SeedSplitting, LossModelDeriveGivesIndependentReproducibleStreams) {
  const rt::LossModel master{.per_move_loss = 0.01, .background_loss = 0.002, .seed = 99};
  const rt::LossModel shot0 = master.derive(0);
  const rt::LossModel shot1 = master.derive(1);
  EXPECT_EQ(shot0.seed, master.derive(0).seed) << "derivation must be reproducible";
  EXPECT_NE(shot0.seed, shot1.seed) << "shots must draw distinct streams";
  EXPECT_NE(shot0.seed, master.seed) << "derived stream must not alias the master";
  // Physics parameters ride along unchanged.
  EXPECT_DOUBLE_EQ(shot0.per_move_loss, master.per_move_loss);
  EXPECT_DOUBLE_EQ(shot0.background_loss, master.background_loss);
}

TEST(SeedSplitting, LoopShotIndexSelectsTheStream) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 31});
  rt::LoopConfig config;
  config.plan.target = centered_square(20, 12);
  config.loss.per_move_loss = 0.05;
  config.shot_index = 0;
  const rt::LoopReport shot0 = rt::run_rearrangement_loop(initial, config);
  config.shot_index = 1;
  const rt::LoopReport shot1 = rt::run_rearrangement_loop(initial, config);
  config.shot_index = 0;
  const rt::LoopReport shot0_again = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(shot0.final_grid, shot0_again.final_grid);
  EXPECT_EQ(shot0.total_atoms_lost, shot0_again.total_atoms_lost);
  // Different streams virtually always lose different atoms here (the loop
  // executes hundreds of Bernoulli draws at p=0.05).
  EXPECT_NE(shot0.final_grid, shot1.final_grid);
}

// ---------------------------------------------------------------------------
// BatchPlanner determinism
// ---------------------------------------------------------------------------

batch::BatchConfig small_batch(std::uint32_t shots, std::uint32_t workers) {
  batch::BatchConfig config;
  config.plan.target = centered_square(24, 14);
  config.grid_height = 24;
  config.grid_width = 24;
  config.fill = 0.6;
  config.shots = shots;
  config.exec.workers = workers;
  config.master_seed = 0xBA7C4;
  config.loss.per_move_loss = 0.02;
  config.exec.keep_schedules = true;
  return config;
}

void expect_same_outcomes(const batch::BatchReport& a, const batch::BatchReport& b) {
  ASSERT_EQ(a.shots.size(), b.shots.size());
  for (std::size_t i = 0; i < a.shots.size(); ++i) {
    const batch::ShotResult& lhs = a.shots[i];
    const batch::ShotResult& rhs = b.shots[i];
    EXPECT_EQ(lhs.shot, rhs.shot);
    EXPECT_EQ(lhs.seed, rhs.seed);
    EXPECT_EQ(lhs.planned_input, rhs.planned_input) << "shot " << i;
    EXPECT_EQ(lhs.final_grid, rhs.final_grid) << "shot " << i;
    EXPECT_EQ(lhs.schedules, rhs.schedules) << "shot " << i;
    EXPECT_EQ(lhs.success, rhs.success);
    EXPECT_EQ(lhs.rounds, rhs.rounds);
    EXPECT_EQ(lhs.commands, rhs.commands);
    EXPECT_EQ(lhs.atoms_lost, rhs.atoms_lost);
    EXPECT_EQ(lhs.defects_remaining, rhs.defects_remaining);
    EXPECT_DOUBLE_EQ(lhs.fill_rate, rhs.fill_rate);
  }
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(BatchPlanner, OneWorkerAndEightWorkersAreBitIdentical) {
  const batch::BatchReport serial = batch::BatchPlanner(small_batch(12, 1)).run();
  const batch::BatchReport pooled = batch::BatchPlanner(small_batch(12, 8)).run();
  EXPECT_EQ(serial.workers, 1u);
  EXPECT_EQ(pooled.workers, 8u);
  expect_same_outcomes(serial, pooled);
}

TEST(BatchPlanner, StressShotsFarExceedWorkers) {
  batch::BatchConfig config = small_batch(96, 4);
  config.plan.target = centered_square(16, 8);
  config.grid_height = 16;
  config.grid_width = 16;
  config.max_rounds = 4;
  config.exec.keep_schedules = false;
  const batch::BatchPlanner planner(config);
  const batch::BatchReport pooled = planner.run();
  ASSERT_EQ(pooled.shots.size(), 96u);
  // Every slot must hold its own shot's answer — cross-checked against the
  // same shot computed serially, and seeds must be the derived streams.
  for (std::uint32_t i = 0; i < 96; i += 17) {
    const batch::ShotResult lone = planner.run_shot(i, nullptr);
    EXPECT_EQ(pooled.shots[i].seed, derive_seed(config.master_seed, i));
    EXPECT_EQ(pooled.shots[i].final_grid, lone.final_grid) << "shot " << i;
    EXPECT_EQ(pooled.shots[i].atoms_lost, lone.atoms_lost) << "shot " << i;
  }
}

TEST(BatchPlanner, NestedShotAndQuadrantParallelismStressStaysBitIdentical) {
  // Nested stress for the pool-sharing arbitration: shots far exceed the
  // workers while every shot fans quadrant tasks back onto the same pool.
  // One budget, no oversubscription, and outcomes bit-identical to the run
  // with intra-plan parallelism off — including on a 1-worker pool, where
  // only the self-claiming run_all keeps the nesting deadlock-free.
  const batch::BatchReport plain = batch::BatchPlanner(small_batch(24, 2)).run();
  for (const std::uint32_t workers : {1u, 2u}) {
    batch::BatchConfig config = small_batch(24, workers);
    config.exec.intra_plan_workers = 4;
    expect_same_outcomes(batch::BatchPlanner(config).run(), plain);
  }
}

TEST(BatchPlanner, EveryScheduleReplaysOntoItsRoundWhenLossless) {
  batch::BatchConfig config = small_batch(6, 3);
  config.loss = {.per_move_loss = 0.0, .background_loss = 0.0};
  config.max_rounds = 1;
  const batch::BatchReport report = batch::BatchPlanner(config).run();
  for (const batch::ShotResult& shot : report.shots) {
    ASSERT_EQ(shot.schedules.size(), 1u);
    testutil::expect_replays_to(shot.planned_input, shot.schedules.front(), shot.final_grid);
    EXPECT_TRUE(shot.success);
    EXPECT_DOUBLE_EQ(shot.fill_rate, 1.0);
  }
}

TEST(BatchPlanner, CapturedGridsRunOneShotEach) {
  std::vector<OccupancyGrid> captured;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    captured.push_back(load_random(24, 24, {0.6, seed}));
  }
  batch::BatchConfig config = small_batch(1, 2);
  const batch::BatchReport report = batch::BatchPlanner(config).run(captured);
  ASSERT_EQ(report.shots.size(), 5u);
  for (std::size_t i = 0; i < captured.size(); ++i) {
    EXPECT_EQ(report.shots[i].planned_input, captured[i]);
  }
}

TEST(BatchPlanner, BaselineAlgorithmsBatchBehindTheSameInterface) {
  batch::BatchConfig config = small_batch(4, 2);
  config.algorithm = "tetris";
  config.loss = {.per_move_loss = 0.0, .background_loss = 0.0};
  const batch::BatchReport one = batch::BatchPlanner(config).run();
  config.exec.workers = 4;
  const batch::BatchReport four = batch::BatchPlanner(config).run();
  for (const batch::ShotResult& shot : one.shots) {
    EXPECT_TRUE(shot.success);
    EXPECT_GT(shot.commands, 0u);
  }
  expect_same_outcomes(one, four);
}

TEST(BatchPlanner, ImagedDetectionReportsFidelityPerShot) {
  batch::BatchConfig config = small_batch(3, 2);
  config.imaged_detection = true;
  config.imaging.photons_per_atom = 400.0;  // high SNR: detection is exact
  config.imaging.background_photons = 1.0;
  const batch::BatchReport report = batch::BatchPlanner(config).run();
  for (const batch::ShotResult& shot : report.shots) {
    EXPECT_EQ(shot.detection_errors.total(), 0);
    EXPECT_GT(shot.detect_us, 0.0);
  }
  // Determinism must hold across worker counts with photon noise in play.
  config.exec.workers = 8;
  expect_same_outcomes(report, batch::BatchPlanner(config).run());
}

TEST(BatchPlanner, AggregatesMatchTheShotTable) {
  const batch::BatchReport report = batch::BatchPlanner(small_batch(10, 4)).run();
  double fill_sum = 0.0;
  std::size_t commands = 0;
  std::size_t successes = 0;
  for (const batch::ShotResult& shot : report.shots) {
    fill_sum += shot.fill_rate;
    commands += shot.commands;
    successes += shot.success ? 1 : 0;
  }
  EXPECT_DOUBLE_EQ(report.mean_fill_rate(), fill_sum / 10.0);
  EXPECT_EQ(report.total_commands(), commands);
  EXPECT_DOUBLE_EQ(report.success_rate(), static_cast<double>(successes) / 10.0);
  EXPECT_GT(report.wall_us, 0.0);
  EXPECT_GT(report.shots_per_second(), 0.0);
  const batch::LatencySummary plan = report.latency(batch::BatchReport::Stage::Plan);
  EXPECT_GT(plan.mean, 0.0);
  EXPECT_LE(plan.p50, plan.max);
}

TEST(BatchPlanner, RejectsBadConfigs) {
  batch::BatchConfig config = small_batch(4, 1);
  config.shots = 0;
  EXPECT_THROW((void)batch::BatchPlanner(config), PreconditionError);
  config = small_batch(4, 1);
  config.algorithm = "no-such-planner";
  EXPECT_THROW((void)batch::BatchPlanner(config), PreconditionError);
  config = small_batch(4, 1);
  config.fill = 1.5;
  EXPECT_THROW((void)batch::BatchPlanner(config), PreconditionError);
  config = small_batch(4, 1);
  config.loss.per_move_loss = 1.5;
  EXPECT_THROW((void)batch::BatchPlanner(config), PreconditionError);
  config = small_batch(4, 1);
  config.grid_height = 0;
  EXPECT_THROW((void)batch::BatchPlanner(config).run(), PreconditionError);
  EXPECT_THROW((void)batch::BatchPlanner(config).run({}), PreconditionError);
}

// ---------------------------------------------------------------------------
// ControlSystem entry point
// ---------------------------------------------------------------------------

TEST(ControlSystemBatch, RunBatchUsesTheSystemPlanAndStaysDeterministic) {
  rt::SystemConfig system;
  system.accelerator.plan.target = centered_square(24, 14);
  const rt::ControlSystem control(system);

  batch::BatchConfig request;
  request.plan.target = centered_square(8, 4);  // overridden by the system's plan
  request.grid_height = 24;
  request.grid_width = 24;
  request.fill = 0.6;
  request.shots = 6;
  request.exec.workers = 2;
  const batch::BatchReport a = control.run_batch(request);
  ASSERT_EQ(a.shots.size(), 6u);
  for (const batch::ShotResult& shot : a.shots) {
    // The system's 14x14 target governs: a filled shot holds exactly 196
    // target atoms, which the request's 4x4 target could never require.
    EXPECT_EQ(shot.defects_remaining,
              196 - shot.final_grid.atom_count(system.accelerator.plan.target));
  }
  request.exec.workers = 5;
  const batch::BatchReport b = control.run_batch(request);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace qrm

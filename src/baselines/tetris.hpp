#pragma once
/// \file tetris.hpp
/// Reconstruction of the "Tetris" rearrangement algorithm of Wang et al.,
/// Phys. Rev. Applied 19, 054032 (2023): balanced compression of the whole
/// array with maximally parallel multi-tweezer moves.
///
/// Structure reproduced: one global balance analysis (per-row donor
/// assignment to target columns) followed by column compression onto the
/// target band, lowered to parallel lockstep move rounds. Unlike QRM there
/// is no quadrant decomposition and no bit-parallel scanning; the analysis
/// walks the full array with general-purpose data structures, which is why
/// its CPU latency sits above QRM's in Fig. 7(b).

#include "baselines/algorithm.hpp"

namespace qrm::baselines {

class TetrisAlgorithm final : public RearrangementAlgorithm {
 public:
  explicit TetrisAlgorithm(AlgorithmOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "tetris"; }
  [[nodiscard]] std::string description() const override {
    return "Tetris (Wang'23): global balanced compression, max-parallel moves";
  }
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial,
                                const Region& target) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace qrm::baselines

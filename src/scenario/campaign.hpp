#pragma once
/// \file campaign.hpp
/// CampaignRunner: fan a scenario matrix through qrm::batch and aggregate
/// per-scenario results into a CSV/JSON report.
///
/// Determinism guarantee, inherited from BatchPlanner and extended across
/// scenarios: every outcome field of a CampaignReport — per-shot grids,
/// counts, rates, per-scenario fingerprints, and the campaign fingerprint —
/// is bit-identical for any worker count. Only wall-clock fields (`*_us`,
/// `wall_us`, shots/sec) vary run to run; they are excluded from every
/// fingerprint.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "batch/batch_planner.hpp"
#include "scenario/spec.hpp"

namespace qrm::scenario {

struct CampaignConfig {
  std::uint32_t workers = 0;    ///< batch pool size; 0 -> hardware_concurrency
  std::string filter;           ///< scenario name-substring / tag filter
  bool keep_schedules = false;  ///< retain per-round schedules per shot
};

/// One scenario's batch outcome plus its SortedSample aggregation.
struct ScenarioOutcome {
  ScenarioSpec spec;
  batch::BatchReport batch;

  // Deterministic aggregates.
  double mean_rounds = 0.0;
  double p90_rounds = 0.0;
  double p50_commands = 0.0;
  double p90_commands = 0.0;
  /// Deterministic per-shot control-path overhead of the spec's
  /// architecture (Fig. 2 structural model): host-mediated pays the camera
  /// frame and the move list crossing the host link every round;
  /// FPGA-integrated pays only streaming detection cycles. Computed from
  /// the link/clock constants of runtime/control_system.hpp and the
  /// scenario's own mean rounds / commands, so it is reproducible and
  /// worker-count independent (unlike the measured `*_us` columns).
  double arch_overhead_us = 0.0;

  // Wall-clock aggregates (measurement, excluded from fingerprints).
  double p50_plan_us = 0.0;
  double p90_plan_us = 0.0;
  double p50_execute_us = 0.0;

  /// FNV-1a over the serialized spec and the batch outcome fingerprint.
  std::uint64_t fingerprint = 0;
};

struct CampaignReport {
  std::vector<ScenarioOutcome> scenarios;
  std::uint32_t workers = 0;  ///< pool size actually used per batch
  double wall_us = 0.0;       ///< end-to-end campaign wall time

  /// Order-sensitive combination of the per-scenario fingerprints. Two
  /// campaigns over the same scenario list must agree here regardless of
  /// worker count.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// The exact BatchConfig a scenario runs as. Exposed so tests (and anyone
/// porting a hand-coded sweep binary) can prove the scenario path is
/// bit-identical to driving BatchPlanner directly.
[[nodiscard]] batch::BatchConfig to_batch_config(const ScenarioSpec& spec, std::uint32_t workers,
                                                 bool keep_schedules = false);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

  /// Run one scenario (validated first; the config filter is not applied).
  [[nodiscard]] ScenarioOutcome run_one(const ScenarioSpec& spec) const;

  /// Run every scenario matching the config filter, in order. Throws
  /// PreconditionError when the filter matches nothing — a silently empty
  /// campaign would read as a green CI run.
  [[nodiscard]] CampaignReport run(const std::vector<ScenarioSpec>& specs) const;

 private:
  CampaignConfig config_;
};

/// One CSV row per scenario (see implementation for the column list).
void write_csv(const CampaignReport& report, std::ostream& out);

/// The same content as a JSON document, for tooling that wants structure.
void write_json(const CampaignReport& report, std::ostream& out);

}  // namespace qrm::scenario

#include "lattice/grid.hpp"

#include <array>
#include <bit>
#include <sstream>

#include "util/assert.hpp"

namespace qrm {

namespace {

using Word = BitRow::Word;
constexpr std::uint32_t kWordBits = BitRow::kWordBits;

/// In-place transpose of a 64x64 bit block stored LSB-first (bit c of a[r] is
/// element (r, c)). Recursive block-swap (Hacker's Delight 7-3) adapted to
/// the LSB-first convention: at scale j, element (r, c) with r&j == 0 and
/// c&j != 0 swaps with element (r|j, c^j).
void transpose64(std::array<Word, 64>& a) noexcept {
  static constexpr std::array<Word, 6> kMask = {
      0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
      0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
  };
  for (std::uint32_t level = 6; level-- > 0;) {
    const std::uint32_t j = 1U << level;
    const Word m = kMask[level];
    for (std::uint32_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const Word t = (a[k] ^ (a[k | j] << j)) & m;
      a[k] ^= t;
      a[k | j] ^= t >> j;
    }
  }
}

}  // namespace

OccupancyGrid::OccupancyGrid(std::int32_t height, std::int32_t width)
    : height_(height), width_(width) {
  QRM_EXPECTS(height >= 0 && width >= 0);
  rows_.assign(static_cast<std::size_t>(height), BitRow(static_cast<std::uint32_t>(width)));
}

OccupancyGrid OccupancyGrid::from_strings(const std::vector<std::string>& lines) {
  if (lines.empty()) return {};
  OccupancyGrid g(static_cast<std::int32_t>(lines.size()),
                  static_cast<std::int32_t>(lines.front().size()));
  for (std::size_t r = 0; r < lines.size(); ++r) {
    QRM_EXPECTS_MSG(lines[r].size() == lines.front().size(), "ragged grid literal");
    g.rows_[r] = BitRow::from_string(lines[r]);
  }
  return g;
}

std::int64_t OccupancyGrid::atom_count() const noexcept {
  std::int64_t n = 0;
  for (const auto& r : rows_) n += r.count();
  return n;
}

std::int64_t OccupancyGrid::atom_count(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  std::int64_t n = 0;
  for (std::int32_t r = region.row0; r < region.row_end(); ++r) {
    n += rows_[static_cast<std::size_t>(r)].count_range(static_cast<std::uint32_t>(region.col0),
                                                        static_cast<std::uint32_t>(region.col_end()));
  }
  return n;
}

bool OccupancyGrid::region_full(const Region& region) const {
  return atom_count(region) == region.area();
}

std::vector<Coord> OccupancyGrid::defects(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  std::vector<Coord> out;
  for (std::int32_t r = region.row0; r < region.row_end(); ++r)
    for (std::int32_t c = region.col0; c < region.col_end(); ++c)
      if (!occupied({r, c})) out.push_back({r, c});
  return out;
}

std::vector<Coord> OccupancyGrid::atom_positions() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(atom_count()));
  for (std::int32_t r = 0; r < height_; ++r) {
    rows_[static_cast<std::size_t>(r)].for_each_set(
        [&out, r](std::uint32_t c) { out.push_back({r, static_cast<std::int32_t>(c)}); });
  }
  return out;
}

void OccupancyGrid::set_row(std::int32_t r, BitRow bits) {
  QRM_EXPECTS(r >= 0 && r < height_);
  QRM_EXPECTS_MSG(bits.width() == static_cast<std::uint32_t>(width_), "row width mismatch");
  rows_[static_cast<std::size_t>(r)] = std::move(bits);
}

BitRow OccupancyGrid::column(std::int32_t c) const {
  QRM_EXPECTS(c >= 0 && c < width_);
  BitRow out(static_cast<std::uint32_t>(height_));
  // One word read per source row, accumulating 64 column bits per output
  // word — no per-bit bounds-checked accessors in the loop.
  const std::uint32_t wi = static_cast<std::uint32_t>(c) / kWordBits;
  const std::uint32_t shift = static_cast<std::uint32_t>(c) % kWordBits;
  const auto h = static_cast<std::uint32_t>(height_);
  for (std::uint32_t r0 = 0; r0 < h; r0 += kWordBits) {
    const std::uint32_t rows = std::min(kWordBits, h - r0);
    Word acc = 0;
    for (std::uint32_t k = 0; k < rows; ++k)
      acc |= ((rows_[r0 + k].words()[wi] >> shift) & Word{1}) << k;
    out.set_word(r0 / kWordBits, acc);
  }
  return out;
}

void OccupancyGrid::set_column(std::int32_t c, const BitRow& bits) {
  QRM_EXPECTS(c >= 0 && c < width_);
  QRM_EXPECTS_MSG(bits.width() == static_cast<std::uint32_t>(height_), "column height mismatch");
  const std::uint32_t wi = static_cast<std::uint32_t>(c) / kWordBits;
  const std::uint32_t shift = static_cast<std::uint32_t>(c) % kWordBits;
  const Word mask = Word{1} << shift;
  const auto h = static_cast<std::uint32_t>(height_);
  for (std::uint32_t r = 0; r < h; ++r) {
    const Word bit = (bits.words()[r / kWordBits] >> (r % kWordBits)) & Word{1};
    BitRow& row = rows_[r];
    row.set_word(wi, (row.words()[wi] & ~mask) | (bit << shift));
  }
}

Coord OccupancyGrid::map_coord(Flip flip, Coord c) const {
  switch (flip) {
    case Flip::None: return c;
    case Flip::Horizontal: return {c.row, width_ - 1 - c.col};
    case Flip::Vertical: return {height_ - 1 - c.row, c.col};
    case Flip::Transpose: return {c.col, c.row};
    case Flip::Rotate180: return {height_ - 1 - c.row, width_ - 1 - c.col};
  }
  QRM_ENSURES_MSG(false, "unknown flip");
  return c;
}

OccupancyGrid OccupancyGrid::flipped(Flip flip) const {
  const std::int32_t out_h = (flip == Flip::Transpose) ? width_ : height_;
  const std::int32_t out_w = (flip == Flip::Transpose) ? height_ : width_;
  OccupancyGrid out(out_h, out_w);
  switch (flip) {
    case Flip::None:
      out.rows_ = rows_;
      break;
    case Flip::Horizontal:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(r)] = rows_[static_cast<std::size_t>(r)].reversed();
      break;
    case Flip::Vertical:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(height_ - 1 - r)] = rows_[static_cast<std::size_t>(r)];
      break;
    case Flip::Transpose: {
      // 64x64 block-transpose: gather one word per input row, transpose the
      // block in registers, scatter one word per output row. Partial edge
      // blocks need no special casing — canonical tails keep the out-of-range
      // lanes zero, and set_word re-masks the destination tail.
      const auto h = static_cast<std::uint32_t>(height_);
      const auto w = static_cast<std::uint32_t>(width_);
      std::array<Word, 64> block;
      for (std::uint32_t r0 = 0; r0 < h; r0 += kWordBits) {
        const std::uint32_t rows = std::min(kWordBits, h - r0);
        for (std::uint32_t c0 = 0; c0 < w; c0 += kWordBits) {
          const std::uint32_t cols = std::min(kWordBits, w - c0);
          block.fill(0);
          for (std::uint32_t k = 0; k < rows; ++k)
            block[k] = rows_[r0 + k].words()[c0 / kWordBits];
          transpose64(block);
          for (std::uint32_t k = 0; k < cols; ++k)
            out.rows_[c0 + k].set_word(r0 / kWordBits, block[k]);
        }
      }
      break;
    }
    case Flip::Rotate180:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(height_ - 1 - r)] =
            rows_[static_cast<std::size_t>(r)].reversed();
      break;
  }
  return out;
}

OccupancyGrid OccupancyGrid::subgrid(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  OccupancyGrid out(region.rows, region.cols);
  for (std::int32_t r = 0; r < region.rows; ++r)
    out.rows_[static_cast<std::size_t>(r)] = rows_[static_cast<std::size_t>(region.row0 + r)].slice(
        static_cast<std::uint32_t>(region.col0), static_cast<std::uint32_t>(region.cols));
  return out;
}

void OccupancyGrid::set_subgrid(const Region& region, const OccupancyGrid& content) {
  QRM_EXPECTS(region.within(height_, width_));
  QRM_EXPECTS(content.height() == region.rows && content.width() == region.cols);
  for (std::int32_t r = 0; r < region.rows; ++r)
    rows_[static_cast<std::size_t>(region.row0 + r)].paste(static_cast<std::uint32_t>(region.col0),
                                                           content.rows_[static_cast<std::size_t>(r)]);
}

std::vector<Coord> diff_positions(const OccupancyGrid& a, const OccupancyGrid& b) {
  QRM_EXPECTS_MSG(a.height() == b.height() && a.width() == b.width(),
                  "diff_positions requires same-shaped grids");
  std::vector<Coord> out;
  for (std::int32_t r = 0; r < a.height(); ++r) {
    const auto& wa = a.row(r).words();
    const auto& wb = b.row(r).words();
    for (std::size_t wi = 0; wi < wa.size(); ++wi) {
      Word x = wa[wi] ^ wb[wi];
      while (x != 0) {
        const std::uint32_t bit = static_cast<std::uint32_t>(std::countr_zero(x));
        out.push_back({r, static_cast<std::int32_t>(wi * kWordBits + bit)});
        x &= x - 1;  // clear lowest set bit
      }
    }
  }
  return out;
}

std::int64_t diff_count(const OccupancyGrid& a, const OccupancyGrid& b) {
  QRM_EXPECTS_MSG(a.height() == b.height() && a.width() == b.width(),
                  "diff_count requires same-shaped grids");
  std::int64_t n = 0;
  for (std::int32_t r = 0; r < a.height(); ++r) {
    const auto& wa = a.row(r).words();
    const auto& wb = b.row(r).words();
    for (std::size_t wi = 0; wi < wa.size(); ++wi)
      n += std::popcount(wa[wi] ^ wb[wi]);
  }
  return n;
}

std::string OccupancyGrid::to_art() const {
  std::ostringstream os;
  for (std::int32_t r = 0; r < height_; ++r)
    os << rows_[static_cast<std::size_t>(r)].to_art() << '\n';
  return os.str();
}

std::string OccupancyGrid::to_art(const Region& highlight) const {
  QRM_EXPECTS(highlight.within(height_, width_));
  std::ostringstream os;
  for (std::int32_t r = 0; r < height_; ++r) {
    for (std::int32_t c = 0; c < width_; ++c) {
      const bool occ = occupied({r, c});
      if (highlight.contains({r, c})) {
        os << (occ ? 'O' : 'x');
      } else {
        os << (occ ? '#' : '.');
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qrm

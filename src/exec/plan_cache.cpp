#include "exec/plan_cache.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace qrm::exec {

PlanCacheStats& PlanCacheStats::operator+=(const PlanCacheStats& other) noexcept {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  entries += other.entries;
  return *this;
}

void mix_grid(std::uint64_t& hash, const OccupancyGrid& grid) noexcept {
  fnv::mix_u64(hash, static_cast<std::uint64_t>(grid.height()));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(grid.width()));
  for (std::int32_t r = 0; r < grid.height(); ++r) {
    for (const BitRow::Word word : grid.row(r).words()) fnv::mix_u64(hash, word);
  }
}

PlanCache::PlanCache(PlanCacheConfig config) : config_(config) {
  if (config_.max_entries == 0) config_.max_entries = 1;
  QRM_EXPECTS_MSG(config_.key_bits < 64, "key_bits is a mask width: 1..63, or 0 for full keys");
}

std::uint64_t PlanCache::config_key(const std::string& algorithm,
                                    const QrmConfig& plan) noexcept {
  std::uint64_t hash = fnv::kOffset;
  fnv::mix_text(hash, algorithm);
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.target.row0));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.target.col0));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.target.rows));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.target.cols));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.mode));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.max_iterations));
  fnv::mix_u64(hash, plan.merge_quadrants ? 1 : 0);
  fnv::mix_u64(hash, plan.aod_legalize ? 1 : 0);
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.sen_limit));
  // Dead channels change plan output (masked input + hop realization), so
  // two configs differing only in the mask must never share cache cells.
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.dead_channels.rows.size()));
  for (const std::int32_t row : plan.dead_channels.rows)
    fnv::mix_u64(hash, static_cast<std::uint64_t>(row));
  fnv::mix_u64(hash, static_cast<std::uint64_t>(plan.dead_channels.cols.size()));
  for (const std::int32_t col : plan.dead_channels.cols)
    fnv::mix_u64(hash, static_cast<std::uint64_t>(col));
  return hash;
}

std::uint64_t PlanCache::cell_key(std::uint64_t config_key,
                                  const OccupancyGrid& grid) const noexcept {
  std::uint64_t hash = config_key;
  mix_grid(hash, grid);
  if (config_.key_bits != 0) hash &= (std::uint64_t{1} << config_.key_bits) - 1;
  return hash;
}

std::shared_ptr<const PlanResult> PlanCache::find(std::uint64_t config_key,
                                                  const OccupancyGrid& grid) const {
  const std::uint64_t key = cell_key(config_key, grid);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto bucket = cells_.find(key);
  if (bucket != cells_.end()) {
    for (const Entry& entry : bucket->second) {
      if (entry.grid == grid) {
        ++stats_.hits;
        return entry.plan;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

std::shared_ptr<const PlanResult> PlanCache::insert(std::uint64_t config_key,
                                                    const OccupancyGrid& grid, PlanResult plan) {
  const std::uint64_t key = cell_key(config_key, grid);
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry>& bucket = cells_[key];
  for (const Entry& entry : bucket) {
    if (entry.grid == grid) return entry.plan;  // concurrent planner got here first
  }
  auto inserted = std::make_shared<const PlanResult>(std::move(plan));
  bucket.push_back({grid, inserted});
  insertion_order_.push_back(key);
  ++entries_;

  // FIFO eviction, exact under collisions: insertion_order_ holds one deque
  // entry per insert, entries within a bucket chain in insert order, so the
  // front key's bucket-front entry is always the globally oldest insertion
  // for that key. May evict the entry just inserted (max_entries == 1 with
  // distinct cells) — the caller's shared_ptr keeps the plan alive either
  // way, so `inserted` is returned, not a bucket lookup.
  while (entries_ > config_.max_entries) {
    const std::uint64_t oldest = insertion_order_.front();
    insertion_order_.pop_front();
    const auto victim = cells_.find(oldest);
    // The deque and the buckets are 1:1 (every push_back above pairs with
    // one bucket append; eviction removes one of each). A missing or empty
    // bucket means the accounting desynced — fail loudly instead of
    // silently skipping, which would leave entries_ overcounting forever.
    QRM_ENSURES_MSG(victim != cells_.end() && !victim->second.empty(),
                    "plan cache accounting desync: insertion order names an empty bucket");
    victim->second.erase(victim->second.begin());
    if (victim->second.empty()) cells_.erase(victim);
    --entries_;
    ++stats_.evictions;
  }
  return inserted;
}

PlanCacheStats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats snapshot = stats_;
  snapshot.entries = entries_;
  return snapshot;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();
  insertion_order_.clear();
  entries_ = 0;
  stats_ = {};
}

}  // namespace qrm::exec

// Tests for the baseline algorithms: each must produce an executable,
// AOD-legal schedule that fills the target; their structural signatures
// (command counts, parallelism) must match their published character.

#include <gtest/gtest.h>

#include <tuple>

#include "util/assert.hpp"
#include "baselines/algorithm.hpp"
#include "baselines/common.hpp"
#include "loading/loader.hpp"
#include "testutil.hpp"

namespace qrm::baselines {
namespace {

using testutil::expect_plan_valid;

TEST(Baselines, RegistryKnowsAllNames) {
  for (const auto& name : algorithm_names()) {
    const auto algo = make_algorithm(name);
    EXPECT_EQ(algo->name(), name);
    EXPECT_FALSE(algo->description().empty());
  }
  EXPECT_THROW((void)make_algorithm("nonsense"), PreconditionError);
}

TEST(Baselines, BandTargetsFillsTheBand) {
  // 4 atoms, band [2,5) in a line of 8.
  const std::vector<std::int32_t> atoms{0, 1, 6, 7};
  const auto targets = band_targets(atoms, 2, 3, 8);
  ASSERT_EQ(targets.size(), 4u);
  // Strictly ascending, covering 2..4.
  for (std::size_t i = 1; i < targets.size(); ++i) EXPECT_GT(targets[i], targets[i - 1]);
  for (std::int32_t p = 2; p < 5; ++p)
    EXPECT_NE(std::find(targets.begin(), targets.end(), p), targets.end());
}

TEST(Baselines, BandTargetsPartialWhenShort) {
  const std::vector<std::int32_t> atoms{5};
  const auto targets = band_targets(atoms, 2, 3, 8);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 2);
}

TEST(Baselines, BandTargetsClampsWhenEdgeBound) {
  // 6 atoms, band [0,2): nothing fits above the band.
  const std::vector<std::int32_t> atoms{0, 1, 2, 3, 4, 5};
  const auto targets = band_targets(atoms, 0, 2, 8);
  EXPECT_EQ(targets[0], 0);
  EXPECT_EQ(targets[1], 1);
  for (std::size_t i = 1; i < targets.size(); ++i) EXPECT_GT(targets[i], targets[i - 1]);
  EXPECT_LE(targets.back(), 7);
}

TEST(Baselines, GlobalPlacementMeetsDemand) {
  const OccupancyGrid g = load_random(20, 20, {0.5, 17});
  const Region target = centered_square(20, 12);
  const GlobalPlacement placement = compute_balanced_placement(g, target);
  EXPECT_TRUE(placement.feasible);
  // Count per-column promises (final placements inside target columns).
  std::vector<int> per_column(20, 0);
  OccupancyGrid after = g;
  // Apply placements abstractly: count target positions per column.
  for (const auto& a : placement.row_assignments)
    for (const auto t : a.targets) per_column[static_cast<std::size_t>(t)]++;
  // Rows without assignment keep their atoms; count those too.
  std::vector<bool> assigned(20, false);
  for (const auto& a : placement.row_assignments)
    assigned[static_cast<std::size_t>(a.line)] = true;
  for (std::int32_t r = 0; r < 20; ++r) {
    if (assigned[static_cast<std::size_t>(r)]) continue;
    for (std::int32_t c = 0; c < 20; ++c)
      if (g.occupied({r, c})) per_column[static_cast<std::size_t>(c)]++;
  }
  for (std::int32_t c = target.col0; c < target.col_end(); ++c)
    EXPECT_GE(per_column[static_cast<std::size_t>(c)], target.rows) << "column " << c;
}

// Every algorithm fills the paper's Fig. 7(b) workload (20x20 at 50%).
class AllAlgorithms : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAlgorithms, FillsFig7bWorkloadWithValidSchedule) {
  const auto algo = make_algorithm(GetParam());
  int filled = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OccupancyGrid initial = load_random(20, 20, {0.55, seed});
    const Region target = centered_square(20, 12);
    const PlanResult result = algo->plan(initial, target);
    expect_plan_valid(initial, result);
    if (result.stats.target_filled) ++filled;
  }
  if (GetParam() == "qrm-compact" || GetParam() == "typical") {
    // Compaction-only planners fill only when the Young-diagram condition
    // holds; legality was still verified above.
    SUCCEED();
  } else {
    EXPECT_EQ(filled, 5) << GetParam() << " must fill every feasible workload";
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, AllAlgorithms,
                         ::testing::Values("qrm", "qrm-compact", "typical", "tetris", "psca",
                                           "mta1"));

TEST(Baselines, Mta1IsStrictlySequential) {
  const OccupancyGrid initial = load_random(16, 16, {0.5, 23});
  const Region target = centered_square(16, 10);
  const PlanResult result = make_algorithm("mta1")->plan(initial, target);
  for (const auto& move : result.schedule.moves()) {
    EXPECT_EQ(move.sites.size(), 1u) << "MTA1 must move one atom per command";
    EXPECT_EQ(move.steps, 1) << "MTA1 issues elementary steps";
  }
  expect_plan_valid(initial, result);
}

TEST(Baselines, ParallelAlgorithmsBeatMta1OnCommandCount) {
  const OccupancyGrid initial = load_random(20, 20, {0.55, 29});
  const Region target = centered_square(20, 12);
  const auto mta1 = make_algorithm("mta1")->plan(initial, target);
  const auto tetris = make_algorithm("tetris")->plan(initial, target);
  const auto qrm_result = make_algorithm("qrm")->plan(initial, target);
  EXPECT_LT(tetris.schedule.size(), mta1.schedule.size());
  EXPECT_LT(qrm_result.schedule.size(), mta1.schedule.size());
  // Multi-tweezer algorithms must actually exploit parallelism.
  EXPECT_GT(tetris.schedule.stats().max_parallelism, 4u);
  EXPECT_GT(qrm_result.schedule.stats().max_parallelism, 4u);
  EXPECT_EQ(mta1.schedule.stats().max_parallelism, 1u);
}

TEST(Baselines, TetrisAndPscaReachSameOccupancyFamily) {
  // Both realize the same placement semantics, so both must fill and
  // conserve atoms; their command streams differ (per-round recomputation
  // vs one-shot realization).
  const OccupancyGrid initial = load_random(18, 18, {0.6, 41});
  const Region target = centered_square(18, 10);
  const auto tetris = make_algorithm("tetris")->plan(initial, target);
  const auto psca = make_algorithm("psca")->plan(initial, target);
  EXPECT_TRUE(tetris.stats.target_filled);
  EXPECT_TRUE(psca.stats.target_filled);
  expect_plan_valid(initial, tetris);
  expect_plan_valid(initial, psca);
}

TEST(Baselines, InfeasibleWorkloadReportedNotCrashed) {
  const OccupancyGrid initial = load_random(20, 20, {0.1, 3});
  const Region target = centered_square(20, 12);
  for (const auto& name : {"tetris", "psca", "mta1"}) {
    const PlanResult result = make_algorithm(name)->plan(initial, target);
    EXPECT_FALSE(result.stats.target_filled) << name;
    EXPECT_FALSE(result.stats.feasible) << name;
    expect_plan_valid(initial, result);
  }
}

TEST(Baselines, RectangularTargetsWork) {
  const OccupancyGrid initial = load_random(20, 24, {0.6, 8});
  const Region target = centered_region(20, 24, 10, 14);
  for (const auto& name : {"tetris", "psca", "mta1"}) {
    const PlanResult result = make_algorithm(name)->plan(initial, target);
    EXPECT_TRUE(result.stats.target_filled) << name;
    expect_plan_valid(initial, result);
  }
}

}  // namespace
}  // namespace qrm::baselines

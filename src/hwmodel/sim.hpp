#pragma once
/// \file sim.hpp
/// Minimal clocked-simulation kernel: modules evaluated every cycle against
/// start-of-cycle FIFO state, then all FIFOs commit (two-phase clocking).

#include <cstdint>
#include <string>
#include <vector>

#include "hwmodel/fifo.hpp"

namespace qrm::hw {

/// A synchronous hardware block. eval() is called once per cycle and may
/// stage FIFO pushes/pops and update internal registers; busy() reports
/// whether the module still has in-flight work.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  virtual void eval(std::uint64_t cycle) = 0;
  [[nodiscard]] virtual bool busy() const = 0;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

/// Owns nothing; orchestrates registered modules and FIFOs.
class Simulation {
 public:
  void add_module(Module& m) { modules_.push_back(&m); }
  void add_fifo(FifoBase& f) { fifos_.push_back(&f); }

  /// Run until every module reports idle and every FIFO has drained, or
  /// until `max_cycles` elapse (throws InvariantError on timeout — a stall
  /// in the model is a bug, not a result). Returns the number of cycles
  /// simulated.
  std::uint64_t run(std::uint64_t max_cycles = 1'000'000);

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

 private:
  [[nodiscard]] bool all_idle() const;

  std::vector<Module*> modules_;
  std::vector<FifoBase*> fifos_;
  std::uint64_t cycle_ = 0;
};

}  // namespace qrm::hw

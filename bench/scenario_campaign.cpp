// Campaign throughput: the smoke registry subset across the shards ×
// workers axis, a plan-cache A/B on Pattern workloads, and
// google-benchmark timings of the scenario plumbing itself (parse + sweep
// expansion), which must stay negligible next to planning. The tables
// double as determinism checks: the campaign fingerprint column must not
// vary with the worker count, the shard count, or the cache mode.
//
// Writes machine-readable BENCH_scenario.json (override with --out PATH)
// and exits non-zero if the plan cache fails its acceptance bar on Pattern
// scenarios: >0 hit rate and cache-on wall time strictly below cache-off.

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"
#include "bench_common.hpp"
#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

std::vector<std::uint32_t> worker_sweep() {
  std::vector<std::uint32_t> sweep = {1, 2};
  const std::uint32_t hw = ThreadPool::resolve_workers(0);
  if (hw > 2) sweep.push_back(hw);
  return sweep;
}

struct AxisPoint {
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  double wall_us = 0.0;
  double shots_per_sec = 0.0;
  double cache_hit_rate = 0.0;
  std::uint64_t fingerprint = 0;
};

std::vector<AxisPoint> bench_shard_axis() {
  print_header("Scenario campaign throughput — smoke registry, shards x workers",
               "ROADMAP north star: scenario diversity at production scale");

  std::vector<AxisPoint> points;
  TextTable table({"shards", "workers", "scenarios", "shots", "wall", "shots/s", "speedup",
                   "cache hit", "fingerprint"});
  double base_wall = 0.0;
  for (const std::uint32_t shards : {1u, 3u}) {
    for (const std::uint32_t workers : worker_sweep()) {
      scenario::CampaignConfig config;
      config.exec.workers = workers;
      config.shards = shards;
      config.filter = "smoke";
      const scenario::CampaignReport report =
          scenario::CampaignRunner(config).run(scenario::registry());

      std::size_t shots = 0;
      for (const scenario::ScenarioOutcome& outcome : report.scenarios)
        shots += outcome.batch.shots.size();
      if (points.empty()) base_wall = report.wall_us;

      AxisPoint point;
      point.shards = shards;
      point.workers = report.workers;
      point.wall_us = report.wall_us;
      point.shots_per_sec = static_cast<double>(shots) / (report.wall_us * 1e-6);
      point.cache_hit_rate = report.plan_cache.hit_rate();
      point.fingerprint = report.fingerprint();
      points.push_back(point);

      std::ostringstream fingerprint;
      fingerprint << "0x" << std::hex << point.fingerprint;
      table.add_row({std::to_string(shards), std::to_string(point.workers),
                     std::to_string(report.scenarios.size()), std::to_string(shots),
                     fmt_time_us(point.wall_us), fmt_double(point.shots_per_sec),
                     fmt_speedup(base_wall / point.wall_us),
                     fmt_percent(point.cache_hit_rate), fingerprint.str()});
    }
  }
  std::printf("%s", table.render().c_str());
  return points;
}

struct CacheAb {
  double off_wall_us = 0.0;
  double on_wall_us = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate = 0.0;
  bool fingerprints_match = false;

  [[nodiscard]] double speedup() const { return on_wall_us > 0.0 ? off_wall_us / on_wall_us : 0.0; }
};

/// Pattern workloads replan the identical grid on every shot's first round
/// — the cache's headline case. 32 shots of three 64x64 patterns makes
/// planning dominate, so the A/B is robust to scheduling noise.
CacheAb bench_plan_cache() {
  std::vector<scenario::ScenarioSpec> specs;
  for (const Pattern pattern : {Pattern::Checkerboard, Pattern::RowStripes, Pattern::Border}) {
    scenario::ScenarioSpec spec;
    spec.name = std::string("bench-pattern-") + scenario::to_cstring(pattern);
    spec.load = scenario::LoadProfile::Pattern;
    spec.pattern = pattern;
    spec.grid_height = spec.grid_width = 64;
    spec.shots = 32;
    spec.max_rounds = 4;
    specs.push_back(spec);
  }

  scenario::CampaignConfig config;
  config.exec.workers = ThreadPool::resolve_workers(0);
  CacheAb ab;
  config.overrides.plan_cache = false;
  const scenario::CampaignReport off = scenario::CampaignRunner(config).run(specs);
  ab.off_wall_us = off.wall_us;
  config.overrides.plan_cache = true;
  const scenario::CampaignReport on = scenario::CampaignRunner(config).run(specs);
  ab.on_wall_us = on.wall_us;
  ab.hits = on.plan_cache.hits;
  ab.misses = on.plan_cache.misses;
  ab.hit_rate = on.plan_cache.hit_rate();
  ab.fingerprints_match = off.fingerprint() == on.fingerprint();

  print_header("Plan cache A/B — Pattern scenarios (identical per-shot grids)",
               "ROADMAP: plan caching keyed on scenario fingerprint");
  TextTable table({"cache", "wall", "speedup", "hits", "misses", "hit rate", "fingerprint ok"});
  table.add_row({"off", fmt_time_us(ab.off_wall_us), "1.00x", "-", "-", "-", "-"});
  table.add_row({"on", fmt_time_us(ab.on_wall_us), fmt_speedup(ab.speedup()),
                 std::to_string(ab.hits), std::to_string(ab.misses), fmt_percent(ab.hit_rate),
                 ab.fingerprints_match ? "yes" : "NO"});
  std::printf("%s", table.render().c_str());
  return ab;
}

void write_json(const std::string& path, const std::vector<AxisPoint>& axis,
                const CacheAb& ab) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  os << "{\n";
  os << "  \"bench\": \"scenario_campaign\",\n";
  os << "  \"shard_axis\": [\n";
  for (std::size_t i = 0; i < axis.size(); ++i) {
    const AxisPoint& p = axis[i];
    os << "    {\"shards\": " << p.shards << ", \"workers\": " << p.workers
       << ", \"wall_us\": " << p.wall_us << ", \"shots_per_sec\": " << p.shots_per_sec
       << ", \"cache_hit_rate\": " << p.cache_hit_rate << ", \"fingerprint\": \"0x" << std::hex
       << p.fingerprint << std::dec << "\"}" << (i + 1 < axis.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"plan_cache\": {\"workload\": \"3x pattern 64x64, 32 shots\", \"cache_off_wall_us\": "
     << ab.off_wall_us << ", \"cache_on_wall_us\": " << ab.on_wall_us
     << ", \"speedup\": " << ab.speedup() << ", \"hits\": " << ab.hits
     << ", \"misses\": " << ab.misses << ", \"hit_rate\": " << ab.hit_rate
     << ", \"fingerprints_match\": " << (ab.fingerprints_match ? "true" : "false") << "}\n";
  os << "}\n";
}

void BM_ParseRegistryEntry(benchmark::State& state) {
  const std::string text = scenario::serialize(scenario::registry().front());
  for (auto _ : state) {
    const scenario::ScenarioSpec spec = scenario::parse_scenario(text);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_ParseRegistryEntry);

void BM_ExpandGridSweep(benchmark::State& state) {
  const std::string sweep =
      "name=bench\ngrid=16..256 step 16\nfill=0.5,0.6\nshots=4\n";
  for (auto _ : state) {
    const std::vector<scenario::ScenarioSpec> specs = scenario::expand_sweeps(sweep);
    benchmark::DoNotOptimize(specs);
  }
}
BENCHMARK(BM_ExpandGridSweep);

void BM_SmokeScenarioEndToEnd(benchmark::State& state) {
  scenario::CampaignConfig config;
  config.exec.workers = static_cast<std::uint32_t>(state.range(0));
  const scenario::CampaignRunner runner(config);
  const scenario::ScenarioSpec& spec = scenario::find_scenario("smoke-uniform");
  for (auto _ : state) {
    const scenario::ScenarioOutcome outcome = runner.run_one(spec);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_SmokeScenarioEndToEnd)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_scenario.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
      // Hide the flag from google-benchmark's own argv scan.
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }

  const std::vector<AxisPoint> axis = bench_shard_axis();
  const CacheAb ab = bench_plan_cache();
  write_json(out_path, axis, ab);
  std::printf("\nwrote %s\n", out_path.c_str());

  run_benchmarks(argc, argv);

  // Acceptance bar: the shard axis must agree on one fingerprint, and the
  // cache must both hit and win wall time on Pattern scenarios. Checked
  // after the JSON write so a failure still uploads the numbers.
  bool ok = true;
  for (const AxisPoint& p : axis) {
    if (p.fingerprint != axis.front().fingerprint) {
      std::fprintf(stderr, "FAIL: fingerprint varies across the shards x workers axis\n");
      ok = false;
      break;
    }
  }
  if (!ab.fingerprints_match) {
    std::fprintf(stderr, "FAIL: plan cache changed the campaign fingerprint\n");
    ok = false;
  }
  if (ab.hits == 0) {
    std::fprintf(stderr, "FAIL: plan cache never hit on Pattern scenarios\n");
    ok = false;
  }
  if (ab.on_wall_us >= ab.off_wall_us) {
    std::fprintf(stderr, "FAIL: cache-on wall %.1f us not below cache-off %.1f us\n",
                 ab.on_wall_us, ab.off_wall_us);
    ok = false;
  }
  return ok ? 0 : 1;
}

#pragma once
/// \file pass_driver.hpp
/// Pass-by-pass execution of the QRM schedule analysis.
///
/// Both the behavioural planner and the FPGA cycle model run the *same*
/// sequence of quadrant passes; the planner simply applies them, while the
/// accelerator model also charges hardware time for each. PassDriver owns
/// that shared sequencing so the two can never diverge.

#include <array>
#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/quadrant_plan.hpp"
#include "lattice/quadrant.hpp"

namespace qrm {

/// One synchronised pass over all four quadrants.
struct QuadrantPass {
  Axis axis = Axis::Rows;
  bool balance = false;  ///< demand-balance placement vs plain compaction
  /// Quadrant-local input grids the pass starts from (kernel input data).
  std::array<OccupancyGrid, 4> local_grids;
  /// Quadrant-local line assignments the pass computes (kernel output).
  std::array<std::vector<LineAssignment>, 4> local_assignments;
  /// Demand outcome per quadrant (meaningful only when balance is true);
  /// the cycle model cross-checks its balance units against these.
  std::array<BalanceReport, 4> balance_reports;

  [[nodiscard]] std::size_t total_assignments() const noexcept {
    std::size_t n = 0;
    for (const auto& a : local_assignments) n += a.size();
    return n;
  }
};

/// Drives the pass sequence for one rearrangement problem.
///
/// Usage: repeatedly call next(); for each returned pass, optionally inspect
/// it (the cycle model simulates its dataflow), then call apply() to lower
/// it to moves and advance the grid. next() returns nullopt when the
/// schedule analysis is complete; results() then yields the final stats.
class PassDriver {
 public:
  /// Preconditions: same as QrmPlanner::plan (even dims, centred target).
  PassDriver(const OccupancyGrid& initial, QrmConfig config);

  /// Compute the next pass from the current state, or nullopt when done.
  [[nodiscard]] std::optional<QuadrantPass> next();

  /// Realize `pass` (merged or per-quadrant, per config), appending moves to
  /// the internal schedule and advancing the grid. Must be called exactly
  /// once, with the pass most recently returned by next().
  void apply(const QuadrantPass& pass);

  [[nodiscard]] const OccupancyGrid& state() const noexcept { return state_; }
  [[nodiscard]] const QuadrantGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const QrmConfig& config() const noexcept { return config_; }

  /// Final outcome; valid once next() has returned nullopt (also usable
  /// mid-flight for progress inspection).
  [[nodiscard]] PlanResult take_result();

 private:
  /// Where we are in the mode's pass program.
  enum class Phase { BalanceRow, BalanceCol, CompactRow, CompactCol, Done };

  /// Pool the quadrant tasks fan out on, or nullptr for the sequential path
  /// (intra_plan_workers == 0, or no pool was provided or created).
  [[nodiscard]] ThreadPool* intra_plan_pool() const noexcept;

  QrmConfig config_;
  QuadrantGeometry geometry_;
  OccupancyGrid state_;
  Schedule schedule_;
  PlanStats stats_;
  Phase phase_ = Phase::CompactRow;
  std::int32_t iteration_ = 0;
  std::size_t iteration_atoms_moved_ = 0;
  bool awaiting_apply_ = false;
};

}  // namespace qrm

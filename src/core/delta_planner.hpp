#pragma once
/// \file delta_planner.hpp
/// Incremental (delta) replanning for the rearrangement loop.
///
/// Round k+1 of a lossy rearrangement loop replans a grid that differs from
/// round k's input in only the sites loss and transport touched. The QRM
/// decomposition makes that reusable structure explicit: each quadrant's
/// kernel outputs are pure functions of (that quadrant's cells, the pass-kind
/// sequence), and realization never moves an atom across a quadrant boundary,
/// so a quadrant whose cells are untouched since the previous plan replays
/// exactly the same per-pass trajectory. DeltaReplanner diffs the new grid
/// against the previous plan's *input* (word-parallel XOR), maps the dirty
/// sites onto quadrants, and re-drives the pass schedule serving clean
/// quadrants from the captured previous trajectory while recomputing dirty
/// ones. Merge and realization always re-run, so the produced PlanResult is
/// bit-identical to a from-scratch plan by construction — the contract the
/// differential suite and the golden corpus pin.
///
/// Fallbacks (all still bit-identical, just without reuse):
///  - no previous plan, or the grid shape changed: plan from scratch;
///  - the diff is empty: return the previous PlanResult verbatim;
///  - the diff exceeds Options::max_dirty_sites or dirties all four
///    quadrants: plan from scratch (re-capturing the trajectory).

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/pass_driver.hpp"
#include "lattice/grid.hpp"

namespace qrm {

/// Reuse accounting across a DeltaReplanner's lifetime (one loop run).
struct DeltaReplanStats {
  std::uint64_t plans = 0;              ///< total plan() calls
  std::uint64_t scratch_plans = 0;      ///< full replans (first call + fallbacks)
  std::uint64_t whole_plan_reuses = 0;  ///< empty diff: previous result returned
  std::uint64_t delta_plans = 0;        ///< partial-reuse drives
  std::uint64_t kernels_reused = 0;     ///< quadrant kernels served from cache
  std::uint64_t kernels_computed = 0;   ///< quadrant kernels recomputed in delta drives
  std::uint64_t dirty_sites = 0;        ///< cumulative diff size over non-empty diffs

  friend bool operator==(const DeltaReplanStats&, const DeltaReplanStats&) = default;
};

/// Stateful replanner: call plan() once per loop round. Not thread-safe —
/// each loop (each batch shot) owns its own instance; determinism across
/// shots comes from the loop's derived RNG streams, not from sharing.
class DeltaReplanner {
 public:
  struct Options {
    /// Diff sizes above this fall back to scratch (reuse would be a wash).
    /// 0 = auto: a quarter of the grid area.
    std::size_t max_dirty_sites = 0;
    /// Extract and compare every reused quadrant grid against the cache,
    /// throwing InvariantError on mismatch. Test/debug mode: it re-does the
    /// extraction work reuse exists to skip, but turns any violation of the
    /// quadrant-independence argument into a loud failure.
    bool paranoid = false;
  };

  explicit DeltaReplanner(QrmConfig config) : DeltaReplanner(std::move(config), Options{}, {}) {}
  DeltaReplanner(QrmConfig config, Options options)
      : DeltaReplanner(std::move(config), options, {}) {}
  /// `parallelism` fans each drive's quadrant kernels out exactly as in
  /// QrmPlanner (mechanism only; bit-identical plans for any value).
  DeltaReplanner(QrmConfig config, Options options, PlanParallelism parallelism);

  [[nodiscard]] const QrmConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DeltaReplanStats& stats() const noexcept { return stats_; }

  /// Plan for `current`, reusing the previous round's trajectory where the
  /// grid diff allows. Same preconditions as QrmPlanner::plan; the result is
  /// bit-identical to QrmPlanner(config).plan(current).
  [[nodiscard]] PlanResult plan(const OccupancyGrid& current);

  /// Drop the cached previous plan (the next plan() starts from scratch).
  /// Reuse counters are kept; they describe the replanner's lifetime.
  void reset() noexcept;

 private:
  [[nodiscard]] PlanResult scratch_plan(const OccupancyGrid& current,
                                        const PlanParallelism& parallelism);
  [[nodiscard]] PlanResult delta_plan(const OccupancyGrid& current,
                                      const PlanParallelism& parallelism,
                                      const std::array<bool, 4>& dirty);
  void remember(const OccupancyGrid& input, std::vector<QuadrantPass> passes, PlanResult result);

  QrmConfig config_;
  Options options_;
  PlanParallelism parallelism_;
  DeltaReplanStats stats_;

  bool has_previous_ = false;
  OccupancyGrid prev_input_;               ///< grid the previous plan started from
  std::vector<QuadrantPass> prev_passes_;  ///< its captured pass trajectory
  PlanResult prev_result_;
};

}  // namespace qrm

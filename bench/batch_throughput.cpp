// Shot-level batch throughput: shots/sec of the full detect -> plan ->
// execute pipeline as a function of worker count. This is the throughput
// lever the paper's motivation points at — "the runtime for atom
// rearrangement in scaled-up systems with mid-circuit measurements remains
// a challenge" — applied across independent experiment shots rather than
// within one. The table sweeps 1, 2, 4 and hardware_concurrency workers on
// the 64x64 workload; scaling is near-linear on real cores because shots
// share no mutable state (single-core machines will show ~1x, the pool
// merely time-slices).

#include <thread>

#include "batch/batch_planner.hpp"
#include "util/thread_pool.hpp"
#include "bench_common.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

batch::BatchConfig batch_config(std::int32_t size, std::uint32_t shots, std::uint32_t workers) {
  batch::BatchConfig config;
  config.plan.target = centered_square(size, paper_target(size));
  config.grid_height = size;
  config.grid_width = size;
  config.fill = kFill;
  config.shots = shots;
  config.exec.workers = workers;
  config.master_seed = 0xBA7C4;
  config.loss.per_move_loss = 0.005;
  config.max_rounds = 4;
  return config;
}

std::vector<std::uint32_t> worker_sweep() {
  std::vector<std::uint32_t> sweep = {1, 2, 4};
  const std::uint32_t hw = ThreadPool::resolve_workers(0);
  if (hw > 4) sweep.push_back(hw);
  return sweep;
}

void print_table() {
  print_header("Batch planning throughput — shots/sec vs worker count",
               "paper Sec. I motivation: rearrangement runtime at scale");
  constexpr std::uint32_t kShots = 64;
  TextTable table({"W", "shots", "workers", "wall", "shots/s", "speedup", "p50 plan", "fingerprint"});
  for (const std::int32_t size : {32, 64}) {
    double base_rate = 0.0;
    for (const std::uint32_t workers : worker_sweep()) {
      const batch::BatchReport report =
          batch::BatchPlanner(batch_config(size, kShots, workers)).run();
      const double rate = report.shots_per_second();
      if (workers == 1) base_rate = rate;
      table.add_row({std::to_string(size), std::to_string(kShots), std::to_string(workers),
                     fmt_time_us(report.wall_us), fmt_double(rate, 1),
                     fmt_double(base_rate > 0.0 ? rate / base_rate : 0.0, 2),
                     fmt_time_us(report.latency(batch::BatchReport::Stage::Plan).p50),
                     std::to_string(report.fingerprint() % 100000)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(fingerprint column: deterministic outcome hash mod 1e5 — must be\n"
              " identical across worker counts for the same W; speedup > 2.5x from\n"
              " 1 -> 4 workers is the acceptance bar on a >= 4-core machine)\n");
}

void BM_BatchShots(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const batch::BatchPlanner planner(batch_config(64, 16, workers));
  for (auto _ : state) {
    const batch::BatchReport report = planner.run();
    benchmark::DoNotOptimize(report);
  }
  state.counters["workers"] = workers;
  state.counters["shots_per_sec"] =
      benchmark::Counter(16.0, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_BatchShots)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

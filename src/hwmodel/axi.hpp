#pragma once
/// \file axi.hpp
/// AXI transfer modelling: the occupancy bitfield is packed into wide data
/// beats ("we pack 1024-bit data into one packet to move the data from DDR
/// memory into our accelerator with minimal transmission overhead") and
/// streamed one beat per cycle after a fixed DDR read latency.

#include <cstdint>
#include <vector>

#include "lattice/grid.hpp"
#include "util/bitrow.hpp"

namespace qrm::hw {

/// One wide AXI data beat. Width is dynamic to support the packet-width
/// ablation; bit order is row-major grid order (row 0 bit 0 first).
struct AxiPacket {
  std::vector<std::uint64_t> words;  ///< packet_bits / 64 words
};

/// Serialize a grid into `packet_bits`-wide beats (last beat zero-padded).
/// Precondition: packet_bits is a positive multiple of 64.
[[nodiscard]] std::vector<AxiPacket> pack_grid(const OccupancyGrid& grid,
                                               std::uint32_t packet_bits);

/// Reassemble a height x width grid from packed beats; inverse of pack_grid.
[[nodiscard]] OccupancyGrid unpack_grid(const std::vector<AxiPacket>& packets,
                                        std::int32_t height, std::int32_t width,
                                        std::uint32_t packet_bits);

/// DDR/AXI timing constants used by the accelerator model.
struct DdrTiming {
  std::uint32_t read_latency_cycles = 40;  ///< first-beat latency
  std::uint32_t beats_per_cycle = 1;       ///< streaming throughput
};

}  // namespace qrm::hw

// Randomised property suites cutting across the low-level substrate:
// BitRow identities against a naive boolean-vector model, grid flip
// algebra, quadrant-frame invariants, and realizer/AOD round-trips on the
// column axis. These complement the per-module unit tests with
// model-checking style coverage at awkward widths (word boundaries).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "batch/batch_planner.hpp"
#include "detection/calibration.hpp"
#include "exec/plan_cache.hpp"
#include "core/planner.hpp"
#include "lattice/grid.hpp"
#include "lattice/quadrant.hpp"
#include "loading/loader.hpp"
#include "moves/dead_channels.hpp"
#include "moves/realizer.hpp"
#include "runtime/rearrangement_loop.hpp"
#include "scenario/campaign.hpp"
#include "testutil.hpp"
#include "util/bitrow.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

/// Naive reference model of BitRow: vector<bool> with the same interface.
struct NaiveRow {
  std::vector<bool> bits;

  static NaiveRow random(std::uint32_t width, Rng& rng, double p) {
    NaiveRow row;
    row.bits.resize(width);
    for (std::uint32_t i = 0; i < width; ++i) row.bits[i] = rng.bernoulli(p);
    return row;
  }
  [[nodiscard]] BitRow to_bitrow() const {
    BitRow out(static_cast<std::uint32_t>(bits.size()));
    for (std::uint32_t i = 0; i < bits.size(); ++i)
      if (bits[i]) out.set(i);
    return out;
  }
  void shift_toward_lsb(std::uint32_t n) {
    for (std::size_t i = 0; i < bits.size(); ++i)
      bits[i] = (i + n < bits.size()) && bits[i + n];
  }
  void shift_toward_msb(std::uint32_t n) {
    for (std::size_t i = bits.size(); i-- > 0;) bits[i] = (i >= n) && bits[i - n];
  }
  [[nodiscard]] std::uint32_t count() const {
    std::uint32_t n = 0;
    for (const bool b : bits) n += b ? 1 : 0;
    return n;
  }
};

class BitRowWidths : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitRowWidths, ShiftsMatchNaiveModel) {
  const std::uint32_t width = GetParam();
  Rng rng(width * 31 + 7);
  for (int trial = 0; trial < 20; ++trial) {
    NaiveRow naive = NaiveRow::random(width, rng, 0.5);
    BitRow row = naive.to_bitrow();
    const std::uint32_t shift = rng.uniform_below(width + 2);
    if (trial % 2 == 0) {
      naive.shift_toward_lsb(shift);
      row.shift_toward_lsb(shift);
    } else {
      naive.shift_toward_msb(shift);
      row.shift_toward_msb(shift);
    }
    EXPECT_EQ(row, naive.to_bitrow()) << "width " << width << " shift " << shift;
  }
}

TEST_P(BitRowWidths, CountAndRangeConsistent) {
  const std::uint32_t width = GetParam();
  Rng rng(width * 17 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const NaiveRow naive = NaiveRow::random(width, rng, 0.4);
    const BitRow row = naive.to_bitrow();
    EXPECT_EQ(row.count(), naive.count());
    const std::uint32_t lo = rng.uniform_below(width + 1);
    const std::uint32_t hi = lo + rng.uniform_below(width + 1 - lo);
    std::uint32_t expected = 0;
    for (std::uint32_t i = lo; i < hi; ++i) expected += naive.bits[i] ? 1u : 0u;
    EXPECT_EQ(row.count_range(lo, hi), expected);
    EXPECT_EQ(row.holes_below(hi), hi - row.count_range(0, hi));
  }
}

TEST_P(BitRowWidths, CompactionInvariants) {
  const std::uint32_t width = GetParam();
  Rng rng(width * 13 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const BitRow row = NaiveRow::random(width, rng, 0.5).to_bitrow();
    const BitRow compacted = row.compacted();
    EXPECT_EQ(compacted.count(), row.count());
    EXPECT_TRUE(compacted.all_set_below(row.count()));
    const auto displacements = row.compaction_displacements();
    EXPECT_EQ(displacements.size(), row.count());
    // Displacements are the hole counts: non-decreasing, bounded by holes.
    for (std::size_t i = 1; i < displacements.size(); ++i)
      EXPECT_GE(displacements[i], displacements[i - 1]);
    if (!displacements.empty()) {
      EXPECT_LE(displacements.back(), width - row.count());
    }
  }
}

TEST_P(BitRowWidths, ReversalIsInvolutionAndPreservesCount) {
  const std::uint32_t width = GetParam();
  Rng rng(width * 11 + 5);
  const BitRow row = NaiveRow::random(width, rng, 0.5).to_bitrow();
  EXPECT_EQ(row.reversed().reversed(), row);
  EXPECT_EQ(row.reversed().count(), row.count());
  if (width > 0 && row.any()) {
    EXPECT_EQ(row.reversed().test(0), row.test(width - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaryWidths, BitRowWidths,
                         ::testing::Values<std::uint32_t>(1, 7, 63, 64, 65, 127, 128, 129, 200));

// ---------------------------------------------------------------------------
// Grid flip algebra
// ---------------------------------------------------------------------------

TEST(GridAlgebra, HorizontalThenVerticalIsRotate180) {
  const OccupancyGrid g = load_random(9, 13, {0.5, 77});
  EXPECT_EQ(g.flipped(Flip::Horizontal).flipped(Flip::Vertical), g.flipped(Flip::Rotate180));
  EXPECT_EQ(g.flipped(Flip::Vertical).flipped(Flip::Horizontal), g.flipped(Flip::Rotate180));
}

TEST(GridAlgebra, TransposeConjugatesMirrors) {
  // T o H == V o T (mirroring columns then transposing = transposing then
  // mirroring rows).
  const OccupancyGrid g = load_random(8, 11, {0.5, 78});
  EXPECT_EQ(g.flipped(Flip::Horizontal).flipped(Flip::Transpose),
            g.flipped(Flip::Transpose).flipped(Flip::Vertical));
}

TEST(GridAlgebra, FlipsPreserveAtomCount) {
  const OccupancyGrid g = load_random(10, 6, {0.45, 79});
  for (const Flip f :
       {Flip::None, Flip::Horizontal, Flip::Vertical, Flip::Transpose, Flip::Rotate180}) {
    EXPECT_EQ(g.flipped(f).atom_count(), g.atom_count());
  }
}

// ---------------------------------------------------------------------------
// Quadrant frame invariants
// ---------------------------------------------------------------------------

class QuadrantSizes : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {};

TEST_P(QuadrantSizes, LocalAtomCountsPartitionTheGlobalCount) {
  const auto [h, w] = GetParam();
  const OccupancyGrid g = load_random(h, w, {0.5, static_cast<std::uint64_t>(h * w)});
  const QuadrantGeometry geom(h, w);
  std::int64_t total = 0;
  for (const Quadrant q : kAllQuadrants) total += geom.extract_local(g, q).atom_count();
  EXPECT_EQ(total, g.atom_count());
}

TEST_P(QuadrantSizes, LocalFrameOrientationIsCentreFirst) {
  // Filling the centre 2x2 of the global grid must appear at local (0,0)
  // of every quadrant.
  const auto [h, w] = GetParam();
  OccupancyGrid g(h, w);
  g.set({h / 2 - 1, w / 2 - 1});
  g.set({h / 2 - 1, w / 2});
  g.set({h / 2, w / 2 - 1});
  g.set({h / 2, w / 2});
  const QuadrantGeometry geom(h, w);
  for (const Quadrant q : kAllQuadrants) {
    const OccupancyGrid local = geom.extract_local(g, q);
    EXPECT_TRUE(local.occupied({0, 0})) << to_cstring(q);
    EXPECT_EQ(local.atom_count(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(EvenSizes, QuadrantSizes,
                         ::testing::Values(std::pair{4, 4}, std::pair{6, 10}, std::pair{12, 8},
                                           std::pair{50, 50}));

// ---------------------------------------------------------------------------
// Realizer on the column axis, randomized
// ---------------------------------------------------------------------------

TEST(RealizerProperty, RandomColumnAssignmentsReplayCleanly) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    OccupancyGrid g = load_random(12, 9, {0.4, 4000 + static_cast<std::uint64_t>(trial)});
    const OccupancyGrid initial = g;
    std::vector<LineAssignment> lines;
    for (std::int32_t c = 0; c < g.width(); ++c) {
      const auto atoms = g.column(c).set_positions();
      if (atoms.empty()) continue;
      std::set<std::int32_t> placement;
      while (placement.size() < atoms.size()) {
        placement.insert(static_cast<std::int32_t>(rng.uniform_below(12)));
      }
      LineAssignment a;
      a.line = c;
      for (const auto p : atoms) a.sources.push_back(static_cast<std::int32_t>(p));
      a.targets.assign(placement.begin(), placement.end());
      lines.push_back(std::move(a));
    }
    Schedule s;
    (void)realize_assignments(g, Axis::Cols, lines, s);
    testutil::expect_replays_to(initial, s, g);
    // All moves on the column axis are vertical.
    for (const auto& m : s.moves()) EXPECT_FALSE(is_horizontal(m.dir));
  }
}

// ---------------------------------------------------------------------------
// Batch planning, randomized
// ---------------------------------------------------------------------------

// 50 random seeds — 10 random master seeds x 5 shots each: every pooled
// batch must agree shot-for-shot with the serial rearrangement loop run on
// the identical derived streams — replayed final grid, loss accounting —
// and each batch's aggregate fill-rate statistics must equal the serially
// computed ones exactly (same doubles, not approximately).
TEST(BatchProperty, FiftyRandomSeedsMatchTheSerialLoopExactly) {
  constexpr std::uint32_t kMasters = 10;
  constexpr std::uint32_t kShots = 5;
  Rng rng(0xBA7C4);
  for (std::uint32_t master = 0; master < kMasters; ++master) {
    batch::BatchConfig config;
    config.plan.target = centered_square(16, 10);
    config.grid_height = 16;
    config.grid_width = 16;
    config.fill = 0.65;
    config.shots = kShots;
    config.exec.workers = 4;
    config.master_seed = rng.next_u64();
    config.loss.per_move_loss = 0.02;
    config.loss.background_loss = 0.005;
    config.loss.seed = rng.next_u64();
    config.max_rounds = 6;
    config.exec.keep_schedules = true;

    const batch::BatchPlanner planner(config);
    const batch::BatchReport pooled = planner.run();
    ASSERT_EQ(pooled.shots.size(), kShots);

    double serial_fill_sum = 0.0;
    std::size_t serial_successes = 0;
    for (std::uint32_t shot = 0; shot < kShots; ++shot) {
      const std::uint64_t seed = derive_seed(config.master_seed, shot);
      const OccupancyGrid initial = load_random(16, 16, {config.fill, seed});
      rt::LoopConfig loop_config;
      loop_config.plan = config.plan;
      loop_config.loss = planner.effective_loss();
      loop_config.max_rounds = config.max_rounds;
      loop_config.shot_index = shot;
      const rt::LoopReport serial = rt::run_rearrangement_loop(initial, loop_config);

      const batch::ShotResult& batched = pooled.shots[shot];
      EXPECT_EQ(batched.planned_input, initial) << "master " << master << " shot " << shot;
      EXPECT_EQ(batched.final_grid, serial.final_grid) << "master " << master << " shot " << shot;
      EXPECT_EQ(batched.atoms_lost, serial.total_atoms_lost) << "shot " << shot;
      EXPECT_EQ(batched.success, serial.success) << "shot " << shot;
      EXPECT_EQ(batched.rounds, serial.rounds_used()) << "shot " << shot;

      const std::int64_t filled = serial.final_grid.atom_count(config.plan.target);
      serial_fill_sum += static_cast<double>(filled) /
                         static_cast<double>(config.plan.target.area());
      serial_successes += serial.success ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(pooled.mean_fill_rate(), serial_fill_sum / kShots);
    EXPECT_DOUBLE_EQ(pooled.success_rate(),
                     static_cast<double>(serial_successes) / kShots);
  }
}

// Lossless single-round shots: every retained schedule must replay from the
// shot's planned input exactly onto its reported final grid (the schedule
// *is* the rearrangement when no atom is lost).
TEST(BatchProperty, LosslessShotsReplayOntoTheirFinalGrids) {
  batch::BatchConfig config;
  config.plan.target = centered_square(14, 8);
  config.grid_height = 14;
  config.grid_width = 14;
  config.fill = 0.6;
  config.shots = 16;
  config.exec.workers = 4;
  config.loss = {.per_move_loss = 0.0, .background_loss = 0.0};
  config.max_rounds = 1;
  config.exec.keep_schedules = true;
  config.master_seed = 0xF1F7;

  const batch::BatchReport report = batch::BatchPlanner(config).run();
  for (const batch::ShotResult& shot : report.shots) {
    ASSERT_EQ(shot.schedules.size(), 1u) << "shot " << shot.shot;
    testutil::expect_replays_to(shot.planned_input, shot.schedules.front(), shot.final_grid);
  }
}

// 50 seeds of cache-hit-vs-cold-plan bit-equality: for every workload the
// cached path must return *exactly* the cold plan — schedule, final grid
// and stats — across both plan modes. This is the property the whole
// "fingerprints are cache-invariant" guarantee reduces to.
TEST(PlanCacheProperty, FiftySeedCacheHitVsColdPlanBitEquality) {
  exec::PlanCache cache;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    QrmConfig config;
    config.target = centered_square(16, seed % 2 == 0 ? 8 : 10);
    config.mode = seed % 3 == 0 ? PlanMode::Compact : PlanMode::Balanced;
    const QrmPlanner planner(config);
    const std::uint64_t key = exec::PlanCache::config_key("qrm", config);
    const OccupancyGrid grid = load_random(16, 16, {0.55 + 0.3 * (seed % 5) / 5.0, seed});

    const PlanResult cold = planner.plan(grid);
    cache.insert(key, grid, planner.plan(grid));
    const std::shared_ptr<const PlanResult> hit = cache.find(key, grid);
    ASSERT_NE(hit, nullptr) << "seed " << seed;
    EXPECT_EQ(hit->schedule, cold.schedule) << "seed " << seed;
    EXPECT_EQ(hit->final_grid, cold.final_grid) << "seed " << seed;
    EXPECT_EQ(hit->stats, cold.stats) << "seed " << seed;
    EXPECT_EQ(*hit, cold) << "seed " << seed;
  }
}

// Shard-merge equivalence: any shard count x any worker count must merge
// to a report whose deterministic CSV/JSON bytes are identical to the
// sequential single-shard run's.
TEST(ParallelPlanProperty, FiftyRandomSeedsPlanBitEqualAcrossWorkerCounts) {
  // The intra-plan determinism contract at property scale: across random
  // even geometries, fills, and both pass modes, a quadrant-parallel plan
  // (transient pool, worker count drawn per seed) is the bit-identical
  // PlanResult of the sequential planner.
  Rng rng(0xC0FFEE);
  for (int seed = 0; seed < 50; ++seed) {
    const std::int32_t size = 2 * static_cast<std::int32_t>(8 + rng.uniform_below(25));
    const std::int32_t target = std::max<std::int32_t>(2, size * 6 / 10 / 2 * 2);
    const double fill = 0.45 + 0.4 * rng.uniform01();
    const OccupancyGrid grid = testutil::seeded_grid(size, size, fill, rng.next_u64());

    QrmConfig config;
    config.target = centered_square(size, target);
    config.mode = seed % 2 == 0 ? PlanMode::Balanced : PlanMode::Compact;
    const PlanResult sequential = QrmPlanner(config).plan(grid);

    PlanParallelism parallelism;
    parallelism.workers = 1 + rng.uniform_below(8);
    EXPECT_EQ(QrmPlanner(config, parallelism).plan(grid), sequential)
        << "seed " << seed << ": " << size << "x" << size << " fill " << fill << " "
        << to_cstring(config.mode) << " workers " << parallelism.workers;
  }
}

TEST(ShardProperty, AnyShardAndWorkerCountMergesToIdenticalReportBytes) {
  std::vector<scenario::ScenarioSpec> specs;
  for (int i = 0; i < 4; ++i) {
    scenario::ScenarioSpec spec;
    spec.name = "prop-" + std::to_string(i);
    spec.grid_height = spec.grid_width = 16;
    spec.target_rows = spec.target_cols = 8;
    spec.load = i % 2 == 0 ? scenario::LoadProfile::Uniform : scenario::LoadProfile::Pattern;
    spec.fill = 0.7;
    spec.shots = 3;
    spec.seed = 0xABC + i;
    spec.max_rounds = 3;
    specs.push_back(spec);
  }

  const auto report_bytes = [](const scenario::CampaignReport& report) {
    std::ostringstream csv;
    scenario::write_csv(report, csv, scenario::ReportMode::Deterministic);
    std::ostringstream json;
    scenario::write_json(report, json, scenario::ReportMode::Deterministic);
    return csv.str() + "\n---\n" + json.str();
  };

  scenario::CampaignConfig sequential;
  sequential.exec.workers = 1;
  const std::string expected = report_bytes(scenario::CampaignRunner(sequential).run(specs));

  for (std::uint32_t shards = 1; shards <= 6; ++shards) {
    for (const std::uint32_t workers : {1u, 2u, 4u}) {
      scenario::CampaignConfig config;
      config.exec.workers = workers;
      config.shards = shards;
      EXPECT_EQ(report_bytes(scenario::CampaignRunner(config).run(specs)), expected)
          << shards << " shards, " << workers << " workers";
    }
  }
}

// ---------------------------------------------------------------------------
// Hostile physics, randomized
// ---------------------------------------------------------------------------

// 50 random seeds — 10 masters x 5 shots with every hostile axis engaged at
// once (correlated loss bursts, sinusoidal calibration drift, threshold
// miscalibration, dead AOD lines): the outcome must be invariant across
// worker counts, intra-plan fan-out, and scratch-vs-delta replanning —
// identical report fingerprints AND identical per-shot grids/accounting.
TEST(HostileProperty, FiftyRandomSeedsInvariantAcrossWorkersAndReplanModes) {
  Rng rng(0x4057113);
  for (std::uint32_t master = 0; master < 10; ++master) {
    batch::BatchConfig config;
    config.grid_height = config.grid_width = 16;
    config.plan.target = centered_square(16, 8);  // rows/cols 4..11
    config.plan.dead_channels = DeadChannelMask{{1}, {13}};
    config.fill = 0.75;
    config.shots = 5;
    config.master_seed = rng.next_u64();
    config.loss.seed = rng.next_u64();
    config.loss.per_move_loss = 0.01;
    config.loss.background_loss = 0.005;
    config.loss.burst_loss = 0.3;
    config.loss.burst_length = 5;
    config.imaged_detection = true;
    config.imaging.photons_per_atom = 28.0;
    config.imaging.seed = rng.next_u64();
    config.detection.threshold_bias = 1.2;
    config.drift.shape = DriftShape::Sine;
    config.drift.amplitude = 0.3;
    config.drift.period = 4;
    config.max_rounds = 6;

    config.exec.workers = 1;
    const batch::BatchReport reference = batch::BatchPlanner(config).run();

    const struct {
      std::uint32_t workers;
      std::uint32_t intra;
      ReplanMode replan;
    } variants[] = {
        {5, 1, ReplanMode::Scratch},
        {1, 4, ReplanMode::Scratch},
        {1, 1, ReplanMode::Delta},
        {5, 4, ReplanMode::Delta},
    };
    for (const auto& v : variants) {
      config.exec.workers = v.workers;
      config.exec.intra_plan_workers = v.intra;
      config.exec.replan = v.replan;
      const batch::BatchReport report = batch::BatchPlanner(config).run();
      EXPECT_EQ(report.fingerprint(), reference.fingerprint())
          << "master " << master << " workers " << v.workers << " intra " << v.intra;
      ASSERT_EQ(report.shots.size(), reference.shots.size());
      for (std::size_t s = 0; s < report.shots.size(); ++s) {
        EXPECT_EQ(report.shots[s].final_grid, reference.shots[s].final_grid)
            << "master " << master << " shot " << s;
        EXPECT_EQ(report.shots[s].atoms_lost, reference.shots[s].atoms_lost) << "shot " << s;
        EXPECT_EQ(report.shots[s].success, reference.shots[s].success) << "shot " << s;
        EXPECT_EQ(report.shots[s].rounds, reference.shots[s].rounds) << "shot " << s;
      }
    }
  }
}

}  // namespace
}  // namespace qrm

#pragma once
/// \file fnv.hpp
/// FNV-1a hashing primitives shared by every fingerprint in the repo
/// (batch reports, scenario campaigns). Fingerprints from different
/// modules are compared and combined, so there must be exactly one copy
/// of the constants and the mixing order.

#include <cstdint>
#include <string>

namespace qrm::fnv {

inline constexpr std::uint64_t kOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kPrime = 1099511628211ULL;

constexpr void mix_byte(std::uint64_t& hash, std::uint8_t byte) noexcept {
  hash ^= byte;
  hash *= kPrime;
}

/// Mix a 64-bit value little-endian byte by byte.
constexpr void mix_u64(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) mix_byte(hash, (value >> (8 * byte)) & 0xFFU);
}

/// Mix a length-prefixed byte string.
inline void mix_text(std::uint64_t& hash, const std::string& text) noexcept {
  mix_u64(hash, text.size());
  for (const char c : text) mix_byte(hash, static_cast<std::uint8_t>(c));
}

/// One-shot hash of a length-prefixed string. This is the key function of
/// every name-addressed structure in the repo: campaign sharding assigns a
/// scenario to hash_text(name) % shards, so shard membership is a stable
/// property of the scenario name alone (never of list order or timing).
[[nodiscard]] inline std::uint64_t hash_text(const std::string& text) noexcept {
  std::uint64_t hash = kOffset;
  mix_text(hash, text);
  return hash;
}

}  // namespace qrm::fnv

#pragma once
/// \file waveform.hpp
/// AWG / 2D-AOD physical-layer model: converts a rearrangement schedule into
/// the per-axis RF tone ramps an Arbitrary Waveform Generator would play,
/// and synthesizes sampled chirp waveforms.
///
/// The 2D-AOD maps an RF frequency to a deflection angle, i.e. to a lattice
/// row (vertical axis) or column (horizontal axis); one tone per selected
/// line creates the tweezer grid, and ramping the moving axis' tones by one
/// site spacing drags the grabbed atoms in lockstep. Constants are
/// representative of published tweezer systems, not a specific instrument —
/// the paper does not benchmark this layer; we model it to close the Fig. 1
/// loop end to end.

#include <cstdint>
#include <vector>

#include "moves/physical.hpp"
#include "moves/schedule.hpp"

namespace qrm::awg {

/// AOD/AWG operating point.
struct AodCalibration {
  double base_freq_mhz = 75.0;      ///< RF frequency of row/col index 0
  double site_spacing_mhz = 0.5;    ///< RF spacing between adjacent sites
  double ramp_time_per_step_us = 10.0;  ///< frequency ramp time per site step
  double settle_time_us = 20.0;    ///< tweezer on/off + settle per command
  double sample_rate_msps = 500.0;  ///< AWG DAC sample rate

  [[nodiscard]] double site_freq_mhz(std::int32_t index) const noexcept {
    return base_freq_mhz + site_spacing_mhz * static_cast<double>(index);
  }
};

/// Which AOD axis a tone drives.
enum class AodAxis : std::uint8_t { Rows, Cols };

/// One RF tone during one command: constant when start == end, a linear
/// chirp otherwise.
struct ToneRamp {
  AodAxis axis = AodAxis::Rows;
  double start_mhz = 0.0;
  double end_mhz = 0.0;
  double duration_us = 0.0;

  [[nodiscard]] bool is_chirp() const noexcept { return start_mhz != end_mhz; }
};

/// The AWG program for one ParallelMove: the selected-row tones, the
/// selected-column tones, and the command duration. Tones on the moving
/// axis chirp; tones on the static axis hold.
struct WaveformCommand {
  std::vector<ToneRamp> row_tones;
  std::vector<ToneRamp> col_tones;
  double duration_us = 0.0;
};

struct WaveformPlan {
  std::vector<WaveformCommand> commands;
  double total_duration_us = 0.0;

  [[nodiscard]] std::size_t chirp_count() const noexcept;
};

/// Compile a schedule into an AWG program. Each ParallelMove becomes one
/// command whose duration is settle + steps * ramp time (consistent with
/// PhysicalModel when configured identically).
[[nodiscard]] WaveformPlan build_waveform_plan(const Schedule& schedule,
                                               const AodCalibration& calibration);

/// The PhysicalModel equivalent of a calibration (so schedule duration
/// estimates and the AWG program agree by construction).
[[nodiscard]] PhysicalModel physical_model_of(const AodCalibration& calibration);

/// Synthesize one axis of one command as DAC samples: the sum of all its
/// (possibly chirping) tones, unit amplitude each. `max_samples` bounds
/// memory for long commands.
[[nodiscard]] std::vector<float> synthesize_axis(const WaveformCommand& command, AodAxis axis,
                                                 const AodCalibration& calibration,
                                                 std::size_t max_samples = 1 << 20);

}  // namespace qrm::awg

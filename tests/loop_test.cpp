// Tests for the multi-round rearrangement-under-loss loop and detection
// calibration tools.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/assert.hpp"
#include "detection/calibration.hpp"
#include "loading/loader.hpp"
#include "runtime/rearrangement_loop.hpp"

namespace qrm {
namespace {

rt::LoopConfig loop_config(std::int32_t size, std::int32_t target) {
  rt::LoopConfig config;
  config.plan.target = centered_square(size, target);
  return config;
}

TEST(RearrangementLoop, LosslessSucceedsInOneRound) {
  const OccupancyGrid initial = load_random(24, 24, {0.6, 3});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.0;
  config.loss.background_loss = 0.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.rounds_used(), 1u);
  EXPECT_EQ(report.total_atoms_lost, 0);
  EXPECT_EQ(report.final_grid.atom_count(), initial.atom_count());
  EXPECT_TRUE(report.final_grid.region_full(config.plan.target));
}

TEST(RearrangementLoop, ModerateLossRecoversWithinAFewRounds) {
  const OccupancyGrid initial = load_random(24, 24, {0.65, 5});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.02;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success) << "rounds used: " << report.rounds_used();
  EXPECT_GT(report.total_atoms_lost, 0);
  EXPECT_LE(report.rounds_used(), 6u);
  // Defects must shrink monotonically round over round.
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    EXPECT_LE(report.rounds[i].defects_before, report.rounds[i - 1].defects_before);
  }
}

TEST(RearrangementLoop, CatastrophicLossFailsGracefully) {
  const OccupancyGrid initial = load_random(20, 20, {0.55, 7});
  rt::LoopConfig config = loop_config(20, 14);
  config.loss.per_move_loss = 0.5;       // half of every transport dies
  config.loss.background_loss = 0.05;
  config.max_rounds = 8;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.total_atoms_lost, 0);
  // Atom accounting: initial = final + lost.
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, AtomAccountingExact) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 9});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.05;
  config.loss.background_loss = 0.01;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, DeterministicPerSeed) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 13});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.03;
  const rt::LoopReport a = rt::run_rearrangement_loop(initial, config);
  const rt::LoopReport b = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(a.rounds_used(), b.rounds_used());
  EXPECT_EQ(a.total_atoms_lost, b.total_atoms_lost);
  EXPECT_EQ(a.final_grid, b.final_grid);
}

TEST(RearrangementLoop, LossyMoveOrderBreaksTiesByRowThenColumn) {
  // Regression for the sort-tie bug: the execution order used to sort on
  // the front key alone, leaving sites abreast of each other (the common
  // case — a merged move's sites share the coordinate perpendicular to the
  // direction) in std::sort's unspecified tie order. Each site consumes RNG
  // draws, so tie order IS loss outcome; it must be fully specified.
  ParallelMove west;
  west.dir = Direction::West;
  west.steps = 1;
  west.sites = {{2, 5}, {0, 5}, {1, 5}, {1, 3}};
  // Front key for West is the column: (1,3) leads, then the col-5 tie
  // group in (row, col) order.
  const std::vector<Coord> west_order = rt::lossy_move_order(west);
  const std::vector<Coord> west_expected = {{1, 3}, {0, 5}, {1, 5}, {2, 5}};
  EXPECT_EQ(west_order, west_expected);

  ParallelMove north;
  north.dir = Direction::North;
  north.steps = 2;
  north.sites = {{4, 3}, {4, 1}, {2, 2}, {4, 2}};
  // Front key for North is the row: (2,2) leads, then the row-4 tie group
  // in column order.
  const std::vector<Coord> north_order = rt::lossy_move_order(north);
  const std::vector<Coord> north_expected = {{2, 2}, {4, 1}, {4, 2}, {4, 3}};
  EXPECT_EQ(north_order, north_expected);
}

TEST(RearrangementLoop, SuccessAlwaysEqualsTargetFullInTheFinalGrid) {
  // Invariant behind the single authoritative success computation: the
  // flag must equal region_full(target) of the reported final grid on
  // every exit path — one-round success, multi-round recovery, early
  // "not enough atoms" exits, and round-budget exhaustion.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const OccupancyGrid initial = load_random(20, 20, {0.45 + 0.05 * (seed % 4), seed});
    rt::LoopConfig config = loop_config(20, 12);
    config.loss.per_move_loss = seed % 2 == 0 ? 0.3 : 0.02;
    config.loss.background_loss = 0.01;
    config.max_rounds = 4;
    const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
    EXPECT_EQ(report.success, report.final_grid.region_full(config.plan.target));
  }
}

TEST(RearrangementLoop, CertainTransportLossKillsEveryMovedAtom) {
  // per_move_loss = 1.0: transport is a death sentence, so the loop can
  // only shed atoms until the "not enough atoms" exit fires.
  const OccupancyGrid initial = load_random(20, 20, {0.6, 11});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 1.0;
  config.loss.background_loss = 0.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_FALSE(report.success);
  EXPECT_LT(report.rounds_used(), static_cast<std::size_t>(config.max_rounds))
      << "the atom budget must exhaust before the round budget";
  EXPECT_GT(report.total_atoms_lost, 0);
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
  // Every round's losses are exactly the atoms that round had minus the
  // atoms that survived into the next accounting point.
  for (const rt::RoundReport& round : report.rounds) EXPECT_GE(round.atoms_lost, 0);
}

TEST(RearrangementLoop, CertainBackgroundLossEmptiesTheArrayInOneRound) {
  // background_loss = 1.0: every trapped atom dies between rounds, so
  // round 1 ends with an empty array and the loop exits on the atom
  // budget with everything accounted as lost.
  const OccupancyGrid initial = load_random(20, 20, {0.6, 17});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.0;
  config.loss.background_loss = 1.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.rounds_used(), 1u);
  EXPECT_EQ(report.final_grid.atom_count(), 0);
  EXPECT_EQ(report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, PrefilledTargetSucceedsBeforeBackgroundLossCanFire) {
  // A grid whose target is already defect-free succeeds in zero rounds:
  // the loop checks defects before planning, and background loss only
  // applies after an executed round — so even certain background loss
  // never fires.
  OccupancyGrid initial(20, 20);
  const Region target = centered_square(20, 12);
  for (std::int32_t r = 0; r < target.rows; ++r)
    for (std::int32_t c = 0; c < target.cols; ++c)
      initial.set({target.row0 + r, target.col0 + c});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.background_loss = 1.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.rounds_used(), 0u);
  EXPECT_EQ(report.total_atoms_lost, 0);
  EXPECT_EQ(report.final_grid, initial);
}

TEST(RearrangementLoop, NotEnoughAtomsExitsEarlyWithDefectsRemaining) {
  // Start with fewer atoms than the target needs: round 1 plans, loses
  // nothing necessarily, but the budget check atoms < target area stops
  // the loop immediately instead of burning the full round budget.
  const OccupancyGrid initial = load_random(20, 20, {0.25, 19});
  rt::LoopConfig config = loop_config(20, 12);
  ASSERT_LT(initial.atom_count(), static_cast<std::int64_t>(config.plan.target.area()));
  config.max_rounds = 10;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.rounds_used(), 1u);
  EXPECT_FALSE(report.final_grid.region_full(config.plan.target));
}

TEST(RearrangementLoop, RejectsBadConfig) {
  const OccupancyGrid initial(20, 20);
  rt::LoopConfig config = loop_config(20, 12);
  config.max_rounds = 0;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
  config.max_rounds = 1;
  config.loss.per_move_loss = 1.5;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
  config.loss.per_move_loss = 0.0;
  config.loss.burst_loss = 1.5;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
  config.loss.burst_loss = -0.1;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
}

// ---------------------------------------------------------------------------
// Hostile physics: correlated loss bursts + dead AOD channels
// ---------------------------------------------------------------------------

TEST(RearrangementLoop, CertainBurstLossKillsARunEveryRound) {
  const OccupancyGrid initial = load_random(24, 24, {0.65, 5});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.0;
  config.loss.background_loss = 0.0;
  config.loss.burst_loss = 1.0;  // a burst fires on every executed round
  config.loss.burst_length = 6;
  config.max_rounds = 4;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  // Every executed round loses exactly one burst (no other loss channel):
  // 6 atoms, or everything left if fewer remain.
  for (const rt::RoundReport& round : report.rounds) {
    EXPECT_EQ(round.atoms_lost, std::min<std::int64_t>(6, round.atoms_before));
  }
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, DisabledBurstLossDrawsNothingFromTheLossStream) {
  // burst_loss = 0 must consume ZERO RNG draws — otherwise every
  // pre-existing loss outcome would shift. Differential form: a run with
  // burst disabled is bit-identical whatever burst_length says, and equal
  // to a config that never heard of bursts.
  const OccupancyGrid initial = load_random(24, 24, {0.62, 11});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.03;
  config.loss.background_loss = 0.01;
  const rt::LoopReport baseline = rt::run_rearrangement_loop(initial, config);
  config.loss.burst_loss = 0.0;
  config.loss.burst_length = 999;  // irrelevant while the probability is 0
  const rt::LoopReport disabled = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(disabled.final_grid, baseline.final_grid);
  EXPECT_EQ(disabled.total_atoms_lost, baseline.total_atoms_lost);
  EXPECT_EQ(disabled.rounds_used(), baseline.rounds_used());
}

TEST(RearrangementLoop, DeadLinesFreezeAtomsButTheLoopStillFills) {
  // A dead row above the target and a dead column to its left: atoms there
  // are frozen (no pickup, no loss exposure via moves), the planner works
  // on the masked grid, and movers hop *across* the dead lines — a 0.65
  // fill still has plenty of usable stock, so the loop must succeed.
  const OccupancyGrid initial = load_random(24, 24, {0.65, 13});
  rt::LoopConfig config = loop_config(24, 12);  // target rows/cols 6..18
  config.plan.dead_channels = DeadChannelMask{{3}, {20}};
  config.loss.per_move_loss = 0.0;
  config.loss.background_loss = 0.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success);
  EXPECT_TRUE(report.final_grid.region_full(config.plan.target));
  // Frozen atoms persist bit-exactly (no loss channels are on).
  for (std::int32_t c = 0; c < 24; ++c)
    EXPECT_EQ(report.final_grid.occupied({3, c}), initial.occupied({3, c})) << "col " << c;
  for (std::int32_t r = 0; r < 24; ++r)
    EXPECT_EQ(report.final_grid.occupied({r, 20}), initial.occupied({r, 20})) << "row " << r;
}

TEST(RearrangementLoop, EmptyDeadMaskIsBitExactNoOp) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 17});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.02;
  const rt::LoopReport baseline = rt::run_rearrangement_loop(initial, config);
  config.plan.dead_channels = DeadChannelMask{};
  const rt::LoopReport masked = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(masked.final_grid, baseline.final_grid);
  EXPECT_EQ(masked.total_atoms_lost, baseline.total_atoms_lost);
}

// ---------------------------------------------------------------------------
// Detection calibration
// ---------------------------------------------------------------------------

TEST(Calibration, SweepFindsZeroErrorWindowAtHighSnr) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 21});
  ImagingConfig imaging;
  imaging.photons_per_atom = 400.0;
  imaging.background_photons = 1.0;
  const FluorescenceImage image = render_image(truth, imaging);
  const auto sweep = threshold_sweep(image, truth, imaging.pixels_per_site, 128);
  const ThresholdPoint best = best_threshold(sweep);
  EXPECT_EQ(best.false_positives + best.false_negatives, 0);
  EXPECT_DOUBLE_EQ(best.error_rate, 0.0);
}

TEST(Calibration, SweepEndpointsMisclassifyOneClass) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 22});
  ImagingConfig imaging;
  const FluorescenceImage image = render_image(truth, imaging);
  const auto sweep = threshold_sweep(image, truth, imaging.pixels_per_site, 32);
  // Lowest threshold: everything detected -> only false positives.
  EXPECT_EQ(sweep.front().false_negatives, 0);
  EXPECT_EQ(sweep.front().false_positives, 196 - truth.atom_count());
  // Highest threshold: at most one site (the max) detected.
  EXPECT_GE(sweep.back().false_negatives, truth.atom_count() - 1);
}

TEST(Calibration, SnrGrowsWithSignal) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 23});
  ImagingConfig dim;
  dim.photons_per_atom = 20.0;
  dim.background_photons = 6.0;
  ImagingConfig bright = dim;
  bright.photons_per_atom = 400.0;
  const double snr_dim = site_separation_snr(render_image(truth, dim), truth, 5);
  const double snr_bright = site_separation_snr(render_image(truth, bright), truth, 5);
  EXPECT_GT(snr_bright, snr_dim);
  EXPECT_GT(snr_bright, 5.0) << "bright sites must separate cleanly";
}

TEST(Calibration, SnrZeroWhenOneClassEmpty) {
  const OccupancyGrid truth(6, 6);  // no atoms
  const FluorescenceImage image = render_image(truth, {});
  EXPECT_DOUBLE_EQ(site_separation_snr(image, truth, 5), 0.0);
}

}  // namespace
}  // namespace qrm

#include "scenario/registry.hpp"

#include "util/assert.hpp"

namespace qrm::scenario {

namespace {

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> scenarios;

  {
    // The paper's evaluation workload: Bernoulli loads into the centred
    // 30x30 target of a 50x50 array (Fig. 7). fill=0.6 rather than the
    // collisional-blockade 0.5 so the target is feasible on most shots,
    // matching the existing fig7/batch sweeps.
    ScenarioSpec spec;
    spec.name = "paper-fig7";
    spec.description = "Fig. 7 reproduction: 50x50 Bernoulli(0.6) into the centred 30x30 target";
    spec.tags = {"paper"};
    spec.grid_height = spec.grid_width = 50;
    spec.target_rows = spec.target_cols = 30;
    spec.fill = 0.6;
    spec.shots = 32;
    spec.seed = 0xF167A;
    spec.per_move_loss = 0.01;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "smoke-uniform";
    spec.description = "small Bernoulli(0.6) workload sized for CI smoke runs";
    spec.tags = {"smoke"};
    spec.grid_height = spec.grid_width = 24;
    spec.fill = 0.6;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "adversarial-row-stripes";
    spec.description = "even rows full, odd rows empty - worst case for column balance";
    spec.tags = {"smoke", "adversarial"};
    spec.load = LoadProfile::Pattern;
    spec.pattern = Pattern::RowStripes;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "adversarial-checkerboard";
    spec.description = "exactly 50% fill arranged adversarially for row balance";
    spec.tags = {"smoke", "adversarial"};
    spec.load = LoadProfile::Pattern;
    spec.pattern = Pattern::Checkerboard;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "adversarial-border";
    spec.description = "only the outer ring occupied - maximal travel into a small target";
    spec.tags = {"smoke", "adversarial"};
    spec.load = LoadProfile::Pattern;
    spec.pattern = Pattern::Border;
    spec.target_rows = spec.target_cols = 8;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "clustered-defect";
    spec.description = "Bernoulli(0.65) with four emptied blast regions (correlated loss)";
    spec.tags = {"smoke"};
    spec.grid_height = spec.grid_width = 48;
    spec.load = LoadProfile::Clustered;
    spec.fill = 0.65;
    spec.clusters = 4;
    spec.cluster_radius = 3;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "low-fill-30";
    spec.description = "30% fill retried until the 12x12 target is feasible (at-least loader)";
    spec.tags = {"smoke"};
    spec.grid_height = spec.grid_width = 40;
    spec.target_rows = spec.target_cols = 12;
    spec.load = LoadProfile::AtLeast;
    spec.fill = 0.3;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "gradient-ramp";
    spec.description = "linear 0.25->0.85 fill ramp across rows (beam-profile falloff)";
    spec.tags = {"smoke"};
    spec.grid_height = spec.grid_width = 48;
    spec.load = LoadProfile::Gradient;
    spec.gradient_start = 0.25;
    spec.gradient_end = 0.85;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "baseline-tetris";
    spec.description = "the Tetris baseline planner on the smoke workload (planner A/B axis)";
    spec.tags = {"smoke", "baseline"};
    spec.grid_height = spec.grid_width = 24;
    spec.algorithm = "tetris";
    spec.fill = 0.6;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "arch-host-mediated";
    spec.description = "Fig. 2(a) control path: camera frame and move list cross the host link";
    spec.tags = {"smoke", "architecture"};
    spec.architecture = rt::Architecture::HostMediated;
    spec.fill = 0.6;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "arch-fpga-integrated";
    spec.description = "Fig. 2(b) control path: detection and planning stay on the FPGA";
    spec.tags = {"smoke", "architecture"};
    spec.architecture = rt::Architecture::FpgaIntegrated;
    spec.fill = 0.6;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    // Detection-error regime: the full Fig. 1 workflow with a noisy camera.
    // 24 photons/atom against ~4 background is marginal on purpose, so the
    // automatic threshold misclassifies a few sites per shot and the
    // planner works from an imperfect occupancy matrix.
    ScenarioSpec spec;
    spec.name = "imaged-detection";
    spec.description = "plans on detected occupancy from noisy rendered frames, not ground truth";
    spec.tags = {"smoke", "detection"};
    spec.grid_height = spec.grid_width = 24;
    spec.fill = 0.6;
    spec.imaged_detection = true;
    spec.photons_per_atom = 24.0;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  // --- Hostile physics: fault injection, drift, dead channels -------------
  // Each axis gets its own scenario (so a fingerprint drift names the broken
  // axis) plus one kitchen-sink combining all of them. All are smoke-sized:
  // these run under TSan in the hostile-physics CI job.
  {
    ScenarioSpec spec;
    spec.name = "hostile-burst-loss";
    spec.description = "correlated loss bursts: 30% of rounds lose a 6-atom run";
    spec.tags = {"smoke", "hostile"};
    spec.fill = 0.6;
    spec.burst_loss = 0.3;
    spec.burst_length = 6;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-calibration-drift";
    spec.description = "sinusoidal photon-rate drift (+/-50% over 4 shots) on marginal imaging";
    spec.tags = {"smoke", "hostile", "detection"};
    spec.grid_height = spec.grid_width = 24;
    spec.fill = 0.6;
    spec.imaged_detection = true;
    spec.photons_per_atom = 24.0;
    spec.drift = DriftShape::Sine;
    spec.drift_amplitude = 0.5;
    spec.drift_period = 4;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-threshold-bias";
    spec.description = "miscalibrated detector: auto threshold applied 35% too high";
    spec.tags = {"smoke", "hostile", "detection"};
    spec.grid_height = spec.grid_width = 24;
    spec.fill = 0.6;
    spec.imaged_detection = true;
    spec.photons_per_atom = 24.0;
    spec.threshold_bias = 1.35;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-dead-rows";
    spec.description = "two dead AOD rows outside the target; the legalizer hops across them";
    spec.tags = {"smoke", "hostile"};
    spec.fill = 0.6;
    spec.dead_rows = {2, 28};
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-dead-cols-delta";
    spec.description = "dead AOD columns under delta replanning (pinned bit-equal to scratch)";
    spec.tags = {"smoke", "hostile"};
    spec.fill = 0.6;
    spec.dead_cols = {1, 30};
    spec.replan = ReplanMode::Delta;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-corner-block";
    spec.description = "every atom packed into one quadrant - worst case cross-quadrant balance";
    spec.tags = {"smoke", "hostile", "adversarial"};
    spec.load = LoadProfile::Pattern;
    spec.pattern = Pattern::CornerBlock;
    spec.target_rows = spec.target_cols = 14;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-half-grid";
    spec.description = "top half full, bottom half empty - maximal one-directional rebalance";
    spec.tags = {"smoke", "hostile", "adversarial"};
    spec.load = LoadProfile::Pattern;
    spec.pattern = Pattern::HalfGrid;
    spec.shots = 4;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "hostile-kitchen-sink";
    spec.description = "every hostile axis at once: bursts, drift, bias, dead lines, delta replan";
    spec.tags = {"smoke", "hostile"};
    spec.grid_height = spec.grid_width = 24;
    spec.fill = 0.6;
    spec.imaged_detection = true;
    spec.photons_per_atom = 24.0;
    spec.drift = DriftShape::Ramp;
    spec.drift_amplitude = 0.3;
    spec.drift_period = 5;
    spec.threshold_bias = 1.2;
    spec.burst_loss = 0.2;
    spec.burst_length = 4;
    spec.dead_rows = {1};
    spec.dead_cols = {22};
    spec.replan = ReplanMode::Delta;
    spec.shots = 8;
    spec.max_rounds = 6;
    scenarios.push_back(spec);
  }
  {
    // Production-scale stress point: ~36k traps. Deliberately not tagged
    // "smoke" - minutes, not seconds.
    ScenarioSpec spec;
    spec.name = "large-grid-256";
    spec.description = "256x256 stress workload (~36k atoms into the 152x152 target)";
    spec.tags = {"stress"};
    spec.grid_height = spec.grid_width = 256;
    spec.fill = 0.6;
    spec.shots = 4;
    spec.max_rounds = 4;
    scenarios.push_back(spec);
  }

  for (const ScenarioSpec& spec : scenarios) validate(spec);
  return scenarios;
}

}  // namespace

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> scenarios = build_registry();
  return scenarios;
}

const ScenarioSpec& find_scenario(const std::string& name) {
  for (const ScenarioSpec& spec : registry())
    if (spec.name == name) return spec;
  std::string known;
  for (const ScenarioSpec& spec : registry()) known += (known.empty() ? "" : ", ") + spec.name;
  throw PreconditionError("unknown scenario '" + name + "' (registry: " + known + ")");
}

std::vector<ScenarioSpec> filter_registry(const std::string& filter) {
  std::vector<ScenarioSpec> matched;
  for (const ScenarioSpec& spec : registry())
    if (spec.matches_filter(filter)) matched.push_back(spec);
  return matched;
}

}  // namespace qrm::scenario

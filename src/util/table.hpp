#pragma once
/// \file table.hpp
/// ASCII table rendering for bench binaries: every figure/table reproduction
/// prints a paper-style table through this helper so outputs are uniform.

#include <string>
#include <vector>

namespace qrm {

/// Column-aligned text table. Cells are strings; numeric formatting is the
/// caller's responsibility (see format helpers below).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with a rule under the header, columns padded to content width.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
[[nodiscard]] std::string fmt_double(double value, int precision = 2);
/// Engineering-style microseconds ("1.04 us" / "543 ns" / "2.1 ms").
[[nodiscard]] std::string fmt_time_us(double microseconds);
/// Multiplicative factor ("54.2x").
[[nodiscard]] std::string fmt_speedup(double factor);
/// Percentage ("6.31%").
[[nodiscard]] std::string fmt_percent(double fraction_0_to_1, int precision = 2);

}  // namespace qrm

#pragma once
/// \file shift_kernel.hpp
/// Cycle-level model of the paper's Shift Kernel (Sec. IV-C, Fig. 6).
///
/// The kernel admits one row per cycle from its input queue. Each in-flight
/// row is scanned one bit per cycle from the LSB (the centre-most trap): a
/// '1' contributes to the corresponding column buffer, a '0' sets the shift
/// command bit for that position, and the row register shifts right to
/// expose the next bit. A row of width Q_w therefore completes Q_w cycles
/// after admission, and a full pass over Q_h rows takes Q_h + Q_w cycles —
/// the fully pipelined behaviour the paper reports.
///
/// The model is bit-exact: the emitted shift-command bits are the hole map
/// whose prefix popcount is each atom's compaction displacement, which the
/// tests cross-check against the behavioural planner.

#include <optional>
#include <string>
#include <vector>

#include "hwmodel/beats.hpp"
#include "hwmodel/fifo.hpp"
#include "hwmodel/sim.hpp"

namespace qrm::hw {

class ShiftKernel final : public Module {
 public:
  /// `sen_limit`: positions at or beyond the gate are not scanned for shift
  /// commands (the paper's manual s_en mechanism); negative disables.
  ShiftKernel(std::string name, Fifo<RowBeat>& in, Fifo<CommandBeat>& out,
              std::int32_t sen_limit = -1);

  void eval(std::uint64_t cycle) override;
  [[nodiscard]] bool busy() const override;

  /// Enable per-cycle text tracing (the Fig. 6 walk-through example).
  void enable_trace() { trace_enabled_ = true; }
  [[nodiscard]] const std::vector<std::string>& trace() const noexcept { return trace_; }

  [[nodiscard]] std::uint64_t rows_processed() const noexcept { return rows_processed_; }
  [[nodiscard]] std::size_t peak_in_flight() const noexcept { return peak_in_flight_; }

 private:
  struct Scan {
    std::int32_t line;
    BitRow shifting;   ///< row register, shifted right one bit per cycle
    BitRow original;   ///< as admitted (for verification and records)
    BitRow commands;   ///< accumulated shift commands
    std::uint32_t bit_index = 0;
    std::int32_t records_override;
  };

  Fifo<RowBeat>& in_;
  Fifo<CommandBeat>& out_;
  std::int32_t sen_limit_;
  std::vector<Scan> in_flight_;
  std::uint64_t rows_processed_ = 0;
  std::size_t peak_in_flight_ = 0;
  bool trace_enabled_ = false;
  std::vector<std::string> trace_;
};

}  // namespace qrm::hw

#pragma once
/// \file control_system.hpp
/// End-to-end control-system model: the full Fig. 1 workflow (camera image
/// -> atom detection -> rearrangement analysis -> AWG program), under the
/// two architectures of Fig. 2:
///
///  (a) HostMediated — the camera frame crosses to a host PC, detection and
///      scheduling run on the CPU, and the move list crosses back to the
///      AWG FPGA. Every hop pays link latency and bandwidth.
///  (b) FpgaIntegrated — detection and the QRM accelerator live on the same
///      FPGA as the camera link and the AWG; only on-chip handoffs remain.
///
/// Link and detection-throughput constants are synthetic but representative
/// (CoaXPress-class camera link, PCIe-class host link); the point of the
/// model — and of the paper's Fig. 2 argument — is the *structure* of the
/// cost: architecture (b) removes both host hops entirely.

#include <cstdint>
#include <string>

#include "awg/waveform.hpp"
#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "hwmodel/accelerator.hpp"
#include "lattice/grid.hpp"

namespace qrm::batch {
struct BatchConfig;
struct BatchReport;
}  // namespace qrm::batch

namespace qrm::rt {

enum class Architecture : std::uint8_t {
  HostMediated,   ///< Fig. 2(a): detection + scheduling on the host CPU
  FpgaIntegrated  ///< Fig. 2(b): everything on the FPGA
};

[[nodiscard]] constexpr const char* to_cstring(Architecture a) noexcept {
  return a == Architecture::HostMediated ? "host-mediated (Fig. 2a)" : "FPGA-integrated (Fig. 2b)";
}

/// Interconnect timing for the host round trip of architecture (a).
struct LinkModel {
  double latency_us = 50.0;          ///< per transfer: DMA setup, driver, IRQ
  double bandwidth_bytes_per_us = 4000.0;  ///< ~4 GB/s PCIe-class effective

  [[nodiscard]] double transfer_us(double bytes) const noexcept {
    return latency_us + bytes / bandwidth_bytes_per_us;
  }
};

struct SystemConfig {
  Architecture architecture = Architecture::FpgaIntegrated;
  ImagingConfig imaging;
  DetectionConfig detection;
  hw::AcceleratorConfig accelerator;  ///< also supplies the QRM plan config
  /// Intra-plan fan-out for the analysis stage (core/config.hpp). Pure
  /// mechanism: plans are bit-identical for any value, so only the measured
  /// analysis wall time can change.
  PlanParallelism plan_parallelism;
  awg::AodCalibration aod;
  LinkModel host_link;
  /// FPGA detection throughput, pixels per cycle at the accelerator clock
  /// (architecture (b) runs thresholding in streaming hardware).
  std::uint32_t detection_pixels_per_cycle = 16;
};

/// Per-stage latency breakdown of one rearrangement round trip.
struct WorkflowReport {
  double detection_us = 0.0;   ///< image -> occupancy bitfield
  double transfer_us = 0.0;    ///< host-link hops (architecture (a) only)
  double analysis_us = 0.0;    ///< rearrangement schedule analysis
  double awg_program_us = 0.0; ///< physical execution time of the schedule
  bool target_filled = false;
  std::int64_t defects_remaining = 0;
  DetectionErrors detection_errors;
  std::size_t schedule_commands = 0;

  /// Control-path latency (everything before atoms start moving): the
  /// quantity the paper's architecture argument is about.
  [[nodiscard]] double control_latency_us() const noexcept {
    return detection_us + transfer_us + analysis_us;
  }
  [[nodiscard]] double total_us() const noexcept {
    return control_latency_us() + awg_program_us;
  }
  [[nodiscard]] std::string to_string() const;
};

/// Runs the full workflow against ground-truth atom positions.
class ControlSystem {
 public:
  explicit ControlSystem(SystemConfig config);

  [[nodiscard]] const SystemConfig& config() const noexcept { return config_; }

  /// Image the true atom distribution, detect, plan, and compile the AWG
  /// program; reports per-stage latencies for the configured architecture.
  [[nodiscard]] WorkflowReport run(const OccupancyGrid& true_atoms) const;

  /// Fan a batch of independent shots across a worker pool, with this
  /// system's plan / imaging / detection settings overriding the batch
  /// request's. Deterministic regardless of worker count (see
  /// batch/batch_planner.hpp). Defined by the qrm::batch module — include
  /// "batch/batch_planner.hpp" and link qrm::batch to use it; the runtime
  /// module itself stays below batch in the layering.
  [[nodiscard]] batch::BatchReport run_batch(const batch::BatchConfig& request) const;

 private:
  SystemConfig config_;
};

}  // namespace qrm::rt

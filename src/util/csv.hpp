#pragma once
/// \file csv.hpp
/// Minimal CSV emission for experiment outputs (scaling studies, sweeps).

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace qrm {

/// Streams rows of comma-separated values. Values containing commas or
/// quotes are quoted per RFC 4180. The writer does not own `out`.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write the header row. Call at most once, before any data row.
  void header(const std::vector<std::string>& names);

  /// Write one data row from heterogeneous printable values.
  template <typename... Ts>
  void row(const Ts&... values) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(values));
    (cells.push_back(to_cell(values)), ...);
    write_cells(cells);
  }

  /// Write one data row from pre-stringified cells.
  void write_row(const std::vector<std::string>& cells) { write_cells(cells); }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }
  static std::string escape(const std::string& cell);
  void write_cells(const std::vector<std::string>& cells);

  std::ostream* out_;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Parse RFC 4180 CSV text into rows of cells: quoted fields may contain
/// commas, newlines, carriage returns and doubled quotes; a trailing
/// newline does not produce an empty final row. Inverse of CsvWriter for
/// all writable content (rows are never empty; see write_cells). Throws
/// PreconditionError on malformed input (stray quote, text after a closing
/// quote, unterminated quoted field).
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(const std::string& text);

/// Convenience owner of an output file + CsvWriter.
class CsvFile {
 public:
  explicit CsvFile(const std::string& path) : stream_(path), writer_(stream_) {}
  [[nodiscard]] bool is_open() const { return stream_.is_open(); }
  CsvWriter& writer() { return writer_; }

 private:
  std::ofstream stream_;
  CsvWriter writer_;
};

}  // namespace qrm

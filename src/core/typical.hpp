#pragma once
/// \file typical.hpp
/// The "typical rearrangement procedure" of the paper's Sec. III-A / Fig. 3:
/// a non-quadrant reference that fills centre columns from the sides, column
/// by column, then repeats the process row-wise.
///
/// Filling each successive centre-outward column by block-shifting the
/// remainder of the row is, in aggregate, exactly per-half-row compaction
/// toward the centre; this implementation expresses that directly. It exists
/// (a) as the behavioural reference QRM's compact mode must agree with, and
/// (b) as the workload for the Fig. 3 walk-through example.

#include "core/config.hpp"
#include "lattice/grid.hpp"

namespace qrm {

struct TypicalConfig {
  Region target;                     ///< centred, even-sized
  std::int32_t max_iterations = 4;   ///< H+V repetitions
  bool aod_legalize = true;
};

/// Plan with the typical (non-quadrant) procedure. Same preconditions as
/// QrmPlanner::plan. The returned stats reuse the QRM structures; `feasible`
/// is always true (the procedure has no demand computation).
[[nodiscard]] PlanResult plan_typical(const OccupancyGrid& initial, const TypicalConfig& config);

}  // namespace qrm

// Tests for the stochastic loading substrate.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "loading/loader.hpp"

namespace qrm {
namespace {

TEST(Loader, DeterministicPerSeed) {
  const OccupancyGrid a = load_random(20, 20, {0.5, 42});
  const OccupancyGrid b = load_random(20, 20, {0.5, 42});
  EXPECT_EQ(a, b);
  const OccupancyGrid c = load_random(20, 20, {0.5, 43});
  EXPECT_NE(a, c);
}

TEST(Loader, FillFractionConcentrates) {
  const OccupancyGrid g = load_random(100, 100, {0.5, 1});
  const double fill = static_cast<double>(g.atom_count()) / (100.0 * 100.0);
  EXPECT_NEAR(fill, 0.5, 0.03);
  const OccupancyGrid h = load_random(100, 100, {0.9, 2});
  EXPECT_NEAR(static_cast<double>(h.atom_count()) / 1e4, 0.9, 0.02);
}

TEST(Loader, ExtremesAreExact) {
  EXPECT_EQ(load_random(10, 10, {0.0, 3}).atom_count(), 0);
  EXPECT_EQ(load_random(10, 10, {1.0, 3}).atom_count(), 100);
  EXPECT_THROW((void)load_random(10, 10, {1.5, 3}), PreconditionError);
}

TEST(Loader, AtLeastRetriesUntilEnough) {
  // Demand slightly above the mean so the first draw sometimes misses.
  const OccupancyGrid g = load_random_at_least(20, 20, {0.5, 9}, 205);
  EXPECT_GE(g.atom_count(), 205);
}

TEST(Loader, AtLeastReturnsBestEffortWhenImpossible) {
  const OccupancyGrid g = load_random_at_least(4, 4, {0.5, 9}, 1000, 4);
  EXPECT_LT(g.atom_count(), 1000);
  EXPECT_GT(g.atom_count(), 0);
}

TEST(Loader, ClusteredRemovesAtoms) {
  ClusteredLoaderConfig config;
  config.base = {0.9, 5};
  config.clusters = 4;
  config.cluster_radius = 3;
  const OccupancyGrid g = load_clustered(30, 30, config);
  const OccupancyGrid base = load_random(30, 30, config.base);
  EXPECT_LT(g.atom_count(), base.atom_count());
}

TEST(Loader, Patterns) {
  EXPECT_EQ(load_pattern(4, 4, Pattern::Full).atom_count(), 16);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Empty).atom_count(), 0);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Checkerboard).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::RowStripes).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::ColStripes).atom_count(), 8);
  EXPECT_EQ(load_pattern(4, 4, Pattern::Border).atom_count(), 12);
  const OccupancyGrid cb = load_pattern(3, 3, Pattern::Checkerboard);
  EXPECT_TRUE(cb.occupied({0, 0}));
  EXPECT_FALSE(cb.occupied({0, 1}));
  EXPECT_TRUE(cb.occupied({1, 1}));
}

TEST(Loader, FeasibilityEstimate) {
  // 20x20 at 50% practically always yields >= 100 atoms and practically
  // never >= 300.
  EXPECT_GT(estimate_feasibility(20, 20, 0.5, 100, 200, 1), 0.99);
  EXPECT_LT(estimate_feasibility(20, 20, 0.5, 300, 200, 1), 0.01);
}

}  // namespace
}  // namespace qrm

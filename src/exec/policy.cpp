#include "exec/policy.hpp"

#include <memory>

#include "exec/plan_cache.hpp"
#include "util/rng.hpp"

namespace qrm::exec {

ExecPolicy resolve(ExecPolicy base, std::initializer_list<ExecOverrides> layers) {
  std::optional<bool> cache_wanted;
  for (const ExecOverrides& layer : layers) {
    if (layer.workers) base.workers = *layer.workers;
    if (layer.intra_plan_workers) base.intra_plan_workers = *layer.intra_plan_workers;
    if (layer.replan) base.replan = *layer.replan;
    if (layer.keep_schedules) base.keep_schedules = *layer.keep_schedules;
    if (layer.plan_cache) cache_wanted = *layer.plan_cache;
  }
  if (cache_wanted.has_value()) {
    if (*cache_wanted) {
      // Keep a pre-attached cache (cross-shard / cross-job sharing);
      // otherwise this resolution owns a fresh one.
      if (base.plan_cache == nullptr) base.plan_cache = std::make_shared<PlanCache>();
    } else {
      base.plan_cache = nullptr;
    }
  }
  return base;
}

std::uint64_t shot_seed(std::uint64_t master_seed, std::uint64_t shot) noexcept {
  return derive_seed(master_seed, shot);
}

std::uint64_t imaging_seed(std::uint64_t shot_seed) noexcept {
  return derive_seed(shot_seed, kImagingStream);
}

std::uint64_t loss_master_seed(std::uint64_t loss_seed) noexcept {
  return derive_seed(loss_seed, kLossDomain);
}

}  // namespace qrm::exec

#pragma once
/// \file dead_channels.hpp
/// Dead AOD row/column channels: hardware lines whose pickup/drop-off
/// tweezers are out of service.
///
/// Semantics (shared by the planner, the realizer, and the lossy loop):
///   - an atom sitting on a dead row or column is *frozen* — it can be
///     neither picked up nor dropped off, so it never moves and never
///     contributes to the target;
///   - the planner sees a masked grid (dead lines cleared), so frozen
///     atoms are invisible to planning and can never be scheduled;
///   - transit *across* a dead line is allowed — the shift command simply
///     hops over it with a multi-step move (see moves/realizer.cpp), so a
///     dead channel splits no line into unreachable halves.
///
/// The mask lives in QrmConfig so scratch planning, delta replanning, and
/// the plan cache all key on the same failure map, keeping delta == scratch
/// bit-identical under any mask.

#include <cstdint>
#include <vector>

#include "lattice/coord.hpp"
#include "lattice/grid.hpp"

namespace qrm {

/// Set of dead AOD channels. Both lists are sorted ascending and
/// duplicate-free (the spec parser enforces this; direct users must too).
struct DeadChannelMask {
  std::vector<std::int32_t> rows;  ///< dead row channels, sorted ascending
  std::vector<std::int32_t> cols;  ///< dead column channels, sorted ascending

  [[nodiscard]] bool empty() const noexcept { return rows.empty() && cols.empty(); }
  [[nodiscard]] bool row_dead(std::int32_t row) const noexcept;
  [[nodiscard]] bool col_dead(std::int32_t col) const noexcept;
  [[nodiscard]] bool site_dead(Coord site) const noexcept {
    return row_dead(site.row) || col_dead(site.col);
  }

  friend bool operator==(const DeadChannelMask&, const DeadChannelMask&) = default;
};

/// Returns `grid` with every atom on a dead row or column cleared — the
/// planner's view of a hardware array with broken channels. Out-of-range
/// mask entries are ignored (they name channels beyond this grid).
[[nodiscard]] OccupancyGrid mask_dead_lines(const OccupancyGrid& grid,
                                            const DeadChannelMask& mask);

}  // namespace qrm

#pragma once
/// \file grid.hpp
/// The trap-occupancy matrix: the binary image the detection stage produces
/// and the state that rearrangement algorithms transform.

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/coord.hpp"
#include "lattice/region.hpp"
#include "util/assert.hpp"
#include "util/bitrow.hpp"

namespace qrm {

/// Axis-aligned mirror / transpose operations (the LDM "flip" primitives of
/// the paper's Fig. 4).
enum class Flip {
  None,
  Horizontal,  ///< mirror columns: col -> width-1-col
  Vertical,    ///< mirror rows:    row -> height-1-row
  Transpose,   ///< mirror about the main diagonal: (r,c) -> (c,r)
  Rotate180,   ///< Horizontal then Vertical
};

/// Height x width binary occupancy matrix stored as one BitRow per row.
///
/// Invariant: all rows have width() == width_. Bit (r,c) set means trap
/// (r,c) holds an atom.
class OccupancyGrid {
 public:
  OccupancyGrid() = default;
  /// All-empty grid. Both dimensions may be zero (empty grid).
  OccupancyGrid(std::int32_t height, std::int32_t width);

  /// Parse from lines of '0'/'1' or '.'/'#'; all lines must share a length.
  [[nodiscard]] static OccupancyGrid from_strings(const std::vector<std::string>& lines);

  [[nodiscard]] std::int32_t height() const noexcept { return height_; }
  [[nodiscard]] std::int32_t width() const noexcept { return width_; }
  [[nodiscard]] bool empty() const noexcept { return height_ == 0 || width_ == 0; }
  [[nodiscard]] bool in_bounds(Coord c) const noexcept {
    return c.row >= 0 && c.row < height_ && c.col >= 0 && c.col < width_;
  }

  /// Read occupancy; precondition: in_bounds(c). Inline: the innermost
  /// probe of the realizer/legalizer hot loops.
  [[nodiscard]] bool occupied(Coord c) const {
    QRM_EXPECTS(in_bounds(c));
    return rows_[static_cast<std::size_t>(c.row)].test(static_cast<std::uint32_t>(c.col));
  }
  /// Write occupancy; precondition: in_bounds(c).
  void set(Coord c, bool value = true) {
    QRM_EXPECTS(in_bounds(c));
    rows_[static_cast<std::size_t>(c.row)].set(static_cast<std::uint32_t>(c.col), value);
  }
  void clear(Coord c) { set(c, false); }

  /// Total atoms in the grid.
  [[nodiscard]] std::int64_t atom_count() const noexcept;
  /// Atoms inside a region. Precondition: region.within(height, width).
  [[nodiscard]] std::int64_t atom_count(const Region& region) const;
  /// True when every site of `region` is occupied (a defect-free target).
  [[nodiscard]] bool region_full(const Region& region) const;
  /// Sites of `region` that are unoccupied.
  [[nodiscard]] std::vector<Coord> defects(const Region& region) const;
  /// All occupied coordinates (row-major order).
  [[nodiscard]] std::vector<Coord> atom_positions() const;

  /// Access one row's bits. Precondition: 0 <= row < height().
  [[nodiscard]] const BitRow& row(std::int32_t r) const {
    QRM_EXPECTS(r >= 0 && r < height_);
    return rows_[static_cast<std::size_t>(r)];
  }
  /// Replace one row's bits; the new row must have width() == width().
  void set_row(std::int32_t r, BitRow bits);
  /// Extract one column as a BitRow of length height() (bit i = row i).
  [[nodiscard]] BitRow column(std::int32_t c) const;
  /// Write one column from a BitRow of length height().
  void set_column(std::int32_t c, const BitRow& bits);

  /// Geometric transform returning a new grid.
  [[nodiscard]] OccupancyGrid flipped(Flip flip) const;
  /// Extract a sub-grid. Precondition: region.within(height, width).
  [[nodiscard]] OccupancyGrid subgrid(const Region& region) const;
  /// Overwrite the cells of `region` from `content` (same shape).
  void set_subgrid(const Region& region, const OccupancyGrid& content);

  /// Map a coordinate through a flip of this grid's dimensions, so that
  /// flipped(f).occupied(map_coord(f, c)) == occupied(c).
  [[nodiscard]] Coord map_coord(Flip flip, Coord c) const;

  friend bool operator==(const OccupancyGrid&, const OccupancyGrid&) = default;

  /// Multi-line '#'/'.' art (row 0 first), for examples and error messages.
  [[nodiscard]] std::string to_art() const;
  /// Same but with a region outlined by marking its defects 'x' and drawing
  /// occupied target sites as 'O'.
  [[nodiscard]] std::string to_art(const Region& highlight) const;

 private:
  std::int32_t height_ = 0;
  std::int32_t width_ = 0;
  std::vector<BitRow> rows_;
};

/// Sites whose occupancy differs between two same-shaped grids, row-major.
/// Word-parallel (XOR + countr_zero per 64-bit word), so grids that differ in
/// a handful of sites cost one scan over the words, not the cells.
/// Precondition: a and b share height and width.
[[nodiscard]] std::vector<Coord> diff_positions(const OccupancyGrid& a, const OccupancyGrid& b);

/// Number of differing sites between two same-shaped grids (popcount of the
/// XOR, no coordinate materialization). Precondition: same shape.
[[nodiscard]] std::int64_t diff_count(const OccupancyGrid& a, const OccupancyGrid& b);

}  // namespace qrm

// physical.hpp is header-only; this translation unit exists so the model is
// compiled (and its header syntax-checked) even when no test includes it.
#include "moves/physical.hpp"

namespace qrm {
// Intentionally empty.
}  // namespace qrm

#include "runtime/rearrangement_loop.hpp"

#include <algorithm>
#include <memory>

#include "core/planner.hpp"
#include "moves/dead_channels.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qrm::rt {

namespace {

/// Apply one planned move to a lossy world: sites whose atoms were already
/// lost simply don't move; each transported atom may be lost on arrival.
/// Atoms are moved front-first so surviving lockstep chains stay valid.
/// Sites on dead channels are skipped before any RNG draw: a dead channel
/// can neither pick an atom up (dead source — the atom is frozen in place)
/// nor drop one off (dead destination), and skipping deterministically
/// keeps delta-vs-scratch and worker-count invariance intact.
std::int64_t apply_lossy_move(OccupancyGrid& state, const ParallelMove& move, Rng& rng,
                              double per_move_loss, const DeadChannelMask& dead) {
  const std::vector<Coord> sites = lossy_move_order(move);
  std::int64_t lost = 0;
  for (const Coord& s : sites) {
    if (!state.occupied(s)) continue;  // atom vanished before this command
    const Coord dest = moved(s, move.dir, move.steps);
    if (!state.in_bounds(dest)) continue;
    if (!dead.empty() && (dead.site_dead(s) || dead.site_dead(dest))) continue;
    // Path check against the *current* lossy world; a blocked atom stays
    // put (the next round's plan will handle it). Occupied cells on dead
    // lines do NOT block: a mover can never stop there (the hop legalizer
    // steps over dead positions), so the occupant is an atom frozen in a
    // static trap, which the transiting tweezer passes across — the same
    // transparency the planner's masked grid assumes. Treating it as an
    // obstacle would livelock the loop on a plan it can never execute.
    bool clear = true;
    for (std::int32_t k = 1; k <= move.steps && clear; ++k) {
      const Coord cell = moved(s, move.dir, k);
      if (state.occupied(cell) && !dead.site_dead(cell)) clear = false;
    }
    if (!clear) continue;
    state.clear(s);
    if (rng.bernoulli(per_move_loss)) {
      ++lost;  // atom lost in transport
    } else {
      state.set(dest);
    }
  }
  return lost;
}

std::int64_t apply_background_loss(OccupancyGrid& state, Rng& rng, double p) {
  if (p <= 0.0) return 0;
  std::int64_t lost = 0;
  for (const Coord& site : state.atom_positions()) {
    if (rng.bernoulli(p)) {
      state.clear(site);
      ++lost;
    }
  }
  return lost;
}

/// Correlated loss burst: with probability `p` (one coin per round), kill
/// up to `length` consecutive trapped atoms in scan order, the start drawn
/// uniformly. Disabled bursts (p <= 0, the default) draw zero RNG values,
/// so pre-existing loss streams are bit-for-bit unchanged.
std::int64_t apply_burst_loss(OccupancyGrid& state, Rng& rng, double p, std::int32_t length) {
  if (p <= 0.0 || length <= 0) return 0;
  if (!rng.bernoulli(p)) return 0;
  const std::vector<Coord> atoms = state.atom_positions();
  if (atoms.empty()) return 0;
  const std::size_t start =
      static_cast<std::size_t>(rng.uniform_below(static_cast<std::uint64_t>(atoms.size())));
  const std::size_t count = std::min(static_cast<std::size_t>(length), atoms.size());
  for (std::size_t i = 0; i < count; ++i) state.clear(atoms[(start + i) % atoms.size()]);
  return static_cast<std::int64_t>(count);
}

}  // namespace

std::vector<Coord> lossy_move_order(const ParallelMove& move) {
  std::vector<Coord> sites = move.sites;
  const Coord d = direction_delta(move.dir);
  const auto front_key = [&](const Coord& a) {
    return -(a.row * d.row + a.col * d.col);  // most-advanced site first
  };
  // Full tie-break: sites abreast of each other (equal front key) order by
  // (row, col). The front key alone left ties to std::sort's whims, and tied
  // sites are the common case — every site of a merged move on the axis
  // perpendicular to the direction shares a key.
  std::sort(sites.begin(), sites.end(), [&](const Coord& a, const Coord& b) {
    const auto ka = front_key(a);
    const auto kb = front_key(b);
    if (ka != kb) return ka < kb;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });
  return sites;
}

LoopReport run_rearrangement_loop(const OccupancyGrid& initial, const LoopConfig& config) {
  if (config.exec.replan == ReplanMode::Delta) {
    // One stateful replanner for the whole loop: round k+1 reuses round k's
    // untouched quadrant kernels, bit-identical to scratch by construction.
    auto replanner = std::make_shared<DeltaReplanner>(config.plan, DeltaReplanner::Options{},
                                                      config.exec.plan_parallelism());
    LoopReport report = run_rearrangement_loop(
        initial, config, [replanner](const OccupancyGrid& state) { return replanner->plan(state); });
    report.replan = replanner->stats();
    return report;
  }
  const QrmPlanner planner(config.plan, config.exec.plan_parallelism());
  return run_rearrangement_loop(initial, config,
                                [&](const OccupancyGrid& state) { return planner.plan(state); });
}

LoopReport run_rearrangement_loop(const OccupancyGrid& initial, const LoopConfig& config,
                                  const PlanFn& plan_round) {
  QRM_EXPECTS(config.max_rounds > 0);
  QRM_EXPECTS(config.loss.per_move_loss >= 0.0 && config.loss.per_move_loss <= 1.0);
  QRM_EXPECTS(config.loss.background_loss >= 0.0 && config.loss.background_loss <= 1.0);
  QRM_EXPECTS(config.loss.burst_loss >= 0.0 && config.loss.burst_loss <= 1.0);
  QRM_EXPECTS(plan_round != nullptr);

  LoopReport report;
  report.final_grid = initial;
  OccupancyGrid& state = report.final_grid;
  Rng rng(config.loss.derive(config.shot_index).seed);

  for (std::uint32_t round = 0; round < config.max_rounds; ++round) {
    RoundReport rr;
    rr.atoms_before = state.atom_count();
    rr.defects_before =
        static_cast<std::int64_t>(config.plan.target.area()) - state.atom_count(config.plan.target);

    if (rr.defects_before == 0) break;  // already defect-free, nothing to plan

    // Re-image (perfect detection) and plan against the current world.
    const PlanResult plan = plan_round(state);
    rr.commands = plan.schedule.size();

    for (const ParallelMove& move : plan.schedule.moves()) {
      rr.atoms_lost +=
          apply_lossy_move(state, move, rng, config.loss.per_move_loss, config.plan.dead_channels);
    }
    if (config.exec.keep_schedules) report.schedules.push_back(plan.schedule);
    rr.atoms_lost += apply_background_loss(state, rng, config.loss.background_loss);
    rr.atoms_lost += apply_burst_loss(state, rng, config.loss.burst_loss, config.loss.burst_length);
    rr.filled_after = state.region_full(config.plan.target);
    report.total_atoms_lost += rr.atoms_lost;
    report.rounds.push_back(rr);

    if (rr.filled_after) break;
    // Not-enough-atoms exit. Atoms frozen on dead channels can never reach
    // the target, so under a mask the budget counts only usable atoms; with
    // no mask the masked count IS the atom count, and the subtraction form
    // below avoids an O(area) copy on that hot path.
    const std::int64_t usable_atoms =
        config.plan.dead_channels.empty()
            ? rr.atoms_before - rr.atoms_lost
            : mask_dead_lines(state, config.plan.dead_channels).atom_count();
    if (usable_atoms < static_cast<std::int64_t>(config.plan.target.area())) {
      break;  // not enough atoms left to ever succeed
    }
  }
  // The one authoritative success computation: success means (and can only
  // mean) the final grid's target is defect-free. The early breaks above
  // no longer set the flag themselves, so it cannot diverge from the grid.
  report.success = state.region_full(config.plan.target);
  return report;
}

}  // namespace qrm::rt

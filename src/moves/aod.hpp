#pragma once
/// \file aod.hpp
/// The 2D-AOD trap-generation constraint (paper Sec. II-B).
///
/// A move is realised by driving one RF tone per selected row and per
/// selected column; tweezers appear at *every* (row, col) cross product.
/// A parallel move is therefore physically legal only if every occupied trap
/// in rows(move) x cols(move) is itself part of the move — otherwise a
/// bystander atom would be grabbed and dragged. Unoccupied cross traps are
/// harmless.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lattice/grid.hpp"
#include "moves/schedule.hpp"

namespace qrm {

/// Returns an explanation of the first violation of the AOD cross-product
/// rule for `move` against `grid`, or nullopt when legal. Does not check
/// collision/occupancy semantics (see executor.hpp for those).
[[nodiscard]] std::optional<std::string> aod_violation(const OccupancyGrid& grid,
                                                       const ParallelMove& move);

[[nodiscard]] inline bool is_aod_legal(const OccupancyGrid& grid, const ParallelMove& move) {
  return !aod_violation(grid, move).has_value();
}

/// Partition an intended simultaneous displacement of `sites` (all moving
/// `steps` in `dir`) into a sequence of AOD-legal, collision-free parallel
/// moves, in execution order.
///
/// The returned moves, applied in order to `grid`'s state, displace exactly
/// the requested atoms; `grid` itself is not modified. Sites must be
/// occupied and their intended destinations must be collision-free as a
/// whole (i.e. the *intent* is valid; legalisation only handles the AOD
/// cross-product and intra-set ordering).
///
/// `unit_major_mirror` (unit steps only) is a caller-maintained copy of the
/// grid in major-line orientation — transposed for horizontal moves, plain
/// for vertical — that legalize reads instead of re-deriving it (an O(area)
/// transpose or copy otherwise paid on every call; the realizer calls this
/// once per unit round). On return the mirror reflects `grid` AFTER the
/// returned moves are applied, so a caller stepping many rounds keeps one
/// mirror in sync for the whole sequence. The accept decisions are
/// byte-identical with or without a mirror.
[[nodiscard]] std::vector<ParallelMove> legalize(const OccupancyGrid& grid,
                                                 std::span<const Coord> sites, Direction dir,
                                                 std::int32_t steps,
                                                 OccupancyGrid* unit_major_mirror = nullptr);

}  // namespace qrm

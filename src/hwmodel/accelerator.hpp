#pragma once
/// \file accelerator.hpp
/// Top-level cycle model of the QRM accelerator (paper Sec. IV, Fig. 5).
///
/// Composes, per pass: four (or fewer — see the pathway ablation) Shift
/// Kernels fed from quadrant row queues, with the Output Concatenation
/// Module consuming all command buffers. The initial load phase streams AXI
/// packets from a DDR model through the Load Data Module. Semantics (the
/// schedule and the final grid) come from the same PassDriver the
/// behavioural planner uses, so the model can never diverge from the
/// algorithm; the simulation contributes bit-exact datapath checks and the
/// cycle counts that convert to microseconds at the configured clock.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "hwmodel/axi.hpp"
#include "lattice/grid.hpp"

namespace qrm::hw {

struct AcceleratorConfig {
  QrmConfig plan;                 ///< algorithm configuration (shared with CPU planner)
  double clock_mhz = 250.0;       ///< PL clock (paper: 250 MHz on the RFSoC)
  std::uint32_t packet_bits = 1024;  ///< AXI beat width (paper: 1024)
  DdrTiming ddr;                  ///< DDR read latency / throughput
  /// PS-side orchestration cost per invocation (AXI kickoff + completion
  /// interrupt), charged once.
  std::uint32_t control_overhead_cycles = 100;
  /// Number of parallel QPM pathways; 4 = the paper's design, 1/2 serialize
  /// quadrants over fewer kernels (ablation of the quadrant parallelism).
  std::uint32_t quadrant_pathways = 4;
  /// Movement records serialized into the output stream per cycle. One
  /// packet_bits-wide output beat carries packet_bits/record_bits records,
  /// so the default matches a 1024-bit stream of 32-bit records.
  std::uint32_t ocm_drain_width = 32;
  /// Bits per movement record in the output stream (origin, dir, steps).
  std::uint32_t record_bits = 32;
};

/// Cycles attributed to one dataflow stage.
struct StageCycles {
  std::string name;
  std::uint64_t cycles = 0;
};

struct CycleReport {
  std::uint64_t control = 0;  ///< PS orchestration
  std::uint64_t load = 0;     ///< DMA-in + LDM streaming (simulated)
  std::uint64_t balance = 0;  ///< balance-unit analysis (analytic, see docs)
  std::uint64_t dma_out = 0;  ///< movement records back to DDR
  std::vector<StageCycles> passes;  ///< simulated kernel+OCM cycles per pass

  [[nodiscard]] std::uint64_t pass_total() const noexcept {
    std::uint64_t n = 0;
    for (const auto& p : passes) n += p.cycles;
    return n;
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return control + load + balance + pass_total() + dma_out;
  }
  /// Multi-line breakdown table.
  [[nodiscard]] std::string to_string() const;
};

struct AccelResult {
  PlanResult plan;      ///< identical to QrmPlanner output for the same config
  CycleReport cycles;
  double latency_us = 0.0;
  std::uint64_t movement_records = 0;
};

class QrmAccelerator {
 public:
  explicit QrmAccelerator(AcceleratorConfig config);

  [[nodiscard]] const AcceleratorConfig& config() const noexcept { return config_; }

  /// Run the full accelerator flow on `initial`. Preconditions: as
  /// QrmPlanner::plan, plus quadrant_pathways in {1,2,4}.
  [[nodiscard]] AccelResult run(const OccupancyGrid& initial) const;

 private:
  AcceleratorConfig config_;
};

/// Convenience: cycle-model latency (µs) for a random workload of the given
/// size at the paper's default settings (balanced mode, 0.6*W target).
[[nodiscard]] double accelerator_latency_us(const OccupancyGrid& initial,
                                            std::int32_t target_size);

}  // namespace qrm::hw

#pragma once
/// \file beats.hpp
/// Stream payload types exchanged between the accelerator's modules.

#include <cstdint>

#include "util/bitrow.hpp"

namespace qrm::hw {

/// One quadrant-local line entering a Shift Kernel.
struct RowBeat {
  std::int32_t line = 0;  ///< quadrant-local line index
  BitRow bits;            ///< occupancy, bit 0 = centre-most position
  /// Number of movement records this line will produce. Negative means
  /// "derive from the scan" (compact passes: atoms with a hole below them);
  /// the balance unit overrides it for placement passes, whose displacement
  /// pattern is not a pure compaction.
  std::int32_t records_override = -1;
};

/// Scan result leaving a Shift Kernel for one line.
struct CommandBeat {
  std::int32_t line = 0;
  BitRow original;        ///< the line as scanned
  BitRow commands;        ///< shift-command bits: set where the scan saw '0'
  std::uint32_t records = 0;  ///< movement records after empty-shift removal
};

}  // namespace qrm::hw

/// \file scaling_study.cpp
/// Parameter sweep over array size and fill factor: accelerator latency,
/// cycle breakdown, movement records and resource utilisation, written to
/// stdout and to scaling_study.csv for plotting.
///
/// The size x fill matrix is a declarative scenario sweep (expand_sweeps)
/// rather than nested loops; each expanded spec's auto target rule and
/// Uniform loader reproduce the exact workloads the hand-rolled version
/// drew, so the CSV's deterministic columns are unchanged.
///
///   $ ./examples/scaling_study [max_size]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "hwmodel/accelerator.hpp"
#include "resources/model.hpp"
#include "scenario/spec.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qrm;
  const std::int32_t max_size = argc > 1 ? std::atoi(argv[1]) : 90;

  CsvFile csv("scaling_study.csv");
  if (!csv.is_open()) {
    std::fprintf(stderr, "cannot open scaling_study.csv for writing\n");
    return 1;
  }
  csv.writer().header({"size", "fill", "latency_us", "cycles", "load_cycles", "pass_cycles",
                       "records", "filled", "lut_pct", "ff_pct", "bram_pct"});

  // Fill varies fastest (the later sweep line increments first), so the row
  // order matches the historical size-outer / fill-inner nesting.
  std::vector<scenario::ScenarioSpec> sweep;
  if (max_size >= 10) {
    sweep = scenario::expand_sweeps(
        "name=scaling\n"
        "description=accelerator latency and resource sweep\n"
        "grid=10.." + std::to_string(max_size) + " step 20\n"
        "fill=0.5,0.55,0.65\n");
  }

  const res::DeviceSpec device = res::zcu216();
  TextTable table({"W", "fill", "latency", "cycles", "records", "filled", "LUT", "FF"});
  for (const scenario::ScenarioSpec& spec : sweep) {
    const std::int32_t size = spec.grid_width;
    // Historical seed choice: one draw per size, seeded by the size itself.
    const OccupancyGrid grid = generate_workload(spec, static_cast<std::uint64_t>(size));
    hw::AcceleratorConfig config;
    config.plan.target = spec.target_region();
    const hw::AccelResult result = hw::QrmAccelerator(config).run(grid);
    const res::Utilization usage = res::estimate_accelerator(size);

    csv.writer().row(size, spec.fill, result.latency_us, result.cycles.total(),
                     result.cycles.load, result.cycles.pass_total(),
                     result.movement_records, result.plan.stats.target_filled ? 1 : 0,
                     usage.lut_fraction(device) * 100.0, usage.ff_fraction(device) * 100.0,
                     usage.bram_fraction(device) * 100.0);
    table.add_row({std::to_string(size), fmt_double(spec.fill, 2),
                   fmt_time_us(result.latency_us), std::to_string(result.cycles.total()),
                   std::to_string(result.movement_records),
                   result.plan.stats.target_filled ? "yes" : "no",
                   fmt_percent(usage.lut_fraction(device)),
                   fmt_percent(usage.ff_fraction(device))});
  }
  std::printf("%s\nWrote scaling_study.csv (%zu data rows)\n", table.render().c_str(),
              csv.writer().rows_written());
  return 0;
}

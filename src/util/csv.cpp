#include "util/csv.hpp"

#include "util/assert.hpp"

namespace qrm {

void CsvWriter::header(const std::vector<std::string>& names) {
  QRM_EXPECTS_MSG(!header_written_ && rows_ == 0, "CSV header must precede all rows");
  write_cells(names);
  header_written_ = true;
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // distinguishes "" (one empty cell) from nothing
  bool quote_closed = false;  // a quoted cell ended; only , or newline may follow

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
    quote_closed = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          quote_closed = true;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    QRM_EXPECTS_MSG(!quote_closed || c == ',' || c == '\r' || c == '\n',
                    "CSV: text after closing quote");
    switch (c) {
      case '"':
        QRM_EXPECTS_MSG(cell.empty() && !cell_started, "CSV: quote inside unquoted field");
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        cell.push_back(c);
        cell_started = true;
        break;
    }
  }
  QRM_EXPECTS_MSG(!in_quotes, "CSV: unterminated quoted field");
  // Final row without a trailing newline.
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  QRM_EXPECTS_MSG(!cells.empty(), "CSV rows must have at least one cell");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
  ++rows_;
}

}  // namespace qrm

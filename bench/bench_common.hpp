#pragma once
/// \file bench_common.hpp
/// Shared workload construction and reporting helpers for the bench
/// binaries. Every bench prints its paper-style table first (deterministic,
/// seed-averaged) and then runs google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "loading/loader.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace qrm::bench {

/// The paper's workload: Bernoulli 50%-ish loading. We use 0.55 so the
/// 0.6*W centred target is feasible for every seed (the experimental
/// practice is to re-load until enough atoms are present; see
/// load_random_at_least).
inline constexpr double kFill = 0.55;

[[nodiscard]] inline OccupancyGrid workload(std::int32_t size, std::uint64_t seed) {
  return load_random(size, size, {kFill, seed});
}

/// Even target size ~0.6*W (the paper's 50x50 -> 30x30 ratio).
[[nodiscard]] inline std::int32_t paper_target(std::int32_t size) {
  return size * 3 / 5 / 2 * 2;
}

/// Median CPU latency over `seeds` workloads, best-of-`repeats` each.
template <typename Fn>
[[nodiscard]] double measure_cpu_us(std::int32_t size, int seeds, std::size_t repeats, Fn&& fn) {
  std::vector<double> times;
  for (int s = 1; s <= seeds; ++s) {
    const OccupancyGrid grid = workload(size, static_cast<std::uint64_t>(s));
    times.push_back(best_of_microseconds(repeats, [&] { fn(grid); }));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

inline void print_header(const std::string& title, const std::string& paper_reference) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("================================================================\n");
}

inline void run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}

}  // namespace qrm::bench

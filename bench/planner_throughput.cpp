/// \file planner_throughput.cpp
/// The perf trajectory baseline for the word-parallel planning core.
///
/// Two layers of measurement, both written to a machine-readable JSON file
/// (BENCH_planner.json by default) so later PRs have a trajectory to beat:
///
///  1. Primitive level: ns/op of each word-parallel BitRow/OccupancyGrid
///     kernel vs its naive per-bit reference (util/bitref.hpp,
///     lattice/gridref.hpp) at word-boundary widths, with the speedup factor.
///  2. End-to-end: QrmPlanner plans/sec across grid sizes (64^2 .. 1024^2)
///     on the paper's Bernoulli-loading workload, swept along the
///     intra_plan_workers axis (sequential vs quadrant-parallel) with the
///     PlanStats phase breakdown (pass compute / merge / realize) per cell.
///  3. Replan axis: rounds/sec of a multi-round replan sequence whose
///     round-over-round damage stays inside one quadrant (the loop's
///     settled-tail shape), planned from scratch vs with DeltaReplanner —
///     the measured payoff of the delta==scratch reuse contract.
///
///   $ ./bench/planner_throughput [--smoke|--exhaustive] [--out PATH]
///
/// --smoke trims sizes and repeats for CI (a few seconds). The default
/// (full) mode plans up to 256^2 and finishes in well under a minute;
/// --exhaustive adds the 512^2 and 1024^2 end-to-end points, which take
/// minutes each because the planner's higher layers are still super-linear
/// (that is the trajectory later PRs are meant to bend). --out overrides the
/// JSON destination.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/delta_planner.hpp"
#include "core/planner.hpp"
#include "lattice/gridref.hpp"
#include "util/bitref.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace qrm;

struct PrimitiveResult {
  std::string name;
  std::uint32_t width = 0;  ///< row width in bits (= grid side for 2D ops)
  double fast_ns = 0.0;
  double naive_ns = 0.0;
  [[nodiscard]] double speedup() const { return naive_ns > 0.0 ? naive_ns / fast_ns : 0.0; }
};

/// One (size, workers) cell of the plans/sec axis. `workers` is
/// QrmConfig::intra_plan_workers: 0 = the sequential planner, > 0 fans the
/// quadrant kernels over a pool that is shared across the cell's repeats so
/// the measurement captures steady-state planning, not pool spin-up. Every
/// cell of a size plans bit-identically (the intra-plan determinism
/// contract), so the axis isolates pure scheduling overhead/benefit.
struct PlanPoint {
  std::int32_t size = 0;
  std::int32_t target = 0;
  std::uint32_t workers = 0;
  double plan_us = 0.0;  ///< median over seeds of best-of-repeats
  /// Serial-residue breakdown (PlanStats::timers) of one representative
  /// plan: quadrant-parallelisable pass compute vs the inherently serial
  /// merge + realize tail that bounds intra-plan speedup (Amdahl).
  double pass_compute_us = 0.0;
  double merge_us = 0.0;
  double realize_us = 0.0;
  [[nodiscard]] double plans_per_sec() const { return plan_us > 0.0 ? 1e6 / plan_us : 0.0; }
};

/// Time `fn` as ns/op: repeat best-of-`repeats`, each sample averaging
/// `iters` back-to-back calls to amortise clock granularity.
template <typename Fn>
double time_ns(std::size_t repeats, std::size_t iters, Fn&& fn) {
  const double us = best_of_microseconds(repeats, [&] {
    for (std::size_t i = 0; i < iters; ++i) benchmark::DoNotOptimize(fn());
  });
  return us * 1e3 / static_cast<double>(iters);
}

[[nodiscard]] BitRow random_row(std::uint32_t width, std::uint64_t seed) {
  Rng rng(seed);
  BitRow row(width);
  for (std::uint32_t i = 0; i < width; ++i)
    if (rng.bernoulli(0.5)) row.set(i);
  return row;
}

std::vector<PrimitiveResult> bench_primitives(bool smoke) {
  const std::size_t repeats = smoke ? 5 : 25;
  std::vector<PrimitiveResult> out;
  for (const std::uint32_t width : std::vector<std::uint32_t>{64, 256, 1024}) {
    const BitRow row = random_row(width, width);
    const OccupancyGrid grid =
        qrm::bench::workload(static_cast<std::int32_t>(width), /*seed=*/width);
    const Region centre = centered_square(static_cast<std::int32_t>(width),
                                          static_cast<std::int32_t>(width) / 2);
    const OccupancyGrid content = grid.subgrid(centre);
    // Scale per-call iterations so each primitive's sample stays ~O(100us).
    const std::size_t iters = (smoke ? 64u : 256u) * 1024u / width;

    out.push_back({"reversed", width, time_ns(repeats, iters, [&] { return row.reversed(); }),
                   time_ns(repeats, iters, [&] { return ref::reversed(row); })});
    out.push_back({"count_range", width,
                   time_ns(repeats, iters, [&] { return row.count_range(1, width - 1); }),
                   time_ns(repeats, iters, [&] { return ref::count_range(row, 1, width - 1); })});
    out.push_back({"compacted", width, time_ns(repeats, iters, [&] { return row.compacted(); }),
                   time_ns(repeats, iters, [&] { return ref::compacted(row); })});
    out.push_back({"hole_positions", width,
                   time_ns(repeats, iters, [&] { return row.hole_positions(); }),
                   time_ns(repeats, iters, [&] { return ref::hole_positions(row); })});
    out.push_back({"compaction_displacements", width,
                   time_ns(repeats, iters, [&] { return row.compaction_displacements(); }),
                   time_ns(repeats, iters, [&] { return ref::compaction_displacements(row); })});

    // 2D kernels touch width^2 bits; divide the per-sample iterations again.
    const std::size_t iters2d = std::max<std::size_t>(1, iters * 8 / width);
    out.push_back({"transpose", width,
                   time_ns(repeats, iters2d, [&] { return grid.flipped(Flip::Transpose); }),
                   time_ns(repeats, iters2d, [&] { return ref::transposed(grid); })});
    out.push_back({"subgrid", width, time_ns(repeats, iters2d, [&] { return grid.subgrid(centre); }),
                   time_ns(repeats, iters2d, [&] { return ref::subgrid(grid, centre); })});
    // Mutate persistent scratch grids so neither side's timing is dominated
    // by a per-iteration grid copy (set_subgrid is idempotent for fixed
    // inputs, so reuse is valid).
    OccupancyGrid scratch_fast = grid;
    OccupancyGrid scratch_naive = grid;
    out.push_back({"set_subgrid", width,
                   time_ns(repeats, iters2d,
                           [&] {
                             scratch_fast.set_subgrid(centre, content);
                             return scratch_fast.width();
                           }),
                   time_ns(repeats, iters2d, [&] {
                     for (std::int32_t r = 0; r < centre.rows; ++r)
                       for (std::int32_t c = 0; c < centre.cols; ++c)
                         scratch_naive.set({centre.row0 + r, centre.col0 + c},
                                           content.occupied({r, c}));
                     return scratch_naive.width();
                   })});
  }
  return out;
}

std::vector<PlanPoint> bench_plan(bool smoke, bool exhaustive) {
  const std::vector<std::int32_t> sizes = smoke        ? std::vector<std::int32_t>{64, 128}
                                          : exhaustive ? std::vector<std::int32_t>{64, 128, 256, 512, 1024}
                                                       : std::vector<std::int32_t>{64, 128, 256};
  const std::vector<std::uint32_t> worker_axis = smoke ? std::vector<std::uint32_t>{0, 2}
                                                       : std::vector<std::uint32_t>{0, 2, 4};
  std::vector<PlanPoint> out;
  for (const std::int32_t size : sizes) {
    // Keep per-size runtime bounded: the big exhaustive points get one seed,
    // one repeat, and only the sequential + widest parallel cells.
    const int seeds = size >= 512 ? 1 : (smoke ? 2 : 3);
    const std::size_t repeats = size >= 256 ? 1 : (smoke ? 2 : 3);
    const std::vector<std::uint32_t> cells =
        size >= 512 ? std::vector<std::uint32_t>{0, 4} : worker_axis;
    for (const std::uint32_t workers : cells) {
      PlanPoint point;
      point.size = size;
      point.target = qrm::bench::paper_target(size);
      point.workers = workers;
      QrmConfig config;
      config.target = centered_square(size, point.target);
      PlanParallelism parallelism;
      parallelism.workers = workers;
      if (workers > 0) parallelism.pool = std::make_shared<ThreadPool>(workers);
      const QrmPlanner planner(config, std::move(parallelism));
      std::vector<double> times;
      for (int s = 1; s <= seeds; ++s) {
        const OccupancyGrid grid = qrm::bench::workload(size, static_cast<std::uint64_t>(s));
        times.push_back(
            best_of_microseconds(repeats, [&] { benchmark::DoNotOptimize(planner.plan(grid)); }));
      }
      point.plan_us = stats::SortedSample(times).median();
      // One extra plan supplies the phase breakdown: PlanStats::timers is
      // measurement-only (excluded from PlanStats equality and from every
      // fingerprint), so probing it costs nothing downstream.
      const PlanResult probe = planner.plan(qrm::bench::workload(size, 1));
      point.pass_compute_us = probe.stats.timers.pass_compute_us;
      point.merge_us = probe.stats.timers.merge_us;
      point.realize_us = probe.stats.timers.realize_us;
      out.push_back(point);
      std::printf(
          "  plan %4dx%-4d w=%u -> %10.1f us/plan (%8.1f plans/sec)"
          "  [pass %.0f us, merge %.0f us, realize %.0f us]\n",
          size, size, workers, point.plan_us, point.plans_per_sec(), point.pass_compute_us,
          point.merge_us, point.realize_us);
    }
  }
  return out;
}

/// One size of the delta-vs-scratch replan axis: the same K-round sequence
/// of grids (each round flips a couple of NW-quadrant sites — the
/// quadrant-local damage shape the rearrangement loop settles into) planned
/// from scratch every round vs through a DeltaReplanner. Both produce
/// bit-identical plans (pinned by delta_replan_test); this measures only
/// the planning-time payoff of serving three clean quadrants from cache.
struct ReplanPoint {
  std::int32_t size = 0;
  std::int32_t rounds = 0;
  double scratch_us = 0.0;  ///< per-round, best-of-repeats over the sequence
  double delta_us = 0.0;
  std::uint64_t kernels_reused = 0;  ///< from one instrumented delta replay
  std::uint64_t kernels_computed = 0;
  [[nodiscard]] double speedup() const { return delta_us > 0.0 ? scratch_us / delta_us : 0.0; }
  [[nodiscard]] double rounds_per_sec(double us) const { return us > 0.0 ? 1e6 / us : 0.0; }
};

std::vector<ReplanPoint> bench_replan(bool smoke) {
  const std::vector<std::int32_t> sizes =
      smoke ? std::vector<std::int32_t>{64, 128} : std::vector<std::int32_t>{64, 128, 256};
  const std::int32_t rounds = 8;
  std::vector<ReplanPoint> out;
  for (const std::int32_t size : sizes) {
    const std::size_t repeats = size >= 256 ? 2 : (smoke ? 2 : 4);
    QrmConfig config;
    config.target = centered_square(size, qrm::bench::paper_target(size));

    // The round sequence models the loop's settled tail — the state delta
    // replanning exists for: the target is full except for a few defects in
    // its NW quarter, spare atoms sit in the NW quadrant outside the target,
    // and each round flips two more NW sites, so every delta replan sees
    // exactly one dirty quadrant. (A half-filled Bernoulli grid would bury
    // the payoff: there realization dominates plan time and always re-runs,
    // so kernel reuse cannot show.)
    const Region target = config.target;
    OccupancyGrid base(size, size);
    for (std::int32_t r = target.row0; r < target.row_end(); ++r)
      for (std::int32_t c = target.col0; c < target.col_end(); ++c) base.set({r, c}, true);
    Rng rng(static_cast<std::uint64_t>(size) * 131 + 5);
    for (int defect = 0; defect < 6; ++defect) {
      const Coord site{target.row0 + static_cast<std::int32_t>(rng.uniform_below(
                                         static_cast<std::uint32_t>(target.rows / 2))),
                       target.col0 + static_cast<std::int32_t>(rng.uniform_below(
                                         static_cast<std::uint32_t>(target.cols / 2)))};
      base.set(site, false);
    }
    for (int spare = 0; spare < 6; ++spare) {
      const Coord site{
          static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(target.row0))),
          static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(size / 2)))};
      base.set(site, true);
    }
    std::vector<OccupancyGrid> sequence;
    sequence.push_back(base);
    for (std::int32_t k = 1; k < rounds; ++k) {
      OccupancyGrid next = sequence.back();
      for (int flip = 0; flip < 2; ++flip) {
        const Coord site{
            static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(size / 2))),
            static_cast<std::int32_t>(rng.uniform_below(static_cast<std::uint32_t>(size / 2)))};
        next.set(site, !next.occupied(site));
      }
      sequence.push_back(next);
    }

    ReplanPoint point;
    point.size = size;
    point.rounds = rounds;

    const QrmPlanner planner(config);
    point.scratch_us = best_of_microseconds(repeats, [&] {
                         for (const OccupancyGrid& grid : sequence)
                           benchmark::DoNotOptimize(planner.plan(grid));
                       }) /
                       rounds;

    DeltaReplanner replanner(config);
    point.delta_us = best_of_microseconds(repeats, [&] {
                       replanner.reset();  // every repeat replays the full sequence cold
                       for (const OccupancyGrid& grid : sequence)
                         benchmark::DoNotOptimize(replanner.plan(grid));
                     }) /
                     rounds;
    // Reuse counters of one replay (stats accumulate over the replanner's
    // lifetime; divide by the repeats actually run).
    const std::uint64_t replays = replanner.stats().plans / static_cast<std::uint64_t>(rounds);
    point.kernels_reused = replanner.stats().kernels_reused / replays;
    point.kernels_computed = replanner.stats().kernels_computed / replays;
    out.push_back(point);
    std::printf(
        "  replan %4dx%-4d scratch %9.1f us/round (%7.1f rounds/sec)"
        "  delta %9.1f us/round (%7.1f rounds/sec)  speedup %.2fx"
        "  [%llu kernels reused / %llu computed]\n",
        size, size, point.scratch_us, point.rounds_per_sec(point.scratch_us), point.delta_us,
        point.rounds_per_sec(point.delta_us), point.speedup(),
        static_cast<unsigned long long>(point.kernels_reused),
        static_cast<unsigned long long>(point.kernels_computed));
  }
  return out;
}

void write_json(const std::string& path, const std::string& mode,
                const std::vector<PrimitiveResult>& prims, const std::vector<PlanPoint>& plans,
                const std::vector<ReplanPoint>& replans) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  os << "{\n";
  os << "  \"bench\": \"planner_throughput\",\n";
  os << "  \"mode\": \"" << mode << "\",\n";
  os << "  \"primitives\": [\n";
  for (std::size_t i = 0; i < prims.size(); ++i) {
    const auto& p = prims[i];
    os << "    {\"name\": \"" << p.name << "\", \"width\": " << p.width
       << ", \"fast_ns\": " << p.fast_ns << ", \"naive_ns\": " << p.naive_ns
       << ", \"speedup\": " << p.speedup() << (i + 1 < prims.size() ? "},\n" : "}\n");
  }
  os << "  ],\n";
  os << "  \"plan\": [\n";
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto& p = plans[i];
    os << "    {\"size\": " << p.size << ", \"target\": " << p.target
       << ", \"workers\": " << p.workers << ", \"plan_us\": " << p.plan_us
       << ", \"plans_per_sec\": " << p.plans_per_sec()
       << ", \"pass_compute_us\": " << p.pass_compute_us << ", \"merge_us\": " << p.merge_us
       << ", \"realize_us\": " << p.realize_us << (i + 1 < plans.size() ? "},\n" : "}\n");
  }
  os << "  ],\n";
  os << "  \"replan\": [\n";
  for (std::size_t i = 0; i < replans.size(); ++i) {
    const auto& p = replans[i];
    os << "    {\"size\": " << p.size << ", \"rounds\": " << p.rounds
       << ", \"scratch_us_per_round\": " << p.scratch_us
       << ", \"delta_us_per_round\": " << p.delta_us
       << ", \"scratch_rounds_per_sec\": " << p.rounds_per_sec(p.scratch_us)
       << ", \"delta_rounds_per_sec\": " << p.rounds_per_sec(p.delta_us)
       << ", \"speedup\": " << p.speedup() << ", \"kernels_reused\": " << p.kernels_reused
       << ", \"kernels_computed\": " << p.kernels_computed
       << (i + 1 < replans.size() ? "},\n" : "}\n");
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool exhaustive = false;
  std::string out_path = "BENCH_planner.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--exhaustive") == 0) {
      exhaustive = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke|--exhaustive] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  qrm::bench::print_header("Planner throughput: word-parallel core vs naive reference",
                           "perf trajectory baseline (ROADMAP north star)");

  std::printf("\nPrimitive kernels (ns/op, best-of-%s):\n", smoke ? "smoke" : "full");
  const auto prims = bench_primitives(smoke);
  TextTable table({"primitive", "width", "word-parallel", "naive", "speedup"});
  for (const auto& p : prims) {
    table.add_row({p.name, std::to_string(p.width), fmt_time_us(p.fast_ns / 1e3),
                   fmt_time_us(p.naive_ns / 1e3), fmt_speedup(p.speedup())});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("End-to-end plan_qrm (Bernoulli %.2f load, %s sizes):\n", qrm::bench::kFill,
              smoke ? "smoke" : (exhaustive ? "exhaustive" : "full"));
  const auto plans = bench_plan(smoke, exhaustive);

  std::printf("\nDelta replanning (quadrant-local damage, %d-round sequences):\n", 8);
  const auto replans = bench_replan(smoke);

  write_json(out_path, smoke ? "smoke" : (exhaustive ? "exhaustive" : "full"), prims, plans,
             replans);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Guard the acceptance bar: the rewritten primitives must hold >= 4x over
  // the naive reference at 1024-bit width. Failing loudly here keeps the
  // perf trajectory honest (a silent regression would still upload JSON).
  bool ok = true;
  for (const auto& p : prims) {
    if (p.width == 1024 &&
        (p.name == "reversed" || p.name == "transpose" || p.name == "subgrid" ||
         p.name == "count_range") &&
        p.speedup() < 4.0) {
      std::fprintf(stderr, "FAIL: %s @%u speedup %.1fx < 4x\n", p.name.c_str(), p.width,
                   p.speedup());
      ok = false;
    }
  }
  // Whole-plan acceptance bar: >= 10 plans/sec at 256^2 in parallel mode
  // (every intra_plan_workers > 0 cell — a pool-overhead regression that
  // only hurts the parallel path must fail just as loudly as a serial one).
  // Smoke mode skips the 256^2 size entirely, so the gate is full-mode only.
  for (const auto& p : plans) {
    if (p.size == 256 && p.workers > 0 && p.plans_per_sec() < 10.0) {
      std::fprintf(stderr, "FAIL: plan 256^2 w=%u at %.2f plans/sec < 10\n", p.workers,
                   p.plans_per_sec());
      ok = false;
    }
  }
  // Delta acceptance bar: on the quadrant-local workload, reusing three of
  // four quadrant kernels must actually buy rounds/sec at 256^2 (merge +
  // realize still re-run, so the bound is the pass-compute share, not 4x).
  // Smoke mode stops at 128^2, where the sequence is too cheap to gate on.
  for (const auto& p : replans) {
    if (p.size == 256 && p.speedup() < 1.05) {
      std::fprintf(stderr, "FAIL: delta replan 256^2 speedup %.2fx < 1.05x\n", p.speedup());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

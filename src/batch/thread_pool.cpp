#include "batch/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qrm::batch {

std::uint32_t ThreadPool::resolve_workers(std::uint32_t requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::uint32_t workers) {
  const std::uint32_t count = resolve_workers(workers);
  workers_.reserve(count);
  try {
    for (std::uint32_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  } catch (...) {
    // Thread spawn failed (resource exhaustion): joinable threads must be
    // joined before workers_ is destroyed or the runtime calls terminate.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    QRM_EXPECTS_MSG(!stopping_, "submit() on a ThreadPool that is shutting down");
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Any exception escaped the packaged_task wrapper only if the task was
    // enqueued raw; packaged_task stores it in the future instead.
    task();
  }
}

}  // namespace qrm::batch

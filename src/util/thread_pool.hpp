#pragma once
/// \file thread_pool.hpp
/// Fixed-size worker pool with a simple MPMC task queue and a self-claiming
/// fork-join primitive.
///
/// This is the concurrency substrate of the whole repo (it moved here from
/// qrm::batch when the planner itself grew intra-plan parallelism): callers
/// submit arbitrary callables and receive futures; exceptions thrown inside
/// a task surface through the future (never terminate a worker). Shutdown is
/// *draining*: the destructor lets already-queued tasks finish before
/// joining, so every future obtained from submit() eventually becomes ready
/// and no task is silently dropped — the property the batch planner's
/// determinism rests on.
///
/// run_all() is the nesting-safe fork-join used by PassDriver's quadrant
/// fan-out: the calling thread *claims and runs tasks itself* alongside the
/// pool's workers, so a task already running on the pool may call run_all()
/// on the same pool without deadlock — even on a pool of one worker, the
/// caller simply executes everything. This is what lets shot-level and
/// quadrant-level parallelism share one pool without oversubscription.
///
/// Determinism note: the pool itself makes no ordering promises — tasks may
/// run in any order on any worker. Deterministic results come from the layer
/// above (per-shot derived seeds, per-slot writes, and barriers like
/// run_all), not from scheduling.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include <condition_variable>

namespace qrm {

class ThreadPool {
 public:
  /// Spawn `workers` threads; 0 selects std::thread::hardware_concurrency()
  /// (at least 1). The pool size is fixed for the pool's lifetime.
  explicit ThreadPool(std::uint32_t workers = 0);

  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Tasks accepted but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

  /// Enqueue a callable; its result (or exception) arrives via the future.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Run every task and return once all have finished (a barrier). The
  /// calling thread claims tasks from the same shared counter as the pool's
  /// workers, so:
  ///  - calling from inside a pooled task cannot deadlock (the caller makes
  ///    progress on its own, workers only help), for any pool size;
  ///  - at most worker_count() helper slots are enqueued, so nested calls
  ///    never oversubscribe the pool.
  /// If tasks throw, the first exception (in completion order) is rethrown
  /// after every task has finished; the rest are swallowed.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Resolve a requested worker count: 0 -> hardware_concurrency, floor 1.
  [[nodiscard]] static std::uint32_t resolve_workers(std::uint32_t requested) noexcept;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qrm

#pragma once
/// \file psca.hpp
/// Reconstruction of the Parallel Sorting Compression Algorithm (PSCA) of
/// Tian et al., Phys. Rev. Applied 19, 034048 (2023): multi-tweezer
/// rearrangement computed by repeated per-step sorting.
///
/// Structure reproduced: the final placement is the same balance +
/// band-compression family, but the analysis is *iterative* — every
/// single-step move round re-scans the array and re-sorts each line's atom
/// list against its targets before deciding which atoms advance. That
/// per-round recomputation (O(W^2 log W) per round, O(W) rounds) is what
/// puts PSCA's analysis latency far above Tetris's single-shot analysis in
/// Fig. 7(b), despite both issuing parallel moves.

#include "baselines/algorithm.hpp"

namespace qrm::baselines {

class PscaAlgorithm final : public RearrangementAlgorithm {
 public:
  explicit PscaAlgorithm(AlgorithmOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "psca"; }
  [[nodiscard]] std::string description() const override {
    return "PSCA (Tian'23): per-round sorting analysis, parallel moves";
  }
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial,
                                const Region& target) const override;

 private:
  AlgorithmOptions options_;
};

}  // namespace qrm::baselines

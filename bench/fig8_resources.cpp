// Fig. 8: FPGA resource utilisation (BRAM/LUT/FF percentages) on the
// ZCU216's XCZU49DR when scaling the atom array from 10x10 to 90x90.
// Paper: BRAM flat; LUT and FF linear with FF's slope slightly steeper;
// at W=90, LUT 6.31% and FF 6.19%.

#include "bench_common.hpp"
#include "resources/model.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

void print_table() {
  print_header("Fig. 8 — FPGA resource utilisation vs atom array size",
               "paper: BRAM flat; LUT/FF linear; LUT 6.31% / FF 6.19% at W=90");
  const res::DeviceSpec device = res::zcu216();
  TextTable table({"W", "BRAM", "LUT", "FF", "paper LUT/FF"});
  for (const std::int32_t w : {10, 30, 50, 70, 90}) {
    const res::Utilization u = res::estimate_accelerator(w);
    table.add_row({std::to_string(w), fmt_percent(u.bram_fraction(device)),
                   fmt_percent(u.lut_fraction(device)), fmt_percent(u.ff_fraction(device)),
                   w == 90 ? "6.31% / 6.19%" : "-"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Per-module breakdown at W=90 (paper: ~half of resources in the 4x QPM):\n");
  TextTable breakdown({"module", "LUTs", "FFs", "BRAM36"});
  for (const auto& m : res::estimate_breakdown(90)) {
    breakdown.add_row({m.module, std::to_string(m.usage.luts), std::to_string(m.usage.ffs),
                       std::to_string(m.usage.bram36)});
  }
  std::printf("%s\n", breakdown.render().c_str());
}

void BM_ResourceEstimate(benchmark::State& state) {
  const auto w = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(res::estimate_accelerator(w));
  }
}
BENCHMARK(BM_ResourceEstimate)->Arg(10)->Arg(90);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

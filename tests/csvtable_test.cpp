// Round-trip tests for util/csv (write -> parse -> compare) and rendering
// invariants for util/table, including quoting and empty-field edge cases.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace qrm {
namespace {

using Rows = std::vector<std::vector<std::string>>;

/// Write `rows` through CsvWriter and parse the emission back.
Rows round_trip(const Rows& rows) {
  std::ostringstream os;
  CsvWriter csv(os);
  for (const auto& row : rows) csv.write_row(row);
  return parse_csv(os.str());
}

TEST(CsvRoundTrip, PlainCells) {
  const Rows rows{{"a", "b", "c"}, {"1", "2", "3"}};
  EXPECT_EQ(round_trip(rows), rows);
}

TEST(CsvRoundTrip, QuotedCommasQuotesAndNewlines) {
  const Rows rows{
      {"needs,comma", "has\"quote", "multi\nline"},
      {"\"fully quoted\"", "trailing,", ",leading"},
      {"carriage\rreturn", "crlf\r\npair", "plain"},
  };
  EXPECT_EQ(round_trip(rows), rows);
}

TEST(CsvRoundTrip, EmptyFields) {
  const Rows rows{
      {"", "middle", ""},
      {"", "", ""},
      {"only"},
  };
  EXPECT_EQ(round_trip(rows), rows);
}

TEST(CsvRoundTrip, HeaderAndHeterogeneousRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.header({"name", "value", "note"});
  csv.row("alpha", 1, "plain");
  csv.row("beta", 2.5, "needs,quote");
  const Rows parsed = parse_csv(os.str());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0], (std::vector<std::string>{"name", "value", "note"}));
  EXPECT_EQ(parsed[1], (std::vector<std::string>{"alpha", "1", "plain"}));
  EXPECT_EQ(parsed[2], (std::vector<std::string>{"beta", "2.5", "needs,quote"}));
}

TEST(CsvParse, AcceptsCrlfAndMissingFinalNewline) {
  EXPECT_EQ(parse_csv("a,b\r\nc,d"), (Rows{{"a", "b"}, {"c", "d"}}));
  EXPECT_EQ(parse_csv("a,b\nc,d\n"), (Rows{{"a", "b"}, {"c", "d"}}));
  EXPECT_EQ(parse_csv(""), Rows{});
}

TEST(CsvParse, SingleEmptyCellRow) {
  // A lone comma is two empty cells; a quoted empty string is one.
  EXPECT_EQ(parse_csv(",\n"), (Rows{{"", ""}}));
  EXPECT_EQ(parse_csv("\"\"\n"), (Rows{{""}}));
}

TEST(CsvParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_csv("a\"b,c"), PreconditionError);
  EXPECT_THROW((void)parse_csv("\"unterminated"), PreconditionError);
  EXPECT_THROW((void)parse_csv("\"a\"b,c"), PreconditionError);
}

TEST(CsvWrite, RejectsEmptyRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  EXPECT_THROW(csv.write_row({}), PreconditionError);
  EXPECT_THROW(csv.header({}), PreconditionError);
}

TEST(TableRoundTrip, RenderPreservesEveryCell) {
  TextTable t({"algo", "latency", "speedup"});
  t.add_row({"qrm", "1.04 us", "54.2x"});
  t.add_row({"mta-1", "56.3 us", "1.0x"});
  const std::string out = t.render();
  for (const std::string cell : {"algo", "latency", "speedup", "qrm", "1.04 us", "54.2x",
                                 "mta-1", "56.3 us", "1.0x"}) {
    EXPECT_NE(out.find(cell), std::string::npos) << cell;
  }
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableRoundTrip, ColumnsStayAlignedAcrossWidths) {
  TextTable t({"x", "long-header"});
  t.add_row({"wider-than-header", "1"});
  const std::string out = t.render();
  // Every line must start its second column at the same offset.
  std::istringstream is(out);
  std::string line;
  std::size_t col = std::string::npos;
  while (std::getline(is, line)) {
    if (line.empty() || line.find_first_not_of('-') == std::string::npos) continue;
    const std::size_t two_spaces = line.find("  ");
    ASSERT_NE(two_spaces, std::string::npos) << line;
    const std::size_t second = line.find_first_not_of(' ', two_spaces);
    if (col == std::string::npos) col = second;
    else EXPECT_EQ(second, col) << line;
  }
}

}  // namespace
}  // namespace qrm

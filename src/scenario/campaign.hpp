#pragma once
/// \file campaign.hpp
/// CampaignRunner: fan a scenario matrix through qrm::batch and aggregate
/// per-scenario results into a CSV/JSON report.
///
/// Determinism guarantee, inherited from BatchPlanner and extended across
/// scenarios: every outcome field of a CampaignReport — per-shot grids,
/// counts, rates, per-scenario fingerprints, and the campaign fingerprint —
/// is bit-identical for any worker count, any shard count, and with the
/// plan cache on or off. Only measurement fields (`*_us`, `wall_us`,
/// shots/sec, cache hit counts) vary run to run; they are excluded from
/// every fingerprint and from ReportMode::Deterministic artifacts.
///
/// Sharding model: the filtered scenario matrix is partitioned by
/// shard_of(name, shards) — a stable FNV-1a property of the scenario name,
/// never of list order or timing — so independent processes can each run
/// one shard (`scenario_runner run --shards N --shard-index i`) and the
/// merged report (merge_reports, or the text-level mergers in
/// report_merge.hpp) is bit-identical to a sequential 1-shard run. Every
/// outcome carries its global matrix index for exactly this reassembly.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "batch/batch_planner.hpp"
#include "exec/plan_cache.hpp"
#include "exec/policy.hpp"
#include "scenario/spec.hpp"

namespace qrm::scenario {

struct CampaignConfig {
  std::string filter;           ///< scenario name-substring / tag filter
  /// Shard count over the filtered matrix. 1 = unsharded. run() with
  /// shards > 1 executes every shard in-process and merges; run_shard()
  /// executes only shard_index (the multi-process mode).
  std::uint32_t shards = 1;
  std::uint32_t shard_index = 0;  ///< which shard run_shard() executes

  /// Base execution policy: pool sizing (exec.workers sizes the one pool a
  /// shard's capture + scenarios x shots x quadrants all share) and any
  /// pre-attached plan cache (a cache attached here is kept by the
  /// plan_cache=true default below and shared across every shard of the
  /// run — the cross-shard warm-cache mode; leave it null for today's
  /// per-shard caches).
  exec::ExecPolicy exec;
  /// Campaign layer of the precedence stack: wins over each spec's keys,
  /// loses to the CLI layer. Fields left unset honour each spec — the old
  /// `-1` sentinels, now expressed as std::optional. plan_cache defaults
  /// on: Pattern scenarios and repeated sweep cells skip replanning, and
  /// outcomes are bit-identical either way. Every knob here is pure
  /// mechanism (plans are bit-identical for any worker count, Delta ==
  /// Scratch, hits == cold plans), so no override can change an outcome,
  /// fingerprint, or spec serialization — which is exactly what lets the
  /// golden corpus be re-run under any policy without touching the specs.
  exec::ExecOverrides overrides = {.plan_cache = true};
  /// CLI layer (highest precedence); scenario_runner writes parsed flags
  /// here. Precedence over spec keys and campaign overrides is pinned by
  /// tests/exec_test.cpp.
  exec::ExecOverrides cli;
};

/// The campaign-scope policy a run executes under: campaign overrides and
/// CLI flags applied over the base — no spec layer, since per-spec keys
/// resolve per scenario (resolve_exec). A true plan_cache resolution
/// attaches a cache here; run_selected resolves once per shard so the
/// shard's scenarios share one cache (matching what independent shard
/// processes would see).
[[nodiscard]] exec::ExecPolicy campaign_policy(const CampaignConfig& config);

/// The fully resolved policy one scenario runs under: spec keys
/// (intra_plan_workers, replan), then campaign overrides, then CLI flags,
/// over the base policy. CLI > campaign > spec > default.
[[nodiscard]] exec::ExecPolicy resolve_exec(const CampaignConfig& config,
                                            const ScenarioSpec& spec);

/// One scenario's batch outcome plus its SortedSample aggregation.
struct ScenarioOutcome {
  /// Position in the filtered scenario matrix — the key that lets shard
  /// reports merge back into sequential order.
  std::size_t index = 0;
  ScenarioSpec spec;
  batch::BatchReport batch;

  // Deterministic aggregates.
  double mean_rounds = 0.0;
  double p90_rounds = 0.0;
  double p50_commands = 0.0;
  double p90_commands = 0.0;
  /// Deterministic per-shot control-path overhead of the spec's
  /// architecture (Fig. 2 structural model): host-mediated pays the camera
  /// frame and the move list crossing the host link every round;
  /// FPGA-integrated pays only streaming detection cycles. Computed from
  /// the link/clock constants of runtime/control_system.hpp and the
  /// scenario's own mean rounds / commands, so it is reproducible and
  /// worker-count independent (unlike the measured `*_us` columns).
  double arch_overhead_us = 0.0;

  // Wall-clock aggregates (measurement, excluded from fingerprints).
  double p50_plan_us = 0.0;
  double p90_plan_us = 0.0;
  double p50_execute_us = 0.0;

  /// FNV-1a over the serialized spec and the batch outcome fingerprint.
  std::uint64_t fingerprint = 0;
};

struct CampaignReport {
  std::vector<ScenarioOutcome> scenarios;
  std::uint32_t workers = 0;  ///< pool size actually used
  double wall_us = 0.0;       ///< end-to-end campaign wall time
  /// Plan-cache counters for the run (measurement: hit/miss split depends
  /// on scheduling; zeros when the cache is off).
  exec::PlanCacheStats plan_cache;

  /// Order-sensitive combination of the per-scenario fingerprints. Two
  /// campaigns over the same scenario list must agree here regardless of
  /// worker count, shard count, or cache mode.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Deterministic shard assignment: fnv::hash_text(name) % shards. Stable
/// across processes and releases — renaming a scenario is the only way to
/// move it between shards.
[[nodiscard]] std::uint32_t shard_of(const std::string& name, std::uint32_t shards);

/// The exact BatchConfig a scenario runs as, under an already-resolved
/// execution policy (resolve_exec folds the spec's own intra_plan_workers /
/// replan keys into the policy — this function copies `policy` verbatim and
/// applies no spec knobs itself). Exposed so tests (and anyone porting a
/// hand-coded sweep binary) can prove the scenario path is bit-identical to
/// driving BatchPlanner directly.
[[nodiscard]] batch::BatchConfig to_batch_config(const ScenarioSpec& spec,
                                                 exec::ExecPolicy policy = {});

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

  /// Run one scenario (validated first; the config filter is not applied).
  [[nodiscard]] ScenarioOutcome run_one(const ScenarioSpec& spec) const;

  /// Run every scenario matching the config filter. Scenarios × shots fan
  /// out across one ThreadPool (two-level parallelism: a slow scenario no
  /// longer serialises the ones after it). With config.shards > 1, every
  /// shard runs in-process and the reports are merged — bit-identical to
  /// the shards == 1 path. Throws PreconditionError when the filter
  /// matches nothing — a silently empty campaign would read as a green CI
  /// run.
  [[nodiscard]] CampaignReport run(const std::vector<ScenarioSpec>& specs) const;

  /// Run only shard config.shard_index of the filtered matrix (the
  /// multi-process mode). Unlike run(), an empty shard is a valid result —
  /// its report has no scenarios and merges as a no-op.
  [[nodiscard]] CampaignReport run_shard(const std::vector<ScenarioSpec>& specs) const;

 private:
  /// The fan-out core: run `selected` (paired with global matrix indices)
  /// as scenarios × shots tasks on one pool.
  [[nodiscard]] CampaignReport run_selected(const std::vector<const ScenarioSpec*>& selected,
                                            const std::vector<std::size_t>& indices) const;

  CampaignConfig config_;
};

/// Merge per-shard reports back into canonical matrix order. Outcome
/// indices across the shards must form exactly 0..N-1 (throws otherwise);
/// wall time and cache counters sum, the campaign fingerprint is
/// recomputed and equals the sequential run's.
[[nodiscard]] CampaignReport merge_reports(std::vector<CampaignReport> shards);

/// Which columns/fields the report writers emit. Deterministic drops every
/// measurement field (workers, wall, `*_us` timings, shots/sec, cache
/// counters), leaving only worker/shard/cache-invariant content — the mode
/// whose artifacts are byte-comparable across runs and whose shard files
/// the report_merge.hpp mergers accept.
enum class ReportMode : std::uint8_t { Full, Deterministic };

/// One CSV row per scenario, led by the global matrix index.
void write_csv(const CampaignReport& report, std::ostream& out,
               ReportMode mode = ReportMode::Full);

/// The same content as a JSON document, for tooling that wants structure.
void write_json(const CampaignReport& report, std::ostream& out,
                ReportMode mode = ReportMode::Full);

}  // namespace qrm::scenario

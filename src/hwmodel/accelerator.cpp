#include "hwmodel/accelerator.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "core/pass_driver.hpp"
#include "hwmodel/balance_unit.hpp"
#include "hwmodel/ldm.hpp"
#include "hwmodel/ocm.hpp"
#include "hwmodel/shift_kernel.hpp"
#include "util/assert.hpp"

namespace qrm::hw {

namespace {

/// Quadrant-local line beats for one pass: rows for a horizontal pass,
/// columns (as BitRows over row indices) for a vertical one.
std::vector<RowBeat> pass_beats(const OccupancyGrid& local, Axis axis,
                                const std::vector<LineAssignment>& assignments, bool balance) {
  // For balance passes the per-line record count is not derivable from a
  // compaction scan; the balance unit supplies it (movers per line).
  std::map<std::int32_t, std::int32_t> override_records;
  if (balance) {
    for (const auto& a : assignments) {
      std::int32_t movers = 0;
      for (std::size_t i = 0; i < a.sources.size(); ++i)
        if (a.sources[i] != a.targets[i]) ++movers;
      override_records[a.line] = movers;
    }
  }
  const std::int32_t line_count = axis == Axis::Rows ? local.height() : local.width();
  std::vector<RowBeat> beats;
  beats.reserve(static_cast<std::size_t>(line_count));
  for (std::int32_t line = 0; line < line_count; ++line) {
    RowBeat beat;
    beat.line = line;
    beat.bits = axis == Axis::Rows ? local.row(line) : local.column(line);
    if (balance) {
      const auto it = override_records.find(line);
      beat.records_override = it == override_records.end() ? 0 : it->second;
    }
    beats.push_back(std::move(beat));
  }
  return beats;
}

}  // namespace

std::string CycleReport::to_string() const {
  std::ostringstream os;
  os << "control       " << control << " cycles\n";
  os << "load (DMA+LDM)" << ' ' << load << " cycles\n";
  if (balance > 0) os << "balance unit  " << balance << " cycles\n";
  for (const auto& p : passes) os << p.name << "  " << p.cycles << " cycles\n";
  os << "DMA out       " << dma_out << " cycles\n";
  os << "total         " << total() << " cycles\n";
  return os.str();
}

QrmAccelerator::QrmAccelerator(AcceleratorConfig config) : config_(std::move(config)) {
  QRM_EXPECTS_MSG(config_.quadrant_pathways == 1 || config_.quadrant_pathways == 2 ||
                      config_.quadrant_pathways == 4,
                  "quadrant_pathways must be 1, 2 or 4");
  QRM_EXPECTS(config_.clock_mhz > 0.0);
  QRM_EXPECTS(config_.record_bits > 0 && config_.ocm_drain_width > 0);
}

AccelResult QrmAccelerator::run(const OccupancyGrid& initial) const {
  AccelResult result;
  CycleReport& cycles = result.cycles;
  cycles.control = config_.control_overhead_cycles;

  PassDriver driver(initial, config_.plan);
  const QuadrantGeometry& geom = driver.geometry();

  // ----- Load phase: DDR -> AXI -> LDM -> quadrant row buffers -------------
  {
    Simulation sim;
    Fifo<AxiPacket> packet_fifo("axi", 4);
    std::array<std::unique_ptr<Fifo<RowBeat>>, 4> row_fifos;
    std::array<Fifo<RowBeat>*, 4> row_ptrs{};
    for (std::size_t q = 0; q < 4; ++q) {
      row_fifos[q] = std::make_unique<Fifo<RowBeat>>(
          "rows" + std::to_string(q), static_cast<std::size_t>(geom.local_height()) + 4);
      row_ptrs[q] = row_fifos[q].get();
    }
    PacketSource source("ddr", pack_grid(initial, config_.packet_bits), packet_fifo,
                        config_.ddr.read_latency_cycles);
    LoadDataModule ldm("ldm", initial.height(), initial.width(), config_.packet_bits,
                       packet_fifo, row_ptrs);
    std::array<std::unique_ptr<RowSink>, 4> sinks;
    sim.add_module(source);
    sim.add_module(ldm);
    sim.add_fifo(packet_fifo);
    for (std::size_t q = 0; q < 4; ++q) {
      sinks[q] = std::make_unique<RowSink>("sink" + std::to_string(q), *row_fifos[q]);
      sim.add_module(*sinks[q]);
      sim.add_fifo(*row_fifos[q]);
    }
    cycles.load = sim.run();

    // Datapath check: the LDM must deliver exactly the flipped quadrant
    // images the algorithm expects.
    for (const Quadrant q : kAllQuadrants) {
      const OccupancyGrid expected = geom.extract_local(initial, q);
      const auto& rows = sinks[static_cast<std::size_t>(q)]->rows();
      QRM_ENSURES_MSG(rows.size() == static_cast<std::size_t>(expected.height()),
                      "LDM emitted a wrong number of quadrant rows");
      for (const RowBeat& beat : rows) {
        QRM_ENSURES_MSG(beat.bits == expected.row(beat.line),
                        "LDM flip produced a wrong quadrant row");
      }
    }
  }

  // ----- Schedule-analysis passes ------------------------------------------
  const std::uint32_t pathways = config_.quadrant_pathways;
  std::size_t pass_index = 0;
  std::uint64_t total_records = 0;
  while (auto pass = driver.next()) {
    if (pass->balance) {
      // Balance units (our documented extension; see DESIGN.md): structural
      // simulation — stream the quadrant rows through the counting stage,
      // grant one target column per cycle, stream placements back. All four
      // quadrants run in parallel; cycles come from the simulation and the
      // grant totals are cross-checked against the behavioural analysis.
      Simulation balance_sim;
      std::vector<std::unique_ptr<Fifo<RowBeat>>> fifos;
      std::vector<std::unique_ptr<RowSource>> row_sources;
      std::vector<std::unique_ptr<BalanceUnit>> units;
      const std::int32_t quarter_rows = config_.plan.target.rows / 2;
      const std::int32_t quarter_cols = config_.plan.target.cols / 2;
      for (std::size_t q = 0; q < 4; ++q) {
        std::vector<RowBeat> beats;
        const OccupancyGrid& local = pass->local_grids[q];
        for (std::int32_t r = 0; r < local.height(); ++r)
          beats.push_back({r, local.row(r), -1});
        fifos.push_back(
            std::make_unique<Fifo<RowBeat>>("bal" + std::to_string(q) + ".rows", 4));
        row_sources.push_back(std::make_unique<RowSource>("bal" + std::to_string(q) + ".src",
                                                          std::move(beats), *fifos.back()));
        units.push_back(std::make_unique<BalanceUnit>("bal" + std::to_string(q),
                                                      *fifos.back(), local.height(),
                                                      quarter_rows, quarter_cols,
                                                      config_.plan.sen_limit));
        balance_sim.add_module(*row_sources.back());
        balance_sim.add_module(*units.back());
        balance_sim.add_fifo(*fifos.back());
      }
      cycles.balance += balance_sim.run();
      for (std::size_t q = 0; q < 4; ++q) {
        const auto expected =
            static_cast<std::uint64_t>(quarter_rows) * static_cast<std::uint64_t>(quarter_cols) -
            static_cast<std::uint64_t>(pass->balance_reports[q].shortfall);
        QRM_ENSURES_MSG(units[q]->grants() == expected,
                        "balance unit diverged from the behavioural demand analysis");
      }
    }

    Simulation sim;
    std::vector<std::unique_ptr<Fifo<RowBeat>>> in_fifos;
    std::vector<std::unique_ptr<Fifo<CommandBeat>>> out_fifos;
    std::vector<std::unique_ptr<RowSource>> sources;
    std::vector<std::unique_ptr<ShiftKernel>> kernels;

    const std::size_t line_count = static_cast<std::size_t>(
        pass->axis == Axis::Rows ? geom.local_height() : geom.local_width());
    std::array<Fifo<CommandBeat>*, 4> ocm_inputs{};
    for (std::uint32_t k = 0; k < pathways; ++k) {
      // Pathway k serves quadrants k, k+P, ... sequentially (concatenated
      // row streams) — the 1/2-pathway ablation.
      std::vector<RowBeat> beats;
      for (std::size_t q = k; q < 4; q += pathways) {
        auto quadrant_beats =
            pass_beats(pass->local_grids[q], pass->axis,
                       pass->local_assignments[q], pass->balance);
        beats.insert(beats.end(), quadrant_beats.begin(), quadrant_beats.end());
      }
      in_fifos.push_back(std::make_unique<Fifo<RowBeat>>("k" + std::to_string(k) + ".in", 4));
      out_fifos.push_back(std::make_unique<Fifo<CommandBeat>>(
          "k" + std::to_string(k) + ".out", line_count * (4 / pathways) + 8));
      sources.push_back(std::make_unique<RowSource>("src" + std::to_string(k),
                                                    std::move(beats), *in_fifos.back()));
      kernels.push_back(std::make_unique<ShiftKernel>("kernel" + std::to_string(k),
                                                      *in_fifos.back(), *out_fifos.back(),
                                                      config_.plan.sen_limit));
      ocm_inputs[k] = out_fifos.back().get();
    }
    OutputConcatModule ocm("ocm", ocm_inputs, config_.ocm_drain_width);

    for (auto& s : sources) sim.add_module(*s);
    for (auto& k : kernels) sim.add_module(*k);
    sim.add_module(ocm);
    for (auto& f : in_fifos) sim.add_fifo(*f);
    for (auto& f : out_fifos) sim.add_fifo(*f);

    const std::uint64_t pass_cycles = sim.run();
    total_records += ocm.records_emitted();

    std::ostringstream name;
    name << "pass " << pass_index << " (" << (pass->axis == Axis::Rows ? "H" : "V")
         << (pass->balance ? ", balance" : "") << ")";
    cycles.passes.push_back({name.str(), pass_cycles});
    ++pass_index;

    driver.apply(std::move(*pass));
  }

  result.plan = driver.take_result();
  result.movement_records = total_records;

  // ----- Output DMA ---------------------------------------------------------
  const std::uint64_t record_bits_total = total_records * config_.record_bits;
  cycles.dma_out = config_.ddr.read_latency_cycles +
                   (record_bits_total + config_.packet_bits - 1) / config_.packet_bits;

  result.latency_us = static_cast<double>(cycles.total()) / config_.clock_mhz;
  return result;
}

double accelerator_latency_us(const OccupancyGrid& initial, std::int32_t target_size) {
  AcceleratorConfig config;
  config.plan.target =
      centered_region(initial.height(), initial.width(), target_size, target_size);
  const QrmAccelerator accel(config);
  return accel.run(initial).latency_us;
}

}  // namespace qrm::hw

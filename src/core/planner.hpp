#pragma once
/// \file planner.hpp
/// The QRM planner: the paper's quadrant-based rearrangement method as a
/// behavioural (CPU) implementation.
///
/// plan() performs the full Fig. 4 flow — split the array into quadrants,
/// flip each into the unified local frame, run the same pass schedule on all
/// four, merge the resulting shift commands across quadrants, and restore
/// coordinates — producing an executable, AOD-legal global schedule plus the
/// predicted final grid.

#include "core/config.hpp"
#include "lattice/grid.hpp"

namespace qrm {

class QrmPlanner {
 public:
  /// `parallelism` is mechanism only (see PlanParallelism): any value
  /// produces bit-identical plans. With workers > 0 and no pool, plan()
  /// spins up a transient pool per call.
  explicit QrmPlanner(QrmConfig config, PlanParallelism parallelism = {})
      : config_(std::move(config)), parallelism_(std::move(parallelism)) {}

  [[nodiscard]] const QrmConfig& config() const noexcept { return config_; }

  /// Compute the rearrangement schedule for `initial`.
  ///
  /// Preconditions: grid dimensions positive and even; config.target is an
  /// even-sized region centred in the grid (each quadrant owns exactly one
  /// quarter of it). Throws PreconditionError otherwise.
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial) const;

 private:
  QrmConfig config_;
  PlanParallelism parallelism_;
};

/// Convenience: plan with a centred target_size x target_size region in
/// balanced mode (the paper's headline configuration).
[[nodiscard]] PlanResult plan_qrm(const OccupancyGrid& initial, std::int32_t target_size,
                                  PlanMode mode = PlanMode::Balanced);

}  // namespace qrm

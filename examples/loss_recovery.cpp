/// \file loss_recovery.cpp
/// Multi-round rearrangement under atom loss: the scaled-up / mid-circuit
/// scenario that motivates fast analysis (paper Sec. I). Each round
/// re-images, re-plans and re-executes; transported atoms are occasionally
/// lost, so several rounds are typically needed — multiplying whatever the
/// per-round analysis latency is.
///
///   $ ./examples/loss_recovery [per_move_loss_percent]

#include <cstdio>
#include <cstdlib>

#include "loading/loader.hpp"
#include "runtime/rearrangement_loop.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qrm;
  const double loss_pct = argc > 1 ? std::atof(argv[1]) : 1.0;

  const OccupancyGrid initial = load_random(30, 30, {0.6, 11});
  rt::LoopConfig config;
  config.plan.target = centered_square(30, 18);
  config.loss.per_move_loss = loss_pct / 100.0;
  config.loss.background_loss = 0.002;
  config.max_rounds = 12;

  std::printf("Rearranging 30x30 -> 18x18 with %.1f%% transport loss per move\n\n", loss_pct);
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);

  TextTable table({"round", "atoms", "defects", "commands", "lost", "filled"});
  int round = 1;
  for (const auto& r : report.rounds) {
    table.add_row({std::to_string(round++), std::to_string(r.atoms_before),
                   std::to_string(r.defects_before), std::to_string(r.commands),
                   std::to_string(r.atoms_lost), r.filled_after ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Outcome: %s after %zu round(s), %lld atoms lost in total.\n",
              report.success ? "defect-free" : "FAILED", report.rounds_used(),
              static_cast<long long>(report.total_atoms_lost));
  std::printf("Every extra round repeats the full image->detect->plan chain — the\n"
              "latency the paper's accelerator shrinks from tens of microseconds to ~1 us.\n");
  return report.success ? 0 : 1;
}

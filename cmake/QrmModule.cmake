# Helper for declaring the per-module static libraries that make up the
# qrm reproduction. Usage:
#
#   qrm_add_module(lattice
#     SOURCES grid.cpp quadrant.cpp region.cpp
#     DEPENDS qrm::util)
#
# Creates target `qrm_lattice` with alias `qrm::lattice`, rooted at src/
# so includes are written as "lattice/grid.hpp" everywhere.
function(qrm_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPENDS" ${ARGN})

  set(target qrm_${name})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(qrm::${name} ALIAS ${target})

  target_include_directories(${target} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(${target} PRIVATE qrm::warnings)
  if(ARG_DEPENDS)
    target_link_libraries(${target} PUBLIC ${ARG_DEPENDS})
  endif()
endfunction()

# Helper for the repo's executables (tests, benches, examples).
#
#   qrm_add_executable(quickstart
#     SOURCES quickstart.cpp
#     DEPENDS qrm::runtime)
function(qrm_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPENDS" ${ARGN})

  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE qrm::warnings ${ARG_DEPENDS})
  target_include_directories(${name} PRIVATE ${CMAKE_CURRENT_SOURCE_DIR})
endfunction()

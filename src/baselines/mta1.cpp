#include "baselines/mta1.hpp"

#include "baselines/common.hpp"
#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm::baselines {

namespace {

/// Locate the k-th atom (0-based, ascending) of a line by scanning it from
/// position 0 — the per-step "analysis" a naive sequential controller
/// performs. Returns the position; the scan result is load-bearing (it is
/// the source coordinate of the next move), so it cannot be elided.
std::int32_t locate_kth_atom(const OccupancyGrid& state, Axis axis, std::int32_t line,
                             std::int32_t k) {
  const std::int32_t length = axis == Axis::Rows ? state.width() : state.height();
  std::int32_t seen = 0;
  for (std::int32_t p = 0; p < length; ++p) {
    const Coord site = axis == Axis::Rows ? Coord{line, p} : Coord{p, line};
    if (state.occupied(site)) {
      if (seen == k) return p;
      ++seen;
    }
  }
  QRM_ENSURES_MSG(false, "MTA1 lost track of an atom");
  return -1;
}

/// Sequential controllers re-verify the whole frame between deliveries
/// (they interleave imaging with motion); model that as a full-grid scan
/// whose result is checked against the conserved atom count.
std::int64_t full_frame_scan(const OccupancyGrid& state) {
  std::int64_t count = 0;
  for (std::int32_t r = 0; r < state.height(); ++r)
    for (std::int32_t c = 0; c < state.width(); ++c)
      if (state.occupied({r, c})) ++count;
  return count;
}

/// Deliver one line's atoms to their targets strictly sequentially: one
/// atom at a time, one unit step per command, re-scanning before each step.
void deliver_line(OccupancyGrid& state, Axis axis, const LineAssignment& assignment,
                  Schedule& schedule, PassInfo& info, std::int64_t expected_atoms) {
  const auto n = static_cast<std::int32_t>(assignment.targets.size());
  const Direction toward = axis == Axis::Rows ? Direction::West : Direction::North;
  const Direction away = axis == Axis::Rows ? Direction::East : Direction::South;

  // Toward-origin movers first (ascending rank), then away movers
  // (descending), so no delivery is ever blocked.
  const auto deliver = [&](std::int32_t k, Direction dir) {
    while (true) {
      const std::int32_t pos = locate_kth_atom(state, axis, assignment.line, k);
      const std::int32_t goal = assignment.targets[static_cast<std::size_t>(k)];
      const bool wants = dir == toward ? pos > goal : pos < goal;
      if (!wants) break;
      const Coord site = axis == Axis::Rows ? Coord{assignment.line, pos}
                                            : Coord{pos, assignment.line};
      ParallelMove move{dir, 1, {site}};
      apply_move_unchecked(state, move);
      schedule.push_back(std::move(move));
      info.unit_rounds += 1;
    }
  };

  bool any_motion = false;
  for (std::int32_t k = 0; k < n; ++k) {
    const std::int32_t before = locate_kth_atom(state, axis, assignment.line, k);
    if (before > assignment.targets[static_cast<std::size_t>(k)]) {
      QRM_ENSURES_MSG(full_frame_scan(state) == expected_atoms, "MTA1 lost an atom");
      deliver(k, toward);
      any_motion = true;
      ++info.atoms_moved;
    }
  }
  for (std::int32_t k = n - 1; k >= 0; --k) {
    const std::int32_t before = locate_kth_atom(state, axis, assignment.line, k);
    if (before < assignment.targets[static_cast<std::size_t>(k)]) {
      QRM_ENSURES_MSG(full_frame_scan(state) == expected_atoms, "MTA1 lost an atom");
      deliver(k, away);
      any_motion = true;
      ++info.atoms_moved;
    }
  }
  if (any_motion) ++info.lines_with_motion;
}

}  // namespace

PlanResult Mta1Algorithm::plan(const OccupancyGrid& initial, const Region& target) const {
  PlanResult result;
  result.final_grid = initial;
  OccupancyGrid& state = result.final_grid;

  const GlobalPlacement placement = compute_balanced_placement(state, target);
  result.stats.feasible = placement.feasible;
  const std::int64_t atoms = state.atom_count();

  PassInfo rows;
  rows.axis = Axis::Rows;
  for (const auto& a : placement.row_assignments)
    deliver_line(state, Axis::Rows, a, result.schedule, rows, atoms);
  result.stats.passes.push_back(rows);

  PassInfo cols;
  cols.axis = Axis::Cols;
  for (const auto& a : compute_band_columns(state, target))
    deliver_line(state, Axis::Cols, a, result.schedule, cols, atoms);
  result.stats.passes.push_back(cols);

  result.stats.iterations = 1;
  finalize_stats(result, target);
  return result;
}

}  // namespace qrm::baselines

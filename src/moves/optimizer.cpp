#include "moves/optimizer.hpp"

#include <algorithm>

#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// True when `next.sites` are exactly `pending.sites` displaced by
/// pending.steps in pending.dir (the same atom group continuing its ride).
bool continues_group(const ParallelMove& pending, const ParallelMove& next) {
  if (next.dir != pending.dir || next.sites.size() != pending.sites.size()) return false;
  std::vector<Coord> expected;
  expected.reserve(pending.sites.size());
  for (const Coord& s : pending.sites) expected.push_back(moved(s, pending.dir, pending.steps));
  std::vector<Coord> actual = next.sites;
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  return expected == actual;
}

}  // namespace

CoalesceResult coalesce_schedule(const OccupancyGrid& initial, const Schedule& schedule,
                                 const CoalesceOptions& options) {
  CoalesceResult result;
  result.moves_before = schedule.size();

  OccupancyGrid state = initial;  // grid state *before* the pending move
  bool has_pending = false;
  ParallelMove pending;

  const auto flush = [&] {
    if (!has_pending) return;
    if (auto violation = validate_move(state, pending, options.check_aod)) {
      throw PreconditionError("coalesce: input schedule invalid: " + *violation);
    }
    apply_move_unchecked(state, pending);
    result.schedule.push_back(std::move(pending));
    has_pending = false;
  };

  for (const ParallelMove& move : schedule.moves()) {
    if (has_pending && continues_group(pending, move) &&
        (options.max_steps <= 0 || pending.steps + move.steps <= options.max_steps)) {
      ParallelMove merged = pending;
      merged.steps += move.steps;
      // The merged sweep can only collide/violate where the parts could
      // not if intermediate moves were interleaved — re-validate to be
      // safe and skip the merge when it fails.
      if (!validate_move(state, merged, options.check_aod)) {
        pending = std::move(merged);
        continue;
      }
    }
    flush();
    pending = move;
    has_pending = true;
  }
  flush();

  result.moves_after = result.schedule.size();
  return result;
}

bool schedules_equivalent(const OccupancyGrid& initial, const Schedule& a, const Schedule& b,
                          bool check_aod) {
  OccupancyGrid ga = initial;
  OccupancyGrid gb = initial;
  const ExecutionReport ra = run_schedule(ga, a, {check_aod});
  const ExecutionReport rb = run_schedule(gb, b, {check_aod});
  if (!ra.ok || !rb.ok) return false;
  return ga == gb;
}

}  // namespace qrm

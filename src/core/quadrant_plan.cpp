#include "core/quadrant_plan.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "util/assert.hpp"

namespace qrm {

namespace {

/// Atom positions along line `line` of `local` for the given axis, ascending,
/// excluding positions at or beyond the sen gate. Iterates storage words
/// directly: this sits on the latency-critical CPU-analysis path.
std::vector<std::int32_t> line_atoms(const OccupancyGrid& local, Axis axis, std::int32_t line,
                                     std::int32_t sen_limit) {
  const BitRow bits = axis == Axis::Rows ? local.row(line) : local.column(line);
  std::vector<std::int32_t> out;
  out.reserve(bits.count());
  const auto& words = bits.words();
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    while (w != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
      const auto p = static_cast<std::int32_t>(wi * BitRow::kWordBits + bit);
      if (sen_limit >= 0 && p >= sen_limit) return out;
      out.push_back(p);
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace

std::vector<LineAssignment> compact_pass(const OccupancyGrid& local, Axis axis,
                                         std::int32_t sen_limit) {
  const std::int32_t line_count = axis == Axis::Rows ? local.height() : local.width();
  std::vector<LineAssignment> out;
  for (std::int32_t line = 0; line < line_count; ++line) {
    std::vector<std::int32_t> sources = line_atoms(local, axis, line, sen_limit);
    if (sources.empty()) continue;
    std::vector<std::int32_t> targets(sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) targets[i] = static_cast<std::int32_t>(i);
    if (sources == targets) continue;  // already compact
    out.push_back({line, std::move(sources), std::move(targets)});
  }
  return out;
}

std::vector<LineAssignment> balance_pass(const OccupancyGrid& local, std::int32_t target_rows,
                                         std::int32_t target_cols, std::int32_t sen_limit,
                                         BalanceReport* report) {
  QRM_EXPECTS(target_rows > 0 && target_cols > 0);
  QRM_EXPECTS(target_rows <= local.height() && target_cols <= local.width());

  const std::int32_t height = local.height();
  const std::int32_t width = local.width();

  // Usable atoms per row (below the sen gate).
  std::vector<std::vector<std::int32_t>> atoms(static_cast<std::size_t>(height));
  std::vector<std::int32_t> capacity(static_cast<std::size_t>(height), 0);
  for (std::int32_t r = 0; r < height; ++r) {
    atoms[static_cast<std::size_t>(r)] = line_atoms(local, Axis::Rows, r, sen_limit);
    capacity[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(atoms[static_cast<std::size_t>(r)].size());
  }

  // Greedy demand assignment: each target column needs `target_rows` donors,
  // at most one per row. Serving each column with the rows of largest
  // remaining capacity maximises the total satisfiable demand. Rows are
  // bucketed by remaining capacity so each column costs O(grants), not a
  // sort (this path is on the latency-critical CPU analysis).
  std::vector<std::vector<std::int32_t>> chosen(static_cast<std::size_t>(height));
  std::int32_t max_capacity = 0;
  for (const auto cap : capacity) max_capacity = std::max(max_capacity, cap);
  std::vector<std::vector<std::int32_t>> buckets(static_cast<std::size_t>(max_capacity) + 1);
  for (std::int32_t r = 0; r < height; ++r)
    buckets[static_cast<std::size_t>(capacity[static_cast<std::size_t>(r)])].push_back(r);

  BalanceReport rep;
  std::vector<std::pair<std::int32_t, std::int32_t>> picks;  // (row, old capacity)
  for (std::int32_t c = 0; c < target_cols; ++c) {
    picks.clear();
    std::int32_t granted = 0;
    for (std::int32_t cap = max_capacity; cap >= 1 && granted < target_rows; --cap) {
      auto& bucket = buckets[static_cast<std::size_t>(cap)];
      while (!bucket.empty() && granted < target_rows) {
        picks.emplace_back(bucket.back(), cap);
        bucket.pop_back();
        ++granted;
      }
    }
    // Apply grants after the scan so a row serves this column at most once.
    for (const auto& [r, cap] : picks) {
      chosen[static_cast<std::size_t>(r)].push_back(c);  // ascending: c increases
      buckets[static_cast<std::size_t>(cap - 1)].push_back(r);
    }
    if (granted < target_rows) {
      rep.feasible = false;
      rep.shortfall += target_rows - granted;
    }
  }

  // Build per-row final placements: the chosen target columns plus parking
  // spots for surplus atoms (prefer their original columns, then the lowest
  // free columns). Gated atoms (>= sen_limit) are fixed obstacles the final
  // ordering must respect — parking prefers original positions, and gated
  // atoms keep theirs, so conflicts cannot arise below the gate.
  std::vector<LineAssignment> out;
  std::vector<char> used(static_cast<std::size_t>(width));
  for (std::int32_t r = 0; r < height; ++r) {
    const auto& row_atoms = atoms[static_cast<std::size_t>(r)];
    if (row_atoms.empty()) continue;
    std::fill(used.begin(), used.end(), char{0});
    std::size_t placed = 0;
    for (const std::int32_t c : chosen[static_cast<std::size_t>(r)]) {
      used[static_cast<std::size_t>(c)] = 1;
      ++placed;
    }
    // Keep surplus atoms at their original columns where possible...
    for (const std::int32_t a : row_atoms) {
      if (placed == row_atoms.size()) break;
      if (used[static_cast<std::size_t>(a)] == 0) {
        used[static_cast<std::size_t>(a)] = 1;
        ++placed;
      }
    }
    // ...topping up from the lowest free columns when originals collided
    // with chosen targets. Gated positions are never used for parking.
    const std::int32_t park_end = sen_limit < 0 ? width : sen_limit;
    for (std::int32_t c = 0; c < park_end && placed < row_atoms.size(); ++c) {
      if (used[static_cast<std::size_t>(c)] == 0) {
        used[static_cast<std::size_t>(c)] = 1;
        ++placed;
      }
    }
    QRM_ENSURES_MSG(placed == row_atoms.size(),
                    "balance pass could not place every atom below the sen gate");
    std::vector<std::int32_t> targets;
    targets.reserve(row_atoms.size());
    for (std::int32_t c = 0; c < width; ++c) {
      if (used[static_cast<std::size_t>(c)] != 0) targets.push_back(c);
    }
    if (targets == row_atoms) continue;  // nothing to move in this row
    out.push_back({r, row_atoms, std::move(targets)});
  }

  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace qrm

#pragma once
/// \file rearrangement_loop.hpp
/// Multi-round rearrangement under atom loss — the scaled-up / mid-circuit
/// scenario the paper's introduction motivates ("the runtime for atom
/// rearrangement in scaled-up systems with mid-circuit measurements
/// remains a challenge").
///
/// Each round: image the (simulated) array, detect, plan, execute — but
/// every executed move loses its atom with some probability, and trapped
/// atoms suffer background loss between rounds. The loop repeats until the
/// target is defect-free or the atom budget is exhausted, reporting how
/// analysis latency multiplies across rounds.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/delta_planner.hpp"
#include "exec/policy.hpp"
#include "lattice/grid.hpp"
#include "moves/schedule.hpp"
#include "util/rng.hpp"

namespace qrm::rt {

struct LossModel {
  double per_move_loss = 0.005;      ///< probability an atom is lost per executed move
  double background_loss = 0.002;    ///< per-atom loss probability between rounds
  /// Correlated loss bursts (a collision with background gas, a tweezer
  /// glitch): after each executed round, with this probability a burst
  /// fires and kills `burst_length` consecutive trapped atoms (scan order,
  /// start drawn uniformly). Draws come from the same derived per-shot
  /// stream as the other loss coins, so determinism and worker-count
  /// invariance carry over; 0.0 (the default) draws nothing at all.
  double burst_loss = 0.0;
  std::int32_t burst_length = 4;     ///< atoms killed per burst
  std::uint64_t seed = 0xA70B1055;   ///< master loss seed; shots draw derived streams

  /// The loss model of one shot in a batch: same physics, an independent
  /// RNG stream split from the master seed. A single shared seed would make
  /// "independent" shots draw the *same* loss coin flips and correlate every
  /// batch statistic; deriving per shot keeps them uncorrelated while the
  /// whole batch stays reproducible from one master seed.
  [[nodiscard]] LossModel derive(std::uint64_t shot_index) const noexcept {
    LossModel shot = *this;
    shot.seed = derive_seed(seed, shot_index);
    return shot;
  }
};

struct LoopConfig {
  QrmConfig plan;                 ///< target + planner settings
  LossModel loss;
  std::uint32_t max_rounds = 10;
  /// Which derived loss stream this run draws (see LossModel::derive).
  /// Batch shots pass their shot number; standalone runs keep 0.
  std::uint32_t shot_index = 0;
  /// Execution policy. The loop honours keep_schedules, replan (Scratch
  /// replans every round from nothing; Delta reuses untouched quadrant
  /// kernels via core/delta_planner.hpp — bit-identical plans either way,
  /// and only the QrmPlanner overload honours it: the PlanFn overload's
  /// planner is opaque and always runs as given), and the intra-plan
  /// parallelism fields. workers and plan_cache belong to the layers above
  /// (batch, campaign) and are ignored here.
  exec::ExecPolicy exec;
};

struct RoundReport {
  std::int64_t atoms_before = 0;
  std::int64_t defects_before = 0;
  std::size_t commands = 0;
  std::int64_t atoms_lost = 0;
  bool filled_after = false;
};

struct LoopReport {
  std::vector<RoundReport> rounds;
  bool success = false;           ///< target defect-free at loop exit
  std::int64_t total_atoms_lost = 0;
  OccupancyGrid final_grid;
  std::vector<Schedule> schedules;  ///< per-round, only when keep_schedules
  /// Reuse accounting when the loop ran with ReplanMode::Delta (all zeros
  /// under Scratch or the PlanFn overload). Measurement only — plans are
  /// bit-identical either way.
  DeltaReplanStats replan;

  [[nodiscard]] std::size_t rounds_used() const noexcept { return rounds.size(); }
};

/// The order the loop executes one parallel move's sites in: front-most
/// along the move direction first (so surviving lockstep chains stay valid),
/// ties — sites abreast of each other perpendicular to the direction —
/// broken by (row, col) ascending. The tie-break is load-bearing: each site
/// consumes RNG draws, so an unspecified tie order (the old plain std::sort
/// on the front key) let loss outcomes differ across standard libraries.
[[nodiscard]] std::vector<Coord> lossy_move_order(const ParallelMove& move);

/// Produces the schedule for one round given the current (re-imaged) world.
/// Must be a pure function of its argument — the loop may be replayed for
/// verification and batch shots rely on plan determinism.
using PlanFn = std::function<PlanResult(const OccupancyGrid&)>;

/// Run the rearrange-verify loop starting from `initial` ground truth.
/// Detection is assumed perfect (loss, not imaging, is the subject here).
[[nodiscard]] LoopReport run_rearrangement_loop(const OccupancyGrid& initial,
                                                const LoopConfig& config);

/// Same loop with an injected per-round planner, so baselines (or any
/// RearrangementAlgorithm) run behind the identical lossy-execution model.
/// The two-argument overload forwards here with QrmPlanner(config.plan).
[[nodiscard]] LoopReport run_rearrangement_loop(const OccupancyGrid& initial,
                                                const LoopConfig& config, const PlanFn& plan);

}  // namespace qrm::rt

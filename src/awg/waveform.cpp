#include "awg/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.hpp"

namespace qrm::awg {

std::size_t WaveformPlan::chirp_count() const noexcept {
  std::size_t n = 0;
  for (const auto& c : commands) {
    for (const auto& t : c.row_tones) n += t.is_chirp() ? 1u : 0u;
    for (const auto& t : c.col_tones) n += t.is_chirp() ? 1u : 0u;
  }
  return n;
}

WaveformPlan build_waveform_plan(const Schedule& schedule, const AodCalibration& calibration) {
  WaveformPlan plan;
  plan.commands.reserve(schedule.size());
  for (const auto& move : schedule.moves()) {
    WaveformCommand command;
    command.duration_us = calibration.settle_time_us +
                          calibration.ramp_time_per_step_us * static_cast<double>(move.steps);

    std::set<std::int32_t> rows;
    std::set<std::int32_t> cols;
    for (const Coord& s : move.sites) {
      rows.insert(s.row);
      cols.insert(s.col);
    }
    const Coord delta = direction_delta(move.dir);
    for (const std::int32_t r : rows) {
      ToneRamp tone;
      tone.axis = AodAxis::Rows;
      tone.start_mhz = calibration.site_freq_mhz(r);
      tone.end_mhz = calibration.site_freq_mhz(r + delta.row * move.steps);
      tone.duration_us = command.duration_us;
      command.row_tones.push_back(tone);
    }
    for (const std::int32_t c : cols) {
      ToneRamp tone;
      tone.axis = AodAxis::Cols;
      tone.start_mhz = calibration.site_freq_mhz(c);
      tone.end_mhz = calibration.site_freq_mhz(c + delta.col * move.steps);
      tone.duration_us = command.duration_us;
      command.col_tones.push_back(tone);
    }
    plan.total_duration_us += command.duration_us;
    plan.commands.push_back(std::move(command));
  }
  return plan;
}

PhysicalModel physical_model_of(const AodCalibration& calibration) {
  PhysicalModel model;
  model.move_overhead_us = calibration.settle_time_us;
  model.per_step_us = calibration.ramp_time_per_step_us;
  return model;
}

std::vector<float> synthesize_axis(const WaveformCommand& command, AodAxis axis,
                                   const AodCalibration& calibration, std::size_t max_samples) {
  QRM_EXPECTS(calibration.sample_rate_msps > 0.0);
  const auto& tones = axis == AodAxis::Rows ? command.row_tones : command.col_tones;
  const double duration_us = command.duration_us;
  const auto wanted =
      static_cast<std::size_t>(duration_us * calibration.sample_rate_msps);
  const std::size_t count = std::min(wanted, max_samples);
  std::vector<float> samples(count, 0.0F);
  if (count == 0 || tones.empty()) return samples;

  const double dt_us = 1.0 / calibration.sample_rate_msps;
  constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
  for (const ToneRamp& tone : tones) {
    // Linear chirp phase: phi(t) = 2*pi * (f0*t + 0.5*k*t^2), k in MHz/us.
    const double k = tone.duration_us > 0.0
                         ? (tone.end_mhz - tone.start_mhz) / tone.duration_us
                         : 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double t = static_cast<double>(i) * dt_us;
      const double phase = kTwoPi * (tone.start_mhz * t + 0.5 * k * t * t);
      samples[i] += static_cast<float>(std::cos(phase));
    }
  }
  return samples;
}

}  // namespace qrm::awg

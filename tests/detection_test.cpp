// Tests for the synthetic imaging + detection substrate.

#include <gtest/gtest.h>

#include <limits>

#include "util/assert.hpp"
#include "detection/calibration.hpp"
#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "loading/loader.hpp"

namespace qrm {
namespace {

TEST(Image, GeometryAndAccumulation) {
  FluorescenceImage img(10, 12);
  EXPECT_EQ(img.height(), 10);
  EXPECT_EQ(img.width(), 12);
  EXPECT_DOUBLE_EQ(img.total_photons(), 0.0);
  img.add(3, 4, 7.5);
  img.add(3, 4, 2.5);
  EXPECT_DOUBLE_EQ(img.at(3, 4), 10.0);
  EXPECT_DOUBLE_EQ(img.total_photons(), 10.0);
  EXPECT_DOUBLE_EQ(img.max_pixel(), 10.0);
  EXPECT_THROW((void)img.at(10, 0), PreconditionError);
}

TEST(Image, IntegrateClipsToBounds) {
  FluorescenceImage img(4, 4);
  img.add(0, 0, 1.0);
  img.add(3, 3, 2.0);
  EXPECT_DOUBLE_EQ(img.integrate(0, 0, 4, 4), 3.0);
  EXPECT_DOUBLE_EQ(img.integrate(2, 2, 10, 10), 2.0);
  EXPECT_DOUBLE_EQ(img.integrate(-2, -2, 3, 3), 1.0);
}

TEST(Image, RenderDepositsSignalOnAtoms) {
  OccupancyGrid atoms(6, 6);
  atoms.set({2, 3});
  ImagingConfig config;
  config.background_photons = 0.0;
  config.seed = 1;
  const FluorescenceImage img = render_image(atoms, config);
  EXPECT_EQ(img.height(), 30);
  EXPECT_EQ(img.width(), 30);
  // Expected total signal ~ photons_per_atom (PSF mostly inside the image).
  EXPECT_NEAR(img.total_photons(), config.photons_per_atom, 60.0);
  // The brightest site block must be the atom's.
  const std::int32_t pps = config.pixels_per_site;
  double best = -1;
  Coord best_site{-1, -1};
  for (std::int32_t r = 0; r < 6; ++r) {
    for (std::int32_t c = 0; c < 6; ++c) {
      const double v = img.integrate(r * pps, c * pps, pps, pps);
      if (v > best) {
        best = v;
        best_site = {r, c};
      }
    }
  }
  EXPECT_EQ(best_site, (Coord{2, 3}));
}

TEST(Image, RenderIsDeterministicPerSeed) {
  const OccupancyGrid atoms = load_random(8, 8, {0.5, 3});
  ImagingConfig config;
  config.seed = 99;
  const FluorescenceImage a = render_image(atoms, config);
  const FluorescenceImage b = render_image(atoms, config);
  EXPECT_DOUBLE_EQ(a.total_photons(), b.total_photons());
  EXPECT_DOUBLE_EQ(a.at(10, 10), b.at(10, 10));
}

TEST(Detector, PerfectAtHighSnr) {
  const OccupancyGrid truth = load_random(16, 16, {0.5, 11});
  ImagingConfig imaging;
  imaging.photons_per_atom = 500.0;
  imaging.background_photons = 1.0;
  imaging.seed = 5;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid detected = detect_atoms(img, 16, 16, det);
  const DetectionErrors errors = compare_detection(truth, detected);
  EXPECT_EQ(errors.total(), 0) << "fp=" << errors.false_positives
                               << " fn=" << errors.false_negatives;
}

TEST(Detector, DegradesAtLowSnr) {
  const OccupancyGrid truth = load_random(16, 16, {0.5, 11});
  ImagingConfig imaging;
  imaging.photons_per_atom = 8.0;  // barely above background
  imaging.background_photons = 6.0;
  imaging.seed = 5;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid detected = detect_atoms(img, 16, 16, det);
  EXPECT_GT(compare_detection(truth, detected).total(), 0)
      << "at this SNR some sites must misclassify";
}

TEST(Detector, AutoThresholdSeparatesClasses) {
  const OccupancyGrid truth = load_random(12, 12, {0.5, 21});
  ImagingConfig imaging;
  imaging.photons_per_atom = 300.0;
  imaging.background_photons = 2.0;
  const FluorescenceImage img = render_image(truth, imaging);
  const double threshold = auto_threshold(img, 12, 12, imaging.pixels_per_site);
  // Bright sites integrate most of 300 photons; dark ones ~ bg*pps^2 = 50.
  EXPECT_GT(threshold, 60.0);
  EXPECT_LT(threshold, 280.0);
}

TEST(Detector, ManualThresholdRespected) {
  OccupancyGrid truth(4, 4);
  truth.set({1, 1});
  ImagingConfig imaging;
  imaging.background_photons = 0.0;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  det.threshold_photons = 1e9;  // nothing passes
  EXPECT_EQ(detect_atoms(img, 4, 4, det).atom_count(), 0);
  det.threshold_photons = 0.0;  // everything passes
  EXPECT_EQ(detect_atoms(img, 4, 4, det).atom_count(), 16);
}

TEST(Detector, ThresholdTieCountsAsOccupied) {
  // The boundary case every call site must agree on: a site whose photon
  // integral equals the applied threshold EXACTLY is occupied (>=). This was
  // previously unspecified across detector.cpp call sites; meets_threshold
  // pins it in one place and this test pins meets_threshold.
  static_assert(meets_threshold(10.0, 10.0));
  static_assert(!meets_threshold(9.999999999999998, 10.0));
  static_assert(meets_threshold(10.000000000000002, 10.0));

  // End to end: one pixel per site, photon values hand-placed around the
  // manual threshold. Exactly-at-threshold must land occupied.
  FluorescenceImage img(2, 2);
  img.add(0, 0, 9.999999999999998);   // one ulp below 10 -> dark
  img.add(0, 1, 10.0);                // exact tie -> occupied
  img.add(1, 0, 10.000000000000002);  // one ulp above -> occupied
  DetectionConfig det;
  det.pixels_per_site = 1;
  det.threshold_photons = 10.0;
  const OccupancyGrid detected = detect_atoms(img, 2, 2, det);
  EXPECT_FALSE(detected.occupied({0, 0}));
  EXPECT_TRUE(detected.occupied({0, 1}));
  EXPECT_TRUE(detected.occupied({1, 0}));
  EXPECT_FALSE(detected.occupied({1, 1}));  // 0 photons vs threshold 10
}

TEST(Detector, ThresholdBiasScalesManualAndAutoThresholds) {
  FluorescenceImage img(2, 2);
  img.add(0, 0, 10.0);
  img.add(0, 1, 30.0);
  DetectionConfig det;
  det.pixels_per_site = 1;
  det.threshold_photons = 10.0;
  // Unbiased: both bright pixels pass (10 ties, 30 clears).
  EXPECT_EQ(detect_atoms(img, 2, 2, det).atom_count(), 2);
  // Bias 1.5: applied threshold 15 — the tie site goes dark, 30 survives.
  det.threshold_bias = 1.5;
  const OccupancyGrid biased = detect_atoms(img, 2, 2, det);
  EXPECT_EQ(biased.atom_count(), 1);
  EXPECT_TRUE(biased.occupied({0, 1}));
  // Bias on the *auto* threshold too: crank it until even the brightest
  // site fails its own class threshold.
  det.threshold_photons = -1.0;
  det.threshold_bias = 10.0;
  EXPECT_EQ(detect_atoms(img, 2, 2, det).atom_count(), 0);
}

TEST(Detector, ThresholdBiasIdentityIsBitExact) {
  // bias=1.0 must be a no-op down to the last bit, or every existing
  // imaged-detection fingerprint would drift.
  const OccupancyGrid truth = load_random(12, 12, {0.5, 17});
  ImagingConfig imaging;
  imaging.photons_per_atom = 24.0;
  imaging.seed = 17;
  const FluorescenceImage img = render_image(truth, imaging);
  DetectionConfig det;
  det.pixels_per_site = imaging.pixels_per_site;
  const OccupancyGrid baseline = detect_atoms(img, 12, 12, det);
  det.threshold_bias = 1.0;
  EXPECT_EQ(detect_atoms(img, 12, 12, det), baseline);
}

TEST(Detector, RejectsBadThresholdBias) {
  const FluorescenceImage img(2, 2);
  DetectionConfig det;
  det.pixels_per_site = 1;
  det.threshold_bias = 0.0;
  EXPECT_THROW((void)detect_atoms(img, 2, 2, det), PreconditionError);
  det.threshold_bias = -1.0;
  EXPECT_THROW((void)detect_atoms(img, 2, 2, det), PreconditionError);
  det.threshold_bias = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)detect_atoms(img, 2, 2, det), PreconditionError);
  det.threshold_bias = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)detect_atoms(img, 2, 2, det), PreconditionError);
}

TEST(Detector, RejectsGeometryMismatch) {
  const FluorescenceImage img(10, 10);
  DetectionConfig det;
  det.pixels_per_site = 5;
  EXPECT_THROW((void)detect_atoms(img, 4, 4, det), PreconditionError);
}

TEST(Detector, CompareDetectionCountsBothKinds) {
  OccupancyGrid truth(2, 2);
  truth.set({0, 0});
  truth.set({0, 1});
  OccupancyGrid detected(2, 2);
  detected.set({0, 0});
  detected.set({1, 1});
  const DetectionErrors errors = compare_detection(truth, detected);
  EXPECT_EQ(errors.false_negatives, 1);
  EXPECT_EQ(errors.false_positives, 1);
  EXPECT_EQ(errors.total(), 2);
}

TEST(CalibrationDrift, FactorIsDeterministicPeriodicAndRngFree) {
  // The drift factor is a pure function of the shot index — same index,
  // same factor, no RNG stream consumed anywhere.
  CalibrationDrift drift;
  EXPECT_DOUBLE_EQ(drift.factor(0), 1.0);  // shape None: identity at any index
  EXPECT_DOUBLE_EQ(drift.factor(123), 1.0);

  drift.shape = DriftShape::Ramp;
  drift.amplitude = 0.4;
  drift.period = 8;
  EXPECT_DOUBLE_EQ(drift.factor(0), 1.0);        // ramp starts at nominal
  EXPECT_DOUBLE_EQ(drift.factor(4), 1.2);        // halfway up
  EXPECT_DOUBLE_EQ(drift.factor(7), 1.0 + 0.4 * 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(drift.factor(8), drift.factor(0));    // periodic
  EXPECT_DOUBLE_EQ(drift.factor(8000), drift.factor(0));

  drift.shape = DriftShape::Sine;
  EXPECT_DOUBLE_EQ(drift.factor(0), 1.0);
  EXPECT_NEAR(drift.factor(2), 1.4, 1e-12);      // quarter period: peak
  EXPECT_NEAR(drift.factor(6), 0.6, 1e-12);      // three quarters: trough
  EXPECT_DOUBLE_EQ(drift.factor(8), drift.factor(0));

  // amplitude 0 and period 0 are identities, not division hazards.
  drift.amplitude = 0.0;
  EXPECT_DOUBLE_EQ(drift.factor(5), 1.0);
  drift.amplitude = 0.4;
  drift.period = 0;
  EXPECT_DOUBLE_EQ(drift.factor(5), 1.0);
}

TEST(Detector, ErrorInjectionRates) {
  const OccupancyGrid truth = load_random(60, 60, {0.5, 31});
  const OccupancyGrid noisy = inject_detection_errors(truth, 0.1, 0.05, 7);
  const DetectionErrors errors = compare_detection(truth, noisy);
  const double atoms = static_cast<double>(truth.atom_count());
  const double empties = 3600.0 - atoms;
  EXPECT_NEAR(static_cast<double>(errors.false_negatives) / atoms, 0.1, 0.04);
  EXPECT_NEAR(static_cast<double>(errors.false_positives) / empties, 0.05, 0.03);
  // Zero rates are exact.
  EXPECT_EQ(compare_detection(truth, inject_detection_errors(truth, 0, 0, 9)).total(), 0);
}

}  // namespace
}  // namespace qrm

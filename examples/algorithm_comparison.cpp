/// \file algorithm_comparison.cpp
/// Runs every registered rearrangement algorithm on the same workload and
/// compares schedule structure, analysis cost, and physical execution time.
///
/// The workload is a ScenarioSpec (the paper's Uniform fill into the auto
/// centred target), drawn through scenario::generate_workload with the CLI
/// seed as the shot stream — byte-identical to the load_random call this
/// example used to hard-code.
///
///   $ ./examples/algorithm_comparison [size] [seed]

#include <cstdio>
#include <cstdlib>

#include "awg/waveform.hpp"
#include "baselines/algorithm.hpp"
#include "moves/executor.hpp"
#include "scenario/spec.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qrm;
  const std::int32_t size = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  scenario::ScenarioSpec spec;  // Uniform fill=0.55, target=auto — the defaults
  spec.name = "algorithm-comparison";
  spec.grid_height = spec.grid_width = size;
  const OccupancyGrid initial = generate_workload(spec, seed);
  const Region target = spec.target_region();
  std::printf("Workload: %dx%d, %lld atoms, target %dx%d\n\n", size, size,
              static_cast<long long>(initial.atom_count()), target.rows, target.cols);

  const awg::AodCalibration cal;
  TextTable table({"algorithm", "analysis", "commands", "parallelism", "physical time",
                   "filled", "description"});
  for (const auto& name : baselines::algorithm_names()) {
    // Time the pure analysis (what the paper's Fig. 7 measures)...
    const auto analysis_only = baselines::make_algorithm(name, {.aod_legalize = false});
    const double analysis_us =
        best_of_microseconds(3, [&] { (void)analysis_only->plan(initial, target); });
    // ...but report structure from the fully legalised, executable schedule.
    const auto algo = baselines::make_algorithm(name);
    const PlanResult result = algo->plan(initial, target);

    // Verify the schedule actually executes (all algorithms must emit
    // physically valid command streams).
    OccupancyGrid replay = initial;
    const ExecutionReport report = run_schedule(replay, result.schedule, {.check_aod = true});
    if (!report.ok) {
      std::printf("%s: INVALID SCHEDULE: %s\n", name.c_str(), report.error.c_str());
      return 1;
    }

    const ScheduleStats stats = result.schedule.stats();
    const double physical_us = awg::build_waveform_plan(result.schedule, cal).total_duration_us;
    table.add_row({name, fmt_time_us(analysis_us), std::to_string(stats.parallel_moves),
                   fmt_double(stats.mean_parallelism, 1), fmt_time_us(physical_us),
                   result.stats.target_filled ? "yes" : "no", algo->description()});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n(compact-only planners fill only when iterated compaction suffices;\n"
              " see DESIGN.md for the balance analysis)\n");
  return 0;
}

#include "scenario/spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "baselines/algorithm.hpp"
#include "util/assert.hpp"

namespace qrm::scenario {

namespace {

[[noreturn]] void parse_fail(const std::string& what) {
  throw PreconditionError("scenario parse error: " + what);
}

/// Sanity bounds on every count-like field, enforced at parse time (so
/// narrowing into the spec's field types can never wrap) and again in
/// validate() (so programmatically built specs get the same protection).
/// 16384² is already a 256-megasite array — far past the stress registry.
constexpr std::int64_t kMaxGridSide = 16384;
constexpr std::int64_t kMaxClusters = 4096;
constexpr std::int64_t kMaxCount = 1'000'000;
/// Photon-count sanity cap (imaged detection): a real camera pixel well
/// saturates around 1e5 electrons; 1e9 per atom is far past physical.
constexpr double kMaxPhotons = 1e9;

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

/// Shortest decimal form that parses back to the same double ("0.55", not
/// "0.55000000000000004") — what makes the text round trip exact.
std::string format_double(double value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  QRM_ENSURES(ec == std::errc{});
  return std::string(buf, end);
}

double parse_double(const std::string& key, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  const double parsed = std::strtod(begin, &end);
  if (value.empty() || end != begin + value.size())
    parse_fail("key '" + key + "': '" + value + "' is not a number");
  return parsed;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  std::int64_t parsed = 0;
  const auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (value.empty() || ec != std::errc{} || end != value.data() + value.size())
    parse_fail("key '" + key + "': '" + value + "' is not an integer");
  return parsed;
}

/// parse_int plus an inclusive range check, so a value can never wrap when
/// narrowed into its spec field (clusters=-1 must be an error, not ~4e9
/// blast regions).
std::int64_t parse_bounded(const std::string& key, const std::string& value, std::int64_t lo,
                           std::int64_t hi) {
  const std::int64_t parsed = parse_int(key, value);
  if (parsed < lo || parsed > hi)
    parse_fail("key '" + key + "': " + value + " is outside [" + std::to_string(lo) + ", " +
               std::to_string(hi) + "]");
  return parsed;
}

std::uint64_t parse_seed(const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  const bool hex = value.rfind("0x", 0) == 0 || value.rfind("0X", 0) == 0;
  const char* begin = value.data() + (hex ? 2 : 0);
  const char* stop = value.data() + value.size();
  const auto [end, ec] = std::from_chars(begin, stop, parsed, hex ? 16 : 10);
  if (begin == stop || ec != std::errc{} || end != stop)
    parse_fail("key '" + key + "': '" + value + "' is not a seed (decimal or 0x hex)");
  return parsed;
}

/// "64" -> {64, 64}; "64x48" -> {64, 48} (height x width / rows x cols).
std::pair<std::int32_t, std::int32_t> parse_dims(const std::string& key,
                                                 const std::string& value) {
  const auto x = value.find('x');
  if (x == std::string::npos) {
    const auto side = static_cast<std::int32_t>(parse_bounded(key, value, 1, kMaxGridSide));
    return {side, side};
  }
  return {static_cast<std::int32_t>(parse_bounded(key, value.substr(0, x), 1, kMaxGridSide)),
          static_cast<std::int32_t>(parse_bounded(key, value.substr(x + 1), 1, kMaxGridSide))};
}

template <typename Enum>
Enum parse_enum(const std::string& key, const std::string& value,
                const std::vector<std::pair<std::string, Enum>>& table) {
  for (const auto& [text, parsed] : table)
    if (value == text) return parsed;
  std::string known;
  for (const auto& [text, parsed] : table) known += (known.empty() ? "" : "|") + text;
  parse_fail("key '" + key + "': unknown value '" + value + "' (expected " + known + ")");
}

const std::vector<std::pair<std::string, LoadProfile>>& load_table() {
  static const std::vector<std::pair<std::string, LoadProfile>> table = {
      {"uniform", LoadProfile::Uniform},   {"at-least", LoadProfile::AtLeast},
      {"clustered", LoadProfile::Clustered}, {"gradient", LoadProfile::Gradient},
      {"pattern", LoadProfile::Pattern},
  };
  return table;
}

const std::vector<std::pair<std::string, Pattern>>& pattern_table() {
  static const std::vector<std::pair<std::string, Pattern>> table = {
      {"full", Pattern::Full},
      {"empty", Pattern::Empty},
      {"checkerboard", Pattern::Checkerboard},
      {"row-stripes", Pattern::RowStripes},
      {"col-stripes", Pattern::ColStripes},
      {"border", Pattern::Border},
      {"corner-block", Pattern::CornerBlock},
      {"half-grid", Pattern::HalfGrid},
  };
  return table;
}

const std::vector<std::pair<std::string, DriftShape>>& drift_table() {
  static const std::vector<std::pair<std::string, DriftShape>> table = {
      {"none", DriftShape::None},
      {"ramp", DriftShape::Ramp},
      {"sine", DriftShape::Sine},
  };
  return table;
}

/// Comma list of dead AOD line indices, strictly ascending (which also bans
/// duplicates) so the serialized form is canonical: one spec, one text.
std::vector<std::int32_t> parse_line_list(const std::string& key, const std::string& value) {
  std::vector<std::int32_t> lines;
  // istringstream+getline silently swallows a trailing empty element, so a
  // dangling comma must be rejected up front.
  if (!value.empty() && value.back() == ',')
    parse_fail("key '" + key + "' has an empty element");
  std::istringstream list(value);
  std::string item;
  while (std::getline(list, item, ',')) {
    const std::string cleaned = trim(item);
    if (cleaned.empty()) parse_fail("key '" + key + "' has an empty element");
    const auto line = static_cast<std::int32_t>(parse_bounded(key, cleaned, 0, kMaxGridSide - 1));
    if (!lines.empty() && line <= lines.back())
      parse_fail("key '" + key + "': line indices must be strictly ascending");
    lines.push_back(line);
  }
  if (lines.empty()) parse_fail("key '" + key + "' must list at least one line index");
  return lines;
}

template <typename Enum>
const char* enum_text(Enum value, const std::vector<std::pair<std::string, Enum>>& table) {
  for (const auto& [text, candidate] : table)
    if (candidate == value) return text.c_str();
  return "?";
}

/// Which load profiles a profile-specific key applies to. Keys absent here
/// are universal.
const std::map<std::string, std::set<LoadProfile>>& profile_keys() {
  static const std::map<std::string, std::set<LoadProfile>> keys = {
      {"fill", {LoadProfile::Uniform, LoadProfile::AtLeast, LoadProfile::Clustered}},
      {"min_atoms", {LoadProfile::AtLeast}},
      {"clusters", {LoadProfile::Clustered}},
      {"cluster_radius", {LoadProfile::Clustered}},
      {"gradient_start", {LoadProfile::Gradient}},
      {"gradient_end", {LoadProfile::Gradient}},
      {"gradient_axis", {LoadProfile::Gradient}},
      {"pattern", {LoadProfile::Pattern}},
  };
  return keys;
}

void check_probability(const std::string& key, double p) {
  QRM_EXPECTS_MSG(p >= 0.0 && p <= 1.0,
                  "scenario '" + key + "' must be a probability in [0,1]");
}

}  // namespace

const char* to_cstring(LoadProfile profile) noexcept {
  return enum_text(profile, load_table());
}

const char* arch_key(rt::Architecture architecture) noexcept {
  return architecture == rt::Architecture::FpgaIntegrated ? "fpga" : "host";
}

const char* to_cstring(Pattern pattern) noexcept { return enum_text(pattern, pattern_table()); }

Region ScenarioSpec::target_region() const {
  if (target_rows == 0 && target_cols == 0) {
    // The paper's rule, as used by every existing sweep binary: an even
    // ~0.6*W square ("target=auto").
    const std::int32_t side = std::min(grid_height, grid_width) * 3 / 5 / 2 * 2;
    return centered_region(grid_height, grid_width, side, side);
  }
  return centered_region(grid_height, grid_width, target_rows, target_cols);
}

std::int64_t ScenarioSpec::resolved_min_atoms() const {
  return min_atoms > 0 ? min_atoms : target_region().area();
}

bool ScenarioSpec::has_tag(const std::string& tag) const {
  return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

bool ScenarioSpec::matches_filter(const std::string& filter) const {
  if (filter.empty()) return true;
  return name.find(filter) != std::string::npos || has_tag(filter);
}

void validate(const ScenarioSpec& spec) {
  QRM_EXPECTS_MSG(!spec.name.empty(), "scenario name must not be empty");
  QRM_EXPECTS_MSG(spec.name.find_first_of(" \t\n") == std::string::npos,
                  "scenario name must not contain whitespace");
  for (const std::string& tag : spec.tags)
    QRM_EXPECTS_MSG(!tag.empty() && tag.find_first_of(" \t\n,") == std::string::npos,
                    "scenario tags must be non-empty and comma/whitespace-free");
  QRM_EXPECTS_MSG(spec.grid_height > 0 && spec.grid_width > 0,
                  "scenario grid dimensions must be positive");
  QRM_EXPECTS_MSG(spec.grid_height <= kMaxGridSide && spec.grid_width <= kMaxGridSide,
                  "scenario grid dimensions exceed the sanity cap");
  QRM_EXPECTS_MSG(spec.grid_height % 2 == 0 && spec.grid_width % 2 == 0,
                  "scenario grid dimensions must be even (quadrant decomposition)");
  QRM_EXPECTS_MSG((spec.target_rows == 0) == (spec.target_cols == 0),
                  "target rows/cols must both be explicit or both auto");
  const Region target = spec.target_region();  // throws if it does not fit
  QRM_EXPECTS_MSG(target.rows % 2 == 0 && target.cols % 2 == 0,
                  "scenario target sides must be even (quadrant decomposition)");
  check_probability("fill", spec.fill);
  check_probability("gradient_start", spec.gradient_start);
  check_probability("gradient_end", spec.gradient_end);
  check_probability("per_move_loss", spec.per_move_loss);
  check_probability("background_loss", spec.background_loss);
  QRM_EXPECTS_MSG(spec.min_atoms >= 0, "scenario min_atoms must be non-negative");
  QRM_EXPECTS_MSG(spec.clusters <= kMaxClusters, "scenario clusters exceeds the sanity cap");
  QRM_EXPECTS_MSG(spec.cluster_radius >= 0, "scenario cluster_radius must be non-negative");
  QRM_EXPECTS_MSG(spec.shots > 0, "scenario shots must be positive");
  QRM_EXPECTS_MSG(spec.shots <= kMaxCount, "scenario shots exceeds the sanity cap");
  QRM_EXPECTS_MSG(spec.max_rounds > 0, "scenario max_rounds must be positive");
  QRM_EXPECTS_MSG(spec.max_rounds <= kMaxCount, "scenario max_rounds exceeds the sanity cap");
  QRM_EXPECTS_MSG(spec.intra_plan_workers <= kMaxCount,
                  "scenario intra_plan_workers exceeds the sanity cap");
  QRM_EXPECTS_MSG(std::isfinite(spec.photons_per_atom) && spec.photons_per_atom > 0.0 &&
                      spec.photons_per_atom <= kMaxPhotons,
                  "scenario photons_per_atom must be positive and finite");
  QRM_EXPECTS_MSG(spec.detection_threshold == -1.0 ||
                      (std::isfinite(spec.detection_threshold) &&
                       spec.detection_threshold >= 0.0 &&
                       spec.detection_threshold <= kMaxPhotons),
                  "scenario detection_threshold must be -1 (auto) or a finite photon count");
  check_probability("burst_loss", spec.burst_loss);
  QRM_EXPECTS_MSG(spec.burst_length >= 1 && spec.burst_length <= kMaxCount,
                  "scenario burst_length must be in [1, cap]");
  QRM_EXPECTS_MSG(std::isfinite(spec.drift_amplitude) && spec.drift_amplitude >= 0.0 &&
                      spec.drift_amplitude <= 1.0,
                  "scenario drift_amplitude must be in [0,1]");
  QRM_EXPECTS_MSG(spec.drift_period >= 1 && spec.drift_period <= kMaxCount,
                  "scenario drift_period must be in [1, cap]");
  QRM_EXPECTS_MSG(std::isfinite(spec.threshold_bias) && spec.threshold_bias > 0.0 &&
                      spec.threshold_bias <= 100.0,
                  "scenario threshold_bias must be finite in (0, 100]");
  // Imaging-only axes serialize inside the imaged_detection block; allowing
  // them without it would drop them from the text form and break the
  // serialize/parse round trip.
  QRM_EXPECTS_MSG(spec.imaged_detection ||
                      (spec.drift == DriftShape::None && spec.threshold_bias == 1.0),
                  "scenario drift/threshold_bias require imaged_detection");
  // Dead channels: strictly ascending in-grid indices, disjoint from the
  // target (atoms on dead lines are frozen — a dead target line could never
  // be filled, so every shot would be an unwinnable dud, not a stress test).
  const auto check_dead = [&](const char* what, const std::vector<std::int32_t>& lines,
                              std::int32_t limit, std::int32_t target_lo, std::int32_t target_hi) {
    std::int32_t prev = -1;
    for (const std::int32_t line : lines) {
      QRM_EXPECTS_MSG(line >= 0 && line < limit,
                      "scenario " + std::string(what) + " index outside the grid");
      QRM_EXPECTS_MSG(line > prev,
                      "scenario " + std::string(what) + " must be strictly ascending");
      QRM_EXPECTS_MSG(line < target_lo || line >= target_hi,
                      "scenario " + std::string(what) + " intersects the target region");
      prev = line;
    }
  };
  check_dead("dead_rows", spec.dead_rows, spec.grid_height, target.row0, target.row_end());
  check_dead("dead_cols", spec.dead_cols, spec.grid_width, target.col0, target.col_end());
  // Unknown algorithm names throw here, with the registry's own message.
  (void)baselines::make_algorithm(spec.algorithm);
}

OccupancyGrid generate_workload(const ScenarioSpec& spec, std::uint64_t shot_seed) {
  switch (spec.load) {
    case LoadProfile::Uniform:
      return load_random(spec.grid_height, spec.grid_width, {spec.fill, shot_seed});
    case LoadProfile::AtLeast:
      return load_random_at_least(spec.grid_height, spec.grid_width, {spec.fill, shot_seed},
                                  spec.resolved_min_atoms());
    case LoadProfile::Clustered: {
      ClusteredLoaderConfig config;
      config.base = {spec.fill, shot_seed};
      config.clusters = spec.clusters;
      config.cluster_radius = spec.cluster_radius;
      return load_clustered(spec.grid_height, spec.grid_width, config);
    }
    case LoadProfile::Gradient: {
      GradientLoaderConfig config;
      config.start_fill = spec.gradient_start;
      config.end_fill = spec.gradient_end;
      config.axis = spec.gradient_axis;
      config.seed = shot_seed;
      return load_gradient(spec.grid_height, spec.grid_width, config);
    }
    case LoadProfile::Pattern:
      return load_pattern(spec.grid_height, spec.grid_width, spec.pattern);
  }
  throw InvariantError("generate_workload: unreachable load profile");
}

std::string serialize(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name=" << spec.name << "\n";
  if (!spec.description.empty()) os << "description=" << spec.description << "\n";
  if (!spec.tags.empty()) {
    os << "tags=";
    for (std::size_t i = 0; i < spec.tags.size(); ++i)
      os << (i > 0 ? "," : "") << spec.tags[i];
    os << "\n";
  }
  os << "grid=" << spec.grid_height << "x" << spec.grid_width << "\n";
  if (spec.target_rows == 0 && spec.target_cols == 0)
    os << "target=auto\n";
  else
    os << "target=" << spec.target_rows << "x" << spec.target_cols << "\n";
  os << "load=" << to_cstring(spec.load) << "\n";
  switch (spec.load) {
    case LoadProfile::Uniform: os << "fill=" << format_double(spec.fill) << "\n"; break;
    case LoadProfile::AtLeast:
      os << "fill=" << format_double(spec.fill) << "\n";
      if (spec.min_atoms > 0)
        os << "min_atoms=" << spec.min_atoms << "\n";
      else
        os << "min_atoms=auto\n";
      break;
    case LoadProfile::Clustered:
      os << "fill=" << format_double(spec.fill) << "\n";
      os << "clusters=" << spec.clusters << "\n";
      os << "cluster_radius=" << spec.cluster_radius << "\n";
      break;
    case LoadProfile::Gradient:
      os << "gradient_start=" << format_double(spec.gradient_start) << "\n";
      os << "gradient_end=" << format_double(spec.gradient_end) << "\n";
      os << "gradient_axis=" << (spec.gradient_axis == GradientAxis::Rows ? "rows" : "cols")
         << "\n";
      break;
    case LoadProfile::Pattern: os << "pattern=" << to_cstring(spec.pattern) << "\n"; break;
  }
  os << "mode=" << to_cstring(spec.mode) << "\n";
  os << "algorithm=" << spec.algorithm << "\n";
  os << "architecture=" << arch_key(spec.architecture) << "\n";
  if (spec.intra_plan_workers != 0)
    os << "intra_plan_workers=" << spec.intra_plan_workers << "\n";
  if (spec.replan != ReplanMode::Scratch) os << "replan=" << to_cstring(spec.replan) << "\n";
  if (spec.imaged_detection) {
    os << "imaged_detection=true\n";
    os << "photons_per_atom=" << format_double(spec.photons_per_atom) << "\n";
    if (spec.detection_threshold < 0.0)
      os << "detection_threshold=auto\n";
    else
      os << "detection_threshold=" << format_double(spec.detection_threshold) << "\n";
    // Hostile imaging axes, emitted only when active so pre-existing spec
    // fingerprints cannot drift.
    if (spec.drift != DriftShape::None) {
      os << "drift=" << enum_text(spec.drift, drift_table()) << "\n";
      os << "drift_amplitude=" << format_double(spec.drift_amplitude) << "\n";
      os << "drift_period=" << spec.drift_period << "\n";
    }
    if (spec.threshold_bias != 1.0)
      os << "threshold_bias=" << format_double(spec.threshold_bias) << "\n";
  }
  os << "shots=" << spec.shots << "\n";
  {
    std::ostringstream hex;
    hex << std::hex << spec.seed;
    os << "seed=0x" << hex.str() << "\n";
  }
  os << "per_move_loss=" << format_double(spec.per_move_loss) << "\n";
  os << "background_loss=" << format_double(spec.background_loss) << "\n";
  if (spec.burst_loss > 0.0) {
    os << "burst_loss=" << format_double(spec.burst_loss) << "\n";
    os << "burst_length=" << spec.burst_length << "\n";
  }
  os << "max_rounds=" << spec.max_rounds << "\n";
  const auto emit_lines = [&os](const char* key, const std::vector<std::int32_t>& lines) {
    if (lines.empty()) return;
    os << key << "=";
    for (std::size_t i = 0; i < lines.size(); ++i) os << (i > 0 ? "," : "") << lines[i];
    os << "\n";
  };
  emit_lines("dead_rows", spec.dead_rows);
  emit_lines("dead_cols", spec.dead_cols);
  return os.str();
}

namespace {

/// One key=value line, order-preserved; the sweep expander rewrites values
/// in place before the strict parser sees them.
struct SpecLine {
  std::string key;
  std::string value;
};

std::vector<SpecLine> tokenize_block(const std::string& text) {
  std::vector<SpecLine> lines;
  std::set<std::string> seen;
  std::istringstream stream(text);
  std::string raw;
  while (std::getline(stream, raw)) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) parse_fail("line '" + line + "' is not key=value");
    SpecLine parsed{trim(line.substr(0, eq)), trim(line.substr(eq + 1))};
    if (parsed.key.empty()) parse_fail("line '" + line + "' has an empty key");
    if (!seen.insert(parsed.key).second) parse_fail("duplicate key '" + parsed.key + "'");
    lines.push_back(std::move(parsed));
  }
  return lines;
}

ScenarioSpec parse_lines(const std::vector<SpecLine>& lines) {
  ScenarioSpec spec;
  std::set<std::string> seen;
  for (const auto& [key, value] : lines) {
    seen.insert(key);
    if (key == "name") {
      spec.name = value;
    } else if (key == "description") {
      spec.description = value;
    } else if (key == "tags") {
      std::istringstream tags(value);
      std::string tag;
      while (std::getline(tags, tag, ',')) spec.tags.push_back(trim(tag));
    } else if (key == "grid") {
      std::tie(spec.grid_height, spec.grid_width) = parse_dims(key, value);
    } else if (key == "target") {
      if (value == "auto")
        spec.target_rows = spec.target_cols = 0;
      else
        std::tie(spec.target_rows, spec.target_cols) = parse_dims(key, value);
    } else if (key == "load") {
      spec.load = parse_enum(key, value, load_table());
    } else if (key == "fill") {
      spec.fill = parse_double(key, value);
    } else if (key == "min_atoms") {
      spec.min_atoms =
          value == "auto" ? 0 : parse_bounded(key, value, 0, kMaxGridSide * kMaxGridSide);
    } else if (key == "clusters") {
      spec.clusters = static_cast<std::uint32_t>(parse_bounded(key, value, 0, kMaxClusters));
    } else if (key == "cluster_radius") {
      spec.cluster_radius =
          static_cast<std::int32_t>(parse_bounded(key, value, 0, kMaxGridSide));
    } else if (key == "gradient_start") {
      spec.gradient_start = parse_double(key, value);
    } else if (key == "gradient_end") {
      spec.gradient_end = parse_double(key, value);
    } else if (key == "gradient_axis") {
      spec.gradient_axis = parse_enum(
          key, value,
          std::vector<std::pair<std::string, GradientAxis>>{{"rows", GradientAxis::Rows},
                                                            {"cols", GradientAxis::Cols}});
    } else if (key == "pattern") {
      spec.pattern = parse_enum(key, value, pattern_table());
    } else if (key == "mode") {
      spec.mode = parse_enum(key, value,
                             std::vector<std::pair<std::string, PlanMode>>{
                                 {"balanced", PlanMode::Balanced}, {"compact", PlanMode::Compact}});
    } else if (key == "algorithm") {
      spec.algorithm = value;
    } else if (key == "architecture") {
      spec.architecture = parse_enum(
          key, value,
          std::vector<std::pair<std::string, rt::Architecture>>{
              {arch_key(rt::Architecture::FpgaIntegrated), rt::Architecture::FpgaIntegrated},
              {arch_key(rt::Architecture::HostMediated), rt::Architecture::HostMediated}});
    } else if (key == "intra_plan_workers") {
      spec.intra_plan_workers =
          static_cast<std::uint32_t>(parse_bounded(key, value, 0, kMaxCount));
    } else if (key == "replan") {
      spec.replan = parse_enum(key, value,
                               std::vector<std::pair<std::string, ReplanMode>>{
                                   {"scratch", ReplanMode::Scratch}, {"delta", ReplanMode::Delta}});
    } else if (key == "imaged_detection") {
      if (value != "true" && value != "false")
        parse_fail("key '" + key + "': expected true|false, got '" + value + "'");
      spec.imaged_detection = value == "true";
    } else if (key == "photons_per_atom") {
      spec.photons_per_atom = parse_double(key, value);
    } else if (key == "detection_threshold") {
      spec.detection_threshold = value == "auto" ? -1.0 : parse_double(key, value);
    } else if (key == "shots") {
      spec.shots = static_cast<std::uint32_t>(parse_bounded(key, value, 1, kMaxCount));
    } else if (key == "seed") {
      spec.seed = parse_seed(key, value);
    } else if (key == "per_move_loss") {
      spec.per_move_loss = parse_double(key, value);
    } else if (key == "background_loss") {
      spec.background_loss = parse_double(key, value);
    } else if (key == "max_rounds") {
      spec.max_rounds = static_cast<std::uint32_t>(parse_bounded(key, value, 1, kMaxCount));
    } else if (key == "burst_loss") {
      spec.burst_loss = parse_double(key, value);
    } else if (key == "burst_length") {
      spec.burst_length = static_cast<std::int32_t>(parse_bounded(key, value, 1, kMaxCount));
    } else if (key == "drift") {
      spec.drift = parse_enum(key, value, drift_table());
    } else if (key == "drift_amplitude") {
      spec.drift_amplitude = parse_double(key, value);
    } else if (key == "drift_period") {
      spec.drift_period = static_cast<std::uint32_t>(parse_bounded(key, value, 1, kMaxCount));
    } else if (key == "threshold_bias") {
      spec.threshold_bias = parse_double(key, value);
    } else if (key == "dead_rows") {
      spec.dead_rows = parse_line_list(key, value);
    } else if (key == "dead_cols") {
      spec.dead_cols = parse_line_list(key, value);
    } else {
      parse_fail("unknown key '" + key + "'");
    }
  }
  // Profile-specific keys may only appear under their profile — a
  // `pattern=` line in a uniform scenario is a spec bug, not a default.
  for (const auto& [key, profiles] : profile_keys()) {
    if (seen.count(key) > 0 && profiles.count(spec.load) == 0)
      parse_fail("key '" + key + "' does not apply to load=" +
                 std::string(to_cstring(spec.load)));
  }
  // Imaging keys are gated the same way, on imaged_detection rather than
  // the load profile: a stray photons_per_atom in a perfect-detection spec
  // is a spec bug, not a silent default.
  for (const char* key :
       {"photons_per_atom", "detection_threshold", "drift", "drift_amplitude", "drift_period",
        "threshold_bias"}) {
    if (seen.count(key) > 0 && !spec.imaged_detection)
      parse_fail("key '" + std::string(key) + "' requires imaged_detection=true");
  }
  // Sub-axis keys only apply when their parent axis is active — a stray
  // drift_amplitude with no drift shape (or a burst_length with no burst
  // probability) would silently serialize away, breaking the round trip.
  for (const char* key : {"drift_amplitude", "drift_period"}) {
    if (seen.count(key) > 0 && spec.drift == DriftShape::None)
      parse_fail("key '" + std::string(key) + "' requires drift=ramp|sine");
  }
  if (seen.count("burst_length") > 0 && spec.burst_loss <= 0.0)
    parse_fail("key 'burst_length' requires burst_loss > 0");
  validate(spec);
  return spec;
}

/// Keys whose values may carry `lo..hi step s` / comma-list sweeps.
bool sweepable(const std::string& key) {
  static const std::set<std::string> keys = {"grid",       "target",        "fill", "shots",
                                             "max_rounds", "per_move_loss", "seed"};
  return keys.count(key) > 0;
}

std::vector<std::string> expand_value(const std::string& key, const std::string& value) {
  const auto range = value.find("..");
  if (range != std::string::npos) {
    // `lo..hi step s`, endpoints inclusive.
    const std::string lo_text = trim(value.substr(0, range));
    std::string rest = trim(value.substr(range + 2));
    const auto step_pos = rest.find("step");
    if (step_pos == std::string::npos)
      parse_fail("sweep '" + key + "=" + value + "' is missing 'step'");
    const std::string hi_text = trim(rest.substr(0, step_pos));
    const std::string step_text = trim(rest.substr(step_pos + 4));
    const double lo = parse_double(key, lo_text);
    const double hi = parse_double(key, hi_text);
    const double step = parse_double(key, step_text);
    if (step <= 0.0) parse_fail("sweep '" + key + "=" + value + "': step must be positive");
    if (hi < lo) parse_fail("sweep '" + key + "=" + value + "': upper bound below lower");
    std::vector<std::string> values;
    // Walk by index, not accumulation, so float steps cannot drift; the
    // epsilon admits an endpoint that lands within rounding of `hi`. 15
    // significant digits round 0.4 + 2*0.1 back to "0.6" (the grid point
    // the user wrote) instead of the shortest-exact 0.6000000000000001.
    for (int i = 0;; ++i) {
      const double v = lo + step * i;
      if (v > hi + step * 1e-9) break;
      char buf[64];
      const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                           std::chars_format::general, 15);
      QRM_ENSURES(ec == std::errc{});
      values.emplace_back(buf, end);
    }
    return values;
  }
  if (value.find(',') != std::string::npos) {
    std::vector<std::string> values;
    std::istringstream list(value);
    std::string item;
    while (std::getline(list, item, ',')) {
      const std::string cleaned = trim(item);
      if (cleaned.empty()) parse_fail("sweep '" + key + "=" + value + "' has an empty element");
      values.push_back(cleaned);
    }
    return values;
  }
  return {value};
}

std::vector<ScenarioSpec> expand_block(const std::string& block, std::size_t max_scenarios) {
  const std::vector<SpecLine> lines = tokenize_block(block);
  if (lines.empty()) return {};

  // Expand each sweepable value; multiply counts up front so an oversized
  // matrix fails before any scenario is built.
  std::vector<std::vector<std::string>> choices(lines.size());
  std::size_t total = 1;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    choices[i] = sweepable(lines[i].key) ? expand_value(lines[i].key, lines[i].value)
                                         : std::vector<std::string>{lines[i].value};
    QRM_EXPECTS_MSG(total <= max_scenarios / choices[i].size() || choices[i].size() == 1,
                    "sweep expands to more than the scenario cap");
    total *= choices[i].size();
  }
  QRM_EXPECTS_MSG(total <= max_scenarios, "sweep expands to more than the scenario cap");

  std::vector<ScenarioSpec> expanded;
  std::vector<std::size_t> index(lines.size(), 0);
  for (std::size_t combo = 0; combo < total; ++combo) {
    std::vector<SpecLine> concrete = lines;
    std::string suffix;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      concrete[i].value = choices[i][index[i]];
      if (choices[i].size() > 1) suffix += "/" + lines[i].key + "=" + concrete[i].value;
    }
    for (auto& line : concrete)
      if (line.key == "name") line.value += suffix;
    expanded.push_back(parse_lines(concrete));
    for (std::size_t i = lines.size(); i-- > 0;) {
      if (++index[i] < choices[i].size()) break;
      index[i] = 0;
    }
  }
  return expanded;
}

}  // namespace

ScenarioSpec parse_scenario(const std::string& text) {
  const std::vector<SpecLine> lines = tokenize_block(text);
  if (lines.empty()) parse_fail("scenario block is empty");
  return parse_lines(lines);
}

std::vector<ScenarioSpec> expand_sweeps(const std::string& text, std::size_t max_scenarios) {
  QRM_EXPECTS(max_scenarios > 0);
  std::vector<ScenarioSpec> scenarios;
  std::istringstream stream(text);
  std::string line;
  std::string block;
  std::set<std::string> names;
  const auto flush = [&] {
    for (ScenarioSpec& spec : expand_block(block, max_scenarios)) {
      QRM_EXPECTS_MSG(names.insert(spec.name).second,
                      "campaign contains duplicate scenario name '" + spec.name + "'");
      scenarios.push_back(std::move(spec));
      QRM_EXPECTS_MSG(scenarios.size() <= max_scenarios,
                      "campaign expands to more than the scenario cap");
    }
    block.clear();
  };
  while (std::getline(stream, line)) {
    if (trim(line) == "---")
      flush();
    else
      block += line + "\n";
  }
  flush();
  QRM_EXPECTS_MSG(!scenarios.empty(), "campaign text contains no scenarios");
  return scenarios;
}

}  // namespace qrm::scenario

#include "detection/image.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qrm {

FluorescenceImage::FluorescenceImage(std::int32_t height_px, std::int32_t width_px)
    : height_px_(height_px), width_px_(width_px) {
  QRM_EXPECTS(height_px >= 0 && width_px >= 0);
  pixels_.assign(static_cast<std::size_t>(height_px) * static_cast<std::size_t>(width_px), 0.0);
}

double FluorescenceImage::at(std::int32_t row, std::int32_t col) const {
  QRM_EXPECTS(row >= 0 && row < height_px_ && col >= 0 && col < width_px_);
  return pixels_[static_cast<std::size_t>(row) * static_cast<std::size_t>(width_px_) +
                 static_cast<std::size_t>(col)];
}

void FluorescenceImage::add(std::int32_t row, std::int32_t col, double photons) {
  QRM_EXPECTS(row >= 0 && row < height_px_ && col >= 0 && col < width_px_);
  pixels_[static_cast<std::size_t>(row) * static_cast<std::size_t>(width_px_) +
          static_cast<std::size_t>(col)] += photons;
}

double FluorescenceImage::integrate(std::int32_t r0, std::int32_t c0, std::int32_t h,
                                    std::int32_t w) const {
  const std::int32_t r1 = std::min(height_px_, r0 + h);
  const std::int32_t c1 = std::min(width_px_, c0 + w);
  double sum = 0.0;
  for (std::int32_t r = std::max(0, r0); r < r1; ++r)
    for (std::int32_t c = std::max(0, c0); c < c1; ++c) sum += at(r, c);
  return sum;
}

double FluorescenceImage::total_photons() const noexcept {
  double sum = 0.0;
  for (const double p : pixels_) sum += p;
  return sum;
}

double FluorescenceImage::max_pixel() const noexcept {
  double best = 0.0;
  for (const double p : pixels_) best = std::max(best, p);
  return best;
}

FluorescenceImage render_image(const OccupancyGrid& atoms, const ImagingConfig& config) {
  QRM_EXPECTS(config.pixels_per_site > 0);
  QRM_EXPECTS(config.psf_sigma_px > 0.0);
  const std::int32_t pps = config.pixels_per_site;
  FluorescenceImage image(atoms.height() * pps, atoms.width() * pps);
  Rng rng(config.seed);

  // Background shot noise on every pixel.
  for (std::int32_t r = 0; r < image.height(); ++r)
    for (std::int32_t c = 0; c < image.width(); ++c)
      image.add(r, c, rng.poisson(config.background_photons));

  // Per-atom Gaussian PSF, truncated at 3 sigma, normalized so the expected
  // total signal is photons_per_atom; each pixel's deposit is Poissonian.
  const double sigma = config.psf_sigma_px;
  const auto radius = static_cast<std::int32_t>(std::ceil(3.0 * sigma));
  const double norm = 1.0 / (2.0 * 3.14159265358979323846 * sigma * sigma);
  for (const Coord& site : atoms.atom_positions()) {
    const double centre_r = (static_cast<double>(site.row) + 0.5) * pps;
    const double centre_c = (static_cast<double>(site.col) + 0.5) * pps;
    const auto cr = static_cast<std::int32_t>(centre_r);
    const auto cc = static_cast<std::int32_t>(centre_c);
    for (std::int32_t dr = -radius; dr <= radius; ++dr) {
      for (std::int32_t dc = -radius; dc <= radius; ++dc) {
        const std::int32_t pr = cr + dr;
        const std::int32_t pc = cc + dc;
        if (pr < 0 || pr >= image.height() || pc < 0 || pc >= image.width()) continue;
        const double dy = (static_cast<double>(pr) + 0.5) - centre_r;
        const double dx = (static_cast<double>(pc) + 0.5) - centre_c;
        const double weight = norm * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
        const double expected = config.photons_per_atom * weight;
        if (expected > 0.0) image.add(pr, pc, rng.poisson(expected));
      }
    }
  }
  return image;
}

}  // namespace qrm

#pragma once
/// \file spec.hpp
/// Declarative workload scenarios: the full experiment axis space as data.
///
/// The paper evaluates on exactly one workload family — Bernoulli(0.5)
/// loads into a centred square target. A ScenarioSpec captures everything
/// an evaluation binary would otherwise hard-code: grid geometry, loading
/// model, loss regime, target size, plan mode, planner choice, control
/// architecture, shot count and master seed. Specs round-trip through a
/// diffable key=value text format (see `serialize` / `parse_scenario`) and
/// may carry numeric sweeps (`grid=64..256 step 64`, `fill=0.4,0.5,0.6`)
/// that `expand_sweeps` turns into a scenario matrix.

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "detection/calibration.hpp"
#include "lattice/grid.hpp"
#include "lattice/region.hpp"
#include "loading/loader.hpp"
#include "runtime/control_system.hpp"

namespace qrm::scenario {

/// Which loader family draws a shot's initial occupancy.
enum class LoadProfile : std::uint8_t {
  Uniform,   ///< independent Bernoulli(fill) — the paper's workload
  AtLeast,   ///< Bernoulli retried until min_atoms are present
  Clustered, ///< Bernoulli + emptied circular blast regions
  Gradient,  ///< linear fill ramp across rows/cols
  Pattern,   ///< deterministic worst-case patterns
};

[[nodiscard]] const char* to_cstring(LoadProfile profile) noexcept;
[[nodiscard]] const char* to_cstring(Pattern pattern) noexcept;

/// The spec-file value of an architecture ("fpga" / "host") — the single
/// source for serialize/parse and every report writer.
[[nodiscard]] const char* arch_key(rt::Architecture architecture) noexcept;

/// One fully-specified experiment. Field defaults are the serialized
/// defaults: a key omitted from a scenario file means the value below.
struct ScenarioSpec {
  std::string name;          ///< registry / report identifier (required)
  std::string description;   ///< one line for `scenario_runner describe`
  std::vector<std::string> tags;  ///< free-form labels ("smoke", "paper", ...)

  // --- Geometry -----------------------------------------------------------
  std::int32_t grid_height = 32;
  std::int32_t grid_width = 32;
  /// Target rectangle, centred in the grid. 0x0 selects the paper's rule:
  /// an even ~0.6*min(H,W) square (`target=auto`).
  std::int32_t target_rows = 0;
  std::int32_t target_cols = 0;

  // --- Loading model ------------------------------------------------------
  LoadProfile load = LoadProfile::Uniform;
  double fill = 0.55;               ///< uniform / at-least / clustered base fill
  /// AtLeast: retry until this many atoms. 0 selects `min_atoms=auto`,
  /// the resolved target area (the minimum for a defect-free fill).
  std::int64_t min_atoms = 0;
  std::uint32_t clusters = 3;       ///< Clustered: blast-region count
  std::int32_t cluster_radius = 2;  ///< Clustered: blast radius
  double gradient_start = 0.2;      ///< Gradient: fill at row/col 0
  double gradient_end = 0.8;        ///< Gradient: fill at the last row/col
  GradientAxis gradient_axis = GradientAxis::Rows;
  Pattern pattern = Pattern::Checkerboard;  ///< Pattern profile choice

  // --- Planner + runtime --------------------------------------------------
  PlanMode mode = PlanMode::Balanced;
  std::string algorithm = "qrm";    ///< baselines::algorithm_names() entry
  rt::Architecture architecture = rt::Architecture::FpgaIntegrated;
  /// Intra-plan quadrant parallelism (QrmConfig::intra_plan_workers).
  /// 0 = sequential planning (the default, and the serialized default: the
  /// key is only emitted when nonzero, so existing spec fingerprints are
  /// untouched). Plans are bit-identical for any value, so this knob is an
  /// execution hint that cannot change an outcome fingerprint.
  std::uint32_t intra_plan_workers = 0;
  /// Loop replan strategy (BatchConfig::replan): `replan=delta` reuses
  /// untouched quadrant kernels round over round. Scratch is the default
  /// and the serialized default (the key is only emitted for Delta, so
  /// existing spec fingerprints are untouched). Like intra_plan_workers,
  /// this is an execution hint — delta plans are bit-identical to scratch,
  /// so it can never change an outcome fingerprint.
  ReplanMode replan = ReplanMode::Scratch;

  // --- Imaged detection ---------------------------------------------------
  /// Plan on the *detected* occupancy of a rendered camera frame instead of
  /// perfect ground truth (BatchConfig::imaged_detection): per-shot photon
  /// noise, so detection errors enter the outcome fingerprint.
  bool imaged_detection = false;
  double photons_per_atom = 200.0;  ///< expected signal photons per atom
  /// Per-site photon threshold; -1 selects the automatic two-class
  /// threshold (DetectionConfig::threshold_photons). Validation accepts
  /// exactly -1 or a non-negative finite value — anything else would
  /// silently alias to "auto" and break the serialize/parse round trip.
  double detection_threshold = -1.0;
  std::uint32_t shots = 16;
  std::uint64_t seed = 0x5EED;      ///< master seed; shots derive streams
  double per_move_loss = 0.005;
  double background_loss = 0.002;
  std::uint32_t max_rounds = 10;

  // --- Hostile physics ----------------------------------------------------
  // Fault-injection axes. Every default below is the serialized default
  // (key omitted == value here), so pre-existing spec fingerprints are
  // untouched, and every default disables its axis without consuming a
  // single RNG draw — pre-existing outcome fingerprints are untouched too.
  /// Correlated loss bursts (rt::LossModel::burst_loss): probability per
  /// executed round that a burst kills `burst_length` consecutive atoms.
  /// Serialized only when > 0; `burst_length` only applies then.
  double burst_loss = 0.0;
  std::int32_t burst_length = 4;
  /// Per-shot calibration drift on the imaging model (requires
  /// imaged_detection): shape none|ramp|sine; amplitude/period keys only
  /// apply when the shape is not none.
  DriftShape drift = DriftShape::None;
  double drift_amplitude = 0.2;
  std::uint32_t drift_period = 8;
  /// Detection-threshold miscalibration multiplier (requires
  /// imaged_detection); 1.0 is bit-exact identity.
  double threshold_bias = 1.0;
  /// Dead AOD channels (moves/dead_channels.hpp): strictly ascending line
  /// indices inside the grid, disjoint from the target region. Serialized
  /// as comma lists, only when non-empty.
  std::vector<std::int32_t> dead_rows;
  std::vector<std::int32_t> dead_cols;

  /// The concrete centred target this spec plans into (resolves `auto`).
  [[nodiscard]] Region target_region() const;
  /// The concrete AtLeast demand (resolves `auto` to the target area).
  [[nodiscard]] std::int64_t resolved_min_atoms() const;

  [[nodiscard]] bool has_tag(const std::string& tag) const;
  /// Campaign filter rule: empty matches everything, otherwise substring
  /// of the name or exact tag.
  [[nodiscard]] bool matches_filter(const std::string& filter) const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Throws PreconditionError unless the spec is runnable: non-empty name,
/// positive geometry, target fitting the grid with even sides (the QRM
/// quadrant decomposition's requirement), probabilities in [0,1], a known
/// algorithm name, shots/max_rounds positive.
void validate(const ScenarioSpec& spec);

/// Draw the initial occupancy for one shot of this scenario. `shot_seed`
/// is the shot's derived stream (derive_seed(spec.seed, shot)); Pattern
/// profiles ignore it. A validated spec never throws here.
[[nodiscard]] OccupancyGrid generate_workload(const ScenarioSpec& spec, std::uint64_t shot_seed);

/// Canonical text form: `key=value` lines in fixed order, one scenario per
/// block. Keys irrelevant to the chosen load profile are omitted, so the
/// output is minimal, diffable, and parses back to an equal spec.
[[nodiscard]] std::string serialize(const ScenarioSpec& spec);

/// Parse one scenario block. Strict: unknown keys, duplicate keys, keys
/// that do not apply to the chosen load profile, malformed values and
/// sweep syntax (use expand_sweeps for sweeps) all throw PreconditionError.
/// `#` starts a comment; blank lines are ignored. The parsed spec is
/// validated before it is returned.
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text);

/// Parse a campaign file: one or more scenario blocks separated by `---`
/// lines, where numeric keys (grid, target, fill, shots, max_rounds,
/// per_move_loss, seed) may carry a sweep — either `lo..hi step s`
/// (inclusive range) or a comma list. Sweeps multiply into the cartesian
/// scenario matrix; expanded scenarios get `/key=value` name suffixes.
/// Throws PreconditionError on malformed sweeps or a matrix larger than
/// `max_scenarios`.
[[nodiscard]] std::vector<ScenarioSpec> expand_sweeps(const std::string& text,
                                                      std::size_t max_scenarios = 4096);

}  // namespace qrm::scenario

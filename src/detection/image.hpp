#pragma once
/// \file image.hpp
/// Synthetic fluorescence-image substrate.
///
/// The real system images the trap array with a CMOS camera: each trapped
/// atom scatters photons that land on the sensor through a point-spread
/// function, on top of background counts. The paper replaces camera frames
/// with random occupancy matrices for its evaluation; we additionally
/// provide this renderer so the full Fig. 1 workflow (image -> detection ->
/// rearrangement) is executable and testable end to end.

#include <cstdint>
#include <vector>

#include "lattice/grid.hpp"

namespace qrm {

/// Camera / optics model parameters.
struct ImagingConfig {
  std::int32_t pixels_per_site = 5;   ///< sensor pixels per lattice period
  double psf_sigma_px = 1.1;          ///< Gaussian PSF width, in pixels
  double photons_per_atom = 200.0;    ///< expected signal photons per atom
  double background_photons = 4.0;    ///< expected background per pixel
  std::uint64_t seed = 0xCA3E5A;      ///< shot-noise RNG seed
};

/// A monochrome photon-count image.
class FluorescenceImage {
 public:
  FluorescenceImage() = default;
  FluorescenceImage(std::int32_t height_px, std::int32_t width_px);

  [[nodiscard]] std::int32_t height() const noexcept { return height_px_; }
  [[nodiscard]] std::int32_t width() const noexcept { return width_px_; }

  [[nodiscard]] double at(std::int32_t row, std::int32_t col) const;
  void add(std::int32_t row, std::int32_t col, double photons);

  /// Sum of a pixel rectangle [r0, r0+h) x [c0, c0+w) (clipped to bounds).
  [[nodiscard]] double integrate(std::int32_t r0, std::int32_t c0, std::int32_t h,
                                 std::int32_t w) const;

  [[nodiscard]] double total_photons() const noexcept;
  [[nodiscard]] double max_pixel() const noexcept;

 private:
  std::int32_t height_px_ = 0;
  std::int32_t width_px_ = 0;
  std::vector<double> pixels_;
};

/// Render `atoms` into a camera frame: per-atom Gaussian PSF photon
/// deposition plus uniform background, both with Poisson shot noise.
[[nodiscard]] FluorescenceImage render_image(const OccupancyGrid& atoms,
                                             const ImagingConfig& config);

}  // namespace qrm

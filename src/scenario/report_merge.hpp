#pragma once
/// \file report_merge.hpp
/// Text-level mergers for sharded campaign reports.
///
/// A sharded campaign's shard processes each write their own CSV/JSON
/// report (ReportMode::Deterministic — measurement fields would differ
/// between runs and make a byte diff meaningless). These mergers reassemble
/// the shard files into the exact bytes a sequential 1-shard run writes:
/// every scenario row/block carries its global matrix index, so merging is
/// "sort the preserved row text by index and recompute the campaign
/// envelope". No numeric value is ever re-parsed and re-printed — the row
/// bytes pass through untouched, which is what makes byte-identity a
/// provable property instead of a formatting coincidence.
///
/// Both mergers are strict: mismatched headers/modes, duplicate or missing
/// indices, and full-mode inputs all throw PreconditionError.

#include <string>
#include <vector>

namespace qrm::scenario {

/// Merge deterministic-mode CSV shard reports (any order, empty shards
/// fine). The index union must be exactly 0..N-1.
[[nodiscard]] std::string merge_csv_reports(const std::vector<std::string>& shard_texts);

/// Merge deterministic-mode JSON shard reports. Scenario blocks pass
/// through byte-for-byte; the envelope (scenario_count, campaign
/// fingerprint) is recomputed from the per-scenario fingerprints, which by
/// construction equals the sequential run's envelope.
[[nodiscard]] std::string merge_json_reports(const std::vector<std::string>& shard_texts);

}  // namespace qrm::scenario

#pragma once
/// \file thread_pool.hpp
/// Fixed-size worker pool with a simple MPMC task queue.
///
/// This is the concurrency substrate of qrm::batch: callers submit arbitrary
/// callables and receive futures; exceptions thrown inside a task surface
/// through the future (never terminate a worker). Shutdown is *draining*:
/// the destructor lets already-queued tasks finish before joining, so every
/// future obtained from submit() eventually becomes ready and no task is
/// silently dropped — the property the batch planner's determinism rests on.
///
/// Determinism note: the pool itself makes no ordering promises — tasks may
/// run in any order on any worker. Deterministic batch results come from the
/// layer above (per-shot derived seeds + per-shot result slots), not from
/// scheduling.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include <condition_variable>

namespace qrm::batch {

class ThreadPool {
 public:
  /// Spawn `workers` threads; 0 selects std::thread::hardware_concurrency()
  /// (at least 1). The pool size is fixed for the pool's lifetime.
  explicit ThreadPool(std::uint32_t workers = 0);

  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Tasks accepted but not yet picked up by a worker.
  [[nodiscard]] std::size_t pending() const;

  /// Enqueue a callable; its result (or exception) arrives via the future.
  template <typename Fn>
  [[nodiscard]] auto submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task = std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Resolve a requested worker count: 0 -> hardware_concurrency, floor 1.
  [[nodiscard]] static std::uint32_t resolve_workers(std::uint32_t requested) noexcept;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qrm::batch

// Extension ablation: schedule coalescing. The planner emits unit-step
// rounds (the hardware's shift-command granularity); merging an atom
// group's consecutive steps into one multi-step AWG ramp removes per-command
// settle overhead. Quantifies command-count and physical-time savings.

#include "bench_common.hpp"
#include "awg/waveform.hpp"
#include "core/planner.hpp"
#include "moves/optimizer.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

void print_table() {
  print_header("Extension — schedule coalescing (multi-step command fusion)",
               "unit-step shift commands fused into AOD ramps; semantics preserved");
  const awg::AodCalibration cal;
  TextTable table({"W", "commands before", "commands after", "physical before",
                   "physical after", "saved"});
  for (const std::int32_t size : {20, 30, 50}) {
    const OccupancyGrid grid = workload(size, 1);
    const PlanResult plan = plan_qrm(grid, paper_target(size));
    const CoalesceResult co = coalesce_schedule(grid, plan.schedule);
    const double before_us = awg::build_waveform_plan(plan.schedule, cal).total_duration_us;
    const double after_us = awg::build_waveform_plan(co.schedule, cal).total_duration_us;
    table.add_row({std::to_string(size), std::to_string(co.moves_before),
                   std::to_string(co.moves_after), fmt_time_us(before_us),
                   fmt_time_us(after_us),
                   fmt_percent((before_us - after_us) / before_us)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_Coalesce(benchmark::State& state) {
  const auto size = static_cast<std::int32_t>(state.range(0));
  const OccupancyGrid grid = workload(size, 1);
  const PlanResult plan = plan_qrm(grid, paper_target(size));
  for (auto _ : state) {
    benchmark::DoNotOptimize(coalesce_schedule(grid, plan.schedule));
  }
}
BENCHMARK(BM_Coalesce)->Arg(20)->Arg(50)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  run_benchmarks(argc, argv);
  return 0;
}

#include "lattice/grid.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace qrm {

OccupancyGrid::OccupancyGrid(std::int32_t height, std::int32_t width)
    : height_(height), width_(width) {
  QRM_EXPECTS(height >= 0 && width >= 0);
  rows_.assign(static_cast<std::size_t>(height), BitRow(static_cast<std::uint32_t>(width)));
}

OccupancyGrid OccupancyGrid::from_strings(const std::vector<std::string>& lines) {
  if (lines.empty()) return {};
  OccupancyGrid g(static_cast<std::int32_t>(lines.size()),
                  static_cast<std::int32_t>(lines.front().size()));
  for (std::size_t r = 0; r < lines.size(); ++r) {
    QRM_EXPECTS_MSG(lines[r].size() == lines.front().size(), "ragged grid literal");
    g.rows_[r] = BitRow::from_string(lines[r]);
  }
  return g;
}

bool OccupancyGrid::occupied(Coord c) const {
  QRM_EXPECTS(in_bounds(c));
  return rows_[static_cast<std::size_t>(c.row)].test(static_cast<std::uint32_t>(c.col));
}

void OccupancyGrid::set(Coord c, bool value) {
  QRM_EXPECTS(in_bounds(c));
  rows_[static_cast<std::size_t>(c.row)].set(static_cast<std::uint32_t>(c.col), value);
}

std::int64_t OccupancyGrid::atom_count() const noexcept {
  std::int64_t n = 0;
  for (const auto& r : rows_) n += r.count();
  return n;
}

std::int64_t OccupancyGrid::atom_count(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  std::int64_t n = 0;
  for (std::int32_t r = region.row0; r < region.row_end(); ++r) {
    n += rows_[static_cast<std::size_t>(r)].count_range(static_cast<std::uint32_t>(region.col0),
                                                        static_cast<std::uint32_t>(region.col_end()));
  }
  return n;
}

bool OccupancyGrid::region_full(const Region& region) const {
  return atom_count(region) == region.area();
}

std::vector<Coord> OccupancyGrid::defects(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  std::vector<Coord> out;
  for (std::int32_t r = region.row0; r < region.row_end(); ++r)
    for (std::int32_t c = region.col0; c < region.col_end(); ++c)
      if (!occupied({r, c})) out.push_back({r, c});
  return out;
}

std::vector<Coord> OccupancyGrid::atom_positions() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(atom_count()));
  for (std::int32_t r = 0; r < height_; ++r) {
    rows_[static_cast<std::size_t>(r)].for_each_set(
        [&out, r](std::uint32_t c) { out.push_back({r, static_cast<std::int32_t>(c)}); });
  }
  return out;
}

const BitRow& OccupancyGrid::row(std::int32_t r) const {
  QRM_EXPECTS(r >= 0 && r < height_);
  return rows_[static_cast<std::size_t>(r)];
}

void OccupancyGrid::set_row(std::int32_t r, BitRow bits) {
  QRM_EXPECTS(r >= 0 && r < height_);
  QRM_EXPECTS_MSG(bits.width() == static_cast<std::uint32_t>(width_), "row width mismatch");
  rows_[static_cast<std::size_t>(r)] = std::move(bits);
}

BitRow OccupancyGrid::column(std::int32_t c) const {
  QRM_EXPECTS(c >= 0 && c < width_);
  BitRow out(static_cast<std::uint32_t>(height_));
  for (std::int32_t r = 0; r < height_; ++r)
    if (occupied({r, c})) out.set(static_cast<std::uint32_t>(r));
  return out;
}

void OccupancyGrid::set_column(std::int32_t c, const BitRow& bits) {
  QRM_EXPECTS(c >= 0 && c < width_);
  QRM_EXPECTS_MSG(bits.width() == static_cast<std::uint32_t>(height_), "column height mismatch");
  for (std::int32_t r = 0; r < height_; ++r)
    set({r, c}, bits.test(static_cast<std::uint32_t>(r)));
}

Coord OccupancyGrid::map_coord(Flip flip, Coord c) const {
  switch (flip) {
    case Flip::None: return c;
    case Flip::Horizontal: return {c.row, width_ - 1 - c.col};
    case Flip::Vertical: return {height_ - 1 - c.row, c.col};
    case Flip::Transpose: return {c.col, c.row};
    case Flip::Rotate180: return {height_ - 1 - c.row, width_ - 1 - c.col};
  }
  QRM_ENSURES_MSG(false, "unknown flip");
  return c;
}

OccupancyGrid OccupancyGrid::flipped(Flip flip) const {
  const std::int32_t out_h = (flip == Flip::Transpose) ? width_ : height_;
  const std::int32_t out_w = (flip == Flip::Transpose) ? height_ : width_;
  OccupancyGrid out(out_h, out_w);
  switch (flip) {
    case Flip::None:
      out.rows_ = rows_;
      break;
    case Flip::Horizontal:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(r)] = rows_[static_cast<std::size_t>(r)].reversed();
      break;
    case Flip::Vertical:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(height_ - 1 - r)] = rows_[static_cast<std::size_t>(r)];
      break;
    case Flip::Transpose:
      for (std::int32_t c = 0; c < width_; ++c)
        out.rows_[static_cast<std::size_t>(c)] = column(c);
      break;
    case Flip::Rotate180:
      for (std::int32_t r = 0; r < height_; ++r)
        out.rows_[static_cast<std::size_t>(height_ - 1 - r)] =
            rows_[static_cast<std::size_t>(r)].reversed();
      break;
  }
  return out;
}

OccupancyGrid OccupancyGrid::subgrid(const Region& region) const {
  QRM_EXPECTS(region.within(height_, width_));
  OccupancyGrid out(region.rows, region.cols);
  for (std::int32_t r = 0; r < region.rows; ++r)
    for (std::int32_t c = 0; c < region.cols; ++c)
      if (occupied({region.row0 + r, region.col0 + c})) out.set({r, c});
  return out;
}

void OccupancyGrid::set_subgrid(const Region& region, const OccupancyGrid& content) {
  QRM_EXPECTS(region.within(height_, width_));
  QRM_EXPECTS(content.height() == region.rows && content.width() == region.cols);
  for (std::int32_t r = 0; r < region.rows; ++r)
    for (std::int32_t c = 0; c < region.cols; ++c)
      set({region.row0 + r, region.col0 + c}, content.occupied({r, c}));
}

std::string OccupancyGrid::to_art() const {
  std::ostringstream os;
  for (std::int32_t r = 0; r < height_; ++r)
    os << rows_[static_cast<std::size_t>(r)].to_art() << '\n';
  return os.str();
}

std::string OccupancyGrid::to_art(const Region& highlight) const {
  QRM_EXPECTS(highlight.within(height_, width_));
  std::ostringstream os;
  for (std::int32_t r = 0; r < height_; ++r) {
    for (std::int32_t c = 0; c < width_; ++c) {
      const bool occ = occupied({r, c});
      if (highlight.contains({r, c})) {
        os << (occ ? 'O' : 'x');
      } else {
        os << (occ ? '#' : '.');
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace qrm

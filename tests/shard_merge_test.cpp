// Sharded campaign execution and report merging: shard_of stability,
// run_shard partitioning, struct-level merge_reports coverage checks, and
// the text-level CSV/JSON mergers — including the fuzz-style round trip
// (random shard splits, empty shards, single-scenario shards must merge
// back to the unsharded report byte for byte).

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/campaign.hpp"
#include "scenario/report_merge.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"
#include "util/rng.hpp"

namespace qrm {
namespace {

using scenario::CampaignConfig;
using scenario::CampaignReport;
using scenario::CampaignRunner;
using scenario::LoadProfile;
using scenario::ReportMode;
using scenario::ScenarioSpec;

/// A small mixed-profile matrix, cheap enough for repeated reruns.
std::vector<ScenarioSpec> tiny_matrix() {
  std::vector<ScenarioSpec> specs;
  const LoadProfile profiles[] = {LoadProfile::Uniform, LoadProfile::Clustered,
                                  LoadProfile::Gradient, LoadProfile::Pattern,
                                  LoadProfile::Uniform};
  const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (std::size_t i = 0; i < 5; ++i) {
    ScenarioSpec spec;
    spec.name = names[i];
    spec.grid_height = spec.grid_width = 16;
    spec.target_rows = spec.target_cols = 8;
    spec.load = profiles[i];
    spec.fill = 0.7;
    spec.shots = 4;
    spec.seed = 0x5EED0 + i;
    spec.max_rounds = 3;
    specs.push_back(spec);
  }
  return specs;
}

std::string csv_text(const CampaignReport& report) {
  std::ostringstream os;
  scenario::write_csv(report, os, ReportMode::Deterministic);
  return os.str();
}

std::string json_text(const CampaignReport& report) {
  std::ostringstream os;
  scenario::write_json(report, os, ReportMode::Deterministic);
  return os.str();
}

TEST(ShardOf, IsAStableNameHashBelowTheShardCount) {
  EXPECT_EQ(scenario::shard_of("anything", 1), 0u);
  for (const std::uint32_t shards : {2u, 3u, 7u}) {
    for (const char* name : {"paper-fig7", "smoke-uniform", "a", ""}) {
      const std::uint32_t shard = scenario::shard_of(name, shards);
      EXPECT_LT(shard, shards);
      // The assignment is a pure function of (name, shards) — the property
      // multi-process sharding rests on.
      EXPECT_EQ(shard, scenario::shard_of(name, shards));
      EXPECT_EQ(shard, static_cast<std::uint32_t>(fnv::hash_text(name) % shards));
    }
  }
  EXPECT_THROW((void)scenario::shard_of("x", 0), PreconditionError);
}

TEST(ShardedCampaign, RunShardPartitionsTheFilteredMatrix) {
  const std::vector<ScenarioSpec> specs = tiny_matrix();
  CampaignConfig config;
  config.exec.workers = 2;
  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    config.shards = shards;
    std::set<std::size_t> seen_indices;
    std::size_t total = 0;
    for (std::uint32_t shard = 0; shard < shards; ++shard) {
      config.shard_index = shard;
      const CampaignReport report = CampaignRunner(config).run_shard(specs);
      for (const scenario::ScenarioOutcome& outcome : report.scenarios) {
        EXPECT_EQ(scenario::shard_of(outcome.spec.name, shards), shard);
        EXPECT_TRUE(seen_indices.insert(outcome.index).second)
            << "index " << outcome.index << " ran in two shards";
        ++total;
      }
    }
    EXPECT_EQ(total, specs.size()) << shards << " shards lost scenarios";
  }
}

TEST(ShardedCampaign, MergedRunMatchesSequentialForAnyShardsAndWorkers) {
  const std::vector<ScenarioSpec> specs = tiny_matrix();
  CampaignConfig sequential_config;
  sequential_config.exec.workers = 1;
  const CampaignReport sequential = CampaignRunner(sequential_config).run(specs);
  const std::string sequential_csv = csv_text(sequential);
  const std::string sequential_json = json_text(sequential);

  for (const std::uint32_t shards : {2u, 3u, 5u}) {
    for (const std::uint32_t workers : {1u, 3u}) {
      CampaignConfig config;
      config.exec.workers = workers;
      config.shards = shards;
      const CampaignReport merged = CampaignRunner(config).run(specs);
      ASSERT_EQ(merged.scenarios.size(), sequential.scenarios.size());
      for (std::size_t i = 0; i < merged.scenarios.size(); ++i) {
        EXPECT_EQ(merged.scenarios[i].index, i);
        EXPECT_EQ(merged.scenarios[i].fingerprint, sequential.scenarios[i].fingerprint)
            << merged.scenarios[i].spec.name << " @ " << shards << "x" << workers;
      }
      EXPECT_EQ(merged.fingerprint(), sequential.fingerprint());
      EXPECT_EQ(csv_text(merged), sequential_csv) << shards << " shards, " << workers
                                                  << " workers";
      EXPECT_EQ(json_text(merged), sequential_json) << shards << " shards, " << workers
                                                    << " workers";
    }
  }
}

TEST(ShardedCampaign, RunShardRejectsAFilterMatchingNothingAnywhere) {
  // An empty shard is fine, but a typo'd filter must not let a whole fleet
  // of shard processes go green with zero scenarios run.
  CampaignConfig config;
  config.exec.workers = 2;
  config.shards = 3;
  config.shard_index = 0;
  config.filter = "no-such-tag";
  EXPECT_THROW((void)CampaignRunner(config).run_shard(tiny_matrix()), PreconditionError);
}

TEST(ShardedCampaign, EmptyShardIsValidAndTextMergeReassemblesSequential) {
  const std::vector<ScenarioSpec> specs = tiny_matrix();
  CampaignConfig config;
  config.exec.workers = 2;
  // More shards than scenarios guarantees at least one empty shard.
  config.shards = 8;

  std::vector<std::string> shard_csvs;
  std::vector<std::string> shard_jsons;
  bool saw_empty = false;
  for (std::uint32_t shard = 0; shard < config.shards; ++shard) {
    config.shard_index = shard;
    const CampaignReport report = CampaignRunner(config).run_shard(specs);
    saw_empty = saw_empty || report.scenarios.empty();
    shard_csvs.push_back(csv_text(report));
    shard_jsons.push_back(json_text(report));
  }
  ASSERT_TRUE(saw_empty);

  CampaignConfig sequential_config;
  sequential_config.exec.workers = 2;
  const CampaignReport sequential = CampaignRunner(sequential_config).run(specs);
  EXPECT_EQ(scenario::merge_csv_reports(shard_csvs), csv_text(sequential));
  EXPECT_EQ(scenario::merge_json_reports(shard_jsons), json_text(sequential));
}

TEST(ReportMerge, FuzzRandomShardSplitsRoundTrip) {
  // The mergers must not care *how* rows were partitioned — any split of
  // the sequential report (including empty and single-scenario shards)
  // must reassemble byte-identically. Splits are structural (no replanning)
  // so 24 fuzz rounds stay cheap.
  CampaignConfig config;
  config.exec.workers = 2;
  const CampaignReport sequential = CampaignRunner(config).run(tiny_matrix());
  const std::string sequential_csv = csv_text(sequential);
  const std::string sequential_json = json_text(sequential);

  Rng rng(0xF0552);
  for (int round = 0; round < 24; ++round) {
    const std::uint32_t shard_count = 1 + rng.uniform_below(6);
    std::vector<CampaignReport> shards(shard_count);
    for (const scenario::ScenarioOutcome& outcome : sequential.scenarios)
      shards[rng.uniform_below(shard_count)].scenarios.push_back(outcome);

    std::vector<std::string> csvs;
    std::vector<std::string> jsons;
    for (const CampaignReport& shard : shards) {
      csvs.push_back(csv_text(shard));
      jsons.push_back(json_text(shard));
    }
    EXPECT_EQ(scenario::merge_csv_reports(csvs), sequential_csv) << "round " << round;
    EXPECT_EQ(scenario::merge_json_reports(jsons), sequential_json) << "round " << round;
  }
}

TEST(ReportMerge, RejectsMalformedShardSets) {
  CampaignConfig config;
  config.exec.workers = 2;
  const std::vector<ScenarioSpec> specs = tiny_matrix();
  const CampaignReport sequential = CampaignRunner(config).run(specs);
  const std::string csv = csv_text(sequential);
  const std::string json = json_text(sequential);

  // Duplicate indices (the same shard twice).
  EXPECT_THROW((void)scenario::merge_csv_reports({csv, csv}), PreconditionError);
  EXPECT_THROW((void)scenario::merge_json_reports({json, json}), PreconditionError);

  // Missing indices: drop the report's first scenario.
  CampaignReport truncated = sequential;
  truncated.scenarios.erase(truncated.scenarios.begin());
  EXPECT_THROW((void)scenario::merge_csv_reports({csv_text(truncated)}), PreconditionError);
  EXPECT_THROW((void)scenario::merge_json_reports({json_text(truncated)}), PreconditionError);

  // Full-mode artifacts carry measurement columns and must be refused.
  std::ostringstream full_csv;
  scenario::write_csv(sequential, full_csv, ReportMode::Full);
  EXPECT_THROW((void)scenario::merge_csv_reports({full_csv.str()}), PreconditionError);
  std::ostringstream full_json;
  scenario::write_json(sequential, full_json, ReportMode::Full);
  EXPECT_THROW((void)scenario::merge_json_reports({full_json.str()}), PreconditionError);

  // Header drift between shards.
  CampaignReport even;
  CampaignReport odd;
  for (const scenario::ScenarioOutcome& outcome : sequential.scenarios)
    (outcome.index % 2 == 0 ? even : odd).scenarios.push_back(outcome);
  std::string tampered = csv_text(odd);
  tampered.replace(tampered.find("scenario"), 8, "scenArio");
  EXPECT_THROW((void)scenario::merge_csv_reports({csv_text(even), tampered}),
               PreconditionError);

  // No shards at all.
  EXPECT_THROW((void)scenario::merge_csv_reports({}), PreconditionError);
  EXPECT_THROW((void)scenario::merge_json_reports({}), PreconditionError);
}

TEST(MergeReports, StructLevelMergeChecksCoverage) {
  CampaignConfig config;
  config.exec.workers = 2;
  const std::vector<ScenarioSpec> specs = tiny_matrix();
  const CampaignReport sequential = CampaignRunner(config).run(specs);

  // A valid split merges back with the same fingerprint.
  CampaignReport even;
  CampaignReport odd;
  for (const scenario::ScenarioOutcome& outcome : sequential.scenarios)
    (outcome.index % 2 == 0 ? even : odd).scenarios.push_back(outcome);
  const CampaignReport merged = scenario::merge_reports({even, odd});
  EXPECT_EQ(merged.fingerprint(), sequential.fingerprint());
  ASSERT_EQ(merged.scenarios.size(), sequential.scenarios.size());
  for (std::size_t i = 0; i < merged.scenarios.size(); ++i)
    EXPECT_EQ(merged.scenarios[i].index, i);

  // Duplicate and missing coverage both throw.
  EXPECT_THROW((void)scenario::merge_reports({even, even}), PreconditionError);
  EXPECT_THROW((void)scenario::merge_reports({even}), PreconditionError);
}

}  // namespace
}  // namespace qrm

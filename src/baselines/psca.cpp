#include "baselines/psca.hpp"

#include <algorithm>
#include <map>

#include "baselines/common.hpp"
#include "moves/aod.hpp"
#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm::baselines {

namespace {

/// One line's fixed placement: ordered targets for its atoms (identified by
/// rank: the i-th atom of the line, in ascending position, goes to
/// targets[i]; ranks are stable because moves preserve order).
using TargetsByLine = std::map<std::int32_t, std::vector<std::int32_t>>;

/// Re-scan the grid and advance every atom that is still short of its
/// target by one step in `dir`; returns the number of atoms advanced.
/// Deliberately recomputes (and re-sorts) each line's atom list every round
/// — the defining cost structure of PSCA.
std::size_t advance_round(OccupancyGrid& state, Axis axis, const TargetsByLine& targets,
                          Direction dir, Schedule& schedule, PassInfo& info,
                          bool aod_legalize) {
  const bool toward_origin = dir == Direction::West || dir == Direction::North;
  std::vector<Coord> movers;
  for (const auto& [line, line_targets] : targets) {
    // Fresh scan of the line's atoms...
    std::vector<std::int32_t> atoms;
    const std::int32_t length = axis == Axis::Rows ? state.width() : state.height();
    for (std::int32_t p = 0; p < length; ++p) {
      const Coord site = axis == Axis::Rows ? Coord{line, p} : Coord{p, line};
      if (state.occupied(site)) atoms.push_back(p);
    }
    // ...and an explicit (re-)sort, as the published algorithm sorts its
    // candidate lists every compression step.
    std::sort(atoms.begin(), atoms.end());
    QRM_ENSURES_MSG(atoms.size() == line_targets.size(),
                    "PSCA line population changed unexpectedly");
    for (std::size_t i = 0; i < atoms.size(); ++i) {
      const std::int32_t current = atoms[i];
      const std::int32_t goal = line_targets[i];
      const bool wants = toward_origin ? current > goal : current < goal;
      if (wants) {
        movers.push_back(axis == Axis::Rows ? Coord{line, current} : Coord{current, line});
      }
    }
  }
  if (movers.empty()) return 0;
  if (aod_legalize) {
    for (auto& sub : legalize(state, movers, dir, 1)) {
      apply_move_unchecked(state, sub);
      schedule.push_back(std::move(sub));
    }
  } else {
    ParallelMove move{dir, 1, std::move(movers)};
    const std::size_t n = move.sites.size();
    apply_move_unchecked(state, move);
    schedule.push_back(std::move(move));
    info.unit_rounds += 1;
    return n;
  }
  info.unit_rounds += 1;
  return movers.size();
}

/// Run both direction phases of one axis to completion.
PassInfo run_axis(OccupancyGrid& state, Axis axis, const TargetsByLine& targets,
                  Schedule& schedule, bool aod_legalize) {
  PassInfo info;
  info.axis = axis;
  info.lines_with_motion = targets.size();
  const Direction toward = axis == Axis::Rows ? Direction::West : Direction::North;
  const Direction away = axis == Axis::Rows ? Direction::East : Direction::South;
  std::size_t moved_once = 0;
  while (true) {
    const std::size_t n = advance_round(state, axis, targets, toward, schedule, info, aod_legalize);
    if (n == 0) break;
    moved_once = std::max(moved_once, n);
  }
  while (true) {
    const std::size_t n = advance_round(state, axis, targets, away, schedule, info, aod_legalize);
    if (n == 0) break;
    moved_once = std::max(moved_once, n);
  }
  info.atoms_moved = moved_once;  // upper bound on distinct movers per axis
  return info;
}

TargetsByLine targets_of(const std::vector<LineAssignment>& assignments) {
  TargetsByLine out;
  for (const auto& a : assignments) out.emplace(a.line, a.targets);
  return out;
}

}  // namespace

PlanResult PscaAlgorithm::plan(const OccupancyGrid& initial, const Region& target) const {
  PlanResult result;
  result.final_grid = initial;
  OccupancyGrid& state = result.final_grid;

  // The placement family is shared with Tetris; the analysis cost is not.
  const GlobalPlacement placement = compute_balanced_placement(state, target);
  result.stats.feasible = placement.feasible;
  result.stats.passes.push_back(run_axis(state, Axis::Rows,
                                         targets_of(placement.row_assignments),
                                         result.schedule, options_.aod_legalize));

  const std::vector<LineAssignment> columns = compute_band_columns(state, target);
  result.stats.passes.push_back(run_axis(state, Axis::Cols, targets_of(columns),
                                         result.schedule, options_.aod_legalize));

  result.stats.iterations = 1;
  finalize_stats(result, target);
  return result;
}

}  // namespace qrm::baselines

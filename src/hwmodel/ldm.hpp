#pragma once
/// \file ldm.hpp
/// Load Data Module: consumes the AXI packet stream from DDR and feeds the
/// four quadrant row queues, performing the QRM flips on the fly ("four
/// Load Vector units divide the large atom array into smaller arrays...
/// the flip operation is automatically performed").
///
/// The packet source models DDR read latency followed by one beat per
/// cycle; the LDM emits both half-rows of a completed global row in the
/// same cycle (the four Load Vector units are parallel hardware).

#include <array>
#include <cstdint>
#include <vector>

#include "hwmodel/axi.hpp"
#include "hwmodel/beats.hpp"
#include "hwmodel/fifo.hpp"
#include "hwmodel/sim.hpp"
#include "lattice/quadrant.hpp"

namespace qrm::hw {

/// Streams pre-packed AXI beats into a FIFO: idle for `read_latency` cycles,
/// then one beat per cycle.
class PacketSource final : public Module {
 public:
  PacketSource(std::string name, std::vector<AxiPacket> packets, Fifo<AxiPacket>& out,
               std::uint32_t read_latency);
  void eval(std::uint64_t cycle) override;
  [[nodiscard]] bool busy() const override;

 private:
  std::vector<AxiPacket> packets_;
  Fifo<AxiPacket>& out_;
  std::uint32_t read_latency_;
  std::size_t next_ = 0;
  std::uint64_t cycles_waited_ = 0;
};

/// The Load Data Module proper: packets in, four quadrant-local row streams
/// out. Rows are emitted in global top-to-bottom order; the north quadrants
/// therefore receive their local rows in descending line order (the kernel
/// is line-order agnostic — each row is independent).
class LoadDataModule final : public Module {
 public:
  LoadDataModule(std::string name, std::int32_t height, std::int32_t width,
                 std::uint32_t packet_bits, Fifo<AxiPacket>& in,
                 std::array<Fifo<RowBeat>*, 4> row_out);
  void eval(std::uint64_t cycle) override;
  [[nodiscard]] bool busy() const override;

  [[nodiscard]] std::uint64_t rows_emitted() const noexcept { return rows_emitted_; }

 private:
  std::int32_t height_;
  std::int32_t width_;
  std::uint32_t packet_bits_;
  Fifo<AxiPacket>& in_;
  std::array<Fifo<RowBeat>*, 4> row_out_;
  QuadrantGeometry geometry_;
  std::vector<bool> bit_buffer_;       ///< deserialized bits, row-major
  std::uint64_t bits_received_ = 0;
  std::int32_t next_row_ = 0;
  std::uint64_t rows_emitted_ = 0;
};

/// Swallows row beats at one per cycle; used to close the load-phase
/// pipeline (the QPM input buffers absorb rows as fast as the LDM feeds
/// them).
class RowSink final : public Module {
 public:
  RowSink(std::string name, Fifo<RowBeat>& in) : Module(std::move(name)), in_(in) {}
  void eval(std::uint64_t) override {
    if (in_.can_pop()) {
      rows_.push_back(in_.pop());
    }
  }
  [[nodiscard]] bool busy() const override { return in_.can_pop(); }
  [[nodiscard]] const std::vector<RowBeat>& rows() const noexcept { return rows_; }

 private:
  Fifo<RowBeat>& in_;
  std::vector<RowBeat> rows_;
};

/// Feeds a prepared list of row beats into a kernel, one per cycle.
class RowSource final : public Module {
 public:
  RowSource(std::string name, std::vector<RowBeat> rows, Fifo<RowBeat>& out)
      : Module(std::move(name)), rows_(std::move(rows)), out_(out) {}
  void eval(std::uint64_t) override {
    if (next_ < rows_.size() && out_.can_push()) {
      out_.push(rows_[next_++]);
    }
  }
  [[nodiscard]] bool busy() const override { return next_ < rows_.size(); }

 private:
  std::vector<RowBeat> rows_;
  Fifo<RowBeat>& out_;
  std::size_t next_ = 0;
};

}  // namespace qrm::hw

#include "batch/batch_planner.hpp"

#include <bit>
#include <exception>
#include <future>
#include <memory>
#include <utility>

#include "baselines/algorithm.hpp"
#include "core/delta_planner.hpp"
#include "core/planner.hpp"
#include "exec/plan_cache.hpp"
#include "loading/loader.hpp"
#include "moves/dead_channels.hpp"
#include "runtime/control_system.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace qrm::batch {

namespace {

// --- FNV-1a over the deterministic outcome fields -------------------------

void mix(std::uint64_t& hash, std::uint64_t value) noexcept { fnv::mix_u64(hash, value); }

// Grid mixing lives in exec/plan_cache.cpp (exec::mix_grid) so the report
// fingerprint and the cache key share one byte order.

void mix_schedule(std::uint64_t& hash, const Schedule& schedule) noexcept {
  mix(hash, schedule.size());
  for (const ParallelMove& move : schedule.moves()) {
    mix(hash, static_cast<std::uint64_t>(move.dir));
    mix(hash, static_cast<std::uint64_t>(move.steps));
    for (const Coord& site : move.sites) {
      mix(hash, static_cast<std::uint64_t>(site.row));
      mix(hash, static_cast<std::uint64_t>(site.col));
    }
  }
}

}  // namespace

double BatchReport::shots_per_second() const noexcept {
  if (wall_us <= 0.0) return 0.0;
  return static_cast<double>(shots.size()) / (wall_us * 1e-6);
}

double BatchReport::success_rate() const noexcept {
  if (shots.empty()) return 0.0;
  std::size_t successes = 0;
  for (const ShotResult& shot : shots) successes += shot.success ? 1 : 0;
  return static_cast<double>(successes) / static_cast<double>(shots.size());
}

double BatchReport::mean_fill_rate() const noexcept {
  if (shots.empty()) return 0.0;
  double sum = 0.0;
  for (const ShotResult& shot : shots) sum += shot.fill_rate;
  return sum / static_cast<double>(shots.size());
}

std::size_t BatchReport::total_commands() const noexcept {
  std::size_t total = 0;
  for (const ShotResult& shot : shots) total += shot.commands;
  return total;
}

LatencySummary BatchReport::latency(Stage stage) const {
  std::vector<double> column;
  column.reserve(shots.size());
  for (const ShotResult& shot : shots) {
    switch (stage) {
      case Stage::Detect: column.push_back(shot.detect_us); break;
      case Stage::Plan: column.push_back(shot.plan_us); break;
      case Stage::Execute: column.push_back(shot.execute_us); break;
    }
  }
  LatencySummary summary;
  if (column.empty()) return summary;
  summary.mean = stats::mean(column);
  const stats::SortedSample sample(column);
  summary.p50 = sample.percentile(50.0);
  summary.p90 = sample.percentile(90.0);
  summary.p99 = sample.percentile(99.0);
  summary.max = sample.max();
  return summary;
}

std::uint64_t BatchReport::fingerprint() const noexcept {
  std::uint64_t hash = fnv::kOffset;
  mix(hash, shots.size());
  for (const ShotResult& shot : shots) {
    mix(hash, shot.shot);
    mix(hash, shot.seed);
    mix(hash, shot.success ? 1 : 0);
    mix(hash, shot.rounds);
    mix(hash, shot.commands);
    mix(hash, static_cast<std::uint64_t>(shot.atoms_lost));
    mix(hash, static_cast<std::uint64_t>(shot.defects_remaining));
    mix(hash, std::bit_cast<std::uint64_t>(shot.fill_rate));
    mix(hash, static_cast<std::uint64_t>(shot.detection_errors.false_positives));
    mix(hash, static_cast<std::uint64_t>(shot.detection_errors.false_negatives));
    exec::mix_grid(hash, shot.planned_input);
    exec::mix_grid(hash, shot.final_grid);
    mix(hash, shot.schedules.size());
    for (const Schedule& schedule : shot.schedules) mix_schedule(hash, schedule);
  }
  return hash;
}

BatchPlanner::BatchPlanner(BatchConfig config) : config_(std::move(config)) {
  QRM_EXPECTS(config_.shots > 0);
  QRM_EXPECTS(config_.fill >= 0.0 && config_.fill <= 1.0);
  QRM_EXPECTS(config_.max_rounds > 0);
  QRM_EXPECTS(config_.loss.per_move_loss >= 0.0 && config_.loss.per_move_loss <= 1.0);
  QRM_EXPECTS(config_.loss.background_loss >= 0.0 && config_.loss.background_loss <= 1.0);
  QRM_EXPECTS(config_.loss.burst_loss >= 0.0 && config_.loss.burst_loss <= 1.0);
  QRM_EXPECTS(config_.loss.burst_length >= 1);
  QRM_EXPECTS(config_.drift.amplitude >= 0.0 && config_.drift.amplitude <= 1.0);
  QRM_EXPECTS(config_.drift.period >= 1);
  // Fail on unknown algorithm names at construction, not mid-batch.
  (void)baselines::make_algorithm(config_.algorithm);
}

rt::LossModel BatchPlanner::effective_loss() const noexcept {
  rt::LossModel loss = config_.loss;
  loss.seed = exec::loss_master_seed(config_.loss.seed);
  return loss;
}

ShotResult BatchPlanner::run_shot(std::uint32_t shot, const OccupancyGrid* captured) const {
  return run_shot_impl(shot, captured, nullptr);
}

ShotResult BatchPlanner::run_shot_impl(std::uint32_t shot, const OccupancyGrid* captured,
                                       std::shared_ptr<ThreadPool> intra_pool) const {
  ShotResult result;
  result.shot = shot;
  result.seed = exec::shot_seed(config_.master_seed, shot);

  OccupancyGrid truth =
      captured != nullptr
          ? *captured
          : load_random(config_.grid_height, config_.grid_width, {config_.fill, result.seed});

  // --- Detection stage ----------------------------------------------------
  if (config_.imaged_detection) {
    ImagingConfig imaging = config_.imaging;
    imaging.seed = exec::imaging_seed(result.seed);
    DetectionConfig detection = config_.detection;
    if (config_.drift.shape != DriftShape::None) {
      // Calibration drift, keyed only by the shot index (no RNG): photons
      // drift with this shot's factor; a manual threshold drifts half a
      // period out of phase (it was calibrated against a past photon rate),
      // so the two never cancel. The automatic threshold re-fits per frame
      // and needs no adjustment.
      imaging.photons_per_atom *= config_.drift.factor(shot);
      if (detection.threshold_photons >= 0.0) {
        detection.threshold_photons *=
            config_.drift.factor(shot + config_.drift.period / 2);
      }
    }
    Stopwatch watch;
    const FluorescenceImage frame = render_image(truth, imaging);
    result.planned_input = detect_atoms(frame, truth.height(), truth.width(), detection);
    result.detect_us = watch.elapsed_microseconds();
    result.detection_errors = compare_detection(truth, result.planned_input);
  } else {
    result.planned_input = truth;
  }

  // --- Plan + simulated lossy execution -----------------------------------
  // The planner runs behind the algorithm interface so baselines batch the
  // same way; "qrm" keeps the full QrmConfig (mode, merge, sen_limit).
  exec::ExecPolicy shot_exec = config_.exec;
  if (shot_exec.intra_plan_workers > 0 && intra_pool != nullptr) {
    // Batched path: quadrant tasks share the shot pool (see run_shot's
    // arbitration note). The pool is not part of the plan's identity, so
    // the cache key and every fingerprint are unchanged by this.
    shot_exec.pool = std::move(intra_pool);
  }
  const PlanParallelism parallelism = shot_exec.plan_parallelism();

  rt::LoopConfig loop_config;
  loop_config.plan = config_.plan;
  loop_config.loss = effective_loss();
  loop_config.max_rounds = config_.max_rounds;
  loop_config.shot_index = shot;
  loop_config.exec = shot_exec;

  double plan_us = 0.0;
  rt::PlanFn plan_round;
  if (config_.algorithm == "qrm" && shot_exec.replan == ReplanMode::Delta) {
    // One stateful replanner per shot loop: rounds reuse the previous
    // round's untouched quadrant kernels, bit-identical to scratch (see
    // core/delta_planner.hpp). With a PlanCache in front, hit rounds skip
    // the replanner entirely; its cached previous input just ages, and a
    // later miss still diffs correctly against it.
    plan_round = [replanner = std::make_shared<DeltaReplanner>(
                      config_.plan, DeltaReplanner::Options{}, parallelism),
                  &plan_us](const OccupancyGrid& state) {
      Stopwatch watch;
      PlanResult plan = replanner->plan(state);
      plan_us += watch.elapsed_microseconds();
      return plan;
    };
  } else if (config_.algorithm == "qrm") {
    plan_round = [planner = QrmPlanner(config_.plan, parallelism),
                  &plan_us](const OccupancyGrid& state) {
      Stopwatch watch;
      PlanResult plan = planner.plan(state);
      plan_us += watch.elapsed_microseconds();
      return plan;
    };
  } else {
    plan_round = [algorithm = std::shared_ptr<baselines::RearrangementAlgorithm>(
                      baselines::make_algorithm(config_.algorithm)),
                  target = config_.plan.target, dead = config_.plan.dead_channels,
                  &plan_us](const OccupancyGrid& state) {
      Stopwatch watch;
      // Baselines share the planner-side dead-channel contract: plan on the
      // masked view so frozen atoms are never scheduled. (The lossy loop
      // additionally refuses dead pickups/dropoffs, authoritatively.)
      PlanResult plan = dead.empty() ? algorithm->plan(state, target)
                                     : algorithm->plan(mask_dead_lines(state, dead), target);
      plan_us += watch.elapsed_microseconds();
      return plan;
    };
  }

  // Plan memoisation: intercept each round's plan with a cache lookup. On a
  // hit the planner is skipped entirely (no plan_us accrues — that is the
  // point); on a miss the cold plan is computed, timed, and inserted. Hits
  // are bit-equal to cold plans (PlanCache's contract), so outcome fields
  // and fingerprints are identical with the cache on or off.
  if (config_.exec.plan_cache) {
    plan_round = [cache = config_.exec.plan_cache,
                  key = exec::PlanCache::config_key(config_.algorithm, config_.plan),
                  cold = std::move(plan_round)](const OccupancyGrid& state) {
      if (const std::shared_ptr<const PlanResult> hit = cache->find(key, state)) return *hit;
      return *cache->insert(key, state, cold(state));
    };
  }

  Stopwatch loop_watch;
  rt::LoopReport loop = rt::run_rearrangement_loop(result.planned_input, loop_config, plan_round);
  const double loop_us = loop_watch.elapsed_microseconds();
  result.plan_us = plan_us;
  result.execute_us = loop_us > plan_us ? loop_us - plan_us : 0.0;

  result.final_grid = std::move(loop.final_grid);
  result.success = loop.success;
  result.rounds = static_cast<std::uint32_t>(loop.rounds_used());
  result.atoms_lost = loop.total_atoms_lost;
  for (const rt::RoundReport& round : loop.rounds) result.commands += round.commands;
  result.schedules = std::move(loop.schedules);

  const Region& target = config_.plan.target;
  const std::int64_t area = static_cast<std::int64_t>(target.area());
  const std::int64_t filled = result.final_grid.atom_count(target);
  result.defects_remaining = area - filled;
  result.fill_rate = area > 0 ? static_cast<double>(filled) / static_cast<double>(area) : 0.0;
  return result;
}

BatchReport BatchPlanner::run_impl(std::uint32_t shot_count,
                                   const std::vector<OccupancyGrid>* captured) const {
  QRM_EXPECTS(shot_count > 0);

  BatchReport report;
  report.shots.resize(shot_count);

  Stopwatch wall;
  {
    ThreadPool pool(config_.exec.workers);
    report.workers = pool.worker_count();

    // Nested-parallelism arbitration: quadrant tasks draw from the same
    // pool as the shots, unless the caller configured a pool of its own
    // (the campaign runner shares its campaign-wide pool that way). The
    // self-share is deliberately *non-owning* (aliasing shared_ptr): a shot
    // task that held the last owning reference would destroy the pool from
    // one of its own workers. The block scope already guarantees the pool
    // outlives every shot.
    const std::shared_ptr<ThreadPool> intra_pool =
        config_.exec.pool != nullptr
            ? config_.exec.pool
            : std::shared_ptr<ThreadPool>(std::shared_ptr<void>(), &pool);

    std::vector<std::future<void>> done;
    done.reserve(shot_count);
    for (std::uint32_t shot = 0; shot < shot_count; ++shot) {
      done.push_back(pool.submit([this, shot, captured, &report, intra_pool] {
        // Each shot owns exactly slot [shot]; no cross-shot state is shared.
        report.shots[shot] = run_shot_impl(
            shot, captured != nullptr ? &(*captured)[shot] : nullptr, intra_pool);
      }));
    }

    // Wait for *every* shot before rethrowing, so no worker still writes
    // into `report` after an early failure unwinds the stack.
    std::exception_ptr first_error;
    for (std::future<void>& future : done) {
      try {
        future.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  report.wall_us = wall.elapsed_microseconds();
  return report;
}

BatchReport BatchPlanner::run() const {
  QRM_EXPECTS_MSG(config_.grid_height > 0 && config_.grid_width > 0,
                  "generated batches need grid_height/grid_width");
  return run_impl(config_.shots, nullptr);
}

BatchReport BatchPlanner::run(const std::vector<OccupancyGrid>& captured) const {
  QRM_EXPECTS_MSG(!captured.empty(), "captured batch needs at least one grid");
  return run_impl(static_cast<std::uint32_t>(captured.size()), &captured);
}

}  // namespace qrm::batch

namespace qrm::rt {

// Defined here, not in runtime/, so the runtime module stays below batch in
// the layering (see the declaration's comment in control_system.hpp).
batch::BatchReport ControlSystem::run_batch(const batch::BatchConfig& request) const {
  batch::BatchConfig merged = request;
  merged.plan = config_.accelerator.plan;
  merged.imaging = config_.imaging;
  merged.detection = config_.detection;
  return batch::BatchPlanner(std::move(merged)).run();
}

}  // namespace qrm::rt

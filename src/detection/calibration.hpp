#pragma once
/// \file calibration.hpp
/// Detection-threshold calibration tools: threshold sweeps against ground
/// truth (ROC-style error curves) and per-site SNR estimation. Used to
/// choose operating points for the imaging model and to show detection
/// robustness margins in the examples.

#include <cstdint>
#include <vector>

#include "detection/detector.hpp"
#include "detection/image.hpp"
#include "lattice/grid.hpp"

namespace qrm {

struct ThresholdPoint {
  double threshold = 0.0;
  std::int64_t false_positives = 0;
  std::int64_t false_negatives = 0;
  double error_rate = 0.0;  ///< (fp + fn) / sites
};

/// Sweep `points` thresholds uniformly between the minimum and maximum
/// per-site integral and report the error counts against `truth`.
[[nodiscard]] std::vector<ThresholdPoint> threshold_sweep(const FluorescenceImage& image,
                                                          const OccupancyGrid& truth,
                                                          std::int32_t pixels_per_site,
                                                          std::int32_t points = 64);

/// The sweep point with the fewest total errors (ties: lowest threshold).
[[nodiscard]] ThresholdPoint best_threshold(const std::vector<ThresholdPoint>& sweep);

/// Separation quality of the bright/dark site populations:
/// (mean_bright - mean_dark) / sqrt(var_bright + var_dark).
/// Returns 0 when either class is empty.
[[nodiscard]] double site_separation_snr(const FluorescenceImage& image,
                                         const OccupancyGrid& truth,
                                         std::int32_t pixels_per_site);

}  // namespace qrm

// Intra-plan parallelism battery: pins the tentpole determinism contract —
// PlanParallelism is an execution mechanism that can never change a
// plan. Sequential and quadrant-parallel planning must produce bit-identical
// PlanResults (schedule, final grid, stats) for any worker count, any pool
// topology (transient, shared, nested inside a busy pool), both pass modes,
// and both control architectures; and the self-claiming run_all must make
// nested shot×quadrant fan-out complete even on a 1-worker pool (every case
// here carries the suite-wide ctest TIMEOUT, so a deadlock fails instead of
// hanging). The suite runs under TSan in CI alongside batch_test.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "batch/batch_planner.hpp"
#include "core/planner.hpp"
#include "lattice/region.hpp"
#include "runtime/control_system.hpp"
#include "testutil.hpp"
#include "util/thread_pool.hpp"

namespace qrm {
namespace {

/// The paper's centred-square rule at the suite's Bernoulli(0.55) load:
/// ~0.6*size keeps every quadrant solvable at the sizes used here.
[[nodiscard]] QrmConfig plan_config(std::int32_t size, PlanMode mode) {
  QrmConfig config;
  config.target = centered_square(size, size * 6 / 10 / 2 * 2);
  config.mode = mode;
  return config;
}

[[nodiscard]] QrmPlanner make_planner(std::int32_t size, PlanMode mode, std::uint32_t workers,
                                      std::shared_ptr<ThreadPool> pool = nullptr) {
  return QrmPlanner(plan_config(size, mode), PlanParallelism{workers, std::move(pool)});
}

TEST(ParallelPlan, BitEqualAcrossWorkerCountsGridsAndModes) {
  for (const std::int32_t size : {64, 128, 256}) {
    const OccupancyGrid grid = testutil::seeded_grid(size, size, 0.55, 0x9E3779B9u + size);
    for (const PlanMode mode : {PlanMode::Compact, PlanMode::Balanced}) {
      const PlanResult sequential = make_planner(size, mode, 0).plan(grid);
      for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        const PlanResult parallel = make_planner(size, mode, workers).plan(grid);
        EXPECT_EQ(parallel, sequential)
            << size << "x" << size << " " << to_cstring(mode) << " workers=" << workers;
      }
    }
  }
}

TEST(ParallelPlan, TransientAndSharedPoolsAgreeWithSequential) {
  const OccupancyGrid grid = testutil::seeded_grid(64, 64, 0.55, 77);
  const PlanResult sequential = make_planner(64, PlanMode::Balanced, 0).plan(grid);
  // No pool supplied: QrmPlanner spins a transient one per call.
  const PlanResult transient = make_planner(64, PlanMode::Balanced, 4).plan(grid);
  EXPECT_EQ(transient, sequential);
  // Caller-owned shared pool (the BatchPlanner / CampaignRunner topology),
  // reused across plans.
  const auto pool = std::make_shared<ThreadPool>(2);
  const QrmPlanner shared = make_planner(64, PlanMode::Balanced, 4, pool);
  EXPECT_EQ(shared.plan(grid), sequential);
  EXPECT_EQ(shared.plan(grid), sequential) << "pool reuse must not perturb plans";
}

TEST(ParallelPlan, NestedInsideBusySingleWorkerPoolCompletes) {
  // Deadlock regression for the self-claiming run_all: plan *from a task of*
  // a 1-worker pool while the quadrant tasks target that same pool. The only
  // worker is occupied by the planning task itself, so helpers can never be
  // scheduled before the caller finishes — the caller must drain its own
  // fan-out. A blocking fork-join would deadlock here (and trip the ctest
  // TIMEOUT); the self-claiming one completes with the sequential plan.
  const OccupancyGrid grid = testutil::seeded_grid(32, 32, 0.55, 5);
  const PlanResult sequential = make_planner(32, PlanMode::Balanced, 0).plan(grid);
  const auto pool = std::make_shared<ThreadPool>(1);
  const QrmPlanner planner = make_planner(32, PlanMode::Balanced, 4, pool);
  auto nested = pool->submit([&] { return planner.plan(grid); });
  EXPECT_EQ(nested.get(), sequential);
}

TEST(ParallelPlan, ShotTimesQuadrantFanOutOnOneWorkerPoolCompletes) {
  // N shots × M quadrant tasks arbitrated by one BatchPlanner pool of size 1:
  // every shot task spawns quadrant tasks back onto the pool it runs on.
  // Must complete (self-claiming progress guarantee) and match a run with
  // parallelism fully off, fingerprint included.
  batch::BatchConfig config;
  config.plan.target = centered_square(32, 18);
  config.shots = 6;
  config.exec.workers = 1;
  config.grid_height = config.grid_width = 32;
  config.max_rounds = 3;
  const batch::BatchReport sequential = batch::BatchPlanner(config).run();
  config.exec.intra_plan_workers = 4;
  const batch::BatchReport nested = batch::BatchPlanner(config).run();
  EXPECT_EQ(nested.fingerprint(), sequential.fingerprint());
  ASSERT_EQ(nested.shots.size(), sequential.shots.size());
  for (std::size_t i = 0; i < nested.shots.size(); ++i)
    EXPECT_EQ(nested.shots[i].final_grid, sequential.shots[i].final_grid) << "shot " << i;
}

TEST(ParallelPlan, BothArchitecturesWorkflowInvariantUnderParallelPlanning) {
  // The deterministic workflow outcome (fill, defects, command count, and
  // the modelled AWG program time) must be invariant under the knob on both
  // Fig. 2 architectures. Measured-latency fields (host-mediated detection /
  // analysis wall time) are excluded — they are measurements, not outcomes.
  const OccupancyGrid atoms = testutil::seeded_grid(20, 20, 0.7, 11);
  for (const rt::Architecture architecture :
       {rt::Architecture::HostMediated, rt::Architecture::FpgaIntegrated}) {
    rt::SystemConfig config;
    config.architecture = architecture;
    config.accelerator.plan.target = centered_square(20, 12);
    config.imaging.photons_per_atom = 400.0;  // high SNR: detection is exact
    config.imaging.background_photons = 1.0;
    config.detection.pixels_per_site = config.imaging.pixels_per_site;
    const rt::WorkflowReport sequential = rt::ControlSystem(config).run(atoms);
    config.plan_parallelism.workers = 4;
    const rt::WorkflowReport parallel = rt::ControlSystem(config).run(atoms);
    EXPECT_EQ(parallel.target_filled, sequential.target_filled) << to_cstring(architecture);
    EXPECT_EQ(parallel.defects_remaining, sequential.defects_remaining)
        << to_cstring(architecture);
    EXPECT_EQ(parallel.schedule_commands, sequential.schedule_commands)
        << to_cstring(architecture);
    EXPECT_EQ(parallel.awg_program_us, sequential.awg_program_us) << to_cstring(architecture);
  }
}

TEST(ParallelPlan, PhaseTimersAreMeasurementNotIdentity) {
  // PlanStats::timers must populate (the bench's serial-residue breakdown
  // depends on it) while staying outside plan identity: two runs with
  // different timer values still compare equal.
  const OccupancyGrid grid = testutil::seeded_grid(64, 64, 0.55, 3);
  const PlanResult a = make_planner(64, PlanMode::Balanced, 0).plan(grid);
  EXPECT_GT(a.stats.timers.pass_compute_us + a.stats.timers.merge_us + a.stats.timers.realize_us,
            0.0);
  PlanResult b = a;
  b.stats.timers.pass_compute_us += 1e6;
  b.stats.timers.merge_us += 1e6;
  b.stats.timers.realize_us += 1e6;
  EXPECT_EQ(b, a);
}

}  // namespace
}  // namespace qrm

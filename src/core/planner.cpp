#include "core/planner.hpp"

#include <memory>
#include <utility>

#include "core/pass_driver.hpp"
#include "moves/dead_channels.hpp"
#include "util/thread_pool.hpp"

namespace qrm {

PlanResult QrmPlanner::plan(const OccupancyGrid& initial) const {
  PlanParallelism parallelism = parallelism_;
  if (parallelism.workers > 0 && parallelism.pool == nullptr) {
    // No layer above us owns a pool (standalone plan call): spin up a
    // transient one. Batch and campaign layers share their shot pool here
    // instead, so nested parallelism never oversubscribes.
    parallelism.pool = std::make_shared<ThreadPool>(parallelism.workers);
  }
  // Dead channels: plan against the masked view, so frozen atoms (which can
  // never be picked up) are invisible to every pass.
  const OccupancyGrid* input = &initial;
  OccupancyGrid masked;
  if (!config_.dead_channels.empty()) {
    masked = mask_dead_lines(initial, config_.dead_channels);
    input = &masked;
  }
  PassDriver driver(*input, config_, std::move(parallelism));
  while (auto pass = driver.next()) driver.apply(std::move(*pass));
  return driver.take_result();
}

PlanResult plan_qrm(const OccupancyGrid& initial, std::int32_t target_size, PlanMode mode) {
  QrmConfig config;
  config.target = centered_region(initial.height(), initial.width(), target_size, target_size);
  config.mode = mode;
  return QrmPlanner(config).plan(initial);
}

}  // namespace qrm

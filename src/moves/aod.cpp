#include "moves/aod.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm {

std::optional<std::string> aod_violation(const OccupancyGrid& grid, const ParallelMove& move) {
  if (move.sites.empty()) return std::nullopt;
  // Word-parallel cross-product check: a violation in row r is any bit of
  //   occupied(r) AND cols-mask AND NOT members(r),
  // where the cols-mask has one bit per selected column and members(r) marks
  // the move's own sites in that row. One pass over the touched rows'
  // words replaces the O(|rows|*|cols|) per-cell std::set scan. The map keeps
  // rows ascending so the reported first violation (lowest row, then lowest
  // column) matches the historical per-cell scan order.
  BitRow colmask(static_cast<std::uint32_t>(grid.width()));
  for (const Coord& s : move.sites)
    if (s.col >= 0 && s.col < grid.width()) colmask.set(static_cast<std::uint32_t>(s.col));
  std::map<std::int32_t, BitRow> members;
  for (const Coord& s : move.sites) {
    if (s.row < 0 || s.row >= grid.height()) continue;
    const auto it = members.try_emplace(s.row, static_cast<std::uint32_t>(grid.width())).first;
    if (s.col >= 0 && s.col < grid.width()) it->second.set(static_cast<std::uint32_t>(s.col));
  }
  for (const auto& [r, member_row] : members) {
    const auto& occ = grid.row(r).words();
    const auto& sel = colmask.words();
    const auto& own = member_row.words();
    for (std::size_t wi = 0; wi < occ.size(); ++wi) {
      const BitRow::Word bystanders = occ[wi] & sel[wi] & ~own[wi];
      if (bystanders != 0) {
        const auto c = static_cast<std::int32_t>(wi * BitRow::kWordBits +
                                                 static_cast<std::size_t>(std::countr_zero(bystanders)));
        return "AOD cross trap at " + qrm::to_string(Coord{r, c}) +
               " holds a bystander atom not part of the move";
      }
    }
  }
  return std::nullopt;
}

namespace {

/// One axis of the AOD cross-product check at word speed: does the occupancy
/// line `occ` hold a set bit that is also in `mask` (a trap the batch's AOD
/// lines would create) but is neither a member of the batch (`own`) nor the
/// candidate's own position (`exclude`)? Equivalent to the per-cell scan
///   any c in mask: occ(c) && !own(c) && c != exclude
/// but one AND-NOT sweep over the line's words.
bool aod_bystander_on_line(const BitRow& occ, const BitRow& mask, const BitRow& own,
                           std::int32_t exclude) {
  const auto& ow = occ.words();
  const auto& mw = mask.words();
  const auto& sw = own.words();
  const auto xw = static_cast<std::size_t>(exclude) / BitRow::kWordBits;
  const auto xbit = BitRow::Word{1} << (static_cast<std::uint32_t>(exclude) % BitRow::kWordBits);
  for (std::size_t wi = 0; wi < ow.size(); ++wi) {
    BitRow::Word bystanders = ow[wi] & mw[wi] & ~sw[wi];
    if (wi == xw) bystanders &= ~xbit;
    if (bystanders != 0) return true;
  }
  return false;
}

/// Exact line-major reformulation of the greedy partition for the dominant
/// unit-step case. Produces bit-identical batches, in the same order, as the
/// per-candidate scan in legalize() below: the candidate visit order (major
/// axis toward the front, minor axis ascending) IS the front_first order, the
/// accept predicate is term-for-term the same, and rejected candidates have
/// no side effects — which is what lets whole groups of them be skipped from
/// word-level masks instead of being examined one by one:
///   * path rejects: one AND-NOT of the group's forward line,
///   * group-axis cross rejects: one sweep of the group line against the
///     accepted-minor mask (0 bystanders = all pass, 2+ = all fail, exactly
///     1 = only the bystander site itself may proceed, and it unblocks the
///     minors after it only by being accepted),
///   * minor-axis cross checks: the only remaining per-candidate sweep.
std::vector<ParallelMove> legalize_unit_step(const OccupancyGrid& grid,
                                             const std::vector<Coord>& sorted_sites,
                                             OccupancyGrid& gmaj, OccupancyGrid rmaj,
                                             BitRow majors_present, Direction dir) {
  const bool horiz = is_horizontal(dir);
  const Coord delta = direction_delta(dir);
  const std::int32_t dmaj = horiz ? delta.col : delta.row;  // -1 or +1
  const std::int32_t nmaj = horiz ? grid.width() : grid.height();
  const std::int32_t nmin = horiz ? grid.height() : grid.width();
  const auto site_at = [horiz](std::int32_t m, std::int32_t x) {
    return horiz ? Coord{x, m} : Coord{m, x};
  };

  // Batch membership as a bit grid (reset between batches), and the
  // accepted-minor mask of the batch.
  OccupancyGrid mmaj(nmaj, nmin);
  BitRow acc_min(static_cast<std::uint32_t>(nmin));
  // Minors holding a bystander atom in some already-processed accepted major
  // line. A major line's bystander set is final once its group finishes
  // (accepts only ever happen during the line's own group visit), so this
  // running OR is an exact O(1) replacement for the per-candidate sweep of
  // the minor line against the accepted majors.
  BitRow bystander_minors(static_cast<std::uint32_t>(nmin));
  std::vector<ParallelMove> out;
  std::vector<BitRow::Word> surv(gmaj.row(0).words().size());
  std::size_t left = sorted_sites.size();
  while (left > 0) {
    std::vector<Coord> batch;
    for (std::int32_t i = 0; i < nmaj; ++i) {
      const std::int32_t m = dmaj < 0 ? i : nmaj - 1 - i;  // front-first
      if (!majors_present.test(static_cast<std::uint32_t>(m))) continue;
      const std::int32_t p = m + dmaj;  // the major line one step ahead
      if (p < 0 || p >= nmaj) continue;  // whole group walks out of bounds
      // Path check for every candidate of the group at once: the cell ahead
      // must be free or vacated by an already-accepted member.
      const auto& cw = rmaj.row(m).words();
      const auto& pw = gmaj.row(p).words();
      const auto& pm = mmaj.row(p).words();
      const auto& bw = bystander_minors.words();
      bool any = false;
      for (std::size_t w = 0; w < surv.size(); ++w) {
        surv[w] = cw[w] & ~(pw[w] & ~pm[w]) & ~bw[w];
        any = any || surv[w] != 0;
      }
      if (!any) continue;
      // Group-axis cross state: minors already accepted elsewhere that hold
      // an atom on this major line. (The group's own members are excluded by
      // construction: mmaj.row(m) is empty until this group accepts.)
      const auto& gw = gmaj.row(m).words();
      const auto& aw = acc_min.words();
      std::int32_t vcount = 0;
      std::int32_t bystander = -1;
      for (std::size_t w = 0; w < gw.size() && vcount < 2; ++w) {
        BitRow::Word v = gw[w] & aw[w];
        while (v != 0 && vcount < 2) {
          bystander = static_cast<std::int32_t>(w * BitRow::kWordBits +
                                                static_cast<std::size_t>(std::countr_zero(v)));
          v &= v - 1;
          ++vcount;
        }
      }
      if (vcount >= 2) continue;  // no candidate can clear two bystanders
      bool gated = vcount == 1;   // only `bystander` itself may be accepted
                                  // until it joins the batch
      bool group_accepted = false;
      bool group_done = false;
      for (std::size_t w = 0; w < surv.size() && !group_done; ++w) {
        BitRow::Word bits = surv[w];
        while (bits != 0) {
          const auto x = static_cast<std::int32_t>(w * BitRow::kWordBits +
                                                   static_cast<std::size_t>(std::countr_zero(bits)));
          bits &= bits - 1;
          if (gated) {
            if (x < bystander) continue;  // fails the group-axis check
            if (x > bystander) {          // bystander was not cleared
              group_done = true;
              break;
            }
          }
          // The minor-axis cross check already ran word-parallel: surv was
          // masked by bystander_minors, and bystanders on this minor line in
          // the group's own major are the candidate itself (excluded).
          batch.push_back(site_at(m, x));
          mmaj.set({m, x});
          acc_min.set(static_cast<std::uint32_t>(x));
          group_accepted = true;
          gated = false;
        }
      }
      if (group_accepted) {
        // This line's bystander set is now final for the pass; fold it in.
        const auto& go = gmaj.row(m).words();
        const auto& mo = mmaj.row(m).words();
        for (std::size_t w = 0; w < surv.size(); ++w)
          bystander_minors.set_word(static_cast<std::uint32_t>(w),
                                    bystander_minors.words()[w] | (go[w] & ~mo[w]));
      }
    }

    QRM_ENSURES_MSG(!batch.empty(),
                    "legalize made no progress; the intended move set is not realisable");

    // Apply the batch: clear all sources, then set all destinations
    // (lockstep semantics), and reset the per-batch membership state.
    for (const Coord& s : batch) {
      const std::int32_t m = horiz ? s.col : s.row;
      const std::int32_t x = horiz ? s.row : s.col;
      gmaj.clear({m, x});
      mmaj.clear({m, x});
      rmaj.clear({m, x});
    }
    for (const Coord& s : batch) {
      const std::int32_t m = (horiz ? s.col : s.row) + dmaj;
      const std::int32_t x = horiz ? s.row : s.col;
      QRM_ENSURES_MSG(!gmaj.occupied({m, x}), "legalize produced a colliding batch");
      gmaj.set({m, x});
    }
    std::int32_t prev_major = -1;
    for (const Coord& s : batch) {
      const std::int32_t m = horiz ? s.col : s.row;
      if (m == prev_major) continue;  // batch is ordered by major line
      prev_major = m;
      if (rmaj.row(m).none()) majors_present.set(static_cast<std::uint32_t>(m), false);
    }
    acc_min.reset();
    bystander_minors.reset();
    left -= batch.size();
    out.push_back(ParallelMove{dir, 1, std::move(batch)});
  }
  return out;
}

}  // namespace

std::vector<ParallelMove> legalize(const OccupancyGrid& grid, std::span<const Coord> sites,
                                   Direction dir, std::int32_t steps,
                                   OccupancyGrid* unit_major_mirror) {
  QRM_EXPECTS(steps >= 1);
  QRM_EXPECTS_MSG(unit_major_mirror == nullptr || steps == 1,
                  "legalize: major mirror is only supported for unit steps");
  std::vector<ParallelMove> out;
  if (sites.empty()) return out;

  const bool horiz = is_horizontal(dir);
  const Coord delta = direction_delta(dir);
  const std::int32_t dmaj = horiz ? delta.col : delta.row;
  const std::int32_t nmaj = horiz ? grid.width() : grid.height();
  const std::int32_t nmin = horiz ? grid.height() : grid.width();

  // Bucket the intended sites by major line (the coordinate the move
  // changes). Enumerating the buckets front-first with minors ascending
  // reproduces the historical front_first sort order — atoms nearest the
  // destination side come first, so chain followers see their leaders
  // handled first — in linear time, and doubles as the duplicate check:
  // a duplicated site would pass the occupancy check (both copies see the
  // same atom) and then be emitted twice inside one ParallelMove —
  // physically one tweezer trying to pick the same atom up twice.
  OccupancyGrid rmaj(nmaj, nmin);
  BitRow majors_present(static_cast<std::uint32_t>(nmaj));
  std::optional<Coord> duplicate;
  for (const Coord& s : sites) {
    QRM_EXPECTS_MSG(grid.in_bounds(s) && grid.occupied(s), "legalize: site must hold an atom");
    const Coord bucket{horiz ? s.col : s.row, horiz ? s.row : s.col};
    if (rmaj.occupied(bucket) && !duplicate.has_value()) duplicate = s;
    rmaj.set(bucket);
    majors_present.set(static_cast<std::uint32_t>(bucket.row));
  }
  QRM_EXPECTS_MSG(!duplicate.has_value(),
                  "legalize: duplicate site " + qrm::to_string(*duplicate) +
                      " in the intended move set");

  std::vector<Coord> remaining;
  remaining.reserve(sites.size());
  for (std::int32_t i = 0; i < nmaj; ++i) {
    const std::int32_t m = dmaj < 0 ? i : nmaj - 1 - i;  // front-first
    if (!majors_present.test(static_cast<std::uint32_t>(m))) continue;
    const auto& ws = rmaj.row(m).words();
    for (std::size_t w = 0; w < ws.size(); ++w) {
      BitRow::Word bits = ws[w];
      while (bits != 0) {
        const auto x = static_cast<std::int32_t>(w * BitRow::kWordBits +
                                                 static_cast<std::size_t>(std::countr_zero(bits)));
        bits &= bits - 1;
        remaining.push_back(horiz ? Coord{x, m} : Coord{m, x});
      }
    }
  }

  // Fast path: when the whole intended set is already legal as one lockstep
  // command (frequent for sparse rounds), skip the greedy partition. For
  // unit steps — every round the realizer lowers — both the legality probe
  // and the greedy partition run word-parallel on the bucket grid; the
  // source checks validate_move would repeat are already guaranteed by the
  // preconditions above. Multi-step moves keep the per-candidate scan.
  if (steps == 1) {
    // The probe and the greedy partition both read the grid in major-line
    // orientation; a caller-maintained mirror skips the O(area) rederivation.
    OccupancyGrid owned_gmaj;
    if (unit_major_mirror == nullptr)
      owned_gmaj = horiz ? grid.flipped(Flip::Transpose) : grid;
    OccupancyGrid& gmaj = unit_major_mirror != nullptr ? *unit_major_mirror : owned_gmaj;
    BitRow minmask(static_cast<std::uint32_t>(nmin));
    for (std::int32_t m = 0; m < nmaj; ++m)
      if (majors_present.test(static_cast<std::uint32_t>(m))) minmask |= rmaj.row(m);
    bool legal = true;
    for (std::int32_t m = 0; m < nmaj && legal; ++m) {
      if (!majors_present.test(static_cast<std::uint32_t>(m))) continue;
      const std::int32_t p = m + dmaj;
      if (p < 0 || p >= nmaj) {
        legal = false;
        break;
      }
      const auto& sw = rmaj.row(m).words();
      const auto& po = gmaj.row(p).words();
      const auto& ps = rmaj.row(p).words();
      const auto& go = gmaj.row(m).words();
      const auto& mm = minmask.words();
      for (std::size_t w = 0; w < sw.size(); ++w) {
        // A member's swept cell holding a non-member atom, or an AOD cross
        // trap capturing a bystander, each veto the single-command form.
        if ((sw[w] & po[w] & ~ps[w]) != 0 || (go[w] & mm[w] & ~sw[w]) != 0) {
          legal = false;
          break;
        }
      }
    }
    if (legal) {
      // Keep the mirror tracking the post-move grid (the greedy path does
      // this batch by batch inside legalize_unit_step).
      if (unit_major_mirror != nullptr) {
        for (const Coord& s : remaining) {
          const std::int32_t m = horiz ? s.col : s.row;
          const std::int32_t x = horiz ? s.row : s.col;
          gmaj.clear({m, x});
        }
        for (const Coord& s : remaining) {
          const std::int32_t m = (horiz ? s.col : s.row) + dmaj;
          const std::int32_t x = horiz ? s.row : s.col;
          gmaj.set({m, x});
        }
      }
      return {ParallelMove{dir, 1, std::move(remaining)}};
    }
    return legalize_unit_step(grid, remaining, gmaj, std::move(rmaj), std::move(majors_present),
                              dir);
  }
  {
    ParallelMove whole{dir, steps, remaining};
    const bool legal = !validate_move(grid, whole, /*check_aod=*/true).has_value();
    if (legal) return {std::move(whole)};
  }

  OccupancyGrid scratch = grid;
  // Greedy partition on word-parallel state. The accept decisions and their
  // order are bit-identical to the historical per-cell std::set scan; only
  // the data structures changed: `member`/`member_t` are the batch-membership
  // set as bit grids, `scratch_t` mirrors `scratch` transposed so the column
  // cross-check reads whole words exactly like the row check, and
  // `rowmask`/`colmask` are the accepted row/column sets.
  OccupancyGrid scratch_t = scratch.flipped(Flip::Transpose);
  OccupancyGrid member(grid.height(), grid.width());
  OccupancyGrid member_t(grid.width(), grid.height());
  BitRow colmask(static_cast<std::uint32_t>(grid.width()));
  BitRow rowmask(static_cast<std::uint32_t>(grid.height()));

  while (!remaining.empty()) {
    std::vector<Coord> batch;
    std::vector<Coord> deferred;

    for (const Coord& s : remaining) {
      bool ok = true;
      // Path/collision: every swept cell must be free or vacated by an atom
      // already accepted into this lockstep batch.
      for (std::int32_t k = 1; k <= steps && ok; ++k) {
        const Coord cell = moved(s, dir, k);
        if (!scratch.in_bounds(cell)) {
          ok = false;
        } else if (scratch.occupied(cell) && !member.occupied(cell)) {
          ok = false;
        }
      }
      // AOD cross-product: new traps created by adding row s.row / col s.col
      // must not capture bystanders.
      if (ok) ok = !aod_bystander_on_line(scratch.row(s.row), colmask, member.row(s.row), s.col);
      if (ok)
        ok = !aod_bystander_on_line(scratch_t.row(s.col), rowmask, member_t.row(s.col), s.row);
      if (ok) {
        batch.push_back(s);
        member.set(s);
        member_t.set({s.col, s.row});
        rowmask.set(static_cast<std::uint32_t>(s.row));
        colmask.set(static_cast<std::uint32_t>(s.col));
      } else {
        deferred.push_back(s);
      }
    }

    QRM_ENSURES_MSG(!batch.empty(),
                    "legalize made no progress; the intended move set is not realisable");

    // Apply the batch to the scratch state: clear all sources, then set all
    // destinations (lockstep semantics). Membership resets for the next batch.
    for (const Coord& s : batch) {
      scratch.clear(s);
      scratch_t.clear({s.col, s.row});
      member.clear(s);
      member_t.clear({s.col, s.row});
    }
    for (const Coord& s : batch) {
      const Coord d = moved(s, dir, steps);
      QRM_ENSURES_MSG(!scratch.occupied(d), "legalize produced a colliding batch");
      scratch.set(d);
      scratch_t.set({d.col, d.row});
    }
    rowmask.reset();
    colmask.reset();

    out.push_back(ParallelMove{dir, steps, std::move(batch)});
    remaining = std::move(deferred);
  }
  return out;
}

}  // namespace qrm

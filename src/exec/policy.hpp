#pragma once
/// \file policy.hpp
/// qrm::exec — the unified execution-policy layer.
///
/// Every execution knob shipped since the batch subsystem landed — worker
/// pools, intra-plan quadrant parallelism, replan strategy, plan caching,
/// RNG stream derivation, schedule retention — used to be re-declared per
/// layer (LoopConfig, BatchConfig, CampaignConfig) with hand-rolled
/// override rules (`-1` sentinels, pool-sharing special cases). ExecPolicy
/// is the single home for all of them: the loop, batch, and campaign layers
/// each embed one and honour the fields that apply at their level.
///
/// None of these knobs can change an outcome: plans are bit-identical for
/// any worker count (quadrants are data-independent), Delta replans are
/// bit-identical to Scratch, and cache hits are bit-equal to cold plans.
/// The policy is therefore pure mechanism — fingerprints, PlanCache keys,
/// and spec serialization never see it, which is what lets campaigns be
/// re-run under any policy without touching a golden corpus.
///
/// Precedence is explicit, not sentinel-encoded: resolve() applies
/// ExecOverrides layers lowest-precedence-first over a base policy
/// (campaign usage: spec keys, then campaign overrides, then CLI flags —
/// CLI > campaign > spec > default), pinned by tests/exec_test.cpp.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <optional>

#include "core/config.hpp"

namespace qrm::exec {

class PlanCache;

/// The resolved execution policy one run executes under.
struct ExecPolicy {
  /// Top-level fan-out width (batch shots, campaign scenarios x shots).
  /// 0 = hardware_concurrency. Ignored by layers below batch.
  std::uint32_t workers = 0;
  /// Intra-plan quadrant parallelism (PlanParallelism::workers). 0 =
  /// sequential planning, the default.
  std::uint32_t intra_plan_workers = 0;
  /// Pool every level draws from. Layers that own a pool (BatchPlanner,
  /// CampaignRunner) attach theirs here on the way down so shot-level and
  /// quadrant-level work share one worker budget; when null, each planner
  /// spins a transient pool per plan (QrmPlanner::plan).
  std::shared_ptr<ThreadPool> pool;
  /// Scratch replans every loop round from nothing; Delta reuses untouched
  /// quadrant kernels via core::DeltaReplanner (bit-identical plans).
  ReplanMode replan = ReplanMode::Scratch;
  /// Plan memoisation, null = off. This is the one attachment point: a
  /// layer that wants caching attaches (or lets resolve() create) a cache
  /// here and shares the pointer across shots/scenarios/shards.
  std::shared_ptr<PlanCache> plan_cache;
  /// Retain per-round schedules (replay-style tests; schedules are large).
  bool keep_schedules = false;

  /// The planner-facing slice of the policy (QrmPlanner / PassDriver /
  /// DeltaReplanner all take one).
  [[nodiscard]] PlanParallelism plan_parallelism() const noexcept {
    return {intra_plan_workers, pool};
  }
};

/// One precedence layer: fields left unset fall through to the layer below
/// (ultimately the base ExecPolicy). Replaces the per-layer `-1`-sentinel
/// conventions — "unset" is now a type, not a magic value.
struct ExecOverrides {
  // NSDMIs keep partial designated initializers ({.plan_cache = true})
  // clean under -Wextra's missing-field-initializers.
  std::optional<std::uint32_t> workers = std::nullopt;
  std::optional<std::uint32_t> intra_plan_workers = std::nullopt;
  std::optional<ReplanMode> replan = std::nullopt;
  /// Tri-state cache policy: true = ensure a cache is attached (an already
  /// attached one — e.g. a cross-shard cache — is kept; otherwise resolve()
  /// creates a fresh one), false = detach, unset = keep the base as-is.
  std::optional<bool> plan_cache = std::nullopt;
  std::optional<bool> keep_schedules = std::nullopt;
};

/// Apply override layers over `base`, lowest precedence first: a field set
/// in a later layer wins over earlier layers and over the base. The
/// plan_cache bools resolve last, against whatever attachment the base
/// carries (see ExecOverrides::plan_cache).
[[nodiscard]] ExecPolicy resolve(ExecPolicy base, std::initializer_list<ExecOverrides> layers);

// --- RNG stream derivation -------------------------------------------------
// The seed-stream schema every deterministic fan-out uses: one master seed,
// SplitMix64-derived per-shot streams, fixed stream indices within a shot's
// domain. Centralised here so batch and campaign can never drift apart on
// byte-level derivation (the golden corpus pins the exact values).

/// Stream index of the photon-noise RNG within one shot's seed domain
/// (stream 0 is the loading draw itself; keep indices distinct).
inline constexpr std::uint64_t kImagingStream = 1;

/// Domain tag folded into the loss master seed before the loop splits it
/// per shot. Without it, master_seed == loss.seed (a natural "one seed for
/// everything" configuration) would make every shot's loss RNG replay the
/// exact bit stream that generated its initial grid.
inline constexpr std::uint64_t kLossDomain = 0x10550000;

/// The seed of shot `shot`'s loading/imaging domain: derive_seed(master, shot).
[[nodiscard]] std::uint64_t shot_seed(std::uint64_t master_seed, std::uint64_t shot) noexcept;

/// The photon-noise stream within one shot's domain.
[[nodiscard]] std::uint64_t imaging_seed(std::uint64_t shot_seed) noexcept;

/// The loss master seed the rearrangement loops split per shot
/// (rt::LossModel::derive): the configured loss seed, domain-separated.
[[nodiscard]] std::uint64_t loss_master_seed(std::uint64_t loss_seed) noexcept;

}  // namespace qrm::exec

// Tests for the multi-round rearrangement-under-loss loop and detection
// calibration tools.

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "detection/calibration.hpp"
#include "loading/loader.hpp"
#include "runtime/rearrangement_loop.hpp"

namespace qrm {
namespace {

rt::LoopConfig loop_config(std::int32_t size, std::int32_t target) {
  rt::LoopConfig config;
  config.plan.target = centered_square(size, target);
  return config;
}

TEST(RearrangementLoop, LosslessSucceedsInOneRound) {
  const OccupancyGrid initial = load_random(24, 24, {0.6, 3});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.0;
  config.loss.background_loss = 0.0;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success);
  EXPECT_EQ(report.rounds_used(), 1u);
  EXPECT_EQ(report.total_atoms_lost, 0);
  EXPECT_EQ(report.final_grid.atom_count(), initial.atom_count());
  EXPECT_TRUE(report.final_grid.region_full(config.plan.target));
}

TEST(RearrangementLoop, ModerateLossRecoversWithinAFewRounds) {
  const OccupancyGrid initial = load_random(24, 24, {0.65, 5});
  rt::LoopConfig config = loop_config(24, 14);
  config.loss.per_move_loss = 0.02;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_TRUE(report.success) << "rounds used: " << report.rounds_used();
  EXPECT_GT(report.total_atoms_lost, 0);
  EXPECT_LE(report.rounds_used(), 6u);
  // Defects must shrink monotonically round over round.
  for (std::size_t i = 1; i < report.rounds.size(); ++i) {
    EXPECT_LE(report.rounds[i].defects_before, report.rounds[i - 1].defects_before);
  }
}

TEST(RearrangementLoop, CatastrophicLossFailsGracefully) {
  const OccupancyGrid initial = load_random(20, 20, {0.55, 7});
  rt::LoopConfig config = loop_config(20, 14);
  config.loss.per_move_loss = 0.5;       // half of every transport dies
  config.loss.background_loss = 0.05;
  config.max_rounds = 8;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.total_atoms_lost, 0);
  // Atom accounting: initial = final + lost.
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, AtomAccountingExact) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 9});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.05;
  config.loss.background_loss = 0.01;
  const rt::LoopReport report = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(report.final_grid.atom_count() + report.total_atoms_lost, initial.atom_count());
}

TEST(RearrangementLoop, DeterministicPerSeed) {
  const OccupancyGrid initial = load_random(20, 20, {0.6, 13});
  rt::LoopConfig config = loop_config(20, 12);
  config.loss.per_move_loss = 0.03;
  const rt::LoopReport a = rt::run_rearrangement_loop(initial, config);
  const rt::LoopReport b = rt::run_rearrangement_loop(initial, config);
  EXPECT_EQ(a.rounds_used(), b.rounds_used());
  EXPECT_EQ(a.total_atoms_lost, b.total_atoms_lost);
  EXPECT_EQ(a.final_grid, b.final_grid);
}

TEST(RearrangementLoop, RejectsBadConfig) {
  const OccupancyGrid initial(20, 20);
  rt::LoopConfig config = loop_config(20, 12);
  config.max_rounds = 0;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
  config.max_rounds = 1;
  config.loss.per_move_loss = 1.5;
  EXPECT_THROW((void)rt::run_rearrangement_loop(initial, config), PreconditionError);
}

// ---------------------------------------------------------------------------
// Detection calibration
// ---------------------------------------------------------------------------

TEST(Calibration, SweepFindsZeroErrorWindowAtHighSnr) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 21});
  ImagingConfig imaging;
  imaging.photons_per_atom = 400.0;
  imaging.background_photons = 1.0;
  const FluorescenceImage image = render_image(truth, imaging);
  const auto sweep = threshold_sweep(image, truth, imaging.pixels_per_site, 128);
  const ThresholdPoint best = best_threshold(sweep);
  EXPECT_EQ(best.false_positives + best.false_negatives, 0);
  EXPECT_DOUBLE_EQ(best.error_rate, 0.0);
}

TEST(Calibration, SweepEndpointsMisclassifyOneClass) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 22});
  ImagingConfig imaging;
  const FluorescenceImage image = render_image(truth, imaging);
  const auto sweep = threshold_sweep(image, truth, imaging.pixels_per_site, 32);
  // Lowest threshold: everything detected -> only false positives.
  EXPECT_EQ(sweep.front().false_negatives, 0);
  EXPECT_EQ(sweep.front().false_positives, 196 - truth.atom_count());
  // Highest threshold: at most one site (the max) detected.
  EXPECT_GE(sweep.back().false_negatives, truth.atom_count() - 1);
}

TEST(Calibration, SnrGrowsWithSignal) {
  const OccupancyGrid truth = load_random(14, 14, {0.5, 23});
  ImagingConfig dim;
  dim.photons_per_atom = 20.0;
  dim.background_photons = 6.0;
  ImagingConfig bright = dim;
  bright.photons_per_atom = 400.0;
  const double snr_dim = site_separation_snr(render_image(truth, dim), truth, 5);
  const double snr_bright = site_separation_snr(render_image(truth, bright), truth, 5);
  EXPECT_GT(snr_bright, snr_dim);
  EXPECT_GT(snr_bright, 5.0) << "bright sites must separate cleanly";
}

TEST(Calibration, SnrZeroWhenOneClassEmpty) {
  const OccupancyGrid truth(6, 6);  // no atoms
  const FluorescenceImage image = render_image(truth, {});
  EXPECT_DOUBLE_EQ(site_separation_snr(image, truth, 5), 0.0);
}

}  // namespace
}  // namespace qrm

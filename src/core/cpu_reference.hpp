#pragma once
/// \file cpu_reference.hpp
/// The paper's CPU baseline: "we conduct a comparative analysis by running
/// the C++ algorithm on the CPU" — i.e. the accelerator's own analysis,
/// executed in software.
///
/// This implementation mirrors the hardware dataflow directly on BitRow
/// words: quadrant flips, per-line scans producing shift commands, the
/// balance unit's demand assignment, and movement-record extraction with
/// empty-shift elimination. It produces the same final occupancy as
/// QrmPlanner (tests enforce equality) but does not materialise the
/// move-by-move schedule — exactly like the FPGA, whose output is the
/// packed movement-record stream. Fig. 7(a)'s CPU column times this
/// function.

#include <cstdint>

#include "core/config.hpp"
#include "lattice/grid.hpp"

namespace qrm {

struct CpuReferenceResult {
  OccupancyGrid final_grid;          ///< predicted occupancy after all moves
  std::uint64_t movement_records = 0;  ///< per-atom records (empty shifts removed)
  std::int32_t passes = 0;
  bool target_filled = false;
  bool feasible = true;
};

/// Run the QRM analysis (same pass program as QrmPlanner for the given
/// config) without schedule materialisation. Preconditions: as
/// QrmPlanner::plan. `sen_limit` is honoured; merge_quadrants and
/// aod_legalize do not affect this analysis (they shape the physical
/// command stream, which this path does not emit).
[[nodiscard]] CpuReferenceResult run_cpu_reference(const OccupancyGrid& initial,
                                                   const QrmConfig& config);

}  // namespace qrm

// Extension bench: analysis latency vs physical execution time per
// algorithm. Accelerating the analysis to ~1 us makes the *atom motion*
// the remaining bottleneck, and algorithms with fewer / more parallel
// commands win on the physical side too — the context for the paper's
// claim that QRM "guarantees a lower clock cycle of neutral atom quantum
// computers".
//
// Second study: accelerator cycle-model kernel occupancy across load
// profiles. The paper's resource/latency numbers assume Bernoulli loading;
// gradient, clustered, and the adversarial pattern loads concentrate atoms
// so the shift kernels and OCM dominate the cycle budget differently. The
// per-profile worst case over seeds is written to a JSON artifact
// (BENCH_occupancy.json, or --out PATH) so CI can track it.

#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "awg/waveform.hpp"
#include "baselines/algorithm.hpp"
#include "hwmodel/accelerator.hpp"

namespace {

using namespace qrm;
using namespace qrm::bench;

constexpr std::int32_t kSize = 20;
constexpr std::int32_t kTarget = 12;

void print_table() {
  print_header("Extension — analysis time vs physical move time (20x20)",
               "context for Sec. VI: after acceleration, atom motion dominates");
  const awg::AodCalibration cal;
  TextTable table({"algorithm", "analysis (CPU)", "commands", "mean parallelism",
                   "physical time"});
  for (const auto& name : {"qrm", "tetris", "psca", "mta1"}) {
    const auto algo = baselines::make_algorithm(name);
    const Region target = centered_square(kSize, kTarget);
    const OccupancyGrid grid = workload(kSize, 1);
    const double cpu_us = best_of_microseconds(name == std::string("mta1") ? 3 : 10, [&] {
      benchmark::DoNotOptimize(algo->plan(grid, target));
    });
    const PlanResult result = algo->plan(grid, target);
    const auto stats = result.schedule.stats();
    const double physical_us =
        awg::build_waveform_plan(result.schedule, cal).total_duration_us;
    table.add_row({name, fmt_time_us(cpu_us), std::to_string(stats.parallel_moves),
                   fmt_double(stats.mean_parallelism, 1), fmt_time_us(physical_us)});
  }
  std::printf("%s\n", table.render().c_str());
}

// ---------------------------------------------------------------------------
// Accelerator cycle-model occupancy across load profiles
// ---------------------------------------------------------------------------

/// One (profile, size) cell: the worst case (highest kernel occupancy) over
/// the profile's seeds. Occupancy = simulated kernel+OCM pass cycles as a
/// fraction of the whole flow (control + load + balance + passes + DMA-out).
struct OccupancyPoint {
  std::string profile;
  std::int32_t size = 0;
  std::int32_t target = 0;
  std::uint64_t pass_cycles = 0;
  std::uint64_t total_cycles = 0;
  double occupancy = 0.0;
  double latency_us = 0.0;
  std::uint64_t movement_records = 0;
  /// False when the balance pass found a quadrant without enough atoms: the
  /// planner refuses (QRM's quadrant-local feasibility limit), the kernels
  /// emit no movement records, and the flow degrades to control + load +
  /// balance + DMA. Those rows measure graceful degradation, not rearranging.
  bool feasible = true;
};

OccupancyPoint worst_occupancy(const std::string& profile, std::int32_t size,
                               std::int32_t target_size,
                               const std::vector<OccupancyGrid>& grids) {
  hw::AcceleratorConfig config;
  config.plan.target = centered_square(size, target_size);
  const hw::QrmAccelerator accel(config);
  OccupancyPoint point;
  point.profile = profile;
  point.size = size;
  point.target = target_size;
  bool first = true;
  for (const OccupancyGrid& grid : grids) {
    const hw::AccelResult result = accel.run(grid);
    const double occ = static_cast<double>(result.cycles.pass_total()) /
                       static_cast<double>(result.cycles.total());
    if (first || occ >= point.occupancy) {
      first = false;
      point.occupancy = occ;
      point.pass_cycles = result.cycles.pass_total();
      point.total_cycles = result.cycles.total();
      point.latency_us = result.latency_us;
      point.movement_records = result.movement_records;
      point.feasible = result.plan.stats.feasible;
    }
  }
  return point;
}

std::vector<OccupancyPoint> occupancy_study() {
  constexpr int kSeeds = 5;
  std::vector<OccupancyPoint> points;
  for (const std::int32_t size : {20, 40}) {
    const std::int32_t target = paper_target(size);

    std::vector<OccupancyGrid> uniform;
    std::vector<OccupancyGrid> gradient;
    std::vector<OccupancyGrid> clustered;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      uniform.push_back(load_random(size, size, {kFill, seed}));
      gradient.push_back(load_gradient(size, size, {0.2, 0.8, GradientAxis::Rows, seed}));
      // A higher base fill keeps the clustered load feasible after blasts.
      clustered.push_back(load_clustered(size, size, {{0.65, seed}, 3, 2}));
    }
    points.push_back(worst_occupancy("uniform", size, target, uniform));
    points.push_back(worst_occupancy("gradient", size, target, gradient));
    points.push_back(worst_occupancy("clustered", size, target, clustered));
    // Deterministic adversarial patterns, one grid each. Checkerboard is a
    // feasible worst-travel load; border maximises travel on a thin atom
    // budget; corner-block and half-grid starve two quadrants entirely, so
    // they measure the infeasible-refusal path (no movement records).
    points.push_back(worst_occupancy("checkerboard", size, target,
                                     {load_pattern(size, size, Pattern::Checkerboard)}));
    // The border ring holds ~(size-1) atoms per quadrant, so its target is
    // the largest even square whose quarter fits that atom budget — maximal
    // travel distance (row-locality may still leave the demand infeasible;
    // the column records what actually happened).
    const std::int32_t border_target =
        2 * static_cast<std::int32_t>(std::sqrt(static_cast<double>(size - 1)));
    points.push_back(worst_occupancy("border", size, border_target,
                                     {load_pattern(size, size, Pattern::Border)}));
    points.push_back(worst_occupancy("corner-block", size, target,
                                     {load_pattern(size, size, Pattern::CornerBlock)}));
    points.push_back(
        worst_occupancy("half-grid", size, target, {load_pattern(size, size, Pattern::HalfGrid)}));
  }
  return points;
}

void print_occupancy(const std::vector<OccupancyPoint>& points) {
  print_header("Extension — accelerator kernel occupancy by load profile",
               "worst case over seeds; cycle model of Sec. IV at 250 MHz");
  TextTable table({"profile", "grid", "target", "pass cycles", "total cycles", "occupancy",
                   "latency", "records", "feasible"});
  for (const auto& p : points) {
    table.add_row({p.profile, std::to_string(p.size), std::to_string(p.target),
                   std::to_string(p.pass_cycles), std::to_string(p.total_cycles),
                   fmt_percent(p.occupancy), fmt_time_us(p.latency_us),
                   std::to_string(p.movement_records), p.feasible ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
}

void write_occupancy_json(const std::string& path, const std::vector<OccupancyPoint>& points) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  os << "{\n";
  os << "  \"bench\": \"physical_time\",\n";
  os << "  \"occupancy\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    os << "    {\"profile\": \"" << p.profile << "\", \"size\": " << p.size
       << ", \"target\": " << p.target << ", \"pass_cycles\": " << p.pass_cycles
       << ", \"total_cycles\": " << p.total_cycles << ", \"occupancy\": " << p.occupancy
       << ", \"latency_us\": " << p.latency_us
       << ", \"movement_records\": " << p.movement_records
       << ", \"feasible\": " << (p.feasible ? "true" : "false")
       << (i + 1 < points.size() ? "},\n" : "}\n");
  }
  os << "  ]\n";
  os << "}\n";
}

void BM_WaveformCompilation(benchmark::State& state) {
  const auto algo = baselines::make_algorithm("qrm");
  const PlanResult result = algo->plan(workload(kSize, 1), centered_square(kSize, kTarget));
  const awg::AodCalibration cal;
  for (auto _ : state) {
    benchmark::DoNotOptimize(awg::build_waveform_plan(result.schedule, cal));
  }
}
BENCHMARK(BM_WaveformCompilation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Peel off our own --out flag before google-benchmark sees the argv.
  std::string out_path = "BENCH_occupancy.json";
  std::vector<char*> bench_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      bench_argv.push_back(argv[i]);
    }
  }

  print_table();
  const std::vector<OccupancyPoint> points = occupancy_study();
  print_occupancy(points);
  write_occupancy_json(out_path, points);
  std::printf("wrote %s\n", out_path.c_str());

  int bench_argc = static_cast<int>(bench_argv.size());
  run_benchmarks(bench_argc, bench_argv.data());
  return 0;
}

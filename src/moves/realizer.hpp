#pragma once
/// \file realizer.hpp
/// Turns per-line (row or column) atom re-placements into an executable
/// schedule of unit-step parallel moves.
///
/// Rearrangement planners think in terms of "this row's atoms should end up
/// at these columns". The realizer lowers that intent to physics: rounds of
/// simultaneous single-step shifts (the hardware's shift commands), with
/// each round optionally partitioned into AOD-legal sub-moves. Motion is
/// order-preserving within every line, which is exactly the regime in which
/// lockstep tweezer moves are collision-free.

#include <cstdint>
#include <span>
#include <vector>

#include "lattice/grid.hpp"
#include "moves/dead_channels.hpp"
#include "moves/schedule.hpp"

namespace qrm {

/// Which family of lines an assignment addresses.
enum class Axis : std::uint8_t {
  Rows,  ///< lines are rows; positions are column indices; motion is W/E
  Cols,  ///< lines are columns; positions are row indices; motion is N/S
};

/// Re-placement of (a subset of) one line's atoms.
///
/// `sources[i]` (strictly ascending, each holding an atom) is sent to
/// `targets[i]` (strictly ascending). Atoms of the line not listed stay
/// fixed; the combined final placement must remain strictly ordered, i.e.
/// no moving atom may pass a fixed one.
struct LineAssignment {
  std::int32_t line = 0;
  std::vector<std::int32_t> sources;
  std::vector<std::int32_t> targets;
};

struct RealizeOptions {
  /// Partition every round into AOD-legal sub-moves (cross-product rule).
  /// When false each round is emitted as one ParallelMove (useful to study
  /// the idealised lower bound on command count).
  bool aod_legalize = true;
  /// Dead AOD channels to route around (nullable; empty mask behaves like
  /// null). Positions on a dead perpendicular line cannot host an atom, so
  /// rounds crossing one are emitted as multi-step hops that land on the
  /// next live position. The grid must already be masked (no atoms on dead
  /// lines) — planners guarantee this via mask_dead_lines.
  const DeadChannelMask* dead = nullptr;
};

struct RealizeResult {
  std::size_t rounds_toward_origin = 0;  ///< unit-step rounds moving W/N
  std::size_t rounds_away = 0;           ///< unit-step rounds moving E/S
  std::size_t atoms_moved = 0;           ///< atoms with nonzero displacement
};

/// Realize `assignments`, appending the generated moves to `schedule` and
/// advancing `grid` to the post-move state.
///
/// Throws PreconditionError when an assignment is malformed (non-ascending,
/// unoccupied source, out-of-bounds target, order violation with fixed
/// atoms, duplicate final positions).
RealizeResult realize_assignments(OccupancyGrid& grid, Axis axis,
                                  std::span<const LineAssignment> assignments,
                                  Schedule& schedule, const RealizeOptions& options = {});

}  // namespace qrm

#include "baselines/algorithm.hpp"

#include "baselines/mta1.hpp"
#include "baselines/psca.hpp"
#include "baselines/tetris.hpp"
#include "core/planner.hpp"
#include "core/typical.hpp"
#include "util/assert.hpp"

namespace qrm::baselines {

namespace {

/// Adapter over the QRM planner (the paper's own algorithm, CPU-side).
class QrmAdapter final : public RearrangementAlgorithm {
 public:
  QrmAdapter(PlanMode mode, AlgorithmOptions options) : mode_(mode), options_(options) {}
  [[nodiscard]] std::string name() const override {
    return mode_ == PlanMode::Balanced ? "qrm" : "qrm-compact";
  }
  [[nodiscard]] std::string description() const override {
    return mode_ == PlanMode::Balanced
               ? "QRM (this paper): quadrant split, balanced placement, merged commands"
               : "QRM compact mode (paper-literal iterated compaction)";
  }
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial,
                                const Region& target) const override {
    QrmConfig config;
    config.target = target;
    config.mode = mode_;
    config.aod_legalize = options_.aod_legalize;
    return QrmPlanner(config).plan(initial);
  }

 private:
  PlanMode mode_;
  AlgorithmOptions options_;
};

/// Adapter over the typical (non-quadrant, Fig. 3) reference procedure.
class TypicalAdapter final : public RearrangementAlgorithm {
 public:
  explicit TypicalAdapter(AlgorithmOptions options) : options_(options) {}
  [[nodiscard]] std::string name() const override { return "typical"; }
  [[nodiscard]] std::string description() const override {
    return "Typical centre-out procedure (paper Sec. III-A reference)";
  }
  [[nodiscard]] PlanResult plan(const OccupancyGrid& initial,
                                const Region& target) const override {
    TypicalConfig config;
    config.target = target;
    config.aod_legalize = options_.aod_legalize;
    return plan_typical(initial, config);
  }

 private:
  AlgorithmOptions options_;
};

}  // namespace

std::unique_ptr<RearrangementAlgorithm> make_algorithm(const std::string& name,
                                                       const AlgorithmOptions& options) {
  if (name == "qrm") return std::make_unique<QrmAdapter>(PlanMode::Balanced, options);
  if (name == "qrm-compact") return std::make_unique<QrmAdapter>(PlanMode::Compact, options);
  if (name == "typical") return std::make_unique<TypicalAdapter>(options);
  if (name == "tetris") return std::make_unique<TetrisAlgorithm>(options);
  if (name == "psca") return std::make_unique<PscaAlgorithm>(options);
  if (name == "mta1") return std::make_unique<Mta1Algorithm>();
  throw PreconditionError("unknown rearrangement algorithm: " + name);
}

std::vector<std::string> algorithm_names() {
  return {"qrm", "qrm-compact", "typical", "tetris", "psca", "mta1"};
}

}  // namespace qrm::baselines

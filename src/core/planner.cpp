#include "core/planner.hpp"

#include "core/pass_driver.hpp"

namespace qrm {

PlanResult QrmPlanner::plan(const OccupancyGrid& initial) const {
  PassDriver driver(initial, config_);
  while (auto pass = driver.next()) driver.apply(*pass);
  return driver.take_result();
}

PlanResult plan_qrm(const OccupancyGrid& initial, std::int32_t target_size, PlanMode mode) {
  QrmConfig config;
  config.target = centered_region(initial.height(), initial.width(), target_size, target_size);
  config.mode = mode;
  return QrmPlanner(config).plan(initial);
}

}  // namespace qrm

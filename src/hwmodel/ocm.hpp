#pragma once
/// \file ocm.hpp
/// Output Concatenation Module: the Movement Recording + Row Combination +
/// output-stream stage of Fig. 5.
///
/// All four quadrants' shift-command buffers are consumed simultaneously
/// (one beat per quadrant per cycle, as the paper describes); empty shifts
/// contribute no records. Accumulated movement records then drain into the
/// output stream at `drain_width` records per cycle.

#include <array>
#include <cstdint>

#include "hwmodel/beats.hpp"
#include "hwmodel/fifo.hpp"
#include "hwmodel/sim.hpp"

namespace qrm::hw {

class OutputConcatModule final : public Module {
 public:
  OutputConcatModule(std::string name, std::array<Fifo<CommandBeat>*, 4> in,
                     std::uint32_t drain_width);

  void eval(std::uint64_t cycle) override;
  [[nodiscard]] bool busy() const override;

  /// Total movement records emitted so far (post empty-shift elimination).
  [[nodiscard]] std::uint64_t records_emitted() const noexcept { return records_emitted_; }
  [[nodiscard]] std::uint64_t beats_consumed() const noexcept { return beats_consumed_; }

 private:
  std::array<Fifo<CommandBeat>*, 4> in_;
  std::uint32_t drain_width_;
  std::uint64_t pending_records_ = 0;
  std::uint64_t records_emitted_ = 0;
  std::uint64_t beats_consumed_ = 0;
};

}  // namespace qrm::hw

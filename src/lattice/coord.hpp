#pragma once
/// \file coord.hpp
/// Grid coordinates. Row 0 is the top row (image convention, matching the
/// camera bitfield the detection stage produces); column 0 is the leftmost.

#include <compare>
#include <cstdint>
#include <string>

namespace qrm {

/// A trap site addressed by (row, col). Signed so that transform math
/// (flips, quadrant-local offsets) never underflows mid-computation.
struct Coord {
  std::int32_t row = 0;
  std::int32_t col = 0;

  friend auto operator<=>(const Coord&, const Coord&) = default;
};

[[nodiscard]] inline std::string to_string(const Coord& c) {
  std::string out;
  out.reserve(16);
  out.push_back('(');
  out += std::to_string(c.row);
  out.push_back(',');
  out += std::to_string(c.col);
  out.push_back(')');
  return out;
}

}  // namespace qrm

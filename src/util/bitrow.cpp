#include "util/bitrow.hpp"

#include <array>
#include <bit>

#include "util/assert.hpp"

namespace qrm {

namespace {

using Word = BitRow::Word;

/// Bit-reversal of one byte, computed once at compile time.
constexpr std::array<std::uint8_t, 256> kByteReverse = [] {
  std::array<std::uint8_t, 256> table{};
  for (std::uint32_t v = 0; v < 256; ++v) {
    std::uint8_t r = 0;
    for (std::uint32_t b = 0; b < 8; ++b)
      if ((v >> b) & 1U) r = static_cast<std::uint8_t>(r | (1U << (7 - b)));
    table[v] = r;
  }
  return table;
}();

/// Reverse all 64 bits of a word: per-byte table lookup + byte swap.
[[nodiscard]] constexpr Word reverse_word(Word w) noexcept {
  Word out = 0;
  for (std::uint32_t byte = 0; byte < 8; ++byte) {
    out = (out << 8) | kByteReverse[w & 0xFFU];
    w >>= 8;
  }
  return out;
}

/// Mask with bits [0, n) set; n in [0, 64].
[[nodiscard]] constexpr Word low_mask(std::uint32_t n) noexcept {
  return n >= BitRow::kWordBits ? ~Word{0} : (Word{1} << n) - 1;
}

}  // namespace

BitRow::BitRow(std::uint32_t width) : width_(width), words_(word_count(), 0) {}

BitRow BitRow::from_string(std::string_view text) {
  BitRow row(static_cast<std::uint32_t>(text.size()));
  for (std::uint32_t i = 0; i < row.width_; ++i) {
    const char c = text[i];
    QRM_EXPECTS_MSG(c == '0' || c == '1' || c == '.' || c == '#',
                    "BitRow::from_string accepts only 0/1/./#");
    if (c == '1' || c == '#') row.set(i);
  }
  return row;
}

void BitRow::fill() {
  for (auto& w : words_) w = ~Word{0};
  mask_tail();
}

void BitRow::reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::uint32_t BitRow::count() const noexcept {
  std::uint32_t n = 0;
  for (const Word w : words_) n += static_cast<std::uint32_t>(std::popcount(w));
  return n;
}

std::uint32_t BitRow::count_range(std::uint32_t lo, std::uint32_t hi) const {
  QRM_EXPECTS(lo <= hi && hi <= width_);
  if (lo == hi) return 0;
  // Mask the partial first and last words; every word in between contributes
  // its full popcount. No per-bit pre/post-amble.
  const std::uint32_t w0 = lo / kWordBits;
  const std::uint32_t w1 = (hi - 1) / kWordBits;
  const Word first = ~low_mask(lo % kWordBits);
  const Word last = low_mask((hi - 1) % kWordBits + 1);
  if (w0 == w1) return static_cast<std::uint32_t>(std::popcount(words_[w0] & first & last));
  std::uint32_t n = static_cast<std::uint32_t>(std::popcount(words_[w0] & first));
  for (std::uint32_t wi = w0 + 1; wi < w1; ++wi)
    n += static_cast<std::uint32_t>(std::popcount(words_[wi]));
  n += static_cast<std::uint32_t>(std::popcount(words_[w1] & last));
  return n;
}

bool BitRow::any() const noexcept {
  for (const Word w : words_)
    if (w != 0) return true;
  return false;
}

bool BitRow::all_set_below(std::uint32_t n) const {
  QRM_EXPECTS(n <= width_);
  return count_range(0, n) == n;
}

void BitRow::shift_toward_lsb(std::uint32_t n) {
  if (n >= width_) {
    reset();
    return;
  }
  const std::uint32_t word_shift = n / kWordBits;
  const std::uint32_t bit_shift = n % kWordBits;
  const std::size_t nw = words_.size();
  for (std::size_t i = 0; i < nw; ++i) {
    const std::size_t src = i + word_shift;
    Word lo = src < nw ? words_[src] : 0;
    Word hi = (src + 1) < nw ? words_[src + 1] : 0;
    words_[i] = bit_shift == 0 ? lo : ((lo >> bit_shift) | (hi << (kWordBits - bit_shift)));
  }
  mask_tail();
}

void BitRow::shift_toward_msb(std::uint32_t n) {
  if (n >= width_) {
    reset();
    return;
  }
  const std::uint32_t word_shift = n / kWordBits;
  const std::uint32_t bit_shift = n % kWordBits;
  const std::size_t nw = words_.size();
  for (std::size_t i = nw; i-- > 0;) {
    Word lo = i >= word_shift ? words_[i - word_shift] : 0;
    Word hi = (i >= word_shift + 1) ? words_[i - word_shift - 1] : 0;
    words_[i] = bit_shift == 0 ? lo : ((lo << bit_shift) | (hi >> (kWordBits - bit_shift)));
  }
  mask_tail();
}

std::uint32_t BitRow::first_hole() const noexcept {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    const Word inv = ~words_[wi];
    if (inv != 0) {
      const auto pos = static_cast<std::uint32_t>(std::countr_zero(inv)) + wi * kWordBits;
      return pos < width_ ? pos : width_;
    }
  }
  return width_;
}

std::uint32_t BitRow::first_atom() const noexcept {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    if (words_[wi] != 0) {
      const auto pos = static_cast<std::uint32_t>(std::countr_zero(words_[wi])) + wi * kWordBits;
      return pos < width_ ? pos : width_;
    }
  }
  return width_;
}

std::uint32_t BitRow::holes_below(std::uint32_t i) const {
  QRM_EXPECTS(i <= width_);
  return i - count_range(0, i);
}

std::vector<std::uint32_t> BitRow::set_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each_set([&out](std::uint32_t i) { out.push_back(i); });
  return out;
}

std::vector<std::uint32_t> BitRow::hole_positions() const {
  std::vector<std::uint32_t> out;
  out.reserve(width_ - count());
  // Walk set bits of the inverted words; the tail of the last word is masked
  // so positions >= width never appear.
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    Word inv = ~words_[wi];
    if (wi + 1 == words_.size() && width_ % kWordBits != 0) inv &= low_mask(width_ % kWordBits);
    while (inv != 0) {
      out.push_back(wi * kWordBits + static_cast<std::uint32_t>(std::countr_zero(inv)));
      inv &= inv - 1;
    }
  }
  return out;
}

void BitRow::for_each_set(const std::function<void(std::uint32_t)>& fn) const {
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    while (w != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
      fn(wi * kWordBits + bit);
      w &= w - 1;
    }
  }
}

BitRow BitRow::compacted() const {
  BitRow out(width_);
  // A prefix of count() ones: full words of all-ones then one partial mask.
  const std::uint32_t n = count();
  const std::uint32_t full = n / kWordBits;
  for (std::uint32_t wi = 0; wi < full; ++wi) out.words_[wi] = ~Word{0};
  if (n % kWordBits != 0) out.words_[full] = low_mask(n % kWordBits);
  return out;
}

std::vector<std::uint32_t> BitRow::compaction_displacements() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  // Displacement of the atom at position p is the number of holes below p,
  // i.e. p - rank(p). Maintain the rank as a running popcount prefix sum:
  // `ones` counts set bits in earlier words, `k` those already visited in
  // the current word, so each set bit costs O(1) instead of an O(width) scan.
  std::uint32_t ones = 0;
  for (std::uint32_t wi = 0; wi < words_.size(); ++wi) {
    Word w = words_[wi];
    std::uint32_t k = 0;
    while (w != 0) {
      const auto bit = static_cast<std::uint32_t>(std::countr_zero(w));
      out.push_back(wi * kWordBits + bit - ones - k);
      ++k;
      w &= w - 1;
    }
    ones += k;
  }
  return out;
}

BitRow BitRow::reversed() const {
  BitRow out(width_);
  if (width_ == 0) return out;
  // Reverse each word (byte-reversal table + byte swap) and the word order;
  // that reverses the row as if it were word_count()*64 bits wide, leaving
  // the result too high by the tail slack. Shift the slack back out — the
  // incoming tail is canonical (zero), so no stray bits survive.
  const std::size_t nw = words_.size();
  for (std::size_t i = 0; i < nw; ++i) out.words_[nw - 1 - i] = reverse_word(words_[i]);
  const std::uint32_t slack = static_cast<std::uint32_t>(nw) * kWordBits - width_;
  if (slack != 0) {
    for (std::size_t i = 0; i < nw; ++i) {
      const Word hi = (i + 1) < nw ? out.words_[i + 1] : 0;
      out.words_[i] = (out.words_[i] >> slack) | (hi << (kWordBits - slack));
    }
  }
  return out;
}

BitRow BitRow::slice(std::uint32_t pos, std::uint32_t len) const {
  QRM_EXPECTS(pos + len <= width_);
  BitRow out(len);
  const std::uint32_t w0 = pos / kWordBits;
  const std::uint32_t shift = pos % kWordBits;
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const Word lo = words_[w0 + i];
    const Word hi = (w0 + i + 1) < words_.size() ? words_[w0 + i + 1] : 0;
    out.words_[i] = shift == 0 ? lo : ((lo >> shift) | (hi << (kWordBits - shift)));
  }
  out.mask_tail();
  return out;
}

void BitRow::paste(std::uint32_t pos, const BitRow& piece) {
  QRM_EXPECTS(pos + piece.width_ <= width_);
  const std::uint32_t w0 = pos / kWordBits;
  const std::uint32_t shift = pos % kWordBits;
  for (std::size_t i = 0; i < piece.words_.size(); ++i) {
    // Valid bits of this source word (the piece's own tail must not clear
    // destination bits beyond the pasted range).
    const std::uint32_t remaining = piece.width_ - static_cast<std::uint32_t>(i) * kWordBits;
    const Word mask = low_mask(remaining < kWordBits ? remaining : kWordBits);
    const Word src = piece.words_[i] & mask;
    words_[w0 + i] = (words_[w0 + i] & ~(mask << shift)) | (src << shift);
    if (shift != 0 && (mask >> (kWordBits - shift)) != 0) {
      words_[w0 + i + 1] =
          (words_[w0 + i + 1] & ~(mask >> (kWordBits - shift))) | (src >> (kWordBits - shift));
    }
  }
}

void BitRow::set_word(std::uint32_t wi, Word w) {
  QRM_EXPECTS(wi < words_.size());
  words_[wi] = w;
  if (wi + 1 == words_.size()) mask_tail();
}

void BitRow::assign_words(const std::vector<Word>& words) {
  QRM_EXPECTS(words.size() == words_.size());
  words_ = words;
  mask_tail();
}

BitRow& BitRow::operator&=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

BitRow& BitRow::operator|=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

BitRow& BitRow::operator^=(const BitRow& rhs) {
  QRM_EXPECTS(rhs.width_ == width_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

std::string BitRow::to_string() const {
  std::string s;
  s.reserve(width_);
  for (std::uint32_t i = 0; i < width_; ++i) s.push_back(test(i) ? '1' : '0');
  return s;
}

std::string BitRow::to_art() const {
  std::string s;
  s.reserve(width_);
  for (std::uint32_t i = 0; i < width_; ++i) s.push_back(test(i) ? '#' : '.');
  return s;
}

void BitRow::mask_tail() noexcept {
  if (words_.empty()) return;
  const std::uint32_t used = width_ % kWordBits;
  if (used != 0) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace qrm

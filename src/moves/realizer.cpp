#include "moves/realizer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "moves/aod.hpp"
#include "moves/executor.hpp"
#include "util/assert.hpp"

namespace qrm {

namespace {

/// A moving atom tracked through the rounds.
struct Mover {
  std::int32_t line;
  std::int32_t pos;     // current position along the line
  std::int32_t target;  // final position
};

Coord to_coord(Axis axis, std::int32_t line, std::int32_t pos) {
  return axis == Axis::Rows ? Coord{line, pos} : Coord{pos, line};
}

void validate_assignment(const OccupancyGrid& grid, Axis axis, const LineAssignment& a) {
  const std::int32_t line_count = axis == Axis::Rows ? grid.height() : grid.width();
  const std::int32_t line_length = axis == Axis::Rows ? grid.width() : grid.height();
  QRM_EXPECTS_MSG(a.line >= 0 && a.line < line_count, "assignment line out of range");
  QRM_EXPECTS_MSG(a.sources.size() == a.targets.size(),
                  "assignment sources/targets size mismatch");
  for (std::size_t i = 0; i < a.sources.size(); ++i) {
    QRM_EXPECTS_MSG(a.sources[i] >= 0 && a.sources[i] < line_length,
                    "assignment source out of range");
    QRM_EXPECTS_MSG(a.targets[i] >= 0 && a.targets[i] < line_length,
                    "assignment target out of range");
    QRM_EXPECTS_MSG(grid.occupied(to_coord(axis, a.line, a.sources[i])),
                    "assignment source holds no atom");
    if (i > 0) {
      QRM_EXPECTS_MSG(a.sources[i] > a.sources[i - 1], "assignment sources must ascend");
      QRM_EXPECTS_MSG(a.targets[i] > a.targets[i - 1], "assignment targets must ascend");
    }
  }
  // Full-line order consistency: merge fixed atoms (unselected) with the
  // moving atoms' targets in source order; the sequence must stay strictly
  // increasing and duplicate-free, or motion would require passing an atom.
  // Sources are strictly ascending (checked above), so a two-pointer sweep
  // pairs each selected occupied site with its target in index order —
  // no set lookups or per-line allocations on this hot path.
  std::size_t next_moving = 0;
  std::int32_t prev_final = -1;
  bool have_prev = false;
  for (std::int32_t pos = 0; pos < line_length; ++pos) {
    if (!grid.occupied(to_coord(axis, a.line, pos))) continue;
    std::int32_t final_pos = pos;
    if (next_moving < a.sources.size() && a.sources[next_moving] == pos) {
      final_pos = a.targets[next_moving++];
    }
    QRM_EXPECTS_MSG(!have_prev || final_pos > prev_final,
                    "assignment would require an atom to pass another in line " +
                        std::to_string(a.line));
    prev_final = final_pos;
    have_prev = true;
  }
}

/// Emit one unit-step round (all `sites` move one step in `dir`), splitting
/// into AOD-legal sub-moves when requested, and advance the grid.
/// `major_mirror` (nullable) is the grid in major-line orientation, kept in
/// sync by legalize across rounds so each round skips an O(area) transpose.
void emit_round(OccupancyGrid& grid, std::vector<Coord> sites, Direction dir,
                Schedule& schedule, const RealizeOptions& options,
                OccupancyGrid* major_mirror) {
  if (sites.empty()) return;
  if (options.aod_legalize) {
    for (auto& sub : legalize(grid, sites, dir, 1, major_mirror)) {
      apply_move_unchecked(grid, sub);
      schedule.push_back(std::move(sub));
    }
  } else {
    ParallelMove move{dir, 1, std::move(sites)};
    apply_move_unchecked(grid, move);
    schedule.push_back(std::move(move));
  }
}

/// Emit one multi-step hop round (`sites` move `steps` cells in `dir`) and
/// advance the grid. Dead-channel mode never carries a major mirror:
/// legalize only accepts one for unit steps, and hop rounds are rare enough
/// that the per-round transpose it avoided does not matter.
void emit_hop_round(OccupancyGrid& grid, std::vector<Coord> sites, Direction dir,
                    std::int32_t steps, Schedule& schedule, const RealizeOptions& options) {
  if (sites.empty()) return;
  if (options.aod_legalize) {
    for (auto& sub : legalize(grid, sites, dir, steps, nullptr)) {
      apply_move_unchecked(grid, sub);
      schedule.push_back(std::move(sub));
    }
  } else {
    ParallelMove move{dir, steps, std::move(sites)};
    apply_move_unchecked(grid, move);
    schedule.push_back(std::move(move));
  }
}

/// Run all rounds of one phase with dead perpendicular lines to hop across.
/// Each round every active mover advances to the next live position (one
/// step plus the length of the dead run it crosses, capped at its remaining
/// displacement — the cap only binds when the assigned target itself is
/// dead, which upper passes may produce mid-plan; the executor freezes such
/// atoms and the next loop round replans them). Movers are walked
/// front-first, so a hop's landing cell is always vacated before it is
/// reached: cells inside a dead run hold no atoms (the grid is masked), and
/// the live landing cell either belonged to a front mover that has already
/// moved this round or was free at validation time (the order-consistency
/// sweep forbids fixed atoms between a mover and its target).
std::size_t run_phase_dead(OccupancyGrid& grid, Axis axis, std::vector<Mover>& movers,
                           bool toward_origin, Schedule& schedule,
                           const RealizeOptions& options,
                           const std::vector<std::int32_t>& dead_positions) {
  const Direction dir = axis == Axis::Rows
                            ? (toward_origin ? Direction::West : Direction::East)
                            : (toward_origin ? Direction::North : Direction::South);
  const auto remaining = [toward_origin](const Mover& m) {
    return toward_origin ? m.pos - m.target : m.target - m.pos;
  };
  const auto pos_dead = [&dead_positions](std::int32_t p) {
    return std::binary_search(dead_positions.begin(), dead_positions.end(), p);
  };
  std::vector<Mover*> active;
  active.reserve(movers.size());
  for (auto& m : movers) {
    if (remaining(m) > 0) active.push_back(&m);
  }

  const std::int32_t delta = toward_origin ? -1 : +1;
  std::size_t rounds = 0;
  std::vector<std::int32_t> steps;
  while (!active.empty()) {
    // Front-first walk order, re-established every round (variable steps
    // let a rear mover close a gap, so a single phase-start sort would go
    // stale). Ties across lines break by line for determinism.
    std::sort(active.begin(), active.end(), [&](const Mover* a, const Mover* b) {
      if (a->pos != b->pos) return toward_origin ? a->pos < b->pos : a->pos > b->pos;
      return a->line < b->line;
    });
    steps.assign(active.size(), 1);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Mover& m = *active[i];
      while (steps[i] < remaining(m) && pos_dead(m.pos + delta * steps[i])) ++steps[i];
    }
    // Emit runs of equal step counts as one command each; a run is
    // internally collision-free (order-preserving equal shifts) and its
    // swept cells are dead, hence empty.
    std::size_t begin = 0;
    while (begin < active.size()) {
      std::size_t end = begin;
      while (end < active.size() && steps[end] == steps[begin]) ++end;
      std::vector<Coord> sites;
      sites.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i)
        sites.push_back(to_coord(axis, active[i]->line, active[i]->pos));
      emit_hop_round(grid, std::move(sites), dir, steps[begin], schedule, options);
      for (std::size_t i = begin; i < end; ++i) active[i]->pos += delta * steps[begin];
      begin = end;
    }
    std::erase_if(active, [&remaining](Mover* m) { return remaining(*m) == 0; });
    ++rounds;
  }
  return rounds;
}

/// Run all rounds of one phase. `toward_origin` selects atoms that must
/// decrease their position (motion W/N); otherwise increase (E/S).
///
/// Movers are sorted by remaining displacement (descending) so that each
/// round only touches the prefix still in motion; total work is the sum of
/// displacements, not movers x rounds.
std::size_t run_phase(OccupancyGrid& grid, Axis axis, std::vector<Mover>& movers,
                      bool toward_origin, Schedule& schedule, const RealizeOptions& options,
                      OccupancyGrid* major_mirror) {
  const Direction dir = axis == Axis::Rows
                            ? (toward_origin ? Direction::West : Direction::East)
                            : (toward_origin ? Direction::North : Direction::South);
  const auto remaining = [toward_origin](const Mover& m) {
    return toward_origin ? m.pos - m.target : m.target - m.pos;
  };
  std::vector<Mover*> active;
  active.reserve(movers.size());
  for (auto& m : movers) {
    if (remaining(m) > 0) active.push_back(&m);
  }
  std::sort(active.begin(), active.end(),
            [&remaining](const Mover* a, const Mover* b) { return remaining(*a) > remaining(*b); });

  const std::int32_t delta = toward_origin ? -1 : +1;
  std::size_t rounds = 0;
  while (!active.empty()) {
    std::vector<Coord> stepping;
    stepping.reserve(active.size());
    for (Mover* m : active) stepping.push_back(to_coord(axis, m->line, m->pos));
    emit_round(grid, std::move(stepping), dir, schedule, options, major_mirror);
    for (Mover* m : active) m->pos += delta;
    // Arrived movers form a suffix of the displacement-sorted list.
    while (!active.empty() && remaining(*active.back()) == 0) active.pop_back();
    ++rounds;
  }
  return rounds;
}

}  // namespace

RealizeResult realize_assignments(OccupancyGrid& grid, Axis axis,
                                  std::span<const LineAssignment> assignments,
                                  Schedule& schedule, const RealizeOptions& options) {
  std::set<std::int32_t> seen_lines;
  std::vector<Mover> movers;
  for (const auto& a : assignments) {
    QRM_EXPECTS_MSG(seen_lines.insert(a.line).second,
                    "duplicate line in one realize call");
    validate_assignment(grid, axis, a);
    for (std::size_t i = 0; i < a.sources.size(); ++i) {
      if (a.sources[i] != a.targets[i]) movers.push_back({a.line, a.sources[i], a.targets[i]});
    }
  }

  RealizeResult result;
  result.atoms_moved = movers.size();
  // Dead perpendicular lines along this axis force the hop path: positions
  // are column indices for row motion (so dead *columns* interrupt the
  // line) and row indices for column motion.
  const std::vector<std::int32_t>* dead_positions = nullptr;
  if (options.dead != nullptr) {
    const auto& perpendicular = axis == Axis::Rows ? options.dead->cols : options.dead->rows;
    if (!perpendicular.empty()) dead_positions = &perpendicular;
  }
  if (dead_positions != nullptr) {
    result.rounds_toward_origin =
        run_phase_dead(grid, axis, movers, true, schedule, options, *dead_positions);
    result.rounds_away =
        run_phase_dead(grid, axis, movers, false, schedule, options, *dead_positions);
  } else {
    // All rounds of both phases move along `axis`, so one major-oriented
    // copy of the grid (transposed for row moves, plain for column moves)
    // serves every legalize call; legalize advances it move by move,
    // replacing the O(area) transpose it would otherwise pay per unit round.
    OccupancyGrid major_mirror;
    OccupancyGrid* mirror_ptr = nullptr;
    if (options.aod_legalize && !movers.empty()) {
      major_mirror = axis == Axis::Rows ? grid.flipped(Flip::Transpose) : grid;
      mirror_ptr = &major_mirror;
    }
    // Toward-origin movers are provably never blocked by fixed atoms,
    // arrived atoms, or away-movers (order preservation forbids all three),
    // so the phase completes in max|displacement| rounds; the away phase
    // mirrors it.
    result.rounds_toward_origin =
        run_phase(grid, axis, movers, true, schedule, options, mirror_ptr);
    result.rounds_away = run_phase(grid, axis, movers, false, schedule, options, mirror_ptr);
  }

  for (const auto& m : movers) {
    QRM_ENSURES_MSG(m.pos == m.target, "realizer failed to deliver an atom");
  }
  return result;
}

}  // namespace qrm

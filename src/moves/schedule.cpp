#include "moves/schedule.hpp"

#include <sstream>

namespace qrm {

void Schedule::append(const Schedule& other) {
  moves_.insert(moves_.end(), other.moves_.begin(), other.moves_.end());
}

std::vector<MoveRecord> Schedule::records() const {
  std::vector<MoveRecord> out;
  std::size_t total = 0;
  for (const auto& m : moves_) total += m.sites.size();
  out.reserve(total);
  for (const auto& m : moves_)
    for (const Coord& site : m.sites) out.push_back({site, m.dir, m.steps});
  return out;
}

ScheduleStats Schedule::stats() const noexcept {
  ScheduleStats s;
  s.parallel_moves = moves_.size();
  for (const auto& m : moves_) {
    s.atom_moves += m.sites.size();
    s.total_steps += static_cast<std::int64_t>(m.sites.size()) * m.steps;
    if (m.steps > s.max_steps) s.max_steps = m.steps;
    if (m.sites.size() > s.max_parallelism) s.max_parallelism = m.sites.size();
  }
  s.mean_parallelism = s.parallel_moves == 0
                           ? 0.0
                           : static_cast<double>(s.atom_moves) /
                                 static_cast<double>(s.parallel_moves);
  return s;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  for (const auto& m : moves_) {
    os << to_cstring(m.dir) << " x" << m.steps << " {";
    for (std::size_t i = 0; i < m.sites.size(); ++i) {
      if (i != 0) os << ',';
      os << qrm::to_string(m.sites[i]);
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace qrm

// Tests for the AWG/AOD waveform model.

#include <gtest/gtest.h>

#include <cmath>

#include "awg/waveform.hpp"
#include "util/assert.hpp"

namespace qrm::awg {
namespace {

Schedule example_schedule() {
  Schedule s;
  s.push_back({Direction::East, 1, {{2, 3}, {4, 3}}});  // rows 2,4; col 3
  s.push_back({Direction::South, 2, {{1, 1}}});
  return s;
}

TEST(Awg, SiteFrequencyMapIsAffine) {
  const AodCalibration cal;
  EXPECT_DOUBLE_EQ(cal.site_freq_mhz(0), 75.0);
  EXPECT_DOUBLE_EQ(cal.site_freq_mhz(10), 80.0);
  EXPECT_LT(cal.site_freq_mhz(3), cal.site_freq_mhz(4));
}

TEST(Awg, PlanHasOneCommandPerMove) {
  const AodCalibration cal;
  const WaveformPlan plan = build_waveform_plan(example_schedule(), cal);
  ASSERT_EQ(plan.commands.size(), 2u);
  // Move 0: two row tones (static), one column tone (chirping east).
  EXPECT_EQ(plan.commands[0].row_tones.size(), 2u);
  EXPECT_EQ(plan.commands[0].col_tones.size(), 1u);
  EXPECT_FALSE(plan.commands[0].row_tones[0].is_chirp());
  EXPECT_TRUE(plan.commands[0].col_tones[0].is_chirp());
  EXPECT_DOUBLE_EQ(plan.commands[0].col_tones[0].start_mhz, cal.site_freq_mhz(3));
  EXPECT_DOUBLE_EQ(plan.commands[0].col_tones[0].end_mhz, cal.site_freq_mhz(4));
  // Move 1: one row tone chirping south by two sites.
  EXPECT_TRUE(plan.commands[1].row_tones[0].is_chirp());
  EXPECT_DOUBLE_EQ(plan.commands[1].row_tones[0].end_mhz, cal.site_freq_mhz(3));
  EXPECT_EQ(plan.chirp_count(), 2u);
}

TEST(Awg, DurationsMatchPhysicalModel) {
  const AodCalibration cal;
  const Schedule s = example_schedule();
  const WaveformPlan plan = build_waveform_plan(s, cal);
  const PhysicalModel model = physical_model_of(cal);
  EXPECT_DOUBLE_EQ(plan.total_duration_us, model.schedule_duration_us(s));
  EXPECT_DOUBLE_EQ(plan.commands[0].duration_us, cal.settle_time_us + cal.ramp_time_per_step_us);
  EXPECT_DOUBLE_EQ(plan.commands[1].duration_us,
                   cal.settle_time_us + 2.0 * cal.ramp_time_per_step_us);
}

TEST(Awg, EmptyScheduleEmptyPlan) {
  const WaveformPlan plan = build_waveform_plan(Schedule{}, AodCalibration{});
  EXPECT_TRUE(plan.commands.empty());
  EXPECT_DOUBLE_EQ(plan.total_duration_us, 0.0);
  EXPECT_EQ(plan.chirp_count(), 0u);
}

TEST(Awg, SynthesizedSamplesHaveEnergyAndBoundedAmplitude) {
  const AodCalibration cal;
  const WaveformPlan plan = build_waveform_plan(example_schedule(), cal);
  const auto samples = synthesize_axis(plan.commands[0], AodAxis::Rows, cal);
  ASSERT_FALSE(samples.empty());
  double energy = 0.0;
  float peak = 0.0F;
  for (const float s : samples) {
    energy += static_cast<double>(s) * s;
    peak = std::max(peak, std::abs(s));
  }
  EXPECT_GT(energy, 0.0);
  // Two unit tones: amplitude bounded by tone count.
  EXPECT_LE(peak, 2.0F + 1e-3F);
  EXPECT_GT(peak, 0.5F);
}

TEST(Awg, SampleCountMatchesDurationAndCap) {
  const AodCalibration cal;  // 500 Msps
  const WaveformPlan plan = build_waveform_plan(example_schedule(), cal);
  const double expected = plan.commands[0].duration_us * cal.sample_rate_msps;
  const auto samples = synthesize_axis(plan.commands[0], AodAxis::Rows, cal);
  EXPECT_EQ(samples.size(), static_cast<std::size_t>(expected));
  const auto capped = synthesize_axis(plan.commands[0], AodAxis::Rows, cal, 100);
  EXPECT_EQ(capped.size(), 100u);
}

TEST(Awg, ChirpSweepsInstantaneousFrequency) {
  // A single chirping tone: verify the zero-crossing density increases when
  // ramping upward (instantaneous frequency rises).
  AodCalibration cal;
  cal.sample_rate_msps = 2000.0;
  WaveformCommand cmd;
  cmd.duration_us = 20.0;
  cmd.col_tones.push_back({AodAxis::Cols, 40.0, 80.0, 20.0});
  const auto samples = synthesize_axis(cmd, AodAxis::Cols, cal);
  ASSERT_GT(samples.size(), 1000u);
  const auto crossings = [&](std::size_t lo, std::size_t hi) {
    int n = 0;
    for (std::size_t i = lo + 1; i < hi; ++i)
      if ((samples[i - 1] < 0) != (samples[i] < 0)) ++n;
    return n;
  };
  const std::size_t half = samples.size() / 2;
  EXPECT_GT(crossings(half, samples.size()), crossings(0, half))
      << "second half of an up-chirp must oscillate faster";
}

}  // namespace
}  // namespace qrm::awg
